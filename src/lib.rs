//! # dyno — Detection and Correction of Conflicting Source Updates for View Maintenance
//!
//! A from-scratch Rust reproduction of the ICDE 2004 paper by Chen, Chen,
//! Zhang and Rundensteiner: the **Dyno** dynamic scheduler that makes
//! materialized-view maintenance correct when autonomous data sources
//! concurrently commit both **data updates** and **schema changes**.
//!
//! The workspace is layered (see `DESIGN.md` for the full inventory):
//!
//! | crate | contents |
//! |---|---|
//! | [`relational`] | in-memory relational substrate: bag relations, signed deltas, SPJ query engine, DDL |
//! | [`source`] | autonomous source servers, wrappers, the EVE-style information space |
//! | [`core`] | Dyno itself: dependency graph, cycle merge, topological correction, pessimistic/optimistic scheduling — data-model-independent |
//! | [`view`] | the view manager: UMQ, SWEEP maintenance with compensation, view synchronization, view adaptation (paper Equation 6) |
//! | [`fault`] | deterministic fault injection: the transport seam between warehouse and sources, chaos profiles, retry policies, delivery recovery |
//! | [`durable`] | crash durability: CRC-framed write-ahead log, manual binary codec, in-memory and file storage backends |
//! | [`sim`] | the discrete-event testbed replacing the paper's Oracle cluster: virtual clock, cost model, workloads, consistency auditors, chaos + crash runners |
//!
//! ## Quickstart
//!
//! ```
//! use dyno::prelude::*;
//! use dyno::view::testkit::{bookinfo_space, bookinfo_view, insert_item};
//!
//! // The paper's running example: the BookInfo view over three sources.
//! let space = bookinfo_space();
//! let info = space.info().clone();
//! let mut port = InProcessPort::new(space);
//! let mut mgr = ViewManager::new(bookinfo_view(), info, Strategy::Pessimistic);
//! mgr.initialize(&mut port).unwrap();
//!
//! // A source autonomously commits a data update…
//! port.commit(
//!     SourceId(0),
//!     SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
//! )
//! .unwrap();
//!
//! // …and the manager maintains the view incrementally, compensating for
//! // any concurrent updates and re-ordering around schema changes.
//! mgr.run_to_quiescence(&mut port, 100).unwrap();
//! assert_eq!(mgr.mv().len(), 2);
//! ```

pub use dyno_core as core;
pub use dyno_durable as durable;
pub use dyno_fault as fault;
pub use dyno_obs as obs;
pub use dyno_relational as relational;
pub use dyno_replica as replica;
pub use dyno_sim as sim;
pub use dyno_source as source;
pub use dyno_view as view;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dyno_core::{Dyno, DynoStats, StepOutcome, Strategy, Umq, UpdateKind, UpdateMeta};
    pub use dyno_fault::{ChaosTransport, Direct, FaultProfile, RetryPolicy, Transport};
    pub use dyno_relational::{
        AttrType, Attribute, Catalog, CmpOp, ColRef, DataUpdate, Delta, Relation, RelationalError,
        Schema, SchemaChange, SourceUpdate, SpjQuery, Tuple, Value,
    };
    pub use dyno_sim::{
        run_chaos, run_scenario, ChaosConfig, ChaosReport, CostModel, RunReport, Scenario,
        ScheduledCommit, SimPort, TestbedConfig, WorkloadGen,
    };
    pub use dyno_source::{InfoSpace, SourceId, SourceServer, SourceSpace, UpdateMessage};
    pub use dyno_view::{
        FaultedPort, InProcessPort, MaterializedView, SourcePort, ViewDefinition, ViewError,
        ViewManager, Warehouse,
    };
}
