//! Data-Grid telemetry: the loosely-coupled scenario the paper's
//! introduction motivates. Six telemetry feeds on three grid nodes are
//! integrated into one materialized dashboard view; providers push readings
//! continuously and occasionally restructure their feeds (rename a feed,
//! retire a column) without coordinating with the integrator.
//!
//! The example runs the same mixed workload under the optimistic and the
//! pessimistic detection strategies on the discrete-event testbed and
//! compares cost, abort cost, and consistency.
//!
//! Run with: `cargo run --release --example grid_telemetry`

use dyno::prelude::*;
use dyno::sim::{check_convergence, CostModel};

fn main() {
    // The testbed doubles as the grid: R0..R5 are the six telemetry feeds.
    let cfg = TestbedConfig { tuples_per_relation: 1_000, ..Default::default() };
    println!(
        "grid: {} feeds on {} nodes, {} readings each; dashboard = 6-way join\n",
        cfg.relation_count(),
        cfg.sources,
        cfg.tuples_per_relation
    );

    // Workload: 150 readings trickling in (one per simulated 0.5 s) while
    // providers restructure five times, 20 s apart — squarely inside the
    // conflict-prone band of paper Figure 10.
    let mut reports = Vec::new();
    for strategy in [Strategy::Optimistic, Strategy::Pessimistic] {
        let (space, view) = dyno::sim::build_testbed(&cfg);
        let mut gen = WorkloadGen::new(cfg, 2026);
        let schedule = gen.mixed(150, 500_000, 5, 10_000_000, 20_000_000);
        let report = run_scenario(
            Scenario::new(space, view, schedule)
                .with_strategy(strategy)
                .with_cost(CostModel::calibrated(cfg.tuples_per_relation as u64))
                .with_audit(),
        )
        .expect("grid run");
        println!(
            "{strategy:?}:\n  total maintenance cost {:>7.1} s (abort share {:>5.1} s, {} aborts)\n  \
             {} readings maintained incrementally, {} restructure batches\n  \
             converged: {}, strong-consistency violations: {}\n",
            report.metrics.total_cost_s(),
            report.metrics.abort_s(),
            report.metrics.aborts,
            report.view_stats.du_committed,
            report.view_stats.batches_committed,
            report.converged,
            report.audit_violations,
        );
        assert!(report.converged);
        assert_eq!(report.audit_violations, 0);
        reports.push((strategy, report));
    }

    let (_, opt) = &reports[0];
    let (_, pess) = &reports[1];
    println!(
        "pessimistic saved {:.1} simulated seconds of abort cost over optimistic",
        (opt.metrics.abort_us as i64 - pess.metrics.abort_us as i64) as f64 / 1e6
    );

    // Sanity: a fresh evaluation over the final grid state matches the
    // dashboard each manager produced (demonstrated once more, standalone).
    let (space, view) = dyno::sim::build_testbed(&cfg);
    let info = space.info().clone();
    let mut port = InProcessPort::new(space);
    let mut mgr = ViewManager::new(view, info, Strategy::Pessimistic);
    mgr.initialize(&mut port).expect("init");
    assert!(check_convergence(port.space(), mgr.view(), mgr.mv()).expect("check"));
    println!("dashboard verified against a fresh evaluation of the final grid state.");
}
