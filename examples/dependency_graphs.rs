//! Dependency graphs up close: Definitions 3–7 of the paper on concrete
//! queues — concurrent vs. semantic edges, safe vs. unsafe classification,
//! cycle formation, and the merge-and-sort correction (Figures 4 and 5).
//!
//! Run with: `cargo run --example dependency_graphs`

use dyno::core::{
    classify_pair, legal_schedule, DepGraph, PairRelationship, UpdateKind, UpdateMeta,
};

type M = UpdateMeta<&'static str>;

fn du(key: u64, source: u32, label: &'static str) -> M {
    UpdateMeta::new(key, source, UpdateKind::Data, label)
}

fn sc(key: u64, source: u32, label: &'static str) -> M {
    UpdateMeta::new(key, source, UpdateKind::Schema { invalidates_view: true }, label)
}

fn show(title: &str, nodes: &[Vec<M>]) -> DepGraph {
    println!("--- {title} ---");
    let views: Vec<&[M]> = nodes.iter().map(Vec::as_slice).collect();
    let graph = DepGraph::build(&views);
    let label = |i: usize| nodes[i][0].payload;
    for d in graph.dependencies() {
        println!(
            "  M({}) <-{}- M({})   [{}]",
            label(d.dependent),
            d.kind,
            label(d.prerequisite),
            if d.is_unsafe() { "UNSAFE" } else { "safe" }
        );
    }
    let schedule = legal_schedule(&graph);
    let rendered: Vec<String> = schedule
        .batches
        .iter()
        .map(|b| {
            let names: Vec<&str> = b.iter().map(|&i| label(i)).collect();
            if names.len() == 1 {
                names[0].to_string()
            } else {
                format!("{{{}}}", names.join(","))
            }
        })
        .collect();
    println!("  legal order: {}\n", rendered.join("  ->  "));
    graph
}

fn main() {
    // Definition 6 on a two-update queue: DU buffered before a
    // view-invalidating SC — the classic unsafe concurrent dependency.
    let g = show(
        "unsafe CD: a DU queued before an invalidating SC",
        &[vec![du(0, 0, "DU")], vec![sc(1, 1, "SC")]],
    );
    assert_eq!(classify_pair(g.dependencies(), 0, 1), PairRelationship::UnsafeDependent);

    // Same updates, same *source*: the SD (commit order) and the CD (view
    // definition) pull in opposite directions — a cycle, merged.
    show("cycle: DU and SC from the same source", &[vec![du(0, 0, "DU")], vec![sc(1, 0, "SC")]]);

    // Paper Figure 4: DU1 (Library), SC1 (Retailer), SC2 (Library).
    show("paper Figure 4", &[vec![du(0, 1, "DU1")], vec![sc(1, 0, "SC1")], vec![sc(2, 1, "SC2")]]);

    // Independent updates stay untouched (Definition 6 case 1).
    let g = show(
        "independent DUs on distinct sources",
        &[vec![du(0, 0, "a")], vec![du(1, 1, "b")], vec![du(2, 2, "c")]],
    );
    assert_eq!(classify_pair(g.dependencies(), 0, 2), PairRelationship::Independent);

    // A longer mixed queue: two sources, several DUs, one late SC — watch
    // how much of the queue the correction actually disturbs.
    let nodes = vec![
        vec![du(0, 0, "a0")],
        vec![du(1, 1, "b0")],
        vec![du(2, 0, "a1")],
        vec![du(3, 1, "b1")],
        vec![sc(4, 0, "SC")],
    ];
    let g = show("mixed queue, one invalidating SC arriving last", &nodes);

    // The same graph as Graphviz DOT (paste into `dot -Tsvg`):
    println!("--- DOT export of the last graph ---");
    print!("{}", g.to_dot(|i| nodes[i][0].payload.to_string()));
}
