//! Quickstart: define two autonomous sources, materialize a join view over
//! them, and watch the view manager absorb a data update and a schema
//! change — including the rewrite of the view definition.
//!
//! Run with: `cargo run --example quickstart`

use dyno::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Build two autonomous sources -----------------------------------
    let orders_schema = Schema::of(
        "Orders",
        &[("id", AttrType::Int), ("sku", AttrType::Str), ("qty", AttrType::Int)],
    );
    let products_schema = Schema::of(
        "Products",
        &[("sku", AttrType::Str), ("name", AttrType::Str), ("price", AttrType::Int)],
    );

    let mut store = Catalog::new();
    store.add_relation(Relation::from_tuples(
        orders_schema.clone(),
        [Tuple::of([Value::from(1), Value::str("A-1"), Value::from(3)])],
    )?)?;

    let mut warehouse = Catalog::new();
    warehouse.add_relation(Relation::from_tuples(
        products_schema.clone(),
        [
            Tuple::of([Value::str("A-1"), Value::str("widget"), Value::from(9)]),
            Tuple::of([Value::str("B-2"), Value::str("gadget"), Value::from(25)]),
        ],
    )?)?;

    let mut space = SourceSpace::new();
    space.add_server(SourceServer::new(SourceId(0), "store", store));
    space.add_server(SourceServer::new(SourceId(1), "warehouse", warehouse));

    // --- 2. Define the view (in SQL, as the paper writes them) -------------
    let view = ViewDefinition::parse(
        "CREATE VIEW OrderReport AS \
         SELECT Orders.id, Products.name, Orders.qty, Products.price \
         FROM Orders, Products \
         WHERE Orders.sku = Products.sku",
        "OrderReport",
    )?;
    println!("view definition:\n  {view}\n");

    let info = space.info().clone();
    let mut port = InProcessPort::new(space);
    let mut mgr = ViewManager::new(view, info, Strategy::Pessimistic);
    mgr.initialize(&mut port)?;
    println!("initial extent:\n{}", mgr.mv());

    // --- 3. A source commits a data update ---------------------------------
    port.commit(
        SourceId(0),
        SourceUpdate::Data(DataUpdate::new(Delta::inserts(
            orders_schema,
            [Tuple::of([Value::from(2), Value::str("B-2"), Value::from(1)])],
        )?)),
    )?;
    mgr.run_to_quiescence(&mut port, 100)?;
    println!("after the order insert:\n{}", mgr.mv());

    // --- 4. A source autonomously renames a relation -----------------------
    // The view definition is rewritten (view synchronization) and the extent
    // adapted; consumers keep seeing the same output columns.
    port.commit(
        SourceId(1),
        SourceUpdate::Schema(SchemaChange::RenameRelation {
            from: "Products".into(),
            to: "Items".into(),
        }),
    )?;
    mgr.run_to_quiescence(&mut port, 100)?;
    println!("after the source renamed Products to Items:\n  {}\n", mgr.view());
    println!("extent (unchanged content, new definition):\n{}", mgr.mv());

    println!(
        "stats: {} data updates maintained incrementally, {} adaptation batches, {} aborts",
        mgr.stats().du_committed,
        mgr.stats().batches_committed,
        mgr.stats().aborts
    );
    Ok(())
}
