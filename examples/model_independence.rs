//! Dyno is data-model independent (paper contribution (4): "our techniques
//! are general and independent of any data model ... [Dyno] has the
//! potential to be plugged into any view system").
//!
//! This example plugs the scheduler into a **document store**: sources are
//! collections of JSON-ish documents, the "view" is a materialized tag
//! index, data updates add documents, and schema changes rename whole
//! collections (breaking index-refresh scans that still use the old name).
//! No relational crate is involved — only `dyno-core`.
//!
//! Run with: `cargo run --example model_independence`

use std::collections::BTreeMap;

use dyno::core::{
    Dyno, MaintainOutcome, Maintainer, StepOutcome, Strategy, Umq, UpdateKind, UpdateMeta,
};

/// A document: id plus tags.
#[derive(Debug, Clone)]
struct Document {
    id: u64,
    tags: Vec<String>,
}

/// Updates a document source can commit.
#[derive(Debug, Clone)]
enum DocUpdate {
    /// Add a document to a collection.
    Insert { collection: String, doc: Document },
    /// Rename a collection (the "schema change" of this model).
    RenameCollection { from: String, to: String },
}

/// The autonomous document store: collections of documents.
#[derive(Debug, Default)]
struct DocStore {
    collections: BTreeMap<String, Vec<Document>>,
}

impl DocStore {
    fn commit(&mut self, update: &DocUpdate) {
        match update {
            DocUpdate::Insert { collection, doc } => {
                self.collections.entry(collection.clone()).or_default().push(doc.clone());
            }
            DocUpdate::RenameCollection { from, to } => {
                if let Some(docs) = self.collections.remove(from) {
                    self.collections.insert(to.clone(), docs);
                }
            }
        }
    }
}

/// The "view": a tag → document-ids index over a set of collections, with
/// its own definition (the collection names it scans).
struct TagIndexMaintainer {
    store: DocStore,
    /// The view definition: which collections the index covers.
    watched: Vec<String>,
    /// The materialized index.
    index: BTreeMap<String, Vec<u64>>,
    aborts: u64,
}

impl Maintainer<DocUpdate> for TagIndexMaintainer {
    fn maintain(
        &mut self,
        batch: &[UpdateMeta<DocUpdate>],
        _rest: &[&[UpdateMeta<DocUpdate>]],
    ) -> MaintainOutcome {
        // "View synchronization" first: follow the batch's renames in a
        // candidate definition and record the name mapping — the same
        // preprocessing the relational batch algorithm does (Section 5).
        let mut candidate = self.watched.clone();
        let mut renames: Vec<(String, String)> = Vec::new();
        for meta in batch {
            if let DocUpdate::RenameCollection { from, to } = &meta.payload {
                for w in &mut candidate {
                    if w == from {
                        *w = to.clone();
                    }
                }
                renames.push((from.clone(), to.clone()));
            }
        }

        // "Maintenance queries": scan each inserted-into collection under
        // its homogenized (post-rename) name. A name the store does not
        // have — e.g. a rename committed at the source but *not* in this
        // batch — is a broken query, exactly the paper's anomaly in a
        // non-relational model.
        let homogenize = |collection: &str| -> String {
            let mut name = collection.to_string();
            for (from, to) in &renames {
                if &name == from {
                    name = to.clone();
                }
            }
            name
        };
        for meta in batch {
            if let DocUpdate::Insert { collection, .. } = &meta.payload {
                let name = homogenize(collection);
                if candidate.contains(&name) && !self.store.collections.contains_key(&name) {
                    self.aborts += 1;
                    return MaintainOutcome::BrokenQuery;
                }
            }
        }

        // All queries validate: commit the batch to the view.
        self.watched = candidate;
        for meta in batch {
            if let DocUpdate::Insert { collection, doc } = &meta.payload {
                if self.watched.contains(&homogenize(collection)) {
                    for tag in &doc.tags {
                        self.index.entry(tag.clone()).or_default().push(doc.id);
                    }
                }
            }
        }
        MaintainOutcome::Committed
    }

    fn refresh_view_relevance(&mut self, queue: &mut Umq<DocUpdate>) {
        for meta in queue.metas_mut() {
            if let DocUpdate::RenameCollection { from, .. } = &meta.payload {
                meta.kind =
                    UpdateKind::Schema { invalidates_view: self.watched.iter().any(|w| w == from) };
            }
        }
    }
}

fn main() {
    let mut store = DocStore::default();
    store.collections.insert("articles".into(), Vec::new());
    store.collections.insert("notes".into(), Vec::new());

    // Autonomous commits: an insert into `articles`, then the provider
    // renames `articles` → `posts` before the index catches up.
    let updates = vec![
        (
            0u32,
            DocUpdate::Insert {
                collection: "articles".into(),
                doc: Document { id: 1, tags: vec!["db".into(), "views".into()] },
            },
        ),
        (0, DocUpdate::RenameCollection { from: "articles".into(), to: "posts".into() }),
        (
            0,
            DocUpdate::Insert {
                collection: "posts".into(),
                doc: Document { id: 2, tags: vec!["db".into()] },
            },
        ),
    ];
    for (_, u) in &updates {
        store.commit(u);
    }

    let mut maintainer = TagIndexMaintainer {
        store,
        watched: vec!["articles".into(), "notes".into()],
        index: BTreeMap::new(),
        aborts: 0,
    };

    // Enqueue the wrapper messages and let Dyno schedule them.
    let mut queue: Umq<DocUpdate> = Umq::new();
    for (i, (source, u)) in updates.into_iter().enumerate() {
        let kind = match &u {
            DocUpdate::Insert { .. } => UpdateKind::Data,
            DocUpdate::RenameCollection { .. } => UpdateKind::Schema { invalidates_view: true },
        };
        queue.enqueue(UpdateMeta::new(i as u64, source, kind, u));
    }

    let mut dyno = Dyno::new(Strategy::Pessimistic);
    let mut steps = 0;
    while !queue.is_empty() && steps < 100 {
        let outcome = dyno.step(&mut queue, &mut maintainer);
        println!("step {steps}: {outcome:?}");
        assert_ne!(outcome, StepOutcome::Failed);
        steps += 1;
    }

    println!("\nfinal view definition (watched collections): {:?}", maintainer.watched);
    println!("materialized tag index: {:?}", maintainer.index);
    println!("scheduler stats: {:?}\nbroken scans suffered: {}", dyno.stats(), maintainer.aborts);

    // The same guarantees as the relational instantiation: both documents
    // indexed exactly once, the definition follows the rename, and the
    // pessimistic scheduler avoided the broken scan by merging the
    // same-source insert with the rename.
    assert_eq!(maintainer.watched, vec!["posts".to_string(), "notes".to_string()]);
    assert_eq!(maintainer.index.get("db"), Some(&vec![1, 2]));
    assert_eq!(maintainer.index.get("views"), Some(&vec![1]));
    assert_eq!(maintainer.aborts, 0);
    println!("\nmodel independence demonstrated: no relational machinery involved.");
}
