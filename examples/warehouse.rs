//! A multi-view warehouse over the BookInfo sources: three materialized
//! views — the full integration view, a retailer price list, and a library
//! title index — maintained through one Update Message Queue and one Dyno
//! schedule. A schema change relevant to *any* view re-orders the shared
//! queue; every view always reflects the same per-source state vector.
//!
//! Run with: `cargo run --example warehouse`

use dyno::prelude::*;
use dyno::view::testkit::{bookinfo_space, bookinfo_view, insert_item, storeitems_change};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = bookinfo_space();
    let info = space.info().clone();
    let mut port = InProcessPort::new(space);

    let mut wh = Warehouse::new(info, Strategy::Pessimistic);
    wh.add_view(bookinfo_view());
    wh.add_view(ViewDefinition::parse(
        "CREATE VIEW PriceList AS \
         SELECT Store.StoreName, Item.Book, Item.Price FROM Store, Item \
         WHERE Store.SID = Item.SID",
        "PriceList",
    )?);
    wh.add_view(ViewDefinition::parse(
        "CREATE VIEW Titles AS SELECT Catalog.Title, Catalog.Publisher FROM Catalog",
        "Titles",
    )?);
    wh.initialize(&mut port)?;

    println!("initialized {} views:", wh.view_count());
    for i in 0..wh.view_count() {
        println!("  {} [{} tuples]", wh.view(i).name, wh.mv(i).len());
    }

    // A data update lands at the retailer…
    port.commit(
        SourceId(0),
        SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
    )?;
    // …followed by the Figure-2 mapping restructure (Store ⋈ Item →
    // StoreItems), which invalidates BookInfo *and* PriceList but not Titles.
    let store = port.space().server(SourceId(0)).catalog().get("Store")?.clone();
    let item = port.space().server(SourceId(0)).catalog().get("Item")?.clone();
    port.commit(SourceId(0), SourceUpdate::Schema(storeitems_change(&store, &item)))?;

    wh.run_to_quiescence(&mut port, 100)?;

    println!("\nafter one insert + the StoreItems restructure:");
    for i in 0..wh.view_count() {
        println!(
            "  {} [{} tuples]  aborts={} batches={}\n    {}",
            wh.view(i).name,
            wh.mv(i).len(),
            wh.stats(i).aborts,
            wh.stats(i).batches_committed,
            wh.view(i)
        );
    }
    println!(
        "\nscheduler: {} graph builds, {} merges, reflected versions {:?}",
        wh.dyno_stats().graph_builds,
        wh.dyno_stats().merges,
        wh.reflected()
    );

    assert!(wh.view(0).references_relation("StoreItems"));
    assert!(wh.view(1).references_relation("StoreItems"));
    assert!(wh.view(2).references_relation("Catalog"));
    assert_eq!(wh.mv(0).len(), 2);
    assert_eq!(wh.mv(1).len(), 2);
    assert_eq!(wh.mv(2).len(), 2);
    Ok(())
}
