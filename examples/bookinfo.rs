//! The paper's running example, end to end: the `BookInfo` view (Query (1))
//! over the Retailer, Library and Digest sources, driven through every
//! anomaly the paper describes —
//!
//! 1. **Duplication anomaly** (Example 1.a): a concurrent data update
//!    corrupts a maintenance-query result; SWEEP compensation removes it.
//! 2. **Broken query anomaly** (Example 1.b): the retailer re-tunes its
//!    XML-to-relational mapping, collapsing `Store ⋈ Item` into
//!    `StoreItems` (Figure 2); the pending insert's maintenance query can
//!    no longer succeed, and Dyno re-orders/merges around it.
//! 3. **Cyclic dependencies** (Section 3.5): the mapping re-tune *and* the
//!    drop of `Catalog.Review` are both pending; either order alone fails,
//!    so Dyno merges them into one atomic batch whose rewrite is the
//!    paper's Query (5), with `ReaderDigest.Comments` replacing the review.
//!
//! Run with: `cargo run --example bookinfo`

use dyno::prelude::*;
use dyno::view::sweep_maintain;
use dyno::view::testkit::{bookinfo_space, bookinfo_view, insert_item, storeitems_change};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Paper Query (1): the BookInfo view ===\n  {}\n", bookinfo_view());

    part1_duplication_anomaly()?;
    part2_broken_query()?;
    part3_cyclic_dependencies()?;
    Ok(())
}

/// Example 1.a — the duplication anomaly and SWEEP compensation.
fn part1_duplication_anomaly() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Part 1: duplication anomaly (Example 1.a) ===");
    let mut space = bookinfo_space();
    let view = bookinfo_view();

    // ΔC: the Library catalog gains 'Data Integration Guide'… it is already
    // in the fixture, so we add a fresh book to keep the walkthrough exact.
    let cat_schema = space.server(SourceId(1)).catalog().get("Catalog")?.schema().clone();
    let dc = DataUpdate::new(Delta::inserts(
        cat_schema,
        [Tuple::of([
            Value::str("Streams"),
            Value::str("Widom"),
            Value::str("CS"),
            Value::str("Stanford"),
            Value::str("deep"),
        ])],
    )?);
    let dc_msg = space.commit(SourceId(1), SourceUpdate::Data(dc))?;

    // Before the view manager processes ΔC, the Item table commits ΔI —
    // a matching book — exactly the interleaving of Example 1.a.
    let di = insert_item(10, "Streams", "Widom", 42);
    let di_msg = space.commit(SourceId(0), SourceUpdate::Data(di))?;

    let mut port = InProcessPort::new(space);
    // Naive maintenance (no compensation): the query to Item already sees ΔI.
    let (naive, _) = sweep_maintain(&view, &dc_msg, &[], &mut port);
    println!(
        "  without compensation, maintaining ΔC yields {} tuple(s) — the \n\
         \x20 concurrent ΔI leaked in; maintaining ΔI later would duplicate it.",
        naive.unwrap().rows.weight()
    );
    // SWEEP: the pending ΔI is compensated away.
    let (swept, _) = sweep_maintain(&view, &dc_msg, std::slice::from_ref(&di_msg), &mut port);
    println!(
        "  with SWEEP compensation: {} tuple(s) — ΔI's effect removed; it will\n\
         \x20 be maintained by its own pass.\n",
        swept.unwrap().rows.weight()
    );
    Ok(())
}

/// Example 1.b — the broken query, resolved by Dyno's reordering.
fn part2_broken_query() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Part 2: broken query anomaly (Example 1.b / Figure 2) ===");
    let space = bookinfo_space();
    let info = space.info().clone();
    let mut port = InProcessPort::new(space);
    let mut mgr = ViewManager::new(bookinfo_view(), info, Strategy::Pessimistic);
    mgr.initialize(&mut port)?;

    // The insert of Example 1 is buffered…
    port.commit(
        SourceId(0),
        SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
    )?;
    // …and then the designer re-tunes the mapping: Store+Item → StoreItems.
    let store = port.space().server(SourceId(0)).catalog().get("Store")?.clone();
    let item = port.space().server(SourceId(0)).catalog().get("Item")?.clone();
    port.commit(SourceId(0), SourceUpdate::Schema(storeitems_change(&store, &item)))?;

    mgr.run_to_quiescence(&mut port, 100)?;
    println!("  rewritten definition (paper Query (3) shape):\n    {}", mgr.view());
    println!(
        "  extent: {} tuples; aborts suffered: {} (pessimistic pre-exec detection\n\
         \x20 scheduled the schema change first, so the insert's query never broke);\n\
         \x20 cycles merged: {}\n",
        mgr.mv().len(),
        mgr.stats().aborts,
        mgr.dyno_stats().merges,
    );
    Ok(())
}

/// Section 3.5 — cyclic dependencies merged into one batch → Query (5).
fn part3_cyclic_dependencies() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Part 3: cyclic schema changes (Section 3.5 → Query (5)) ===");
    let space = bookinfo_space();
    let info = space.info().clone();
    let mut port = InProcessPort::new(space);
    let mut mgr = ViewManager::new(bookinfo_view(), info, Strategy::Pessimistic);
    mgr.initialize(&mut port)?;

    // SC1: the mapping re-tune; SC2: Review is dropped from the Catalog.
    let store = port.space().server(SourceId(0)).catalog().get("Store")?.clone();
    let item = port.space().server(SourceId(0)).catalog().get("Item")?.clone();
    port.commit(SourceId(0), SourceUpdate::Schema(storeitems_change(&store, &item)))?;
    port.commit(
        SourceId(1),
        SourceUpdate::Schema(SchemaChange::DropAttribute {
            relation: "Catalog".into(),
            attr: "Review".into(),
        }),
    )?;

    mgr.run_to_quiescence(&mut port, 100)?;
    println!("  final definition (paper Query (5)):\n    {}", mgr.view());
    println!(
        "  processed as {} atomic batch(es) covering {} updates; extent:\n{}",
        mgr.stats().batches_committed,
        mgr.stats().batched_updates,
        mgr.mv()
    );
    assert!(mgr.view().references_relation("StoreItems"));
    assert!(mgr.view().references_relation("ReaderDigest"));
    Ok(())
}
