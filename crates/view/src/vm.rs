//! Incremental view maintenance for data updates, SWEEP-style
//! (Agrawal et al., SIGMOD 1997 — the compensation algorithm the paper
//! plugs in for anomaly types (1) and (2)).
//!
//! Maintaining a delta `Δ` of relation `Rᵢ` requires one maintenance query
//! per other relation of the view (paper Definition 1 / Query (2)). Each
//! query is answered from the source's **current** state, which may already
//! include *concurrent* data updates; SWEEP removes their effect locally by
//! subtracting `D ⋈ Δⱼ` for every pending (received-but-unmaintained) data
//! update `Δⱼ` of the queried relation — a pure view-manager-side
//! computation, no extra source round trip.

use std::rc::Rc;

use dyno_obs::{field, Collector, Level, NodeKey, OpPhase, OpSample};
use dyno_relational::{
    delta_join, delta_project, delta_select, thread_stats, ColRef, DataUpdate, ExecStats,
    RelationalError, SignedBag, SpjQuery,
};
use dyno_source::UpdateMessage;

use crate::engine::{BoundTable, SourcePort};
use crate::plan::{MaintPlan, MaintStep, PlanCache};
use crate::subplan::SharedSubplans;
use crate::viewdef::ViewDefinition;

/// A computed change to the view extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDelta {
    /// Output column names (the view's SELECT list).
    pub cols: Vec<String>,
    /// Signed rows to merge into the extent.
    pub rows: SignedBag,
}

/// Why a maintenance attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintFailure {
    /// A maintenance query hit a schema conflict at a source — the
    /// broken-query anomaly. Dyno handles this by correction + retry.
    Broken {
        /// The failing query (rendered).
        query: String,
        /// The underlying schema conflict.
        error: RelationalError,
    },
    /// A source the maintenance needs is down (crash window / exhausted
    /// retry budget). Not a broken query — no correction — and not an
    /// internal bug: the entry parks and retries when the source is back.
    Unavailable(RelationalError),
    /// Anything else: an internal invariant violation, surfaced verbatim.
    Internal(RelationalError),
}

impl MaintFailure {
    pub(crate) fn from_query(query: &SpjQuery, error: RelationalError) -> Self {
        if error.is_unavailable() {
            MaintFailure::Unavailable(error)
        } else if error.is_schema_conflict() {
            MaintFailure::Broken { query: query.to_string(), error }
        } else {
            MaintFailure::Internal(error)
        }
    }
}

/// Flattens a qualified column into the single-namespace spelling used for
/// intermediate maintenance results.
pub(crate) fn flat(c: &ColRef) -> String {
    format!("{}.{}", c.relation, c.attr)
}

/// Name of the shipped intermediate table in maintenance queries.
pub(crate) const D: &str = "__D";

/// Profiling context threaded through plan execution: the collector plus
/// the owning view's name. Built (and therefore `Some`) only when
/// [`Collector::profile_on`] held at plan entry, so the disabled path never
/// reads a clock, sizes a bag, or allocates a key.
pub(crate) type Prof<'a> = (&'a Collector, &'a str);

/// Opens a timing window for one operator: a wall-clock start plus an
/// [`ExecStats`] snapshot. `None` when profiling is off.
pub(crate) fn prof_start(prof: Option<Prof<'_>>) -> Option<(std::time::Instant, ExecStats)> {
    prof.map(|_| (std::time::Instant::now(), thread_stats()))
}

/// Closes a timing window and records the operator sample. Index probes and
/// weight cancellations come from the thread's [`ExecStats`] delta across
/// the window; rows are supplied by the call site.
#[allow(clippy::too_many_arguments)]
pub(crate) fn prof_op(
    prof: Option<Prof<'_>>,
    started: Option<(std::time::Instant, ExecStats)>,
    scope: &str,
    step: u32,
    phase: OpPhase,
    op: &'static str,
    detail: &str,
    rows_in: u64,
    rows_out: u64,
) {
    let (Some((obs, view)), Some((t0, pre))) = (prof, started) else { return };
    let d = thread_stats().since(pre);
    obs.profile_op(
        view,
        scope,
        NodeKey { step, phase, op, detail: detail.to_string() },
        OpSample {
            rows_in,
            rows_out,
            weights_cancelled: d.weights_cancelled,
            index_probes: d.index_probes,
            ns: t0.elapsed().as_nanos() as u64,
        },
    );
}

/// Maintains one data update against the view.
///
/// * `pending` — every update message received but not yet reflected in the
///   view, **excluding** the one being maintained (and its batch): the SWEEP
///   compensation set.
/// * Returns the view delta plus any messages that arrived (were committed
///   and streamed) while the maintenance queries ran; the caller must
///   enqueue those into the UMQ.
pub fn sweep_maintain(
    view: &ViewDefinition,
    msg: &UpdateMessage,
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
) -> (Result<ViewDelta, MaintFailure>, Vec<UpdateMessage>) {
    let mut drained: Vec<UpdateMessage> = Vec::new();
    let result = sweep_inner(view, msg, pending, port, &mut drained, None, None);
    (result, drained)
}

/// [`sweep_maintain_observed`] with a cross-view [`SharedSubplans`] cache:
/// the first `__D ⋈ target` hop is served from (or computed into) `shared`,
/// so overlapping views maintaining the same batch pay for it once. The
/// derived per-view result is bit-identical to the unshared path (see the
/// [`crate::subplan`] module docs for the algebra).
pub fn sweep_maintain_shared(
    view: &ViewDefinition,
    msg: &UpdateMessage,
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    plans: &mut PlanCache,
    obs: &Collector,
    shared: &mut SharedSubplans,
) -> (Result<ViewDelta, MaintFailure>, Vec<UpdateMessage>) {
    let _span = obs.span("vm.sweep", &[field("pending", pending.len())]);
    obs.counter("vm.sweeps").inc();
    obs.counter("vm.compensations").add(pending.len() as u64);
    obs.prov(msg.id.0, dyno_obs::stage::SWEEP, &[field("pending", pending.len())]);
    let mut drained: Vec<UpdateMessage> = Vec::new();
    let result =
        sweep_inner(view, msg, pending, port, &mut drained, Some((plans, obs)), Some(shared));
    if let Err(MaintFailure::Broken { query, .. }) = &result {
        obs.counter("engine.break_detections").inc();
        if obs.tracing_on() {
            obs.event(Level::Warn, "vm.broken_query", &[field("query", query.clone())]);
        }
    }
    (result, drained)
}

/// [`sweep_maintain`] under a `vm.sweep` span: reports the compensation-set
/// size, surfaces a broken maintenance query — the in-exec detection of
/// paper Figure 7's `Query_Engine` — as a `vm.broken_query` warning event,
/// and plans through the view's [`PlanCache`] (hits/misses/invalidations
/// land in the `plan.*` counters).
pub fn sweep_maintain_observed(
    view: &ViewDefinition,
    msg: &UpdateMessage,
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    plans: &mut PlanCache,
    obs: &Collector,
) -> (Result<ViewDelta, MaintFailure>, Vec<UpdateMessage>) {
    let _span = obs.span("vm.sweep", &[field("pending", pending.len())]);
    obs.counter("vm.sweeps").inc();
    obs.counter("vm.compensations").add(pending.len() as u64);
    obs.prov(msg.id.0, dyno_obs::stage::SWEEP, &[field("pending", pending.len())]);
    let mut drained: Vec<UpdateMessage> = Vec::new();
    let result = sweep_inner(view, msg, pending, port, &mut drained, Some((plans, obs)), None);
    if let Err(MaintFailure::Broken { query, .. }) = &result {
        obs.counter("engine.break_detections").inc();
        if obs.tracing_on() {
            obs.event(Level::Warn, "vm.broken_query", &[field("query", query.clone())]);
        }
    }
    (result, drained)
}

fn sweep_inner(
    view: &ViewDefinition,
    msg: &UpdateMessage,
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    drained: &mut Vec<UpdateMessage>,
    plans: Option<(&mut PlanCache, &Collector)>,
    shared: Option<&mut SharedSubplans>,
) -> Result<ViewDelta, MaintFailure> {
    let du = match &msg.update {
        dyno_relational::SourceUpdate::Data(du) => du,
        dyno_relational::SourceUpdate::Schema(_) => {
            return Err(MaintFailure::Internal(RelationalError::InvalidQuery {
                reason: "sweep_maintain called with a schema change".into(),
            }))
        }
    };
    if !view.references_relation(&du.relation) {
        // The update is irrelevant to this view: empty delta, no queries.
        return Ok(ViewDelta { cols: view.output_cols(), rows: SignedBag::new() });
    }
    let (plan, obs): (Rc<MaintPlan>, Option<&Collector>) = match plans {
        Some((cache, obs)) => {
            (cache.plan_for(view, &du.relation, obs).map_err(MaintFailure::Internal)?, Some(obs))
        }
        None => {
            (Rc::new(MaintPlan::build(view, &du.relation).map_err(MaintFailure::Internal)?), None)
        }
    };
    let prof: Option<Prof<'_>> = obs.filter(|o| o.profile_on()).map(|o| (o, view.name.as_str()));
    if let Some((o, v)) = prof {
        o.profile_invocation(v, &du.relation);
    }
    execute_plan(&plan, msg, pending, port, drained, shared, prof)
}

/// Runs a maintenance plan: seed the intermediate from the delta, walk the
/// `__D ⋈ target` chain with SWEEP compensation, project to the view's
/// SELECT list. With a `shared` cache the first hop (seed + join to
/// `steps[0].target`) is derived from the cross-view shared hop instead.
fn execute_plan(
    plan: &MaintPlan,
    msg: &UpdateMessage,
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    drained: &mut Vec<UpdateMessage>,
    shared: Option<&mut SharedSubplans>,
    prof: Option<Prof<'_>>,
) -> Result<ViewDelta, MaintFailure> {
    let du = match &msg.update {
        dyno_relational::SourceUpdate::Data(du) => du,
        dyno_relational::SourceUpdate::Schema(_) => {
            return Err(MaintFailure::Internal(RelationalError::InvalidQuery {
                reason: "execute_plan called with a schema change".into(),
            }))
        }
    };
    let scope = du.relation.as_str();

    // With a shared-subplan cache and at least one join step, the seed plus
    // the first `__D ⋈ target` hop come out of the cross-view cache; the
    // chain then resumes at the second step. Otherwise: step 0 is the local
    // projection/selection of the delta itself — a direct Z-set pipeline
    // (δσ then δπ) over the update's rows; no provider, no clone of the
    // delta, no executor round.
    let start;
    let mut d_rows = match (shared, plan.steps.first()) {
        (Some(sh), Some(step)) => {
            port.charge_local(du.delta.weight());
            start = 1;
            sh.first_hop(plan, step, du, msg, pending, port, drained, prof)?
        }
        _ => {
            let seed = seed_delta(plan, du, prof)
                .map_err(|e| MaintFailure::from_query(&plan.local_query, e))?;
            port.charge_local(du.delta.weight());
            start = 0;
            seed
        }
    };

    for (i, step) in plan.steps.iter().enumerate().skip(start) {
        if d_rows.is_empty() {
            // Empty intermediate joins to empty: skip the remaining queries.
            return Ok(ViewDelta { cols: plan.out_cols.clone(), rows: SignedBag::new() });
        }
        let step_no = (i + 1) as u32;
        let q = &step.query;
        let bound = vec![BoundTable {
            name: D.to_string(),
            cols: step.d_cols_in.clone(),
            rows: d_rows.clone(),
        }];
        let rows_in = if prof.is_some() { d_rows.distinct_len() as u64 } else { 0 };
        let t = prof_start(prof);
        let result = port.execute(q, &bound).map_err(|e| MaintFailure::from_query(q, e))?;
        prof_op(
            prof,
            t,
            scope,
            step_no,
            OpPhase::Hop,
            "join",
            &step.target,
            rows_in,
            if prof.is_some() { result.rows.distinct_len() as u64 } else { 0 },
        );
        drained.extend(port.drain_arrivals());

        // SWEEP compensation: subtract the effect of every pending data
        // update to `target` that the query result may already include.
        let mut rows = result.rows;
        for m in pending.iter().chain(drained.iter()) {
            if m.id == msg.id {
                continue;
            }
            if let dyno_relational::SourceUpdate::Data(pdu) = &m.update {
                if pdu.relation == step.target {
                    let t = prof_start(prof);
                    let comp = compensate(step, &d_rows, pdu)
                        .map_err(|e| MaintFailure::from_query(q, e))?;
                    port.charge_local(comp.weight() + pdu.delta.weight());
                    rows.merge_negated(&comp);
                    prof_op(
                        prof,
                        t,
                        scope,
                        step_no,
                        OpPhase::Compensate,
                        "compensate",
                        &step.target,
                        if prof.is_some() { pdu.delta.rows().distinct_len() as u64 } else { 0 },
                        if prof.is_some() { comp.distinct_len() as u64 } else { 0 },
                    );
                }
            }
        }
        d_rows = rows;
    }

    port.charge_local(d_rows.weight());
    let rows_in = if prof.is_some() { d_rows.distinct_len() as u64 } else { 0 };
    let t = prof_start(prof);
    let projected = delta_project(&d_rows, &plan.final_indices);
    prof_op(
        prof,
        t,
        scope,
        (plan.steps.len() + 1) as u32,
        OpPhase::Final,
        "delta_project",
        "",
        rows_in,
        if prof.is_some() { projected.distinct_len() as u64 } else { 0 },
    );
    Ok(ViewDelta { cols: plan.out_cols.clone(), rows: projected })
}

/// Step 0 as Z-set algebra: the update's delta through the plan's compiled
/// local filters and projection. Attribute names resolve against the
/// delta's *own* schema, so an attribute the view references but the delta
/// no longer carries surfaces as the same schema-conflict error the
/// executor's validation would raise.
fn seed_delta(
    plan: &MaintPlan,
    du: &DataUpdate,
    prof: Option<Prof<'_>>,
) -> Result<SignedBag, RelationalError> {
    let schema = du.delta.schema();
    let filters = plan
        .local_filters
        .iter()
        .map(|(a, op, v)| Ok((schema.require(a)?, *op, v.clone())))
        .collect::<Result<Vec<_>, RelationalError>>()?;
    let proj = plan
        .local_proj
        .iter()
        .map(|a| schema.require(a))
        .collect::<Result<Vec<_>, RelationalError>>()?;
    let scope = du.relation.as_str();
    let rows_in = if prof.is_some() { du.delta.rows().distinct_len() as u64 } else { 0 };
    let t = prof_start(prof);
    let selected = delta_select(du.delta.rows(), &filters)?;
    let sel_out = if prof.is_some() { selected.distinct_len() as u64 } else { 0 };
    prof_op(prof, t, scope, 0, OpPhase::Seed, "delta_select", scope, rows_in, sel_out);
    let t = prof_start(prof);
    let out = delta_project(&selected, &proj);
    prof_op(
        prof,
        t,
        scope,
        0,
        OpPhase::Seed,
        "delta_project",
        scope,
        sel_out,
        if prof.is_some() { out.distinct_len() as u64 } else { 0 },
    );
    Ok(out)
}

/// The SWEEP compensation term `__D ⋈ Δⱼ` for one pending update of the
/// step's target — a direct delta-delta join (both sides are small Z-sets)
/// instead of a replay of the step query over rebuilt bound tables. The
/// executor's edge semantics survive intact: unknown attributes are schema
/// conflicts, ill-typed filters error on every visited row, NULL join keys
/// match nothing, and the output layout (all of `__D`, then the target's
/// referenced attributes) equals the step query's projection exactly.
pub(crate) fn compensate(
    step: &MaintStep,
    d_rows: &SignedBag,
    pdu: &DataUpdate,
) -> Result<SignedBag, RelationalError> {
    let schema = pdu.delta.schema();
    let filters = step
        .t_filters
        .iter()
        .map(|(a, op, v)| Ok((schema.require(a)?, *op, v.clone())))
        .collect::<Result<Vec<_>, RelationalError>>()?;
    let t_keys = step
        .join_keys
        .iter()
        .map(|(_, a)| schema.require(a))
        .collect::<Result<Vec<usize>, RelationalError>>()?;
    let t_proj = step
        .t_proj
        .iter()
        .map(|a| schema.require(a))
        .collect::<Result<Vec<usize>, RelationalError>>()?;
    let d_keys: Vec<usize> = step.join_keys.iter().map(|&(i, _)| i).collect();

    let filtered = delta_select(pdu.delta.rows(), &filters)?;
    let joined = delta_join(d_rows, &d_keys, &filtered, &t_keys);
    let d_len = step.d_cols_in.len();
    let out: Vec<usize> = (0..d_len).chain(t_proj.iter().map(|&i| d_len + i)).collect();
    Ok(joined.project(&out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InProcessPort;
    use crate::testkit::{bookinfo_space, bookinfo_view, insert_item, item_schema};
    use dyno_relational::{DataUpdate, Delta, SourceUpdate, Tuple, Value};
    use dyno_source::{SourceId, UpdateId};

    fn msg_of(id: u64, source: u32, du: DataUpdate) -> UpdateMessage {
        UpdateMessage {
            id: UpdateId(id),
            source: SourceId(source),
            source_version: 1,
            update: SourceUpdate::Data(du),
        }
    }

    #[test]
    fn single_insert_produces_one_view_tuple() {
        let space = bookinfo_space();
        let mut port = InProcessPort::new(space);
        let view = bookinfo_view();
        let du = insert_item(10, "Data Integration Guide", "Adams", 36);
        // Commit at the source first (the wrapper reports after commit).
        port.space_mut().commit(SourceId(0), SourceUpdate::Data(du.clone())).unwrap();
        let (res, drained) = sweep_maintain(&view, &msg_of(0, 0, du), &[], &mut port);
        let delta = res.unwrap();
        assert!(drained.is_empty());
        assert_eq!(delta.rows.weight(), 1, "one matching store and catalog row");
        let (t, c) = delta.rows.sorted_entries().pop().unwrap();
        assert_eq!(c, 1);
        assert_eq!(t.get(1), &Value::str("Data Integration Guide"));
    }

    #[test]
    fn delete_produces_negative_delta() {
        let mut space = bookinfo_space();
        // Insert then maintain nothing; now delete the pre-existing tuple.
        let existing = Tuple::of([
            Value::from(1),
            Value::str("Databases"),
            Value::str("Ullman"),
            Value::from(50),
        ]);
        let du = DataUpdate::new(Delta::deletes(item_schema(), [existing]).unwrap());
        space.commit(SourceId(0), SourceUpdate::Data(du.clone())).unwrap();
        let mut port = InProcessPort::new(space);
        let (res, _) = sweep_maintain(&bookinfo_view(), &msg_of(0, 0, du), &[], &mut port);
        let delta = res.unwrap();
        assert_eq!(delta.rows.net(), -1);
    }

    #[test]
    fn duplication_anomaly_without_compensation() {
        // Example 1(a): ΔC (new catalog row) is being maintained; a
        // concurrent ΔI (matching item) commits before the maintenance query
        // probes Item. Without compensation the query result includes the
        // new item — and maintaining ΔI later would duplicate the tuple.
        let mut space = bookinfo_space();
        let cat_schema =
            space.server(SourceId(1)).catalog().get("Catalog").unwrap().schema().clone();
        let dc = DataUpdate::new(
            Delta::inserts(
                cat_schema,
                [Tuple::of([
                    Value::str("Data Integration Guide"),
                    Value::str("Adams"),
                    Value::str("Engineering"),
                    Value::str("Princeton"),
                    Value::str("good"),
                ])],
            )
            .unwrap(),
        );
        space.commit(SourceId(1), SourceUpdate::Data(dc.clone())).unwrap();
        // Concurrent item insert commits before maintenance queries run.
        let di = insert_item(10, "Data Integration Guide", "Adams", 36);
        let di_msg = space.commit(SourceId(0), SourceUpdate::Data(di)).unwrap();
        let mut port = InProcessPort::new(space);
        let view = bookinfo_view();

        // Uncompensated: pending set withheld → anomaly visible.
        let (res, _) = sweep_maintain(&view, &msg_of(0, 1, dc.clone()), &[], &mut port);
        assert_eq!(res.unwrap().rows.weight(), 1, "erroneously sees the concurrent insert");

        // Compensated: pending set supplied → anomaly removed.
        let (res, _) = sweep_maintain(&view, &msg_of(0, 1, dc), &[di_msg], &mut port);
        assert_eq!(res.unwrap().rows.weight(), 0, "compensation removes the concurrent insert");
    }

    #[test]
    fn broken_query_surfaces_as_broken() {
        let mut space = bookinfo_space();
        let du = insert_item(10, "Data Integration Guide", "Adams", 36);
        space.commit(SourceId(0), SourceUpdate::Data(du.clone())).unwrap();
        // A schema change drops Store before the maintenance query runs.
        space
            .commit(
                SourceId(0),
                SourceUpdate::Schema(dyno_relational::SchemaChange::DropRelation {
                    relation: "Store".into(),
                }),
            )
            .unwrap();
        let mut port = InProcessPort::new(space);
        let (res, _) = sweep_maintain(&bookinfo_view(), &msg_of(0, 0, du), &[], &mut port);
        match res {
            Err(MaintFailure::Broken { error, .. }) => assert!(error.is_schema_conflict()),
            other => panic!("expected broken query, got {other:?}"),
        }
    }

    #[test]
    fn irrelevant_update_is_free() {
        let space = bookinfo_space();
        let mut port = InProcessPort::new(space);
        let schema =
            dyno_relational::Schema::of("Unrelated", &[("x", dyno_relational::AttrType::Int)]);
        let du = DataUpdate::new(Delta::inserts(schema, [Tuple::of([1i64])]).unwrap());
        let (res, _) = sweep_maintain(&bookinfo_view(), &msg_of(0, 2, du), &[], &mut port);
        assert!(res.unwrap().rows.is_empty());
    }
}
