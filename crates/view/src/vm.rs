//! Incremental view maintenance for data updates, SWEEP-style
//! (Agrawal et al., SIGMOD 1997 — the compensation algorithm the paper
//! plugs in for anomaly types (1) and (2)).
//!
//! Maintaining a delta `Δ` of relation `Rᵢ` requires one maintenance query
//! per other relation of the view (paper Definition 1 / Query (2)). Each
//! query is answered from the source's **current** state, which may already
//! include *concurrent* data updates; SWEEP removes their effect locally by
//! subtracting `D ⋈ Δⱼ` for every pending (received-but-unmaintained) data
//! update `Δⱼ` of the queried relation — a pure view-manager-side
//! computation, no extra source round trip.

use dyno_obs::{field, Collector, Level};
use dyno_relational::{ColRef, Predicate, ProjItem, RelationalError, SignedBag, SpjQuery};
use dyno_source::UpdateMessage;

use crate::engine::{eval_with_bound, BoundTable, LocalProvider, SourcePort};
use crate::viewdef::ViewDefinition;

/// A computed change to the view extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDelta {
    /// Output column names (the view's SELECT list).
    pub cols: Vec<String>,
    /// Signed rows to merge into the extent.
    pub rows: SignedBag,
}

/// Why a maintenance attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintFailure {
    /// A maintenance query hit a schema conflict at a source — the
    /// broken-query anomaly. Dyno handles this by correction + retry.
    Broken {
        /// The failing query (rendered).
        query: String,
        /// The underlying schema conflict.
        error: RelationalError,
    },
    /// Anything else: an internal invariant violation, surfaced verbatim.
    Internal(RelationalError),
}

impl MaintFailure {
    pub(crate) fn from_query(query: &SpjQuery, error: RelationalError) -> Self {
        if error.is_schema_conflict() {
            MaintFailure::Broken { query: query.to_string(), error }
        } else {
            MaintFailure::Internal(error)
        }
    }
}

/// Flattens a qualified column into the single-namespace spelling used for
/// intermediate maintenance results.
pub(crate) fn flat(c: &ColRef) -> String {
    format!("{}.{}", c.relation, c.attr)
}

/// Name of the shipped intermediate table in maintenance queries.
const D: &str = "__D";

/// Maintains one data update against the view.
///
/// * `pending` — every update message received but not yet reflected in the
///   view, **excluding** the one being maintained (and its batch): the SWEEP
///   compensation set.
/// * Returns the view delta plus any messages that arrived (were committed
///   and streamed) while the maintenance queries ran; the caller must
///   enqueue those into the UMQ.
pub fn sweep_maintain(
    view: &ViewDefinition,
    msg: &UpdateMessage,
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
) -> (Result<ViewDelta, MaintFailure>, Vec<UpdateMessage>) {
    let mut drained: Vec<UpdateMessage> = Vec::new();
    let result = sweep_inner(view, msg, pending, port, &mut drained);
    (result, drained)
}

/// [`sweep_maintain`] under a `vm.sweep` span: reports the compensation-set
/// size, and surfaces a broken maintenance query — the in-exec detection of
/// paper Figure 7's `Query_Engine` — as a `vm.broken_query` warning event.
pub fn sweep_maintain_observed(
    view: &ViewDefinition,
    msg: &UpdateMessage,
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    obs: &Collector,
) -> (Result<ViewDelta, MaintFailure>, Vec<UpdateMessage>) {
    let _span = obs.span("vm.sweep", &[field("pending", pending.len())]);
    obs.counter("vm.sweeps").inc();
    obs.counter("vm.compensations").add(pending.len() as u64);
    let out = sweep_maintain(view, msg, pending, port);
    if let Err(MaintFailure::Broken { query, .. }) = &out.0 {
        obs.counter("engine.break_detections").inc();
        if obs.tracing_on() {
            obs.event(Level::Warn, "vm.broken_query", &[field("query", query.clone())]);
        }
    }
    out
}

fn sweep_inner(
    view: &ViewDefinition,
    msg: &UpdateMessage,
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    drained: &mut Vec<UpdateMessage>,
) -> Result<ViewDelta, MaintFailure> {
    let du = match &msg.update {
        dyno_relational::SourceUpdate::Data(du) => du,
        dyno_relational::SourceUpdate::Schema(_) => {
            return Err(MaintFailure::Internal(RelationalError::InvalidQuery {
                reason: "sweep_maintain called with a schema change".into(),
            }))
        }
    };
    let out_cols: Vec<String> = view.output_cols();
    if !view.references_relation(&du.relation) {
        // The update is irrelevant to this view: empty delta, no queries.
        return Ok(ViewDelta { cols: out_cols, rows: SignedBag::new() });
    }

    // Step 0: local projection/selection of the delta itself.
    let referenced = view.cols_of_relation(&du.relation);
    let local_q = SpjQuery {
        tables: vec![du.relation.clone()],
        projection: referenced.iter().map(|c| ProjItem::aliased(c.clone(), flat(c))).collect(),
        predicates: view
            .query
            .predicates
            .iter()
            .filter(|p| matches!(p, Predicate::Compare(c, _, _) if c.relation == du.relation))
            .cloned()
            .collect(),
    };
    let mut lp = LocalProvider::new();
    lp.insert(du.delta.schema().clone(), du.delta.rows().clone());
    let seed =
        dyno_relational::eval(&local_q, &lp).map_err(|e| MaintFailure::from_query(&local_q, e))?;
    port.charge_local(du.delta.weight());

    // Intermediate state: flattened column names + which view relations are
    // already represented.
    let mut d_cols: Vec<String> = seed.cols.clone();
    let mut d_colrefs: Vec<ColRef> = referenced.clone();
    let mut d_rows = seed.rows;
    let mut joined: Vec<String> = vec![du.relation.clone()];

    // Join order: repeatedly pick a not-yet-joined view relation connected
    // to the current intermediate by an equi-join predicate.
    let mut remaining: Vec<String> =
        view.query.tables.iter().filter(|t| **t != du.relation).cloned().collect();
    while !remaining.is_empty() {
        if d_rows.is_empty() {
            // Empty intermediate joins to empty: skip the remaining queries.
            return Ok(ViewDelta { cols: out_cols, rows: SignedBag::new() });
        }
        let next_pos = remaining
            .iter()
            .position(|t| {
                view.query.predicates.iter().any(|p| match p {
                    Predicate::JoinEq(a, b) => {
                        (a.relation == *t && joined.contains(&b.relation))
                            || (b.relation == *t && joined.contains(&a.relation))
                    }
                    _ => false,
                })
            })
            .unwrap_or(0);
        let target = remaining.remove(next_pos);

        // Build the maintenance query: __D ⋈ target with the view's join
        // and filter predicates, projecting __D plus target's referenced
        // columns (flattened).
        let target_refs = view.cols_of_relation(&target);
        let mut q = SpjQuery {
            tables: vec![D.to_string(), target.clone()],
            projection: d_cols
                .iter()
                .map(|c| ProjItem::aliased(ColRef::new(D, c.clone()), c.clone()))
                .chain(target_refs.iter().map(|c| ProjItem::aliased(c.clone(), flat(c))))
                .collect(),
            predicates: Vec::new(),
        };
        for p in &view.query.predicates {
            match p {
                Predicate::JoinEq(a, b) => {
                    let (d_side, t_side) = if a.relation == target && joined.contains(&b.relation) {
                        (b, a)
                    } else if b.relation == target && joined.contains(&a.relation) {
                        (a, b)
                    } else {
                        continue;
                    };
                    q.predicates
                        .push(Predicate::JoinEq(ColRef::new(D, flat(d_side)), t_side.clone()));
                }
                Predicate::Compare(c, op, v) if c.relation == target => {
                    q.predicates.push(Predicate::Compare(c.clone(), *op, v.clone()));
                }
                Predicate::Compare(..) => {}
            }
        }

        let bound =
            vec![BoundTable { name: D.to_string(), cols: d_cols.clone(), rows: d_rows.clone() }];
        let result = port.execute(&q, &bound).map_err(|e| MaintFailure::from_query(&q, e))?;
        drained.extend(port.drain_arrivals());

        // SWEEP compensation: subtract the effect of every pending data
        // update to `target` that the query result may already include.
        let mut rows = result.rows;
        for m in pending.iter().chain(drained.iter()) {
            if m.id == msg.id {
                continue;
            }
            if let dyno_relational::SourceUpdate::Data(pdu) = &m.update {
                if pdu.relation == target {
                    let comp_bound = vec![
                        BoundTable {
                            name: D.to_string(),
                            cols: d_cols.clone(),
                            rows: d_rows.clone(),
                        },
                        BoundTable {
                            name: target.clone(),
                            cols: pdu
                                .delta
                                .schema()
                                .attrs()
                                .iter()
                                .map(|a| a.name.clone())
                                .collect(),
                            rows: pdu.delta.rows().clone(),
                        },
                    ];
                    let comp = eval_with_bound(&LocalProvider::new(), &q, &comp_bound)
                        .map_err(|e| MaintFailure::from_query(&q, e))?;
                    port.charge_local(comp.weight() + pdu.delta.weight());
                    rows.merge(&comp.rows.negated());
                }
            }
        }

        d_cols = q.projection.iter().map(|p| p.output.clone()).collect();
        d_colrefs.extend(target_refs);
        d_rows = rows;
        joined.push(target);
    }

    // Final projection to the view's SELECT list.
    let indices: Vec<usize> = view
        .query
        .projection
        .iter()
        .map(|item| {
            d_cols.iter().position(|c| *c == flat(&item.col)).ok_or_else(|| {
                MaintFailure::Internal(RelationalError::InvalidQuery {
                    reason: format!("column {} missing from maintenance result", item.col),
                })
            })
        })
        .collect::<Result<_, _>>()?;
    port.charge_local(d_rows.weight());
    Ok(ViewDelta { cols: out_cols, rows: d_rows.project(&indices) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InProcessPort;
    use crate::testkit::{bookinfo_space, bookinfo_view, insert_item, item_schema};
    use dyno_relational::{DataUpdate, Delta, SourceUpdate, Tuple, Value};
    use dyno_source::{SourceId, UpdateId};

    fn msg_of(id: u64, source: u32, du: DataUpdate) -> UpdateMessage {
        UpdateMessage {
            id: UpdateId(id),
            source: SourceId(source),
            source_version: 1,
            update: SourceUpdate::Data(du),
        }
    }

    #[test]
    fn single_insert_produces_one_view_tuple() {
        let space = bookinfo_space();
        let mut port = InProcessPort::new(space);
        let view = bookinfo_view();
        let du = insert_item(10, "Data Integration Guide", "Adams", 36);
        // Commit at the source first (the wrapper reports after commit).
        port.space_mut().commit(SourceId(0), SourceUpdate::Data(du.clone())).unwrap();
        let (res, drained) = sweep_maintain(&view, &msg_of(0, 0, du), &[], &mut port);
        let delta = res.unwrap();
        assert!(drained.is_empty());
        assert_eq!(delta.rows.weight(), 1, "one matching store and catalog row");
        let (t, c) = delta.rows.sorted_entries().pop().unwrap();
        assert_eq!(c, 1);
        assert_eq!(t.get(1), &Value::str("Data Integration Guide"));
    }

    #[test]
    fn delete_produces_negative_delta() {
        let mut space = bookinfo_space();
        // Insert then maintain nothing; now delete the pre-existing tuple.
        let existing = Tuple::of([
            Value::from(1),
            Value::str("Databases"),
            Value::str("Ullman"),
            Value::from(50),
        ]);
        let du = DataUpdate::new(Delta::deletes(item_schema(), [existing]).unwrap());
        space.commit(SourceId(0), SourceUpdate::Data(du.clone())).unwrap();
        let mut port = InProcessPort::new(space);
        let (res, _) = sweep_maintain(&bookinfo_view(), &msg_of(0, 0, du), &[], &mut port);
        let delta = res.unwrap();
        assert_eq!(delta.rows.net(), -1);
    }

    #[test]
    fn duplication_anomaly_without_compensation() {
        // Example 1(a): ΔC (new catalog row) is being maintained; a
        // concurrent ΔI (matching item) commits before the maintenance query
        // probes Item. Without compensation the query result includes the
        // new item — and maintaining ΔI later would duplicate the tuple.
        let mut space = bookinfo_space();
        let cat_schema =
            space.server(SourceId(1)).catalog().get("Catalog").unwrap().schema().clone();
        let dc = DataUpdate::new(
            Delta::inserts(
                cat_schema,
                [Tuple::of([
                    Value::str("Data Integration Guide"),
                    Value::str("Adams"),
                    Value::str("Engineering"),
                    Value::str("Princeton"),
                    Value::str("good"),
                ])],
            )
            .unwrap(),
        );
        space.commit(SourceId(1), SourceUpdate::Data(dc.clone())).unwrap();
        // Concurrent item insert commits before maintenance queries run.
        let di = insert_item(10, "Data Integration Guide", "Adams", 36);
        let di_msg = space.commit(SourceId(0), SourceUpdate::Data(di)).unwrap();
        let mut port = InProcessPort::new(space);
        let view = bookinfo_view();

        // Uncompensated: pending set withheld → anomaly visible.
        let (res, _) = sweep_maintain(&view, &msg_of(0, 1, dc.clone()), &[], &mut port);
        assert_eq!(res.unwrap().rows.weight(), 1, "erroneously sees the concurrent insert");

        // Compensated: pending set supplied → anomaly removed.
        let (res, _) = sweep_maintain(&view, &msg_of(0, 1, dc), &[di_msg], &mut port);
        assert_eq!(res.unwrap().rows.weight(), 0, "compensation removes the concurrent insert");
    }

    #[test]
    fn broken_query_surfaces_as_broken() {
        let mut space = bookinfo_space();
        let du = insert_item(10, "Data Integration Guide", "Adams", 36);
        space.commit(SourceId(0), SourceUpdate::Data(du.clone())).unwrap();
        // A schema change drops Store before the maintenance query runs.
        space
            .commit(
                SourceId(0),
                SourceUpdate::Schema(dyno_relational::SchemaChange::DropRelation {
                    relation: "Store".into(),
                }),
            )
            .unwrap();
        let mut port = InProcessPort::new(space);
        let (res, _) = sweep_maintain(&bookinfo_view(), &msg_of(0, 0, du), &[], &mut port);
        match res {
            Err(MaintFailure::Broken { error, .. }) => assert!(error.is_schema_conflict()),
            other => panic!("expected broken query, got {other:?}"),
        }
    }

    #[test]
    fn irrelevant_update_is_free() {
        let space = bookinfo_space();
        let mut port = InProcessPort::new(space);
        let schema =
            dyno_relational::Schema::of("Unrelated", &[("x", dyno_relational::AttrType::Int)]);
        let du = DataUpdate::new(Delta::inserts(schema, [Tuple::of([1i64])]).unwrap());
        let (res, _) = sweep_maintain(&bookinfo_view(), &msg_of(0, 2, du), &[], &mut port);
        assert!(res.unwrap().rows.is_empty());
    }
}
