//! Cross-view sharing of the first maintenance-join hop.
//!
//! When N overlapping views maintain the *same* data update ΔR in the same
//! batch, each view's SWEEP chain starts with the same shape of work: join
//! ΔR against the first target relation on the same equi-join keys — the
//! keys the PR 2 secondary indexes are built over, which is why the cache
//! key is exactly that index signature: `(updated relation, target, sorted
//! join-attribute pairs)`. A [`SharedSubplans`] cache computes that hop
//! **once per batch** at full width — the *unfiltered, unprojected* ΔR rows
//! joined to the union of every view's referenced target attributes, with
//! SWEEP compensation applied at hop level — and each view then derives its
//! own step-1 intermediate by pure Z-set algebra: `δσ` of its local and
//! target filters followed by `δπ` to its step layout.
//!
//! ## Why the derived result is bit-identical to unshared execution
//!
//! Selection commutes with join on disjoint attribute sets and projection
//! is linear over Z-sets, so
//! `π_V σ_V (ΔR ⋈ T) = π_V ((σ_R ΔR) ⋈ (σ_T T))` — the right-hand side is
//! what the unshared per-view step computes. Both sides aggregate into a
//! canonical [`SignedBag`] (sorted, zero-weights cancelled), so equal
//! multisets are equal bytes. SWEEP compensation distributes the same way:
//! compensating the full-width hop then filtering equals filtering then
//! compensating, because `__D ⋈ Δⱼ` is bilinear.
//!
//! The cache lives for one maintenance batch (the hop embeds that batch's
//! pending-set compensation), so the warehouse creates a fresh instance per
//! [`crate::Warehouse`] maintain call and rolls the hit/miss counts into
//! `subplan.shared_hits` / `subplan.shared_misses`.

use std::collections::HashMap;

use dyno_relational::{
    delta_select, CmpOp, ColRef, DataUpdate, Predicate, ProjItem, RelationalError, SignedBag,
    SpjQuery, Value,
};
use dyno_source::UpdateMessage;

use dyno_obs::OpPhase;

use crate::engine::{BoundTable, SourcePort};
use crate::plan::{MaintPlan, MaintStep};
use crate::vm::{compensate, flat, prof_op, prof_start, MaintFailure, Prof, D};

/// Cache key: the shared-join signature of a first hop. Two views share a
/// hop iff they join the same updated relation to the same target over the
/// same attribute pairs — the signature the secondary indexes key on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct HopKey {
    relation: String,
    target: String,
    /// Sorted `(ΔR flat column, target attribute)` equi-join pairs.
    keys: Vec<(String, String)>,
}

/// One computed full-width hop: `ΔR ⋈ target` (compensated), no per-view
/// filters, no per-view projection.
#[derive(Debug, Clone)]
struct Hop {
    /// Column names of `rows`: all of ΔR flattened (`R.a`), then the
    /// covered target attributes flattened (`T.b`).
    cols: Vec<String>,
    /// Target attributes covered (unflattened), for coverage checks.
    t_attrs: Vec<String>,
    rows: SignedBag,
}

/// Per-batch cache of shared first hops. See the module docs.
#[derive(Debug, Default)]
pub struct SharedSubplans {
    entries: HashMap<HopKey, Hop>,
    hits: u64,
    misses: u64,
}

impl SharedSubplans {
    /// An empty cache (one maintenance batch's lifetime).
    pub fn new() -> Self {
        SharedSubplans::default()
    }

    /// Hops served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hops computed (first computation or coverage widening).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Executes (or reuses) the shared first hop for `plan.steps[0]` and
    /// derives this view's step-1 intermediate, in the exact layout the
    /// unshared step would produce (`step.d_cols_in` then the flattened
    /// `step.t_proj`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn first_hop(
        &mut self,
        plan: &MaintPlan,
        step: &MaintStep,
        du: &DataUpdate,
        msg: &UpdateMessage,
        pending: &[UpdateMessage],
        port: &mut dyn SourcePort,
        drained: &mut Vec<UpdateMessage>,
        prof: Option<Prof<'_>>,
    ) -> Result<SignedBag, MaintFailure> {
        let schema = du.delta.schema();
        let d_full: Vec<String> =
            schema.attrs().iter().map(|a| flat(&ColRef::new(&du.relation, &a.name))).collect();

        // The join signature, in ΔR-full-layout terms. `d_cols_in[pos]` is
        // already the flat `R.a` spelling, so it names a full-layout column.
        let mut keys: Vec<(String, String)> = step
            .join_keys
            .iter()
            .map(|(pos, t_attr)| (step.d_cols_in[*pos].clone(), t_attr.clone()))
            .collect();
        keys.sort();
        let key = HopKey { relation: du.relation.clone(), target: step.target.clone(), keys };

        let covered = self
            .entries
            .get(&key)
            .is_some_and(|h| step.t_proj.iter().all(|a| h.t_attrs.contains(a)));
        if covered {
            self.hits += 1;
        } else {
            // First computation, or a later view needs target attributes
            // the cached hop does not carry: (re)compute at the widened
            // attribute set so every view seen so far stays covered.
            self.misses += 1;
            let mut t_attrs: Vec<String> =
                self.entries.get(&key).map(|h| h.t_attrs.clone()).unwrap_or_default();
            for a in &step.t_proj {
                if !t_attrs.contains(a) {
                    t_attrs.push(a.clone());
                }
            }
            let started = prof_start(prof);
            let hop = compute_hop(&key, &d_full, &t_attrs, du, msg, pending, port, drained)?;
            prof_op(
                prof,
                started,
                &du.relation,
                1,
                OpPhase::Hop,
                "first_hop_compute",
                &step.target,
                du.delta.rows().distinct_len() as u64,
                hop.rows.distinct_len() as u64,
            );
            self.entries.insert(key.clone(), hop);
        }
        let hop = &self.entries[&key];

        // Per-view derivation: δσ (local ΔR filters + target filters) then
        // δπ to the unshared step's output layout.
        let resolve = |name: &str| -> Result<usize, RelationalError> {
            hop.cols.iter().position(|c| c == name).ok_or_else(|| RelationalError::InvalidQuery {
                reason: format!("column {name} missing from shared hop"),
            })
        };
        let derive = || -> Result<SignedBag, RelationalError> {
            let mut filters: Vec<(usize, CmpOp, Value)> = Vec::new();
            for (a, op, v) in &plan.local_filters {
                filters.push((resolve(&flat(&ColRef::new(&du.relation, a)))?, *op, v.clone()));
            }
            for (a, op, v) in &step.t_filters {
                filters.push((resolve(&flat(&ColRef::new(&step.target, a)))?, *op, v.clone()));
            }
            let out: Vec<usize> = step
                .d_cols_in
                .iter()
                .map(String::as_str)
                .map(resolve)
                .chain(step.t_proj.iter().map(|a| resolve(&flat(&ColRef::new(&step.target, a)))))
                .collect::<Result<_, _>>()?;
            Ok(delta_select(&hop.rows, &filters)?.project(&out))
        };
        let started = prof_start(prof);
        let derived = derive().map_err(|e| MaintFailure::from_query(&step.query, e))?;
        prof_op(
            prof,
            started,
            &du.relation,
            1,
            OpPhase::Hop,
            "first_hop_derive",
            &step.target,
            hop.rows.distinct_len() as u64,
            derived.distinct_len() as u64,
        );
        port.charge_local(derived.weight());
        Ok(derived)
    }
}

/// Runs the full-width hop query and applies SWEEP compensation at hop
/// width.
#[allow(clippy::too_many_arguments)]
fn compute_hop(
    key: &HopKey,
    d_full: &[String],
    t_attrs: &[String],
    du: &DataUpdate,
    msg: &UpdateMessage,
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    drained: &mut Vec<UpdateMessage>,
) -> Result<Hop, MaintFailure> {
    let target = &key.target;
    let query = SpjQuery {
        tables: vec![D.to_string(), target.clone()],
        projection: d_full
            .iter()
            .map(|c| ProjItem::aliased(ColRef::new(D, c.clone()), c.clone()))
            .chain(t_attrs.iter().map(|a| {
                let c = ColRef::new(target.clone(), a.clone());
                let out = flat(&c);
                ProjItem::aliased(c, out)
            }))
            .collect(),
        predicates: key
            .keys
            .iter()
            .map(|(d_flat, t_attr)| {
                Predicate::JoinEq(
                    ColRef::new(D, d_flat.clone()),
                    ColRef::new(target.clone(), t_attr.clone()),
                )
            })
            .collect(),
    };
    let cols: Vec<String> = query.projection.iter().map(|p| p.output.clone()).collect();

    let bound = vec![BoundTable {
        name: D.to_string(),
        cols: d_full.to_vec(),
        rows: du.delta.rows().clone(),
    }];
    let result = port.execute(&query, &bound).map_err(|e| MaintFailure::from_query(&query, e))?;
    drained.extend(port.drain_arrivals());

    // SWEEP compensation at hop width: subtract `ΔR ⋈ Δⱼ` for every pending
    // update of the target the query result may already include. The
    // synthetic step mirrors the hop exactly (no target filters — they are
    // per-view and applied in the derivation).
    let synth = MaintStep {
        target: target.clone(),
        query: query.clone(),
        d_cols_in: d_full.to_vec(),
        join_keys: key
            .keys
            .iter()
            .map(|(d_flat, t_attr)| {
                let pos = d_full
                    .iter()
                    .position(|c| c == d_flat)
                    .expect("join key names a ΔR full-layout column");
                (pos, t_attr.clone())
            })
            .collect(),
        t_filters: Vec::new(),
        t_proj: t_attrs.to_vec(),
    };
    let mut rows = result.rows;
    let d_rows = du.delta.rows();
    for m in pending.iter().chain(drained.iter()) {
        if m.id == msg.id {
            continue;
        }
        if let dyno_relational::SourceUpdate::Data(pdu) = &m.update {
            if pdu.relation == *target {
                let comp = compensate(&synth, d_rows, pdu)
                    .map_err(|e| MaintFailure::from_query(&query, e))?;
                port.charge_local(comp.weight() + pdu.delta.weight());
                rows.merge_negated(&comp);
            }
        }
    }
    Ok(Hop { cols, t_attrs: t_attrs.to_vec(), rows })
}
