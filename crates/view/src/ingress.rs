//! The UMQ admission gate: idempotent, gap-aware ingestion.
//!
//! The dependency analysis chains one source's updates by queue position, so
//! the enqueue order per source must equal its version order, and nothing may
//! be enqueued twice. A perfect transport guarantees both for free; a faulty
//! one (or an at-least-once wrapper retry) does not. The gate makes the
//! boundary safe regardless of what the delivery path promises:
//!
//! * **dedupe** — a `(source, version)` at or below the admitted high-water
//!   mark, or already waiting in the buffer, is dropped
//!   (`fault.duplicates_dropped`);
//! * **resequencing** — an early arrival parks in a per-source reorder
//!   buffer until its predecessors show up, then releases in version order.
//!
//! This is the second, authoritative dedupe line behind the transport-side
//! [`Recovery`](dyno_fault::Recovery) sequencer: even a port that bypasses
//! the fault layer entirely cannot double-apply an update.

use std::collections::{BTreeMap, HashMap};

use dyno_obs::{stage, Collector, Counter};
use dyno_source::{SourceId, UpdateMessage};

/// Admission state for one UMQ.
#[derive(Debug, Clone)]
pub struct IngressGate {
    /// Highest version admitted to the queue, per source.
    admitted: HashMap<SourceId, u64>,
    /// Early arrivals waiting for their predecessors (BTreeMaps keep the
    /// release order deterministic).
    buffer: BTreeMap<SourceId, BTreeMap<u64, UpdateMessage>>,
    /// False = pass-through (the broken-recovery ablation).
    dedupe: bool,
    duplicates_dropped: Counter,
    resequenced: Counter,
    obs: Collector,
}

impl Default for IngressGate {
    fn default() -> Self {
        IngressGate::new()
    }
}

impl IngressGate {
    /// A gate with detached counters (bind with [`IngressGate::bind_obs`]).
    pub fn new() -> Self {
        IngressGate {
            admitted: HashMap::new(),
            buffer: BTreeMap::new(),
            dedupe: true,
            duplicates_dropped: Counter::default(),
            resequenced: Counter::default(),
            obs: Collector::disabled(),
        }
    }

    /// Binds the gate's counters into a collector's registry and keeps the
    /// handle for per-message provenance (`ingress.*` stages).
    pub fn bind_obs(&mut self, obs: &Collector) {
        self.duplicates_dropped = obs.counter("fault.duplicates_dropped");
        self.resequenced = obs.counter("fault.resequenced");
        self.obs = obs.clone();
    }

    /// Enables/disables dedupe+resequencing (disable only to demonstrate
    /// that the chaos suite catches the resulting corruption).
    pub fn set_dedupe(&mut self, enabled: bool) {
        self.dedupe = enabled;
    }

    /// Messages parked in reorder buffers.
    pub fn pending(&self) -> usize {
        self.buffer.values().map(BTreeMap::len).sum()
    }

    /// Whether dedupe+resequencing is enabled.
    pub fn dedupe_enabled(&self) -> bool {
        self.dedupe
    }

    /// The admitted high-water marks as sorted `(source, version)` pairs —
    /// the warehouse WAL persists these so a restart resubscribes from
    /// exactly where admission stopped.
    pub fn marks(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.admitted.iter().map(|(s, &ver)| (s.0, ver)).collect();
        v.sort_unstable();
        v
    }

    /// Restores the high-water marks from recovered state, replacing any
    /// current admission state (reorder buffers start empty: anything that
    /// was parked pre-crash is redelivered by resubscription).
    pub fn restore_marks(&mut self, marks: &[(u32, u64)]) {
        self.admitted = marks.iter().map(|&(s, v)| (SourceId(s), v)).collect();
        self.buffer.clear();
    }

    /// Memory footprint: retained map entries (per-source marks) plus parked
    /// messages. The gate keeps **no** per-version state at or below the
    /// high-water mark — dedupe there is a single integer compare — so under
    /// any redelivery volume this stays O(sources + reorder window).
    pub fn footprint(&self) -> usize {
        self.admitted.len() + self.buffer.len() + self.pending()
    }

    /// Offers one message; returns the messages now admissible, in order.
    /// `floor` is the version the view already reflects for the source (the
    /// admission baseline the first time a source is seen).
    pub fn admit(&mut self, msg: UpdateMessage, floor: u64) -> Vec<UpdateMessage> {
        if !self.dedupe {
            return vec![msg];
        }
        let source = msg.source;
        let admitted = *self.admitted.entry(source).or_insert(floor);
        if msg.source_version <= admitted {
            self.duplicates_dropped.inc();
            self.obs.prov(msg.id.0, stage::INGRESS_DUP, &[]);
            return Vec::new();
        }
        let buf = self.buffer.entry(source).or_default();
        let dup_id = msg.id.0;
        if buf.insert(msg.source_version, msg).is_some() {
            self.duplicates_dropped.inc();
            self.obs.prov(dup_id, stage::INGRESS_DUP, &[]);
        }
        // Release the contiguous prefix.
        let mut out = Vec::new();
        let admitted = self.admitted.get_mut(&source).expect("entry inserted above");
        while let Some(entry) = buf.first_entry() {
            if *entry.key() == *admitted + 1 {
                out.push(entry.remove());
                *admitted += 1;
            } else {
                break;
            }
        }
        if out.len() > 1 {
            self.resequenced.add(out.len() as u64 - 1);
            // The gap-filling arrival releases first; everything after it
            // was waiting in the reorder buffer.
            for m in &out[1..] {
                self.obs.prov(m.id.0, stage::INGRESS_RESEQ, &[]);
            }
        }
        // Everything below the high-water mark is evicted: a drained reorder
        // buffer must not leave a permanent per-source map entry behind.
        if buf.is_empty() {
            self.buffer.remove(&source);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::{AttrType, DataUpdate, Delta, Schema, SourceUpdate, Tuple};
    use dyno_source::UpdateId;

    fn msg(id: u64, source: u32, version: u64) -> UpdateMessage {
        let schema = Schema::of("R", &[("a", AttrType::Int)]);
        UpdateMessage {
            id: UpdateId(id),
            source: SourceId(source),
            source_version: version,
            update: SourceUpdate::Data(DataUpdate::new(
                Delta::inserts(schema, [Tuple::of([id as i64])]).unwrap(),
            )),
        }
    }

    fn released(out: &[UpdateMessage]) -> Vec<u64> {
        out.iter().map(|m| m.source_version).collect()
    }

    #[test]
    fn in_order_messages_flow_through() {
        let mut g = IngressGate::new();
        assert_eq!(released(&g.admit(msg(1, 0, 1), 0)), vec![1]);
        assert_eq!(released(&g.admit(msg(2, 0, 2), 0)), vec![2]);
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn duplicate_of_admitted_version_is_dropped() {
        let obs = Collector::wall();
        let mut g = IngressGate::new();
        g.bind_obs(&obs);
        assert_eq!(g.admit(msg(1, 0, 1), 0).len(), 1);
        assert!(g.admit(msg(1, 0, 1), 0).is_empty());
        assert!(g.admit(msg(1, 0, 1), 0).is_empty());
        assert_eq!(obs.registry().counter_value("fault.duplicates_dropped"), Some(2));
    }

    #[test]
    fn early_arrival_waits_for_predecessor() {
        let mut g = IngressGate::new();
        assert!(g.admit(msg(3, 0, 3), 0).is_empty());
        assert!(g.admit(msg(2, 0, 2), 0).is_empty());
        assert_eq!(g.pending(), 2);
        assert_eq!(released(&g.admit(msg(1, 0, 1), 0)), vec![1, 2, 3]);
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn duplicate_of_buffered_version_is_dropped() {
        let mut g = IngressGate::new();
        assert!(g.admit(msg(2, 0, 2), 0).is_empty());
        assert!(g.admit(msg(2, 0, 2), 0).is_empty());
        assert_eq!(g.pending(), 1, "second copy was not double-buffered");
    }

    #[test]
    fn floor_seeds_the_baseline_per_source() {
        let mut g = IngressGate::new();
        assert!(g.admit(msg(1, 0, 3), 3).is_empty(), "at the floor: duplicate");
        assert_eq!(released(&g.admit(msg(2, 0, 4), 3)), vec![4]);
        // Sources are independent.
        assert_eq!(released(&g.admit(msg(3, 1, 1), 0)), vec![1]);
    }

    #[test]
    fn marks_round_trip_through_restore() {
        let mut g = IngressGate::new();
        g.admit(msg(1, 0, 1), 0);
        g.admit(msg(2, 0, 2), 0);
        g.admit(msg(3, 1, 1), 0);
        assert_eq!(g.marks(), vec![(0, 2), (1, 1)]);

        let mut fresh = IngressGate::new();
        fresh.restore_marks(&g.marks());
        assert!(fresh.admit(msg(4, 0, 2), 0).is_empty(), "below restored mark: duplicate");
        assert_eq!(released(&fresh.admit(msg(5, 0, 3), 0)), vec![3]);
    }

    #[test]
    fn footprint_stays_bounded_under_redelivery_heavy_traffic() {
        // An at-least-once transport redelivers every message many times and
        // the stream is long. A seen-set design would grow O(versions); the
        // high-water-mark design must stay O(sources + reorder window).
        let mut g = IngressGate::new();
        let mut admitted = 0u64;
        for v in 1..=1_000u64 {
            for _ in 0..3 {
                admitted += g.admit(msg(v, 0, v), 0).len() as u64;
            }
            // A stale duplicate from far below the mark, every round.
            g.admit(msg(1, 0, 1), 0);
        }
        assert_eq!(admitted, 1_000);
        assert_eq!(
            g.footprint(),
            1,
            "one mark entry, no buffers: memory is independent of stream length"
        );

        // Now with a persistent reorder gap of window 4.
        let mut g = IngressGate::new();
        for v in 2..=1_000u64 {
            g.admit(msg(v, 0, v), 0);
            if v >= 5 {
                // Predecessor arrives 4 versions late.
                g.admit(msg(v - 4, 0, v - 4), 0);
                g.admit(msg(v - 4, 0, v - 4), 0); // and is redelivered
            }
        }
        assert!(
            g.footprint() <= 2 + 4,
            "footprint {} exceeds marks + reorder window",
            g.footprint()
        );
    }

    #[test]
    fn drained_reorder_buffer_leaves_no_empty_entry() {
        let mut g = IngressGate::new();
        for s in 0..100u32 {
            assert!(g.admit(msg(1, s, 2), 0).is_empty(), "parks: gap at version 1");
            assert_eq!(g.admit(msg(2, s, 1), 0).len(), 2, "gap fills, buffer drains");
        }
        assert_eq!(g.pending(), 0);
        assert_eq!(g.footprint(), 100, "only the 100 marks remain — no empty buffers");
    }

    #[test]
    fn disabled_gate_passes_duplicates() {
        let mut g = IngressGate::new();
        g.set_dedupe(false);
        assert_eq!(g.admit(msg(1, 0, 1), 0).len(), 1);
        assert_eq!(g.admit(msg(1, 0, 1), 0).len(), 1, "ablation: the dup leaks");
    }
}
