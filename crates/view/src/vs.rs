//! View synchronization: rewriting the view definition after a source
//! schema change (the `w(VD)` of paper Definition 1(2)).
//!
//! This implements the subset of the EVE approach the paper's examples and
//! experiments exercise:
//! - **renames** (relation or attribute) propagate through the definition;
//!   the view's *output* column names are preserved (they become `AS`
//!   aliases), so view consumers are insulated;
//! - **drop attribute** is compensated from the information space when a
//!   replacement is registered (paper Query (4): `Review` ←
//!   `ReaderDigest.Comments` joined on `Title = Article`), otherwise the
//!   column is pruned from the SELECT list (a legal, non-equivalent rewrite
//!   per EVE's evolution semantics);
//! - **drop / replace relation** is rewritten through a registered relation
//!   replacement (paper Query (3): `Store ⋈ Item` ← `StoreItems`) or, for
//!   `ReplaceRelations`, an implicit name-based mapping against the
//!   replacement's schema; join predicates *internal* to the replaced
//!   relations are absorbed by the replacement.
//!
//! When no rewrite exists the view is **undefinable** and synchronization
//! reports it; the view manager surfaces this as a hard error rather than
//! guessing.

use std::collections::BTreeSet;

use dyno_relational::{ColRef, Predicate, SchemaChange, SpjQuery};
use dyno_source::InfoSpace;

use crate::viewdef::ViewDefinition;

/// Why a view definition could not be synchronized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VsError {
    /// No legal rewrite exists for the change.
    Undefinable {
        /// The change that could not be absorbed.
        change: String,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for VsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VsError::Undefinable { change, reason } => {
                write!(f, "view undefinable under `{change}`: {reason}")
            }
        }
    }
}

impl std::error::Error for VsError {}

/// Rewrites `view` to be well-defined after `sc`. Returns the (possibly
/// identical) new definition.
pub fn synchronize(
    view: &ViewDefinition,
    sc: &SchemaChange,
    info: &InfoSpace,
) -> Result<ViewDefinition, VsError> {
    if !view.is_invalidated_by(sc) {
        return Ok(view.clone());
    }
    match sc {
        SchemaChange::RenameRelation { from, to } => Ok(rename_relation(view, from, to)),
        SchemaChange::RenameAttribute { relation, from, to } => {
            Ok(rename_attribute(view, relation, from, to))
        }
        SchemaChange::DropAttribute { relation, attr } => {
            drop_attribute(view, &ColRef::new(relation.clone(), attr.clone()), info, sc)
        }
        SchemaChange::DropRelation { relation } => {
            let repl = info.relation_replacement(relation).ok_or_else(|| VsError::Undefinable {
                change: sc.to_string(),
                reason: format!("no replacement known for relation `{relation}`"),
            })?;
            replace_relations(view, std::slice::from_ref(relation), &repl.clone(), sc)
        }
        SchemaChange::ReplaceRelations { dropped, replacement } => {
            let in_view: Vec<String> =
                dropped.iter().filter(|d| view.references_relation(d)).cloned().collect();
            let repl = match info.replacement_for_set(dropped) {
                Some(r) => r.clone(),
                None => implicit_replacement(view, dropped, replacement),
            };
            replace_relations(view, &in_view, &repl, sc)
        }
        SchemaChange::AddAttribute { .. } | SchemaChange::CreateRelation { .. } => {
            // Purely additive changes never invalidate; handled above.
            Ok(view.clone())
        }
    }
}

/// Sequentially synchronizes through a composed batch of schema changes.
pub fn synchronize_all(
    view: &ViewDefinition,
    changes: &[SchemaChange],
    info: &InfoSpace,
) -> Result<ViewDefinition, VsError> {
    let mut v = view.clone();
    for sc in changes {
        v = synchronize(&v, sc, info)?;
    }
    Ok(v)
}

fn rename_relation(view: &ViewDefinition, from: &str, to: &str) -> ViewDefinition {
    let mut q = view.query.clone();
    for t in &mut q.tables {
        if t == from {
            *t = to.to_string();
        }
    }
    rewrite_cols(&mut q, |c| {
        if c.relation == from {
            Some(ColRef::new(to, c.attr.clone()))
        } else {
            None
        }
    });
    ViewDefinition::new(view.name.clone(), q)
}

fn rename_attribute(view: &ViewDefinition, relation: &str, from: &str, to: &str) -> ViewDefinition {
    let mut q = view.query.clone();
    rewrite_cols(&mut q, |c| {
        if c.relation == relation && c.attr == from {
            Some(ColRef::new(relation, to))
        } else {
            None
        }
    });
    ViewDefinition::new(view.name.clone(), q)
}

fn drop_attribute(
    view: &ViewDefinition,
    dropped: &ColRef,
    info: &InfoSpace,
    sc: &SchemaChange,
) -> Result<ViewDefinition, VsError> {
    let mut q = view.query.clone();
    if let Some(repl) = info.attr_replacement(dropped) {
        // Rewrite every use to the replacement column; pull the replacement
        // relation (and its linking join) into the view.
        rewrite_cols(&mut q, |c| if c == dropped { Some(repl.replacement.clone()) } else { None });
        if !q.tables.contains(&repl.replacement.relation) {
            q.tables.push(repl.replacement.relation.clone());
            q.predicates.push(Predicate::JoinEq(repl.join.0.clone(), repl.join.1.clone()));
        }
        return Ok(ViewDefinition::new(view.name.clone(), q));
    }
    // No replacement: prune the column from the SELECT list if it is not
    // load-bearing (not used by any predicate).
    let used_in_predicate = q.predicates.iter().any(|p| p.cols().contains(&dropped));
    if used_in_predicate {
        return Err(VsError::Undefinable {
            change: sc.to_string(),
            reason: format!("`{dropped}` participates in a predicate and has no replacement"),
        });
    }
    q.projection.retain(|item| item.col != *dropped);
    if q.projection.is_empty() {
        return Err(VsError::Undefinable {
            change: sc.to_string(),
            reason: "pruning the dropped attribute leaves an empty SELECT list".into(),
        });
    }
    Ok(ViewDefinition::new(view.name.clone(), q))
}

fn replace_relations(
    view: &ViewDefinition,
    dropped_in_view: &[String],
    repl: &dyno_source::RelationReplacement,
    sc: &SchemaChange,
) -> Result<ViewDefinition, VsError> {
    let mut q = view.query.clone();
    let dropped_set: BTreeSet<&str> = dropped_in_view.iter().map(String::as_str).collect();

    // Join predicates entirely internal to the replaced relations are
    // absorbed by the replacement's construction (e.g. `S.SID = I.SID`).
    q.predicates.retain(|p| {
        !p.relations().iter().all(|r| dropped_set.contains(r))
            || !matches!(p, Predicate::JoinEq(..))
    });

    // Map every remaining reference through the attribute map.
    let mut unmapped: Vec<ColRef> = Vec::new();
    rewrite_cols_fallible(&mut q, &mut |c: &ColRef| {
        if dropped_set.contains(c.relation.as_str()) {
            match repl.map_col(c) {
                Some(new) => Some(Some(new)),
                None => {
                    unmapped.push(c.clone());
                    Some(None)
                }
            }
        } else {
            None
        }
    });
    if let Some(first) = unmapped.first() {
        return Err(VsError::Undefinable {
            change: sc.to_string(),
            reason: format!("replacement `{}` does not cover `{first}`", repl.replacement),
        });
    }

    // FROM list: drop the replaced relations, add the replacement once.
    q.tables.retain(|t| !dropped_set.contains(t.as_str()));
    if !q.tables.contains(&repl.replacement) {
        q.tables.insert(0, repl.replacement.clone());
    }
    Ok(ViewDefinition::new(view.name.clone(), q))
}

/// Builds a name-based implicit mapping for a `ReplaceRelations` change:
/// old column `R.a` maps to `replacement.a` when the replacement schema has
/// an attribute `a`.
fn implicit_replacement(
    view: &ViewDefinition,
    dropped: &[String],
    replacement: &dyno_relational::Relation,
) -> dyno_source::RelationReplacement {
    let mut attr_map = Vec::new();
    for col in view.query.referenced_cols() {
        if dropped.contains(&col.relation) && replacement.schema().has_attr(&col.attr) {
            attr_map.push((
                col.clone(),
                ColRef::new(replacement.schema().relation.clone(), col.attr.clone()),
            ));
        }
    }
    dyno_source::RelationReplacement {
        dropped: dropped.to_vec(),
        replacement: replacement.schema().relation.clone(),
        attr_map,
    }
}

/// Applies an infallible column rewrite everywhere a [`ColRef`] appears.
fn rewrite_cols(q: &mut SpjQuery, f: impl Fn(&ColRef) -> Option<ColRef>) {
    rewrite_cols_fallible(q, &mut |c| f(c).map(Some));
}

/// Applies a column rewrite where `f` returns:
/// `None` — leave unchanged; `Some(Some(new))` — replace; `Some(None)` —
/// the reference is unmappable (recorded by the caller; reference left in
/// place so the error message can cite it).
fn rewrite_cols_fallible(q: &mut SpjQuery, f: &mut impl FnMut(&ColRef) -> Option<Option<ColRef>>) {
    let mut apply = |c: &mut ColRef| {
        if let Some(Some(new)) = f(c) {
            *c = new;
        }
    };
    for item in &mut q.projection {
        apply(&mut item.col);
    }
    for p in &mut q.predicates {
        match p {
            Predicate::JoinEq(a, b) => {
                apply(a);
                apply(b);
            }
            Predicate::Compare(c, _, _) => apply(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{bookinfo_space, bookinfo_view, storeitems_change};
    use dyno_source::SourceId;

    #[test]
    fn rename_relation_rewrites_everywhere() {
        let view = bookinfo_view();
        let sc = SchemaChange::RenameRelation { from: "Item".into(), to: "Items2".into() };
        let v2 = synchronize(&view, &sc, &InfoSpace::new()).unwrap();
        assert!(v2.references_relation("Items2"));
        assert!(!v2.references_relation("Item"));
        assert!(v2.query.to_string().contains("Items2.Book = Catalog.Title"));
        // Output columns are preserved for view consumers.
        assert_eq!(v2.output_cols(), view.output_cols());
    }

    #[test]
    fn rename_attribute_keeps_output_name() {
        let view = bookinfo_view();
        let sc = SchemaChange::RenameAttribute {
            relation: "Catalog".into(),
            from: "Review".into(),
            to: "Critique".into(),
        };
        let v2 = synchronize(&view, &sc, &InfoSpace::new()).unwrap();
        assert_eq!(v2.output_cols(), view.output_cols(), "output alias preserved");
        assert!(v2.query.to_string().contains("Catalog.Critique AS Review"));
    }

    #[test]
    fn drop_attribute_with_replacement_is_query4() {
        // Paper Query (4): Review replaced by ReaderDigest.Comments.
        let space = bookinfo_space();
        let view = bookinfo_view();
        let sc = SchemaChange::DropAttribute { relation: "Catalog".into(), attr: "Review".into() };
        let v2 = synchronize(&view, &sc, space.info()).unwrap();
        assert!(v2.references_relation("ReaderDigest"));
        let s = v2.query.to_string();
        assert!(s.contains("ReaderDigest.Comments AS Review"));
        assert!(s.contains("Catalog.Title = ReaderDigest.Article"));
        assert_eq!(v2.output_cols(), view.output_cols());
    }

    #[test]
    fn drop_attribute_without_replacement_prunes() {
        let view = bookinfo_view();
        let sc = SchemaChange::DropAttribute { relation: "Catalog".into(), attr: "Review".into() };
        let v2 = synchronize(&view, &sc, &InfoSpace::new()).unwrap();
        assert!(!v2.output_cols().contains(&"Review".to_string()));
        assert_eq!(v2.output_cols().len(), view.output_cols().len() - 1);
    }

    #[test]
    fn drop_join_attribute_without_replacement_is_undefinable() {
        let view = bookinfo_view();
        let sc = SchemaChange::DropAttribute { relation: "Item".into(), attr: "SID".into() };
        let err = synchronize(&view, &sc, &InfoSpace::new()).unwrap_err();
        assert!(matches!(err, VsError::Undefinable { .. }));
    }

    #[test]
    fn replace_relations_is_query3() {
        // Paper Query (3): StoreItems replaces Store ⋈ Item.
        let space = bookinfo_space();
        let view = bookinfo_view();
        let store = space.server(SourceId(0)).catalog().get("Store").unwrap();
        let item = space.server(SourceId(0)).catalog().get("Item").unwrap();
        let sc = storeitems_change(store, item);
        let v2 = synchronize(&view, &sc, space.info()).unwrap();
        assert!(v2.references_relation("StoreItems"));
        assert!(!v2.references_relation("Store") && !v2.references_relation("Item"));
        let s = v2.query.to_string();
        assert!(s.contains("StoreItems.Book = Catalog.Title"));
        assert!(!s.contains("SID"), "internal join absorbed by the replacement");
        assert_eq!(v2.output_cols(), view.output_cols());
    }

    #[test]
    fn composed_changes_yield_query5() {
        // Paper Query (5): both SC1 (StoreItems) and SC2 (drop Review,
        // replaced by ReaderDigest) applied to the view in one batch.
        let space = bookinfo_space();
        let view = bookinfo_view();
        let store = space.server(SourceId(0)).catalog().get("Store").unwrap();
        let item = space.server(SourceId(0)).catalog().get("Item").unwrap();
        let changes = vec![
            storeitems_change(store, item),
            SchemaChange::DropAttribute { relation: "Catalog".into(), attr: "Review".into() },
        ];
        let v2 = synchronize_all(&view, &changes, space.info()).unwrap();
        let s = v2.query.to_string();
        assert!(v2.references_relation("StoreItems"));
        assert!(v2.references_relation("ReaderDigest"));
        assert!(s.contains("StoreItems.Book = Catalog.Title"));
        assert!(s.contains("Catalog.Title = ReaderDigest.Article"));
        assert_eq!(v2.output_cols(), view.output_cols());
    }

    #[test]
    fn replace_relations_without_info_uses_implicit_mapping() {
        // No registered replacement: the rewrite falls back to name-based
        // mapping against the replacement relation's own schema.
        use dyno_relational::{AttrType, Relation, Schema};
        let view = ViewDefinition::new(
            "V",
            dyno_relational::SpjQuery::over(["Old", "Other"])
                .select("Old", "a")
                .select("Other", "x")
                .join_eq(("Old", "k"), ("Other", "k"))
                .build(),
        );
        let replacement =
            Relation::empty(Schema::of("New", &[("a", AttrType::Int), ("k", AttrType::Int)]));
        let sc = SchemaChange::ReplaceRelations {
            dropped: vec!["Old".into()],
            replacement: Box::new(replacement),
        };
        let v2 = synchronize(&view, &sc, &InfoSpace::new()).unwrap();
        assert!(v2.references_relation("New"));
        assert!(v2.query.to_string().contains("New.k = Other.k"));
        assert_eq!(v2.output_cols(), view.output_cols());
    }

    #[test]
    fn replace_relations_with_uncovered_column_is_undefinable() {
        use dyno_relational::{AttrType, Relation, Schema};
        let view = ViewDefinition::new(
            "V",
            dyno_relational::SpjQuery::over(["Old"]).select("Old", "a").build(),
        );
        // The replacement lacks column `a`.
        let replacement = Relation::empty(Schema::of("New", &[("b", AttrType::Int)]));
        let sc = SchemaChange::ReplaceRelations {
            dropped: vec!["Old".into()],
            replacement: Box::new(replacement),
        };
        assert!(matches!(
            synchronize(&view, &sc, &InfoSpace::new()),
            Err(VsError::Undefinable { .. })
        ));
    }

    #[test]
    fn dropped_join_attribute_with_replacement_rewrites_predicate() {
        // The dropped attribute participates in a join; a registered
        // replacement redirects the predicate through the new relation.
        use dyno_relational::ColRef;
        use dyno_source::AttributeReplacement;
        let view = ViewDefinition::new(
            "V",
            dyno_relational::SpjQuery::over(["A", "B"])
                .select("A", "v")
                .join_eq(("A", "link"), ("B", "link"))
                .build(),
        );
        let mut info = InfoSpace::new();
        info.add_attr_replacement(AttributeReplacement {
            dropped: ColRef::new("A", "link"),
            replacement: ColRef::new("L", "link"),
            join: (ColRef::new("A", "id"), ColRef::new("L", "id")),
        });
        let sc = SchemaChange::DropAttribute { relation: "A".into(), attr: "link".into() };
        let v2 = synchronize(&view, &sc, &info).unwrap();
        assert!(v2.references_relation("L"));
        let s = v2.query.to_string();
        assert!(s.contains("L.link = B.link"), "join predicate redirected: {s}");
        assert!(s.contains("A.id = L.id"), "linking join added: {s}");
    }

    #[test]
    fn drop_relation_without_replacement_is_undefinable() {
        let view = bookinfo_view();
        let sc = SchemaChange::DropRelation { relation: "Catalog".into() };
        assert!(synchronize(&view, &sc, &InfoSpace::new()).is_err());
    }

    #[test]
    fn irrelevant_change_is_identity() {
        let view = bookinfo_view();
        let sc = SchemaChange::DropAttribute { relation: "Catalog".into(), attr: "Year".into() };
        let v2 = synchronize(&view, &sc, &InfoSpace::new()).unwrap();
        assert_eq!(v2, view);
    }
}
