//! # dyno-view — the view manager
//!
//! The view-manager space of the paper's framework (Figure 3): view
//! definitions, the materialized extent, the Update Message Queue, and the
//! three maintenance algorithms Dyno orchestrates:
//!
//! - **VM** ([`vm`]) — SWEEP-style incremental maintenance of data updates
//!   with local compensation for concurrent data updates (anomaly types 1–2);
//! - **VS** ([`vs`]) — view synchronization: rewriting the definition under
//!   schema changes, using the EVE-style information space for replacements;
//! - **VA** ([`batch`]) — view adaptation: recomputing or incrementally
//!   adapting (paper Equation 6) the extent, including atomic processing of
//!   Dyno's merged dependency-cycle batches (paper Section 5).
//!
//! [`manager::ViewManager`] ties these together behind `dyno-core`'s
//! scheduler; [`engine::SourcePort`] abstracts the distributed query engine
//! so the discrete-event simulation (`dyno-sim`) can meter time and inject
//! concurrency.

#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod fport;
pub mod ingress;
pub mod manager;
pub mod mview;
pub mod plan;
pub mod subplan;
pub mod testkit;
pub mod viewdef;
pub mod vm;
pub mod vs;
pub mod wal;
pub mod warehouse;

pub use batch::{
    adapt_batch, adapt_batch_observed, equation6_delta, equation6_view_delta, homogenize_delta,
    AdaptationMode, Adapted, BatchFailure,
};
pub use engine::{
    eval_with_bound, schema_from_bag, BoundTable, InProcessPort, LocalProvider, MaintEvent,
    SourcePort, TracingPort,
};
pub use fport::FaultedPort;
pub use ingress::IngressGate;
pub use manager::{ReflectedVersions, ViewError, ViewManager, ViewStats};
pub use mview::MaterializedView;
pub use plan::{MaintPlan, MaintStep, PlanCache};
pub use subplan::SharedSubplans;
pub use viewdef::ViewDefinition;
pub use vm::{
    sweep_maintain, sweep_maintain_observed, sweep_maintain_shared, MaintFailure, ViewDelta,
};
pub use vs::{synchronize, synchronize_all, VsError};
pub use wal::{
    AppliedChange, AppliedRecord, CrashPlan, CrashPoint, DurableLog, DurableState, RecoverError,
    RecoverReport, ReplicaTailEvent, ViewState,
};
pub use warehouse::{PendingPublish, Warehouse};
