//! The view manager: integrates VM (SWEEP), VS, VA and the Dyno scheduler
//! over a single materialized view (paper Figure 3).

use std::collections::HashMap;

use dyno_core::{
    CorrectionPolicy, Dyno, DynoStats, MaintainOutcome, Maintainer, StepOutcome, Strategy, Umq,
    UpdateKind, UpdateMeta,
};
use dyno_durable::storage::Storage;
use dyno_obs::{field, Collector, Level};
use dyno_relational::{RelationalError, SourceUpdate};
use dyno_source::{InfoSpace, SourceId, UpdateMessage};

use crate::batch::{adapt_batch_observed, AdaptationMode, Adapted, BatchFailure};
use crate::engine::{MaintEvent, SourcePort};
use crate::ingress::IngressGate;
use crate::mview::MaterializedView;
use crate::plan::PlanCache;
use crate::viewdef::ViewDefinition;
use crate::vm::sweep_maintain_observed;
use crate::vs::VsError;
use crate::wal::{
    sorted_versions, AppliedChange, AppliedRecord, CrashPlan, DurableLog, DurableState,
    RecoverError, RecoverReport, ViewState,
};

/// Hard (non-retryable) view-management failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// The view has no legal rewrite under a schema change.
    Undefinable(VsError),
    /// An internal invariant was violated.
    Internal(RelationalError),
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::Undefinable(e) => write!(f, "{e}"),
            ViewError::Internal(e) => write!(f, "internal error: {e}"),
        }
    }
}

impl std::error::Error for ViewError {}

/// Counters for one manager's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Data updates committed to the view via SWEEP.
    pub du_committed: u64,
    /// Batches (schema-change or merged) committed via adaptation.
    pub batches_committed: u64,
    /// Of those, batches adapted incrementally (Equation 6) rather than by
    /// recompute.
    pub incremental_batches: u64,
    /// Updates committed inside those batches.
    pub batched_updates: u64,
    /// Maintenance attempts aborted by broken queries.
    pub aborts: u64,
}

/// The per-source versions the materialized view currently reflects.
pub type ReflectedVersions = HashMap<SourceId, u64>;

/// A materialized view plus everything needed to maintain it.
#[derive(Debug, Clone)]
pub struct ViewManager {
    dyno: Dyno,
    umq: Umq<UpdateMessage>,
    core: ViewCore,
}

/// The manager's mutable state, separated so the maintenance context can
/// borrow it alongside the scheduler and queue.
#[derive(Debug, Clone)]
struct ViewCore {
    view: ViewDefinition,
    mv: MaterializedView,
    info: InfoSpace,
    reflected: ReflectedVersions,
    stats: ViewStats,
    last_error: Option<ViewError>,
    adaptation: AdaptationMode,
    obs: Collector,
    plans: PlanCache,
    ingress: IngressGate,
    wal: Option<DurableLog>,
}

impl ViewManager {
    /// Creates a manager for `view` with the given detection strategy.
    /// Call [`ViewManager::initialize`] before processing updates.
    pub fn new(view: ViewDefinition, info: InfoSpace, strategy: Strategy) -> Self {
        let mv = MaterializedView::new(view.name.clone(), view.output_cols());
        ViewManager {
            dyno: Dyno::new(strategy),
            umq: Umq::new(),
            core: ViewCore {
                view,
                mv,
                info,
                reflected: HashMap::new(),
                stats: ViewStats::default(),
                last_error: None,
                adaptation: AdaptationMode::default(),
                obs: Collector::disabled(),
                plans: PlanCache::new(),
                ingress: IngressGate::new(),
                wal: None,
            },
        }
    }

    /// Attaches a write-ahead log and writes the first checkpoint. Call
    /// **after** [`ViewManager::initialize`] so the baseline snapshot covers
    /// the populated extent.
    pub fn with_wal(mut self, mut log: DurableLog) -> Self {
        log.bind_obs(&self.core.obs);
        self.core.wal = Some(log);
        self.checkpoint_now();
        self
    }

    fn durable_state(&self) -> DurableState {
        DurableState {
            strategy: self.dyno.strategy(),
            policy: self.dyno.policy(),
            adaptation: self.core.adaptation,
            dedupe: self.core.ingress.dedupe_enabled(),
            views: vec![ViewState {
                sql: self.core.view.to_string(),
                cols: self.core.mv.cols().to_vec(),
                extent: self.core.mv.extent().clone(),
                reflected: sorted_versions(self.core.reflected.iter().map(|(s, v)| (s.0, *v))),
                deferred: vec![],
                tier: 0,
            }],
            reflected: sorted_versions(self.core.reflected.iter().map(|(s, v)| (s.0, *v))),
            marks: self.core.ingress.marks(),
            batches: self.umq.nodes().iter().map(|b| b.to_vec()).collect(),
            sc_flag: self.umq.schema_change_flag(),
            ext: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// Forces a checkpoint now (no-op without a WAL or after a power cut).
    pub fn checkpoint_now(&mut self) {
        if self.core.wal.is_some() {
            let state = self.durable_state();
            if let Some(log) = self.core.wal.as_mut() {
                log.checkpoint(&state);
            }
        }
    }

    /// Arms a deterministic power cut on the attached WAL (chaos testing).
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        if let Some(log) = self.core.wal.as_mut() {
            log.arm(plan);
        }
    }

    /// True once the attached WAL's simulated power has been cut.
    pub fn wal_power_cut(&self) -> bool {
        self.core.wal.as_ref().is_some_and(DurableLog::power_cut)
    }

    /// The ingress gate's admitted high-water marks (resubscription baseline).
    pub fn ingress_marks(&self) -> Vec<(u32, u64)> {
        self.core.ingress.marks()
    }

    /// Rebuilds a manager from a WAL — the single-view counterpart of
    /// [`crate::Warehouse::recover`]; see there for the replay semantics.
    pub fn recover(
        storage: Box<dyn Storage>,
        info: InfoSpace,
        obs: Collector,
    ) -> Result<(Self, RecoverReport), RecoverError> {
        let (log, state, report) = crate::wal::recover(storage, &obs)?;
        let [vs]: [ViewState; 1] = <[ViewState; 1]>::try_from(state.views)
            .map_err(|v| RecoverError::Corrupt(format!("manager log holds {} views", v.len())))?;
        let view = ViewDefinition::parse(&vs.sql, "view")
            .map_err(|e| RecoverError::Corrupt(format!("checkpointed view sql: {e}")))?;
        let mut mv = MaterializedView::new(view.name.clone(), vs.cols.clone());
        mv.replace(vs.cols, vs.extent)
            .map_err(|e| RecoverError::Corrupt(format!("checkpointed extent: {e}")))?;
        let mut dyno = Dyno::new(state.strategy).with_obs(obs.clone());
        dyno.set_policy(state.policy);
        let mut ingress = IngressGate::new();
        ingress.bind_obs(&obs);
        ingress.set_dedupe(state.dedupe);
        ingress.restore_marks(&state.marks);
        let mgr = ViewManager {
            dyno,
            umq: Umq::restore(state.batches, state.sc_flag),
            core: ViewCore {
                view,
                mv,
                info,
                reflected: state.reflected.iter().map(|&(s, v)| (SourceId(s), v)).collect(),
                stats: ViewStats::default(),
                last_error: None,
                adaptation: state.adaptation,
                obs,
                plans: PlanCache::new(),
                ingress,
                wal: Some(log),
            },
        };
        Ok((mgr, report))
    }

    /// Overrides the scheduler's correction policy (default: cycle merge;
    /// `MergeAll` is the blind-merge ablation baseline of paper Section 4.2).
    /// Mutates the scheduler in place, so builder-call order does not matter
    /// and accumulated stats / the bound collector survive.
    pub fn with_correction(mut self, policy: CorrectionPolicy) -> Self {
        self.dyno.set_policy(policy);
        self
    }

    /// Attaches an observability collector: the scheduler and every
    /// maintenance path report spans, events, and `view.*`/`vm.*`/`va.*`
    /// metrics through it. The default is a disabled collector, which costs
    /// nothing on the hot paths.
    pub fn with_obs(mut self, obs: Collector) -> Self {
        self.dyno = self.dyno.clone().with_obs(obs.clone());
        self.core.ingress.bind_obs(&obs);
        self.core.obs = obs;
        self
    }

    /// Enables/disables the UMQ admission gate's dedupe+resequencing
    /// (default on). Disabling exists solely so the chaos suite can prove
    /// it detects the resulting double-applies.
    pub fn with_ingest_dedupe(mut self, enabled: bool) -> Self {
        self.core.ingress.set_dedupe(enabled);
        self
    }

    /// The manager's observability collector (disabled unless one was
    /// attached with [`ViewManager::with_obs`]).
    pub fn obs(&self) -> &Collector {
        &self.core.obs
    }

    /// Selects the view-adaptation mode (default: incremental when the
    /// batch preserves the view's shape). `RecomputeOnly` is the ablation
    /// baseline.
    pub fn with_adaptation(mut self, mode: AdaptationMode) -> Self {
        self.core.adaptation = mode;
        self
    }

    /// Populates the extent by evaluating the view over the sources'
    /// current states and records the reflected versions. Must run before
    /// any source commits are in flight.
    pub fn initialize(&mut self, port: &mut dyn SourcePort) -> Result<(), ViewError> {
        let result = port.execute(&self.core.view.query, &[]).map_err(ViewError::Internal)?;
        self.core.mv.replace(result.cols, result.rows).map_err(ViewError::Internal)?;
        for table in &self.core.view.query.tables {
            if let Some(sid) = port.locate(table) {
                let v = port.source_version(sid);
                self.core.reflected.insert(sid, v);
            }
        }
        // Anything committed before this point is already in the extent the
        // evaluation above produced — its buffered wrapper messages must not
        // be maintained a second time.
        port.drain_arrivals();
        Ok(())
    }

    /// Enqueues wrapper messages into the UMQ (the `UMQ_Manager` of paper
    /// Figure 7).
    pub fn ingest<I: IntoIterator<Item = UpdateMessage>>(&mut self, messages: I) {
        for msg in messages {
            // The admission gate dedupes by (source, version) — including
            // messages committed before initialization, via the reflected
            // floor — and resequences early arrivals so enqueue order always
            // equals version order per source.
            let floor = self.core.reflected.get(&msg.source).copied().unwrap_or(0);
            for msg in self.core.ingress.admit(msg, floor) {
                let kind = match &msg.update {
                    SourceUpdate::Data(_) => UpdateKind::Data,
                    SourceUpdate::Schema(sc) => UpdateKind::Schema {
                        invalidates_view: self.core.view.is_invalidated_by(sc),
                    },
                };
                self.core.obs.prov(
                    msg.id.0,
                    dyno_obs::stage::ADMIT,
                    &[
                        field("source", msg.source.0),
                        field("version", msg.source_version),
                        field("kind", if msg.is_schema_change() { "SC" } else { "DU" }),
                    ],
                );
                let meta = UpdateMeta::new(msg.id.0, msg.source.0, kind, msg);
                if let Some(log) = self.core.wal.as_mut() {
                    log.log_admitted(&meta);
                }
                self.umq.enqueue(meta);
            }
        }
    }

    /// Drains port arrivals and runs one Dyno scheduling step.
    pub fn step(&mut self, port: &mut dyn SourcePort) -> Result<StepOutcome, ViewError> {
        let arrivals = port.drain_arrivals();
        self.ingest(arrivals);
        let mut ctx = MaintCtx { core: &mut self.core, port, drained: Vec::new() };
        let outcome = self.dyno.step(&mut self.umq, &mut ctx);
        let drained = std::mem::take(&mut ctx.drained);
        self.ingest(drained);
        if outcome == StepOutcome::Failed {
            return Err(self.core.last_error.take().unwrap_or(ViewError::Internal(
                RelationalError::InvalidQuery {
                    reason: "maintenance failed without recording an error".into(),
                },
            )));
        }
        if self.core.wal.as_ref().is_some_and(DurableLog::should_checkpoint) {
            self.checkpoint_now();
        }
        Ok(outcome)
    }

    /// Steps until the queue is empty and no arrivals remain, or `max_steps`
    /// is exhausted (guards against the theoretical infinite-abort loop of
    /// paper Section 4.4).
    pub fn run_to_quiescence(
        &mut self,
        port: &mut dyn SourcePort,
        max_steps: u64,
    ) -> Result<u64, ViewError> {
        let mut steps = 0;
        loop {
            match self.step(port)? {
                StepOutcome::Idle => {
                    // `step` ingests arrivals before checking the queue, so
                    // Idle means both the port stream and the queue are dry.
                    return Ok(steps);
                }
                _ => {
                    steps += 1;
                    if steps >= max_steps {
                        return Ok(steps);
                    }
                }
            }
        }
    }

    /// The current view definition (rewritten over time by VS).
    pub fn view(&self) -> &ViewDefinition {
        &self.core.view
    }

    /// The materialized extent.
    pub fn mv(&self) -> &MaterializedView {
        &self.core.mv
    }

    /// Per-source versions the extent currently reflects.
    pub fn reflected(&self) -> &ReflectedVersions {
        &self.core.reflected
    }

    /// Maintenance counters.
    pub fn stats(&self) -> ViewStats {
        self.core.stats
    }

    /// Scheduler counters.
    pub fn dyno_stats(&self) -> DynoStats {
        self.dyno.stats()
    }

    /// Buffered (unprocessed) update count.
    pub fn backlog(&self) -> usize {
        self.umq.update_count()
    }
}

/// Borrowed maintenance context: implements the scheduler's [`Maintainer`]
/// over the manager's state and a source port.
struct MaintCtx<'a> {
    core: &'a mut ViewCore,
    port: &'a mut dyn SourcePort,
    drained: Vec<UpdateMessage>,
}

impl MaintCtx<'_> {
    fn commit_bookkeeping(&mut self, batch: &[UpdateMeta<UpdateMessage>]) {
        for meta in batch {
            let msg = &meta.payload;
            let entry = self.core.reflected.entry(msg.source).or_insert(0);
            *entry = (*entry).max(msg.source_version);
        }
    }
}

impl Maintainer<UpdateMessage> for MaintCtx<'_> {
    fn maintain(
        &mut self,
        batch: &[UpdateMeta<UpdateMessage>],
        rest: &[&[UpdateMeta<UpdateMessage>]],
    ) -> MaintainOutcome {
        let schema_changes = batch.iter().filter(|m| m.payload.is_schema_change()).count();
        self.port.on_maintenance_event(MaintEvent::Begin { updates: batch.len(), schema_changes });
        let pending: Vec<UpdateMessage> =
            rest.iter().flat_map(|node| node.iter().map(|m| m.payload.clone())).collect();

        let is_plain_du =
            batch.len() == 1 && matches!(batch[0].payload.update, SourceUpdate::Data(_));

        let _span = self.core.obs.span(
            "view.maintain",
            &[
                field("updates", batch.len()),
                field("schema_changes", schema_changes),
                field("kind", if is_plain_du { "du" } else { "batch" }),
            ],
        );
        self.core.obs.counter("view.attempts").inc();

        // Commit protocol, write 1 of 2: the intent is durable before any
        // maintenance query runs (see `crate::wal`).
        if let Some(log) = self.core.wal.as_mut() {
            let keys: Vec<u64> = batch.iter().map(|m| m.key.0).collect();
            log.log_intent(&keys, schema_changes > 0);
        }
        for meta in batch {
            self.core.obs.prov(meta.key.0, dyno_obs::stage::INTENT, &[]);
        }

        let mut written_rows: u64 = 0;
        let mut logged: Option<AppliedChange> = None;
        let failure: Option<BatchFailure> = if is_plain_du {
            let (result, drained) = sweep_maintain_observed(
                &self.core.view,
                &batch[0].payload,
                &pending,
                self.port,
                &mut self.core.plans,
                &self.core.obs,
            );
            self.drained.extend(drained);
            match result {
                Ok(delta) => {
                    let written = delta.rows.weight();
                    match self.core.mv.apply_delta(&delta.cols, &delta.rows) {
                        Ok(()) => {
                            self.port.charge_mv_write(written);
                            written_rows = written;
                            self.core.stats.du_committed += 1;
                            if self.core.wal.is_some() {
                                logged = Some(AppliedChange::Delta { rows: delta.rows.clone() });
                            }
                            None
                        }
                        Err(e) => Some(BatchFailure::Internal(e)),
                    }
                }
                Err(f) => Some(f.into()),
            }
        } else {
            let refs: Vec<&UpdateMessage> = batch.iter().map(|m| &m.payload).collect();
            let (result, drained) = adapt_batch_observed(
                &self.core.view,
                &refs,
                &pending,
                &self.core.info,
                self.core.adaptation,
                self.port,
                &self.core.obs,
            );
            self.drained.extend(drained);
            match result {
                Ok(Adapted::Replaced { view, cols, extent }) => {
                    let written = extent.weight();
                    if self.core.wal.is_some() {
                        logged = Some(AppliedChange::Replace {
                            sql: view.to_string(),
                            cols: cols.clone(),
                            extent: extent.clone(),
                        });
                    }
                    match self.core.mv.replace(cols, extent) {
                        Ok(()) => {
                            self.port.charge_mv_write(written);
                            written_rows = written;
                            self.core.view = view;
                            self.core.plans.invalidate(schema_changes as u64, &self.core.obs);
                            self.core.stats.batches_committed += 1;
                            self.core.stats.batched_updates += batch.len() as u64;
                            None
                        }
                        Err(e) => Some(BatchFailure::Internal(e)),
                    }
                }
                Ok(Adapted::Incremental { view, delta }) => {
                    let written = delta.rows.weight();
                    if self.core.wal.is_some() {
                        logged = Some(AppliedChange::Incremental {
                            sql: view.to_string(),
                            rows: delta.rows.clone(),
                        });
                    }
                    match self.core.mv.apply_delta(&delta.cols, &delta.rows) {
                        Ok(()) => {
                            self.port.charge_mv_write(written);
                            written_rows = written;
                            self.core.view = view;
                            self.core.plans.invalidate(schema_changes as u64, &self.core.obs);
                            self.core.stats.batches_committed += 1;
                            self.core.stats.incremental_batches += 1;
                            self.core.stats.batched_updates += batch.len() as u64;
                            None
                        }
                        Err(e) => Some(BatchFailure::Internal(e)),
                    }
                }
                Err(f) => Some(f),
            }
        };

        match failure {
            None => {
                self.commit_bookkeeping(batch);
                // Commit protocol, write 2 of 2: the applied record makes
                // the in-memory commit durable (crash before it = redo).
                let was_cut = self.core.wal.as_ref().is_some_and(DurableLog::power_cut);
                if let Some(log) = self.core.wal.as_mut() {
                    let change =
                        logged.unwrap_or(AppliedChange::Delta { rows: Default::default() });
                    let reflected =
                        sorted_versions(self.core.reflected.iter().map(|(s, v)| (s.0, *v)));
                    log.log_applied(&AppliedRecord {
                        keys: batch.iter().map(|m| m.key.0).collect(),
                        changes: vec![change],
                        view_reflected: vec![reflected.clone()],
                        reflected,
                    });
                }
                // Terminal provenance. Skipped when the power was already
                // cut before the Applied append (the append was dropped, so
                // recovery re-executes this batch and records the terminal
                // stages exactly once, post-recovery). A cut that trips ON
                // the append leaves the record durable — those terminals
                // are recorded here, since recovery will not redo them.
                if !was_cut {
                    for meta in batch {
                        self.core.obs.prov(meta.key.0, dyno_obs::stage::APPLIED, &[]);
                    }
                    if self.core.obs.lineage_on() {
                        let keys: Vec<u64> = batch.iter().map(|m| m.key.0).collect();
                        self.core.obs.prov_batch(
                            &keys,
                            dyno_obs::stage::EXTENT,
                            &[field("rows", written_rows)],
                        );
                    }
                }
                self.core.obs.counter("view.commits").inc();
                self.port.on_maintenance_event(MaintEvent::Commit);
                MaintainOutcome::Committed
            }
            Some(BatchFailure::Broken(ref b)) => {
                if std::env::var_os("DYNO_DEBUG_BROKEN").is_some() {
                    eprintln!("[dyno] broken query: {b:?}");
                }
                self.core.stats.aborts += 1;
                self.core.obs.counter("view.aborts").inc();
                if self.core.obs.tracing_on() {
                    self.core.obs.event(
                        Level::Warn,
                        "view.abort",
                        &[field("updates", batch.len())],
                    );
                }
                self.port.on_maintenance_event(MaintEvent::Abort);
                MaintainOutcome::BrokenQuery
            }
            Some(BatchFailure::Unavailable(e)) => {
                self.core.obs.counter("view.parked").inc();
                if self.core.obs.tracing_on() {
                    self.core.obs.event(Level::Warn, "view.park", &[field("error", e.to_string())]);
                }
                self.port.on_maintenance_event(MaintEvent::Park);
                MaintainOutcome::Parked
            }
            Some(BatchFailure::Undefinable(e)) => {
                self.core.last_error = Some(ViewError::Undefinable(e));
                self.port.on_maintenance_event(MaintEvent::Abort);
                MaintainOutcome::Failed
            }
            Some(BatchFailure::Internal(e)) => {
                self.core.last_error = Some(ViewError::Internal(e));
                self.port.on_maintenance_event(MaintEvent::Abort);
                MaintainOutcome::Failed
            }
        }
    }

    fn refresh_view_relevance(&mut self, queue: &mut Umq<UpdateMessage>) {
        // Relevance must be computed *transitively*: a rename chain
        // `R→R₁`, `R₁→R₂` only mentions `R₁` in its second hop, yet both
        // hops invalidate a view over `R`. We therefore evolve a shadow
        // view definition through the queued schema changes in queue
        // order, classifying each change against the shadow as it stood
        // when that change would be processed. Without this, a
        // second-hop rename is classified irrelevant, escapes the merge,
        // and the rewritten view references a name the source no longer
        // has — an unbreakable livelock of broken queries.
        self.core.obs.counter("vs.relevance_refreshes").inc();
        let mut shadow = self.core.view.clone();
        for meta in queue.metas_mut() {
            if let SourceUpdate::Schema(sc) = &meta.payload.update {
                let invalidates = shadow.is_invalidated_by(sc);
                if invalidates {
                    if let Ok(next) = crate::vs::synchronize(&shadow, sc, &self.core.info) {
                        shadow = next;
                        self.core.obs.counter("vs.shadow_rewrites").inc();
                    }
                }
                meta.kind = UpdateKind::Schema { invalidates_view: invalidates };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InProcessPort;
    use crate::testkit::*;
    use dyno_relational::SchemaChange;

    fn manager(strategy: Strategy) -> (ViewManager, InProcessPort) {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut mgr = ViewManager::new(bookinfo_view(), info, strategy);
        mgr.initialize(&mut port).unwrap();
        (mgr, port)
    }

    #[test]
    fn initialize_populates_extent() {
        let (mgr, _) = manager(Strategy::Pessimistic);
        assert_eq!(mgr.mv().len(), 1);
        assert_eq!(mgr.reflected().len(), 2, "Retailer and Library reflected");
    }

    #[test]
    fn data_update_maintained_incrementally() {
        let (mut mgr, mut port) = manager(Strategy::Pessimistic);
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        mgr.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(mgr.mv().len(), 2);
        assert_eq!(mgr.stats().du_committed, 1);
        assert_eq!(mgr.stats().aborts, 0);
    }

    #[test]
    fn broken_query_anomaly_resolved_by_reordering() {
        // Example 1(b): DU buffered, then the StoreItems restructuring
        // commits. Pessimistic Dyno reorders so no broken query occurs…
        let (mut mgr, mut port) = manager(Strategy::Pessimistic);
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        let store =
            port.space().server(dyno_source::SourceId(0)).catalog().get("Store").unwrap().clone();
        let item =
            port.space().server(dyno_source::SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Schema(storeitems_change(&store, &item)),
        )
        .unwrap();
        mgr.run_to_quiescence(&mut port, 100).unwrap();
        assert!(mgr.view().references_relation("StoreItems"));
        assert_eq!(mgr.mv().len(), 2, "both books visible after adaptation");
        assert_eq!(mgr.stats().aborts, 0, "pessimistic pre-exec avoided the break");
        // DU and SC are same-source → cycle → merged batch.
        assert!(mgr.dyno_stats().merges >= 1);
    }

    #[test]
    fn optimistic_endures_abort_on_same_scenario() {
        let (mut mgr, mut port) = manager(Strategy::Optimistic);
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        let store =
            port.space().server(dyno_source::SourceId(0)).catalog().get("Store").unwrap().clone();
        let item =
            port.space().server(dyno_source::SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Schema(storeitems_change(&store, &item)),
        )
        .unwrap();
        mgr.run_to_quiescence(&mut port, 100).unwrap();
        assert!(mgr.view().references_relation("StoreItems"));
        assert_eq!(mgr.mv().len(), 2);
        assert!(mgr.stats().aborts >= 1, "optimistic pays the broken query");
    }

    #[test]
    fn cyclic_schema_changes_merge_and_commit() {
        // Section 3.5: SC1 (StoreItems) + SC2 (drop Review) — both relevant,
        // cyclic, processed as one atomic batch producing Query (5).
        let (mut mgr, mut port) = manager(Strategy::Pessimistic);
        let store =
            port.space().server(dyno_source::SourceId(0)).catalog().get("Store").unwrap().clone();
        let item =
            port.space().server(dyno_source::SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Schema(storeitems_change(&store, &item)),
        )
        .unwrap();
        port.commit(
            dyno_source::SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropAttribute {
                relation: "Catalog".into(),
                attr: "Review".into(),
            }),
        )
        .unwrap();
        mgr.run_to_quiescence(&mut port, 100).unwrap();
        assert!(mgr.view().references_relation("StoreItems"));
        assert!(mgr.view().references_relation("ReaderDigest"));
        assert_eq!(mgr.stats().batches_committed, 1);
        assert_eq!(mgr.stats().batched_updates, 2);
        assert_eq!(mgr.mv().len(), 1);
    }

    #[test]
    fn undefinable_change_is_a_hard_error() {
        let (mut mgr, mut port) = manager(Strategy::Pessimistic);
        port.commit(
            dyno_source::SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Catalog".into() }),
        )
        .unwrap();
        let err = mgr.run_to_quiescence(&mut port, 100).unwrap_err();
        assert!(matches!(err, ViewError::Undefinable(_)));
    }

    #[test]
    fn observed_manager_reports_maintenance_metrics() {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let obs = Collector::wall().with_tracing(1024);
        let mut mgr =
            ViewManager::new(bookinfo_view(), info, Strategy::Optimistic).with_obs(obs.clone());
        mgr.initialize(&mut port).unwrap();
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        let store =
            port.space().server(dyno_source::SourceId(0)).catalog().get("Store").unwrap().clone();
        let item =
            port.space().server(dyno_source::SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Schema(storeitems_change(&store, &item)),
        )
        .unwrap();
        mgr.run_to_quiescence(&mut port, 100).unwrap();

        let reg = obs.registry();
        let counter = |name| reg.counter_value(name).unwrap_or(0);
        let stats = mgr.stats();
        assert_eq!(counter("view.aborts"), stats.aborts, "abort counter mirrors ViewStats");
        assert_eq!(counter("view.commits"), stats.du_committed + stats.batches_committed);
        assert_eq!(counter("view.attempts"), counter("view.commits") + counter("view.aborts"));
        assert!(counter("va.recompute") + counter("va.incremental") >= 1);
        let names: Vec<&str> = obs.trace_records().iter().map(|r| r.name).collect();
        assert!(names.contains(&"view.maintain"));
        assert!(names.contains(&"va.adapt"));
    }

    #[test]
    fn with_correction_preserves_stats_and_obs_regardless_of_order() {
        // Regression: with_correction used to rebuild the scheduler from
        // scratch, silently discarding accumulated stats and — when called
        // after with_obs — keeping the collector only by luck of ordering.
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let obs = Collector::wall();
        // Builder order 1: correction BEFORE obs.
        let mgr1 = ViewManager::new(bookinfo_view(), info.clone(), Strategy::Pessimistic)
            .with_correction(CorrectionPolicy::MergeAll)
            .with_obs(obs.clone());
        // Builder order 2: correction AFTER obs.
        let mgr2 = ViewManager::new(bookinfo_view(), info, Strategy::Pessimistic)
            .with_obs(obs.clone())
            .with_correction(CorrectionPolicy::MergeAll);
        drop(mgr1);

        // Mid-run policy change: stats accumulated so far must survive.
        let mut mgr = mgr2;
        mgr.initialize(&mut port).unwrap();
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        mgr.run_to_quiescence(&mut port, 100).unwrap();
        let before = mgr.dyno_stats();
        assert!(before.committed > 0);
        let mgr = mgr.with_correction(CorrectionPolicy::MergeCycles);
        assert_eq!(mgr.dyno_stats(), before, "stats survive a mid-run policy change");
        // The scheduler still reports into the same registry.
        assert_eq!(
            obs.registry().counter_value("dyno.committed"),
            Some(before.committed),
            "collector binding survives with_correction"
        );
    }

    #[test]
    fn manager_recovers_from_wal() {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let disk = dyno_durable::MemStorage::new();
        let mut mgr = ViewManager::new(bookinfo_view(), info.clone(), Strategy::Pessimistic);
        mgr.initialize(&mut port).unwrap();
        let mut mgr = mgr.with_wal(crate::wal::DurableLog::create(Box::new(disk.clone())).unwrap());
        port.commit(
            dyno_source::SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        mgr.run_to_quiescence(&mut port, 100).unwrap();
        let frozen = mgr.mv().sorted_tuples();
        let reflected = mgr.reflected().clone();
        drop(mgr);

        let (back, report) = ViewManager::recover(Box::new(disk), info, Collector::wall()).unwrap();
        assert_eq!(report.torn_records, 0);
        assert_eq!(back.mv().sorted_tuples(), frozen, "extent is bit-identical");
        assert_eq!(back.reflected(), &reflected);
        assert_eq!(back.view(), &bookinfo_view());
        assert_eq!(back.backlog(), 0);
    }

    #[test]
    fn irrelevant_schema_change_commits_quietly() {
        let (mut mgr, mut port) = manager(Strategy::Pessimistic);
        port.commit(
            dyno_source::SourceId(1),
            SourceUpdate::Schema(SchemaChange::AddAttribute {
                relation: "Catalog".into(),
                attr: dyno_relational::Attribute::new("ISBN", dyno_relational::AttrType::Str),
                default: dyno_relational::Value::Null,
            }),
        )
        .unwrap();
        mgr.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(mgr.mv().len(), 1, "extent untouched");
        assert_eq!(mgr.stats().aborts, 0);
    }
}
