//! [`FaultedPort`]: a [`SourcePort`] decorator that routes both legs of the
//! warehouse/source conversation through a [`Transport`] and recovers from
//! whatever the transport does to them.
//!
//! * **Delivery leg** (wrapper → UMQ): every message the inner port commits
//!   passes through [`Transport::send`]; what comes out (possibly dropped,
//!   duplicated, reordered, delayed) is resequenced by a
//!   [`Recovery`] — exactly-once, in-order per source, with NACK/refetch on
//!   gaps — before the view manager sees it.
//! * **Query leg** (maintenance engine → source): every query first asks
//!   [`Transport::query_fault`]. Timeouts and transient errors are retried
//!   under a [`RetryPolicy`] (exponential backoff + deterministic jitter,
//!   charged to the simulated clock via [`SourcePort::advance_wait`]); a
//!   crashed source is waited out within the retry budget, and beyond it the
//!   query fails with [`RelationalError::Unavailable`] — which parks the
//!   queue entry instead of aborting it.
//!
//! ## Why compensation stays correct under chaos
//!
//! SWEEP compensation subtracts, from each maintenance-query result, the
//! effect of every *pending-but-unprocessed* update the query already saw.
//! That argument needs one invariant: an update visible in a query result
//! must be in the manager's pending/drained set by compensation time. A
//! delayed message would break it — the query sees the commit, the UMQ does
//! not. [`FaultedPort`] restores the invariant by force-flushing
//! ([`Recovery::sync_to`]) every source the query touched, up to the version
//! the query saw, immediately after each execution — including failed ones,
//! so in-exec schema-change arrivals reach the queue and correction can see
//! them. Uninvolved sources' messages may stay delayed: the view does not
//! advance for them, so consistency is unaffected.

use std::collections::HashMap;

use dyno_fault::rng::Rng;
use dyno_fault::{QueryFault, Recovery, RetryPolicy, Transport};
use dyno_obs::{Collector, Counter};
use dyno_relational::{QueryResult, Relation, RelationalError, SpjQuery};
use dyno_source::{SourceId, UpdateMessage};

use crate::engine::{BoundTable, MaintEvent, SourcePort};

/// `retry.*` registry handles.
#[derive(Debug, Clone, Default)]
struct RetryCounters {
    attempts: Counter,
    recoveries: Counter,
    exhausted: Counter,
    wait_us: Counter,
}

impl RetryCounters {
    fn bind(obs: &Collector) -> Self {
        RetryCounters {
            attempts: obs.counter("retry.attempts"),
            recoveries: obs.counter("retry.recoveries"),
            exhausted: obs.counter("retry.exhausted"),
            wait_us: obs.counter("retry.wait_us"),
        }
    }
}

/// A [`SourcePort`] wrapped in a (possibly faulty) transport plus the
/// recovery machinery that makes the combination safe to maintain views
/// over. With [`dyno_fault::Direct`] it is a zero-fault passthrough.
#[derive(Debug, Clone)]
pub struct FaultedPort<P, T> {
    inner: P,
    transport: T,
    recovery: Recovery,
    retry: RetryPolicy,
    /// Jitter PRNG — separate from the transport's so adding retries never
    /// perturbs the fault sequence.
    rng: Rng,
    /// In-order messages released by recovery, awaiting `drain_arrivals`.
    out: Vec<UpdateMessage>,
    /// Every source in the space (sorted) — the fallback scope when a query
    /// references a relation `locate` no longer knows.
    all_sources: Vec<SourceId>,
    counters: RetryCounters,
}

impl<P: SourcePort, T: Transport> FaultedPort<P, T> {
    /// Wraps `inner` behind `transport`. `baseline` must be the per-source
    /// versions the view already reflects (wrap *after*
    /// `ViewManager::initialize`), so pre-wrap commits are not refetched.
    pub fn new(inner: P, transport: T, baseline: HashMap<SourceId, u64>) -> Self {
        let mut all_sources: Vec<SourceId> = baseline.keys().copied().collect();
        all_sources.sort_unstable();
        FaultedPort {
            inner,
            transport,
            recovery: Recovery::new(baseline),
            retry: RetryPolicy::default(),
            rng: Rng::new(0x5eed_f0c5),
            out: Vec::new(),
            all_sources,
            counters: RetryCounters::default(),
        }
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Reseeds the jitter PRNG.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = Rng::new(seed);
        self
    }

    /// Binds the `retry.*` and recovery `fault.*` counters into a
    /// collector's registry.
    pub fn with_obs(mut self, obs: &Collector) -> Self {
        self.counters = RetryCounters::bind(obs);
        self.recovery = self.recovery.with_obs(obs);
        self
    }

    /// Disables delivery recovery (dedupe/resequencing/NACK) — the
    /// deliberately broken configuration the chaos suite must catch.
    pub fn with_recovery(mut self, enabled: bool) -> Self {
        self.recovery = self.recovery.with_recovery(enabled);
        self
    }

    /// The wrapped port.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped port (test/scenario drivers commit
    /// through here).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// The transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Tears the port down to its parts — a warehouse **kill**. The recovery
    /// sequencer, its reorder buffers, and the undrained `out` messages die
    /// with the process (that is the point: only WAL + transport survive);
    /// the inner port and transport are the outside world and live on.
    pub fn into_parts(self) -> (P, T) {
        (self.inner, self.transport)
    }

    /// Re-subscribes after a restart: asks the transport to replay, per
    /// source, everything beyond what this (rebuilt) port's baseline says
    /// was delivered. With the baseline taken from recovered WAL marks, the
    /// replay covers exactly the window between the last durable admission
    /// and the crash; the recovery sequencer and the warehouse's ingress
    /// gate dedupe any overlap.
    pub fn resubscribe(&mut self) {
        let sources = self.all_sources.clone();
        for s in sources {
            let after = self.recovery.delivered(s);
            let replayed = self.transport.replay(s, after);
            if !replayed.is_empty() {
                self.recovery.admit(replayed, &mut self.transport, &mut self.out);
            }
        }
    }

    /// Tells the transport that `source`'s messages through `upto` are
    /// durable on the warehouse side (checkpointed or applied) and need not
    /// be retained for replay.
    pub fn ack_durable(&mut self, source: SourceId, upto: u64) {
        self.transport.ack(source, upto);
    }

    /// The earliest future simulated µs at which transport-held state
    /// changes on its own (delayed delivery due / crashed source restart).
    pub fn next_wakeup_us(&self) -> Option<u64> {
        self.transport.next_event_us(self.inner.now_us())
    }

    /// Total faults the transport has injected.
    pub fn injected_total(&self) -> u64 {
        self.transport.injected_total()
    }

    /// Force-delivers everything the transport still holds (quiescence
    /// flush; the scenario driver calls this once commits stop).
    pub fn flush_all(&mut self) {
        self.ingest_arrivals();
        self.recovery.flush_all(&mut self.transport, &mut self.out);
    }

    /// Moves fresh inner-port commits through the transport and recovery
    /// into the ordered `out` buffer, along with any held deliveries that
    /// have fallen due.
    fn ingest_arrivals(&mut self) {
        let now = self.inner.now_us();
        let mut delivered = self.transport.poll(now);
        let committed = self.inner.drain_arrivals();
        if !committed.is_empty() {
            delivered.extend(self.transport.send(committed, now));
        }
        if !delivered.is_empty() {
            self.recovery.admit(delivered, &mut self.transport, &mut self.out);
        }
    }

    /// The consistency-critical flush: everything `sources` committed up to
    /// the versions a just-executed query saw must reach the UMQ before
    /// compensation runs.
    fn sync_sources(&mut self, sources: &[SourceId]) {
        for &s in sources {
            let seen = self.inner.source_version(s);
            self.recovery.sync_to(s, seen, &mut self.transport, &mut self.out);
        }
    }

    /// Runs `op` against the inner port under the transport's query-fault
    /// oracle, retrying per policy. `sources` are the sources `op` contacts
    /// (fault rolls and post-success sync are per source, in sorted order
    /// for determinism).
    fn with_query_faults<R>(
        &mut self,
        sources: &[SourceId],
        mut op: impl FnMut(&mut P) -> Result<R, RelationalError>,
    ) -> Result<R, RelationalError> {
        let mut attempt: u32 = 0;
        let mut waited_us: u64 = 0;
        loop {
            let now = self.inner.now_us();
            let fault =
                sources.iter().find_map(|&s| self.transport.query_fault(s, now).map(|f| (s, f)));
            match fault {
                None => {
                    let result = op(&mut self.inner);
                    // Arrivals and the per-source flush must happen even on
                    // Err: an in-exec schema-change message has to reach the
                    // queue or correction never sees it.
                    self.ingest_arrivals();
                    self.sync_sources(sources);
                    if attempt > 0 {
                        self.counters.recoveries.inc();
                    }
                    return result;
                }
                Some((_, QueryFault::Timeout)) => {
                    // The query ran and cost source time; only the answer
                    // was lost. Execute and discard.
                    let _ = op(&mut self.inner);
                    self.ingest_arrivals();
                    self.sync_sources(sources);
                }
                Some((_, QueryFault::Transient)) => {
                    // Refused before running: only backoff is charged.
                }
                Some((source, QueryFault::SourceDown { until_us })) => {
                    let wait = until_us.saturating_sub(now).max(1);
                    if waited_us.saturating_add(wait) > self.retry.budget_us {
                        self.counters.exhausted.inc();
                        return Err(unavailable(source, "crash outlives retry budget"));
                    }
                    waited_us += wait;
                    self.counters.wait_us.add(wait);
                    self.inner.advance_wait(wait);
                    // The wait is not an attempt: the restart moment is
                    // known, so waiting for it always "succeeds".
                    self.ingest_arrivals();
                    continue;
                }
            }
            attempt += 1;
            self.counters.attempts.inc();
            if attempt >= self.retry.max_attempts {
                self.counters.exhausted.inc();
                return Err(unavailable(
                    sources.first().copied().unwrap_or(SourceId(0)),
                    "retry attempts exhausted",
                ));
            }
            let backoff = self.retry.backoff_us(attempt, &mut self.rng);
            if waited_us.saturating_add(backoff) > self.retry.budget_us {
                self.counters.exhausted.inc();
                return Err(unavailable(
                    sources.first().copied().unwrap_or(SourceId(0)),
                    "retry budget exhausted",
                ));
            }
            waited_us += backoff;
            self.counters.wait_us.add(backoff);
            self.inner.advance_wait(backoff);
        }
    }

    /// The distinct sources hosting the query's unbound tables, sorted so
    /// fault rolls are deterministic.
    ///
    /// If any unbound table cannot be located, the view's name map is stale
    /// — typically a schema change renamed or dropped the relation and the
    /// announcing message is still in flight (or was dropped). The query is
    /// about to fail as broken, and the announcement MUST reach the queue
    /// or the scheduler re-runs the same broken query forever; scoping to
    /// every source makes the post-execution sync recover it.
    fn involved_sources(&mut self, query: &SpjQuery, bound: &[BoundTable]) -> Vec<SourceId> {
        let mut sources = Vec::new();
        for t in query.tables.iter().filter(|t| !bound.iter().any(|b| &b.name == *t)) {
            match self.inner.locate(t) {
                Some(s) => sources.push(s),
                None => return self.all_sources.clone(),
            }
        }
        sources.sort_unstable();
        sources.dedup();
        sources
    }
}

fn unavailable(source: SourceId, reason: &str) -> RelationalError {
    RelationalError::Unavailable { source: source.to_string(), reason: reason.to_string() }
}

impl<P: SourcePort, T: Transport> SourcePort for FaultedPort<P, T> {
    fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }

    fn now_us(&self) -> u64 {
        self.inner.now_us()
    }

    fn advance_wait(&mut self, us: u64) {
        self.inner.advance_wait(us);
    }

    fn execute(
        &mut self,
        query: &SpjQuery,
        bound: &[BoundTable],
    ) -> Result<QueryResult, RelationalError> {
        let sources = self.involved_sources(query, bound);
        self.with_query_faults(&sources, |p| p.execute(query, bound))
    }

    fn fetch_relation_at(
        &mut self,
        source: SourceId,
        relation: &str,
        version: u64,
    ) -> Result<Relation, RelationalError> {
        self.with_query_faults(&[source], |p| p.fetch_relation_at(source, relation, version))
    }

    fn locate(&mut self, relation: &str) -> Option<SourceId> {
        self.inner.locate(relation)
    }

    fn source_version(&mut self, source: SourceId) -> u64 {
        self.inner.source_version(source)
    }

    fn charge_local(&mut self, tuples: u64) {
        self.inner.charge_local(tuples);
    }

    fn charge_mv_write(&mut self, tuples: u64) {
        self.inner.charge_mv_write(tuples);
    }

    fn drain_arrivals(&mut self) -> Vec<UpdateMessage> {
        self.ingest_arrivals();
        std::mem::take(&mut self.out)
    }

    fn on_maintenance_event(&mut self, event: MaintEvent) {
        self.inner.on_maintenance_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InProcessPort;
    use crate::manager::ViewManager;
    use crate::testkit::*;
    use dyno_core::Strategy;
    use dyno_fault::{ChaosTransport, Direct, FaultProfile};
    use dyno_relational::SourceUpdate;

    fn faulted_manager<T: Transport>(transport: T) -> (ViewManager, FaultedPort<InProcessPort, T>) {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut mgr = ViewManager::new(bookinfo_view(), info, Strategy::Pessimistic);
        mgr.initialize(&mut port).unwrap();
        let baseline = port.space().versions();
        (mgr, FaultedPort::new(port, transport, baseline))
    }

    fn plain_manager() -> (ViewManager, InProcessPort) {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut mgr = ViewManager::new(bookinfo_view(), info, Strategy::Pessimistic);
        mgr.initialize(&mut port).unwrap();
        (mgr, port)
    }

    fn commit_three_dus(port: &mut InProcessPort) {
        for (i, title) in
            [(10, "Data Integration Guide"), (11, "Chaos Engineering"), (12, "Query Processing")]
        {
            port.commit(
                dyno_source::SourceId(0),
                SourceUpdate::Data(insert_item(i, title, "Adams", 36)),
            )
            .unwrap();
        }
    }

    #[test]
    fn direct_transport_is_transparent() {
        let (mut mgr_f, mut fport) = faulted_manager(Direct);
        let (mut mgr_p, mut plain) = plain_manager();
        commit_three_dus(fport.inner_mut());
        commit_three_dus(&mut plain);
        mgr_f.run_to_quiescence(&mut fport, 100).unwrap();
        mgr_p.run_to_quiescence(&mut plain, 100).unwrap();
        assert_eq!(mgr_f.mv().extent(), mgr_p.mv().extent());
        assert_eq!(mgr_f.stats(), mgr_p.stats());
        assert_eq!(mgr_f.dyno_stats(), mgr_p.dyno_stats());
        assert_eq!(fport.injected_total(), 0);
    }

    #[test]
    fn drop_dup_chaos_converges_to_the_same_extent() {
        let obs = Collector::wall();
        let (mut mgr_p, mut plain) = plain_manager();
        commit_three_dus(&mut plain);
        mgr_p.run_to_quiescence(&mut plain, 100).unwrap();

        for seed in 0..10 {
            let transport = ChaosTransport::new(FaultProfile::drop_dup(), seed).with_obs(&obs);
            let (mut mgr, mut fport) = faulted_manager(transport);
            commit_three_dus(fport.inner_mut());
            mgr.run_to_quiescence(&mut fport, 200).unwrap();
            // Dropped stragglers may still be held; a quiescence flush
            // delivers them, then maintenance finishes.
            fport.flush_all();
            mgr.run_to_quiescence(&mut fport, 200).unwrap();
            assert_eq!(
                mgr.mv().extent(),
                mgr_p.mv().extent(),
                "seed {seed}: chaos run must converge to the fault-free extent"
            );
            assert_eq!(mgr.stats().du_committed, 3, "seed {seed}: each DU exactly once");
        }
        assert!(obs.registry().counter_value("fault.injected_total").unwrap_or(0) > 0);
    }

    #[test]
    fn duplicated_delivery_of_every_message_changes_nothing() {
        // Satellite regression: dup_pm = 1000 duplicates every single
        // message; the dedupe line must make that a no-op.
        let obs = Collector::wall();
        let profile = FaultProfile { dup_pm: 1000, ..FaultProfile::quiet() };
        let transport = ChaosTransport::new(profile, 7).with_obs(&obs);
        let (mut mgr, mut fport) = faulted_manager(transport);
        fport = fport.with_obs(&obs);
        commit_three_dus(fport.inner_mut());
        mgr.run_to_quiescence(&mut fport, 200).unwrap();

        let (mut mgr_p, mut plain) = plain_manager();
        commit_three_dus(&mut plain);
        mgr_p.run_to_quiescence(&mut plain, 100).unwrap();

        assert_eq!(mgr.mv().extent(), mgr_p.mv().extent(), "extent unchanged by duplication");
        assert_eq!(mgr.stats().du_committed, 3);
        let dropped = obs.registry().counter_value("fault.duplicates_dropped").unwrap_or(0);
        assert_eq!(dropped, 3, "every duplicated copy was dropped at the boundary");
    }

    #[test]
    fn timeouts_are_retried_to_success() {
        let obs = Collector::wall();
        // ~50% of queries time out; retries must still land every DU.
        let profile = FaultProfile { timeout_pm: 500, ..FaultProfile::quiet() };
        let transport = ChaosTransport::new(profile, 11).with_obs(&obs);
        let (mut mgr, mut fport) = faulted_manager(transport);
        fport = fport.with_obs(&obs);
        commit_three_dus(fport.inner_mut());
        mgr.run_to_quiescence(&mut fport, 200).unwrap();
        assert_eq!(mgr.stats().du_committed, 3);
        assert!(obs.registry().counter_value("retry.attempts").unwrap_or(0) > 0);
        assert_eq!(
            obs.registry().counter_value("retry.exhausted").unwrap_or(0),
            0,
            "50% timeout rate never exhausts six attempts"
        );
    }

    #[test]
    fn permanent_fault_exhausts_and_parks() {
        // Every query times out: retries exhaust, the failure surfaces as
        // Unavailable, and the manager parks the entry instead of failing.
        let profile = FaultProfile { timeout_pm: 1000, ..FaultProfile::quiet() };
        let (mut mgr, mut fport) = faulted_manager(ChaosTransport::new(profile, 3));
        commit_three_dus(fport.inner_mut());
        let outcome = mgr.step(&mut fport).unwrap();
        assert_eq!(outcome, dyno_core::StepOutcome::Parked);
        assert_eq!(mgr.dyno_stats().parked, 1);
        assert_eq!(mgr.backlog(), 3, "nothing consumed, nothing lost");
        assert_eq!(mgr.stats().aborts, 0, "a park is not an abort");
    }
}
