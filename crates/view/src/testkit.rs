//! The paper's running example as a reusable fixture: the `BookInfo` view
//! (Query (1)) over a Retailer source (`Store`, `Item`), a Library source
//! (`Catalog`) and a Digest source (`ReaderDigest`), plus the information-
//! space entries behind the rewrites of Queries (3)–(5).
//!
//! Used by unit tests, integration tests, and the runnable examples.

use dyno_relational::ColRef;
use dyno_relational::{
    AttrType, Catalog, DataUpdate, Delta, Relation, Schema, SchemaChange, SpjQuery, Tuple, Value,
};
use dyno_source::{AttributeReplacement, RelationReplacement, SourceId, SourceServer, SourceSpace};

use crate::viewdef::ViewDefinition;

/// Schema of the Retailer's `Store` relation.
pub fn store_schema() -> Schema {
    Schema::of("Store", &[("SID", AttrType::Int), ("StoreName", AttrType::Str)])
}

/// Schema of the Retailer's `Item` relation.
pub fn item_schema() -> Schema {
    Schema::of(
        "Item",
        &[
            ("SID", AttrType::Int),
            ("Book", AttrType::Str),
            ("Author", AttrType::Str),
            ("Price", AttrType::Int),
        ],
    )
}

/// Schema of the Library's `Catalog` relation.
pub fn catalog_schema() -> Schema {
    Schema::of(
        "Catalog",
        &[
            ("Title", AttrType::Str),
            ("Author", AttrType::Str),
            ("Category", AttrType::Str),
            ("Publisher", AttrType::Str),
            ("Review", AttrType::Str),
        ],
    )
}

/// Schema of the Digest's `ReaderDigest` relation (the alternative review
/// source of paper Query (4)).
pub fn readerdigest_schema() -> Schema {
    Schema::of("ReaderDigest", &[("Article", AttrType::Str), ("Comments", AttrType::Str)])
}

/// The three-source space of the running example, pre-populated so the view
/// has matching rows, with the information-space replacements registered.
pub fn bookinfo_space() -> SourceSpace {
    let mut space = SourceSpace::new();

    // Source 0: Retailer (Store, Item).
    let mut retailer = Catalog::new();
    retailer
        .add_relation(
            Relation::from_tuples(
                store_schema(),
                [
                    Tuple::of([Value::from(1), Value::str("BN")]),
                    Tuple::of([Value::from(10), Value::str("Amazon")]),
                ],
            )
            .expect("static fixture"),
        )
        .expect("static fixture");
    retailer
        .add_relation(
            Relation::from_tuples(
                item_schema(),
                [Tuple::of([
                    Value::from(1),
                    Value::str("Databases"),
                    Value::str("Ullman"),
                    Value::from(50),
                ])],
            )
            .expect("static fixture"),
        )
        .expect("static fixture");
    space.add_server(SourceServer::new(SourceId(0), "Retailer", retailer));

    // Source 1: Library (Catalog).
    let mut library = Catalog::new();
    library
        .add_relation(
            Relation::from_tuples(
                catalog_schema(),
                [
                    Tuple::of([
                        Value::str("Databases"),
                        Value::str("Ullman"),
                        Value::str("CS"),
                        Value::str("Prentice"),
                        Value::str("classic"),
                    ]),
                    Tuple::of([
                        Value::str("Data Integration Guide"),
                        Value::str("Adams"),
                        Value::str("Engineering"),
                        Value::str("Princeton"),
                        Value::str("good"),
                    ]),
                ],
            )
            .expect("static fixture"),
        )
        .expect("static fixture");
    space.add_server(SourceServer::new(SourceId(1), "Library", library));

    // Source 2: Digest (ReaderDigest).
    let mut digest = Catalog::new();
    digest
        .add_relation(
            Relation::from_tuples(
                readerdigest_schema(),
                [
                    Tuple::of([Value::str("Databases"), Value::str("thorough")]),
                    Tuple::of([Value::str("Data Integration Guide"), Value::str("insightful")]),
                ],
            )
            .expect("static fixture"),
        )
        .expect("static fixture");
    space.add_server(SourceServer::new(SourceId(2), "Digest", digest));

    // Information space: Review → ReaderDigest.Comments (paper Query (4));
    // Store+Item → StoreItems (paper Figure 2 / Query (3)).
    space.info_mut().add_attr_replacement(AttributeReplacement {
        dropped: ColRef::new("Catalog", "Review"),
        replacement: ColRef::new("ReaderDigest", "Comments"),
        join: (ColRef::new("Catalog", "Title"), ColRef::new("ReaderDigest", "Article")),
    });
    space.info_mut().add_relation_replacement(RelationReplacement {
        dropped: vec!["Store".into(), "Item".into()],
        replacement: "StoreItems".into(),
        attr_map: vec![
            (ColRef::new("Store", "StoreName"), ColRef::new("StoreItems", "StoreName")),
            (ColRef::new("Item", "Book"), ColRef::new("StoreItems", "Book")),
            (ColRef::new("Item", "Author"), ColRef::new("StoreItems", "Author")),
            (ColRef::new("Item", "Price"), ColRef::new("StoreItems", "Price")),
        ],
    });
    space
}

/// The `BookInfo` view of paper Query (1).
pub fn bookinfo_view() -> ViewDefinition {
    let q = SpjQuery::over(["Store", "Item", "Catalog"])
        .select("Store", "StoreName")
        .select("Item", "Book")
        .select("Item", "Author")
        .select("Item", "Price")
        .select("Catalog", "Publisher")
        .select("Catalog", "Category")
        .select("Catalog", "Review")
        .join_eq(("Store", "SID"), ("Item", "SID"))
        .join_eq(("Item", "Book"), ("Catalog", "Title"))
        .build();
    ViewDefinition::new("BookInfo", q)
}

/// Schema of the `StoreItems` relation produced by re-tuning the
/// XML-to-relational mapping (paper Figure 2).
pub fn storeitems_schema() -> Schema {
    Schema::of(
        "StoreItems",
        &[
            ("StoreName", AttrType::Str),
            ("Book", AttrType::Str),
            ("Author", AttrType::Str),
            ("Price", AttrType::Int),
        ],
    )
}

/// Builds the `ReplaceRelations` schema change collapsing `Store` and `Item`
/// into `StoreItems` (paper Figure 2 / SC1 of Section 3.5), populating the
/// replacement relation from the given current extents.
pub fn storeitems_change(store: &Relation, item: &Relation) -> SchemaChange {
    let sid_s = store.schema().index_of("SID").expect("fixture schema");
    let name_s = store.schema().index_of("StoreName").expect("fixture schema");
    let sid_i = item.schema().index_of("SID").expect("fixture schema");
    let mut out = Relation::empty(storeitems_schema());
    for (it, ic) in item.rows().iter() {
        for (st, sc) in store.rows().iter() {
            if st.get(sid_s) == it.get(sid_i) {
                let joined = Tuple::new(vec![
                    st.get(name_s).clone(),
                    it.get(1).clone(),
                    it.get(2).clone(),
                    it.get(3).clone(),
                ]);
                for _ in 0..(ic * sc) {
                    out.insert(joined.clone()).expect("typed by construction");
                }
            }
        }
    }
    SchemaChange::ReplaceRelations {
        dropped: vec!["Store".into(), "Item".into()],
        replacement: Box::new(out),
    }
}

/// A data update inserting one `Item` row.
pub fn insert_item(sid: i64, book: &str, author: &str, price: i64) -> DataUpdate {
    DataUpdate::new(
        Delta::inserts(
            item_schema(),
            [Tuple::of([
                Value::from(sid),
                Value::str(book),
                Value::str(author),
                Value::from(price),
            ])],
        )
        .expect("typed by construction"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::eval;

    #[test]
    fn fixture_view_has_matching_rows() {
        let space = bookinfo_space();
        let view = bookinfo_view();
        let out = eval(&view.query, &space.provider()).unwrap();
        // 'Databases' joins Store 1 / Catalog 'Databases' → exactly one row.
        assert_eq!(out.weight(), 1);
    }

    #[test]
    fn storeitems_change_preserves_join_content() {
        let space = bookinfo_space();
        let store = space.server(SourceId(0)).catalog().get("Store").unwrap();
        let item = space.server(SourceId(0)).catalog().get("Item").unwrap();
        match storeitems_change(store, item) {
            SchemaChange::ReplaceRelations { replacement, .. } => {
                assert_eq!(replacement.len(), 1, "one matching SID pair");
                let q = SpjQuery::over(["StoreItems"])
                    .select("StoreItems", "StoreName")
                    .select("StoreItems", "Book")
                    .build();
                let mut space2 = space.clone();
                space2
                    .commit(
                        SourceId(0),
                        dyno_relational::SourceUpdate::Schema(storeitems_change(store, item)),
                    )
                    .unwrap();
                let out = eval(&q, &space2.provider()).unwrap();
                assert_eq!(out.weight(), 1);
            }
            other => panic!("unexpected change {other}"),
        }
    }
}
