//! A multi-view warehouse: several materialized views over the same source
//! space, maintained through **one** Update Message Queue and one Dyno
//! schedule.
//!
//! The paper presents a single view for clarity, but its framework
//! (Figure 3) is a warehouse: the UMQ buffers every source update once, and
//! each update's maintenance must be correct for *every* view. The
//! scheduler-side generalizations are small and instructive:
//!
//! - a schema change is view-relevant (draws concurrent-dependency edges)
//!   iff it invalidates **any** view's definition — transitively, via the
//!   same shadow-evolution walk the single-view manager uses;
//! - one queue entry is maintained against all views **atomically**: a
//!   broken query during any view's maintenance aborts the entry for all of
//!   them (their already-computed deltas are discarded — abort cost), so
//!   every view reflects the same per-source state vector at all times.

use std::collections::{HashMap, VecDeque};

use dyno_core::{
    CorrectionPolicy, Dyno, DynoStats, MaintainOutcome, Maintainer, StepOutcome, Strategy, Umq,
    UpdateKind, UpdateMeta, ViewDag,
};
use dyno_durable::storage::Storage;
use dyno_obs::{field, Collector, Counter, Gauge, Level, OpPhase, StalenessTracker};
use dyno_relational::{thread_stats, ExecStats, RelationalError, SignedBag, SourceUpdate, Value};
use dyno_source::{InfoSpace, SourceId, UpdateMessage};

use crate::batch::{adapt_batch_observed, AdaptationMode, Adapted, BatchFailure};
use crate::engine::{MaintEvent, SourcePort};
use crate::ingress::IngressGate;
use crate::manager::{ReflectedVersions, ViewError, ViewStats};
use crate::mview::MaterializedView;
use crate::plan::PlanCache;
use crate::subplan::SharedSubplans;
use crate::viewdef::ViewDefinition;
use crate::vm::{prof_op, prof_start, sweep_maintain_observed, sweep_maintain_shared, Prof};
use crate::wal::{
    sorted_versions, AppliedChange, AppliedRecord, CrashPlan, DurableLog, DurableState,
    RecoverError, RecoverReport, ReplicaTailEvent, ViewState,
};

/// One view's state inside the warehouse. Views advance independently: each
/// slot carries its own reflected version vector and a queue of batches it
/// had to defer (its source was unavailable) while its peers moved on.
#[derive(Debug, Clone)]
struct ViewSlot {
    view: ViewDefinition,
    mv: MaterializedView,
    stats: ViewStats,
    plans: PlanCache,
    /// Per-source versions *this* view reflects.
    reflected: ReflectedVersions,
    /// Batches committed warehouse-wide but not yet applied to this view,
    /// in arrival order (the per-view drain replays them FIFO).
    deferred: VecDeque<Vec<UpdateMeta<UpdateMessage>>>,
    /// SLA tier: lower tiers are refreshed/drained first.
    tier: u8,
    /// Staleness-tracker lane, when a tracker is attached.
    lane: Option<usize>,
    /// Sources this view's definition reads (resolved at initialize).
    sources: Vec<u32>,
}

impl ViewSlot {
    fn new(view: ViewDefinition, tier: u8) -> Self {
        let mv = MaterializedView::new(view.name.clone(), view.output_cols());
        ViewSlot {
            view,
            mv,
            stats: ViewStats::default(),
            plans: PlanCache::new(),
            reflected: HashMap::new(),
            deferred: VecDeque::new(),
            tier,
            lane: None,
            sources: Vec::new(),
        }
    }

    fn sorted_reflected(&self) -> Vec<(u32, u64)> {
        sorted_versions(self.reflected.iter().map(|(s, v)| (s.0, *v)))
    }
}

/// What one batch does to one view slot.
enum Disposition {
    /// The batch touches this view: maintenance runs against it.
    Active,
    /// No updated relation is referenced: the extent is untouched, the
    /// view's vector still advances (irrelevant-by-relation updates cannot
    /// change its evaluation).
    Skip,
    /// The slot already holds deferred batches (or its source turned out to
    /// be unavailable): the batch joins its FIFO queue, the vector freezes.
    Defer,
}

/// A staged (computed but uncommitted) change for one view.
enum Staged {
    Delta(crate::vm::ViewDelta),
    Adapted(Adapted),
}

/// One committed batch waiting for the replication engine to publish it to
/// peer warehouses (see [`Warehouse::take_published`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingPublish {
    /// Update keys of the committed batch.
    pub keys: Vec<u64>,
    /// Per-view changed rows, in slot order (a full replace contributes its
    /// whole new extent; untouched/deferring views contribute nothing) —
    /// the engine derives the changed `(view, key)` post-images from these.
    pub rows: Vec<SignedBag>,
}

/// Pre-registered `exec.*` registry counters mirroring the delta executor's
/// thread-local [`ExecStats`]. The warehouse samples the thread-local once
/// per [`Warehouse::step`] and folds the delta in here, so `monitor` /
/// `stats` surface executor-level cost (scans, index probes, join steps,
/// cartesian fallbacks, cancelled weights) without the profiler being on.
#[derive(Debug, Clone, Default)]
struct ExecCounters {
    rows_scanned: Counter,
    index_probes: Counter,
    index_join_steps: Counter,
    hash_join_steps: Counter,
    cartesian_fallbacks: Counter,
    weights_cancelled: Counter,
}

impl ExecCounters {
    fn registered(obs: &Collector) -> Self {
        ExecCounters {
            rows_scanned: obs.counter("exec.rows_scanned"),
            index_probes: obs.counter("exec.index_probes"),
            index_join_steps: obs.counter("exec.index_join_steps"),
            hash_join_steps: obs.counter("exec.hash_join_steps"),
            cartesian_fallbacks: obs.counter("exec.cartesian_fallbacks"),
            weights_cancelled: obs.counter("exec.weights_cancelled"),
        }
    }

    fn add(&self, d: &ExecStats) {
        self.rows_scanned.add(d.rows_scanned);
        self.index_probes.add(d.index_probes);
        self.index_join_steps.add(d.index_join_steps);
        self.hash_join_steps.add(d.hash_join_steps);
        self.cartesian_fallbacks.add(d.cartesian_fallbacks);
        self.weights_cancelled.add(d.weights_cancelled);
    }
}

/// The construction-time rejection for the documented-unsupported
/// [`Warehouse::with_umq_bound`] + [`Warehouse::with_wal`] combination.
fn shedding_wal_conflict() -> ViewError {
    ViewError::Internal(RelationalError::InvalidQuery {
        reason: "a bounded UMQ (admission shedding) cannot be combined with a WAL: \
                 replay applies admitted deltas strictly, so recovery of a shedding \
                 warehouse would diverge from the live process"
            .into(),
    })
}

/// A set of materialized views maintained together.
#[derive(Debug, Clone)]
pub struct Warehouse {
    dyno: Dyno,
    umq: Umq<UpdateMessage>,
    slots: Vec<ViewSlot>,
    info: InfoSpace,
    reflected: ReflectedVersions,
    adaptation: AdaptationMode,
    last_error: Option<ViewError>,
    obs: Collector,
    ingress: IngressGate,
    wal: Option<DurableLog>,
    /// Admission bound on queued (unmaintained) updates; `None` = unbounded.
    umq_bound: Option<usize>,
    umq_depth: Gauge,
    umq_admitted: Counter,
    umq_shed: Counter,
    mv_clamped: Counter,
    staleness: Option<StalenessTracker>,
    /// Source → view dependency DAG (tiers + fan-out topology).
    dag: ViewDag,
    /// Whether overlapping views share first-hop join subplans per batch.
    share_subplans: bool,
    divergent: Counter,
    shared_hits: Counter,
    shared_misses: Counter,
    drains: Counter,
    /// Per-step samples of the delta executor's thread-local stats.
    exec: ExecCounters,
    /// True once a replication engine is attached: commits queue
    /// [`PendingPublish`] entries and auto-checkpoints are held while the
    /// buffer is non-empty (a checkpoint must not outrun the durable
    /// `Published` record for a commit it covers).
    replicate: bool,
    /// Commits awaiting publication to peer replicas.
    publish: Vec<PendingPublish>,
    /// Engine-owned replication snapshot, carried in every checkpoint.
    replica_ext: Vec<u8>,
    /// Post-checkpoint replication events restored by [`Warehouse::recover`].
    replica_tail: Vec<ReplicaTailEvent>,
}

impl Warehouse {
    /// An empty warehouse with the given detection strategy.
    pub fn new(info: InfoSpace, strategy: Strategy) -> Self {
        Warehouse {
            dyno: Dyno::new(strategy),
            umq: Umq::new(),
            slots: Vec::new(),
            info,
            reflected: HashMap::new(),
            adaptation: AdaptationMode::default(),
            last_error: None,
            obs: Collector::disabled(),
            ingress: IngressGate::new(),
            wal: None,
            umq_bound: None,
            umq_depth: Gauge::default(),
            umq_admitted: Counter::default(),
            umq_shed: Counter::default(),
            mv_clamped: Counter::default(),
            staleness: None,
            dag: ViewDag::new(),
            share_subplans: true,
            divergent: Counter::default(),
            shared_hits: Counter::default(),
            shared_misses: Counter::default(),
            drains: Counter::default(),
            exec: ExecCounters::default(),
            replicate: false,
            publish: Vec::new(),
            replica_ext: Vec::new(),
            replica_tail: Vec::new(),
        }
    }

    /// Enables/disables cross-view sharing of first-hop join subplans
    /// (default on). Shared and unshared execution produce bit-identical
    /// view deltas; the toggle exists for benchmarking and bisection.
    pub fn with_subplan_sharing(mut self, enabled: bool) -> Self {
        self.share_subplans = enabled;
        self
    }

    /// Overrides the correction policy. Mutates the scheduler in place, so
    /// builder-call order does not matter and accumulated stats / the bound
    /// collector survive.
    pub fn with_correction(mut self, policy: CorrectionPolicy) -> Self {
        self.dyno.set_policy(policy);
        self
    }

    /// Attaches an observability collector (see [`crate::ViewManager::with_obs`]).
    pub fn with_obs(mut self, obs: Collector) -> Self {
        self.dyno = self.dyno.clone().with_obs(obs.clone());
        self.ingress.bind_obs(&obs);
        // Pre-register the admission metrics so `monitor`/`stats` see the
        // series on an idle warehouse (same bug class as the PR 5 `wal.*`
        // fix: a name that only appears once traffic flows reads as a
        // missing metric, not a zero).
        self.umq_depth = obs.gauge("umq.depth");
        self.umq_admitted = obs.counter("umq.admitted");
        self.umq_shed = obs.counter("umq.shed");
        self.mv_clamped = obs.counter("view.clamped_rows");
        self.divergent = obs.counter("safety.divergent_verdicts");
        self.shared_hits = obs.counter("subplan.shared_hits");
        self.shared_misses = obs.counter("subplan.shared_misses");
        self.drains = obs.counter("view.deferred_drains");
        self.exec = ExecCounters::registered(&obs);
        // Replica apply lag feeds this histogram live (satellite of the
        // profiler work): pre-registering gives `monitor` a timeseries lane
        // and `forensics --replica` live quantiles even before any remote
        // delta lands.
        obs.histogram("replica.lag_us");
        self.obs = obs;
        self
    }

    /// Bounds the UMQ: once `capacity` updates are queued, further **data**
    /// updates are shed at admission (counted in `umq.shed`, recorded at
    /// lineage stage `shed`, reported to the staleness tracker). Schema
    /// changes are always admitted — shedding one would leave every view
    /// definition permanently behind the source schema.
    ///
    /// Shedding makes maintenance knowingly lossy: a later delete of a
    /// shed insert misses the extent, so bounded warehouses apply deltas
    /// clamped at zero and count the dropped magnitude in
    /// `view.clamped_rows` instead of failing. The combination with
    /// [`Warehouse::with_wal`] is rejected at construction: the WAL logs
    /// raw admitted deltas and its replay applies them strictly, so
    /// recovery of a shedding warehouse would diverge from the live
    /// process.
    pub fn with_umq_bound(mut self, capacity: usize) -> Result<Self, ViewError> {
        if self.wal.is_some() {
            return Err(shedding_wal_conflict());
        }
        self.umq_bound = Some(capacity);
        Ok(self)
    }

    /// Attaches a staleness tracker: [`Warehouse::initialize`] registers
    /// one lane per view (with the sources its definition reads), committed
    /// maintenance notes refreshes, and admission-control sheds are
    /// reported so they stop aging the views.
    pub fn with_staleness(mut self, tracker: StalenessTracker) -> Self {
        self.staleness = Some(tracker);
        self
    }

    /// Enables/disables UMQ admission dedupe+resequencing (default on); see
    /// [`crate::ViewManager::with_ingest_dedupe`].
    pub fn with_ingest_dedupe(mut self, enabled: bool) -> Self {
        self.ingress.set_dedupe(enabled);
        self
    }

    /// The warehouse's observability collector.
    pub fn obs(&self) -> &Collector {
        &self.obs
    }

    /// Selects the view-adaptation mode.
    pub fn with_adaptation(mut self, mode: AdaptationMode) -> Self {
        self.adaptation = mode;
        self
    }

    /// Attaches a write-ahead log and writes the first checkpoint. Call
    /// **after** [`Warehouse::initialize`] so the baseline snapshot covers
    /// the populated extents. Rejected when an admission bound is set —
    /// see [`Warehouse::with_umq_bound`].
    pub fn with_wal(mut self, mut log: DurableLog) -> Result<Self, ViewError> {
        if self.umq_bound.is_some() {
            return Err(shedding_wal_conflict());
        }
        log.bind_obs(&self.obs);
        self.wal = Some(log);
        self.checkpoint_now();
        Ok(self)
    }

    /// Snapshots everything recovery needs into a [`DurableState`].
    fn durable_state(&self) -> DurableState {
        DurableState {
            strategy: self.dyno.strategy(),
            policy: self.dyno.policy(),
            adaptation: self.adaptation,
            dedupe: self.ingress.dedupe_enabled(),
            views: self
                .slots
                .iter()
                .map(|s| ViewState {
                    sql: s.view.to_string(),
                    cols: s.mv.cols().to_vec(),
                    extent: s.mv.extent().clone(),
                    reflected: s.sorted_reflected(),
                    deferred: s.deferred.iter().cloned().collect(),
                    tier: s.tier,
                })
                .collect(),
            reflected: sorted_versions(self.reflected.iter().map(|(s, v)| (s.0, *v))),
            marks: self.ingress.marks(),
            batches: self.umq.nodes().iter().map(|b| b.to_vec()).collect(),
            sc_flag: self.umq.schema_change_flag(),
            ext: self.replica_ext.clone(),
            tail: Vec::new(),
        }
    }

    /// Forces a checkpoint now (no-op without a WAL or after a power cut).
    pub fn checkpoint_now(&mut self) {
        if self.wal.is_some() {
            let state = self.durable_state();
            if let Some(log) = self.wal.as_mut() {
                log.checkpoint(&state);
            }
        }
    }

    /// Arms a deterministic power cut on the attached WAL (chaos testing).
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        if let Some(log) = self.wal.as_mut() {
            log.arm(plan);
        }
    }

    /// True once the attached WAL's simulated power has been cut.
    pub fn wal_power_cut(&self) -> bool {
        self.wal.as_ref().is_some_and(DurableLog::power_cut)
    }

    /// The ingress gate's admitted high-water marks (resubscription baseline).
    pub fn ingress_marks(&self) -> Vec<(u32, u64)> {
        self.ingress.marks()
    }

    /// Rebuilds a warehouse from a WAL: replays checkpoint + tail, restores
    /// every view's definition and extent, the version vector, the ingress
    /// marks, and the UMQ (with merged-batch boundaries); re-parks batches
    /// whose `Intent` has no `Applied`; truncates any torn tail by writing a
    /// fresh checkpoint. Plan caches restart cold — they are derived data.
    ///
    /// `info` is the information space (replacement metadata is config, not
    /// warehouse state); `obs` receives `recover.*` counters and the reopened
    /// log's `wal.*` counters.
    pub fn recover(
        storage: Box<dyn Storage>,
        info: InfoSpace,
        obs: Collector,
    ) -> Result<(Self, RecoverReport), RecoverError> {
        let (log, state, report) = crate::wal::recover(storage, &obs)?;
        let mut dyno = Dyno::new(state.strategy).with_obs(obs.clone());
        dyno.set_policy(state.policy);
        let mut slots = Vec::with_capacity(state.views.len());
        let mut dag = ViewDag::new();
        for (idx, vs) in state.views.iter().enumerate() {
            let view = ViewDefinition::parse(&vs.sql, "view")
                .map_err(|e| RecoverError::Corrupt(format!("checkpointed view sql: {e}")))?;
            let mut slot = ViewSlot::new(view, vs.tier);
            slot.mv
                .replace(vs.cols.clone(), vs.extent.clone())
                .map_err(|e| RecoverError::Corrupt(format!("checkpointed extent: {e}")))?;
            slot.reflected = vs.reflected.iter().map(|&(s, v)| (SourceId(s), v)).collect();
            slot.deferred = vs.deferred.iter().cloned().collect();
            // The sources a view reads are exactly the ones it reflects.
            slot.sources = vs.reflected.iter().map(|&(s, _)| s).collect();
            dag.add_view(idx, &slot.sources, slot.tier);
            slots.push(slot);
        }
        let mut ingress = IngressGate::new();
        ingress.bind_obs(&obs);
        ingress.set_dedupe(state.dedupe);
        ingress.restore_marks(&state.marks);
        let umq = Umq::restore(state.batches, state.sc_flag);
        let umq_depth = obs.gauge("umq.depth");
        umq_depth.set(umq.update_count() as i64);
        let obs2 = obs.clone();
        let wh = Warehouse {
            dyno,
            umq,
            slots,
            info,
            reflected: state.reflected.iter().map(|&(s, v)| (SourceId(s), v)).collect(),
            adaptation: state.adaptation,
            last_error: None,
            umq_admitted: obs.counter("umq.admitted"),
            umq_shed: obs.counter("umq.shed"),
            mv_clamped: obs.counter("view.clamped_rows"),
            umq_depth,
            obs,
            ingress,
            wal: Some(log),
            umq_bound: None,
            staleness: None,
            dag,
            share_subplans: true,
            divergent: obs2.counter("safety.divergent_verdicts"),
            shared_hits: obs2.counter("subplan.shared_hits"),
            shared_misses: obs2.counter("subplan.shared_misses"),
            drains: obs2.counter("view.deferred_drains"),
            exec: ExecCounters::registered(&obs2),
            replicate: false,
            publish: Vec::new(),
            replica_ext: state.ext.clone(),
            replica_tail: state.tail.clone(),
        };
        Ok((wh, report))
    }

    /// Marks this warehouse as one peer of a replicated set: every commit
    /// queues a [`PendingPublish`] entry for the replication engine, and
    /// periodic checkpoints are held until the engine drains the buffer
    /// (via [`Warehouse::take_published`]) and logs the publish events.
    pub fn enable_replication(&mut self) {
        self.replicate = true;
    }

    /// Drains the commits awaiting publication, oldest first.
    pub fn take_published(&mut self) -> Vec<PendingPublish> {
        std::mem::take(&mut self.publish)
    }

    /// True while commits are queued for publication.
    pub fn publish_pending(&self) -> bool {
        !self.publish.is_empty()
    }

    /// Stores the engine's encoded snapshot; carried in every later
    /// checkpoint (see [`DurableState::ext`]).
    pub fn set_replica_ext(&mut self, ext: Vec<u8>) {
        self.replica_ext = ext;
    }

    /// The engine snapshot restored by [`Warehouse::recover`] (empty for a
    /// fresh or non-replicated warehouse).
    pub fn replica_ext(&self) -> &[u8] {
        &self.replica_ext
    }

    /// Drains the post-checkpoint replication events [`Warehouse::recover`]
    /// replayed from the WAL (the engine folds these exactly once).
    pub fn take_replica_tail(&mut self) -> Vec<ReplicaTailEvent> {
        std::mem::take(&mut self.replica_tail)
    }

    /// Writes the durable `Published` record for a commit's peer deltas —
    /// call **before** handing the messages to the network.
    pub fn log_replica_published(&mut self, bytes: &[u8]) {
        if let Some(log) = self.wal.as_mut() {
            log.log_replica_published(bytes);
        }
    }

    /// Applies one resolved peer delta: when `applied`, `key`'s rows in
    /// view `view` are replaced by the winning post-image `post` (returned
    /// as the signed delta that was merged); a superseded loser only logs.
    /// Either way the durable `Remote` record (with the engine's stamp
    /// `meta`) lands so registers and floors survive a kill — replay
    /// re-folds applied post-images idempotently, exactly once.
    pub fn apply_remote(
        &mut self,
        view: usize,
        key_col: usize,
        key: &Value,
        post: &SignedBag,
        applied: bool,
        meta: &[u8],
    ) -> Result<SignedBag, ViewError> {
        let prof: Option<Prof<'_>> =
            if self.obs.profile_on() { Some((&self.obs, "warehouse")) } else { None };
        let mut delta = SignedBag::new();
        if applied {
            let started = prof_start(prof);
            let slot = self.slots.get_mut(view).ok_or_else(|| {
                ViewError::Internal(RelationalError::InvalidQuery {
                    reason: format!("remote delta for unknown view {view}"),
                })
            })?;
            for (t, w) in slot.mv.extent().iter() {
                if t.get(key_col) == key {
                    delta.add(t.clone(), -w);
                }
            }
            for (t, w) in post.iter() {
                delta.add(t.clone(), w);
            }
            let cols = slot.mv.cols().to_vec();
            slot.mv.apply_delta(&cols, &delta).map_err(ViewError::Internal)?;
            prof_op(
                prof,
                started,
                "pipeline",
                2,
                OpPhase::Apply,
                "apply_remote",
                &slot.view.name,
                post.distinct_len() as u64,
                delta.distinct_len() as u64,
            );
        }
        if let Some(log) = self.wal.as_mut() {
            let started = prof_start(prof);
            log.log_replica_remote(view as u32, key_col as u32, key, post, applied, meta);
            prof_op(
                prof,
                started,
                "pipeline",
                3,
                OpPhase::Wal,
                "log_replica_remote",
                "remote",
                post.distinct_len() as u64,
                delta.distinct_len() as u64,
            );
        }
        Ok(delta)
    }

    /// Checkpoints when the record-count policy says so **and** no commit
    /// is awaiting publication (the engine calls this after draining).
    pub fn maybe_checkpoint(&mut self) {
        if self.publish.is_empty() && self.wal.as_ref().is_some_and(DurableLog::should_checkpoint) {
            self.checkpoint_now();
        }
    }

    /// Registers a view at tier 0. Call before [`Warehouse::initialize`].
    pub fn add_view(&mut self, view: ViewDefinition) {
        self.add_view_tiered(view, 0);
    }

    /// Registers a view at an SLA tier (lower = refreshed earlier when
    /// several views need the same batch, and drained first after a
    /// deferral). Call before [`Warehouse::initialize`].
    pub fn add_view_tiered(&mut self, view: ViewDefinition, tier: u8) {
        let idx = self.slots.len();
        self.slots.push(ViewSlot::new(view, tier));
        self.dag.add_view(idx, &[], tier);
    }

    /// Populates every view's extent from the sources' current states and
    /// records the reflected versions — global and per view — plus the
    /// source→view dependency DAG and (when attached) the staleness lanes.
    pub fn initialize(&mut self, port: &mut dyn SourcePort) -> Result<(), ViewError> {
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            let result = port.execute(&slot.view.query, &[]).map_err(ViewError::Internal)?;
            slot.mv.replace(result.cols, result.rows).map_err(ViewError::Internal)?;
            let mut sources: Vec<u32> = Vec::new();
            for table in &slot.view.query.tables {
                if let Some(sid) = port.locate(table) {
                    let v = port.source_version(sid);
                    self.reflected.insert(sid, v);
                    slot.reflected.insert(sid, v);
                    if !sources.contains(&sid.0) {
                        sources.push(sid.0);
                    }
                }
            }
            sources.sort_unstable();
            if let Some(tracker) = &self.staleness {
                slot.lane = Some(tracker.register_view(&slot.view.name, &sources));
            }
            self.dag.add_view(idx, &sources, slot.tier);
            slot.sources = sources;
        }
        // Messages for updates already included in the initial evaluation
        // must not be maintained again.
        port.drain_arrivals();
        Ok(())
    }

    /// Enqueues wrapper messages, classifying each schema change against
    /// *all* views.
    pub fn ingest<I: IntoIterator<Item = UpdateMessage>>(&mut self, messages: I) {
        for msg in messages {
            // The admission gate dedupes and resequences per source (see
            // `ViewManager::ingest`); the reflected floor covers messages
            // committed before initialization.
            let floor = self.reflected.get(&msg.source).copied().unwrap_or(0);
            for msg in self.ingress.admit(msg, floor) {
                // Admission control: at the bound, data updates are shed
                // (freshness is sacrificed, visibly); schema changes always
                // get through (correctness cannot be shed — a skipped SC
                // would wedge every view definition behind its source).
                let depth = self.umq.update_count();
                if !msg.is_schema_change() && self.umq_bound.is_some_and(|cap| depth >= cap) {
                    self.umq_shed.inc();
                    self.obs.prov(
                        msg.id.0,
                        dyno_obs::stage::SHED,
                        &[
                            field("source", msg.source.0),
                            field("version", msg.source_version),
                            field("depth", depth),
                        ],
                    );
                    if self.obs.tracing_on() {
                        self.obs.event(
                            Level::Warn,
                            "umq.shed",
                            &[field("source", msg.source.0), field("depth", depth)],
                        );
                    }
                    if let Some(tracker) = &self.staleness {
                        tracker.note_shed(msg.source.0, msg.source_version);
                    }
                    continue;
                }
                self.umq_admitted.inc();
                let kind = match &msg.update {
                    SourceUpdate::Data(_) => UpdateKind::Data,
                    SourceUpdate::Schema(sc) => {
                        // Per-view safety verdicts: the SC is scheduled
                        // first if it invalidates *any* view; a split
                        // verdict (safe for A, unsafe for B) is the
                        // cross-view safety divergence the monitor tracks.
                        let verdicts: Vec<bool> =
                            self.slots.iter().map(|s| s.view.is_invalidated_by(sc)).collect();
                        let any = verdicts.iter().any(|&b| b);
                        if any && !verdicts.iter().all(|&b| b) {
                            self.divergent.inc();
                            if self.obs.tracing_on() {
                                self.obs.event(
                                    Level::Info,
                                    "safety.divergent_verdict",
                                    &[field("update", msg.id.0)],
                                );
                            }
                        }
                        UpdateKind::Schema { invalidates_view: any }
                    }
                };
                self.obs.prov(
                    msg.id.0,
                    dyno_obs::stage::ADMIT,
                    &[
                        field("source", msg.source.0),
                        field("version", msg.source_version),
                        field("kind", if msg.is_schema_change() { "SC" } else { "DU" }),
                    ],
                );
                let meta = UpdateMeta::new(msg.id.0, msg.source.0, kind, msg);
                if let Some(log) = self.wal.as_mut() {
                    log.log_admitted(&meta);
                }
                self.umq.enqueue(meta);
            }
        }
        self.umq_depth.set(self.umq.update_count() as i64);
    }

    /// Drains arrivals, replays any view's deferred batches that have
    /// become maintainable (per-view catch-up, in tier order), then runs
    /// one scheduling step.
    ///
    /// The deferred drain runs *before* the scheduler because Dyno reports
    /// `Idle` on an empty queue without consulting the maintainer — a
    /// warehouse whose only remaining work is deferred would otherwise
    /// never catch up. A step whose scheduler was idle but whose drain
    /// committed reports `Committed`.
    pub fn step(&mut self, port: &mut dyn SourcePort) -> Result<StepOutcome, ViewError> {
        let exec_pre = thread_stats();
        let arrivals = port.drain_arrivals();
        self.ingest(arrivals);
        let drained_commits = self.drain_deferred(port)?;
        let mut ctx = WarehouseCtx {
            slots: &mut self.slots,
            info: &self.info,
            reflected: &mut self.reflected,
            adaptation: self.adaptation,
            last_error: &mut self.last_error,
            obs: &self.obs,
            port,
            drained: Vec::new(),
            wal: &mut self.wal,
            clamp: self.umq_bound.is_some(),
            clamped: self.mv_clamped.clone(),
            staleness: self.staleness.as_ref(),
            share: self.share_subplans,
            shared_hits: self.shared_hits.clone(),
            shared_misses: self.shared_misses.clone(),
            divergent: self.divergent.clone(),
            replicate: self.replicate,
            publish: &mut self.publish,
        };
        let mut outcome = self.dyno.step(&mut self.umq, &mut ctx);
        let drained = std::mem::take(&mut ctx.drained);
        self.exec.add(&thread_stats().since(exec_pre));
        self.ingest(drained);
        self.umq_depth.set(self.umq.update_count() as i64);
        if outcome == StepOutcome::Idle && drained_commits > 0 {
            outcome = StepOutcome::Committed;
        }
        if outcome == StepOutcome::Failed {
            // Keep the error inspectable through `last_error()` even after
            // it has been returned (the CLI `stats` view reads it).
            return Err(self.last_error.clone().unwrap_or(ViewError::Internal(
                RelationalError::InvalidQuery {
                    reason: "warehouse maintenance failed without an error".into(),
                },
            )));
        }
        if outcome == StepOutcome::Committed {
            // A completed maintenance supersedes any earlier failure: the
            // error was acted on (or healed) — holding it would make every
            // later health check report a stale fault.
            self.last_error = None;
        }
        self.maybe_checkpoint();
        Ok(outcome)
    }

    /// The most recent hard maintenance failure, if any. Cleared when a
    /// later step commits successfully — the warehouse is healthy again and
    /// health checks must not keep reporting the resolved fault.
    pub fn last_error(&self) -> Option<&ViewError> {
        self.last_error.as_ref()
    }

    /// Steps until quiescent or `max_steps` exhausted.
    pub fn run_to_quiescence(
        &mut self,
        port: &mut dyn SourcePort,
        max_steps: u64,
    ) -> Result<u64, ViewError> {
        let mut steps = 0;
        loop {
            match self.step(port)? {
                StepOutcome::Idle => return Ok(steps),
                _ => {
                    steps += 1;
                    if steps >= max_steps {
                        return Ok(steps);
                    }
                }
            }
        }
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.slots.len()
    }

    /// Updates admitted to the UMQ so far (mirrors the `umq.admitted`
    /// counter).
    pub fn admitted_count(&self) -> u64 {
        self.umq_admitted.get()
    }

    /// Updates shed at the admission bound so far (mirrors `umq.shed`).
    pub fn shed_count(&self) -> u64 {
        self.umq_shed.get()
    }

    /// The admission bound, if one was set (see [`Warehouse::with_umq_bound`]).
    pub fn umq_bound(&self) -> Option<usize> {
        self.umq_bound
    }

    /// The `i`-th view's current definition.
    pub fn view(&self, i: usize) -> &ViewDefinition {
        &self.slots[i].view
    }

    /// The `i`-th view's extent.
    pub fn mv(&self, i: usize) -> &MaterializedView {
        &self.slots[i].mv
    }

    /// The `i`-th view's maintenance counters.
    pub fn stats(&self, i: usize) -> ViewStats {
        self.slots[i].stats
    }

    /// Scheduler counters.
    pub fn dyno_stats(&self) -> DynoStats {
        self.dyno.stats()
    }

    /// Per-source versions the warehouse as a whole has maintained (the
    /// admission floor). A deferring view's own vector may trail this —
    /// see [`Warehouse::view_reflected`].
    pub fn reflected(&self) -> &ReflectedVersions {
        &self.reflected
    }

    /// The `i`-th view's own reflected version vector, sorted by source.
    pub fn view_reflected(&self, i: usize) -> Vec<(u32, u64)> {
        self.slots[i].sorted_reflected()
    }

    /// Batches currently deferred by the `i`-th view.
    pub fn deferred_len(&self, i: usize) -> usize {
        self.slots[i].deferred.len()
    }

    /// Batches currently deferred across all views.
    pub fn deferred_total(&self) -> usize {
        self.slots.iter().map(|s| s.deferred.len()).sum()
    }

    /// The source→view dependency DAG.
    pub fn dag(&self) -> &ViewDag {
        &self.dag
    }

    /// Times per-view safety verdicts diverged — an SC safe for one view
    /// but unsafe for another, or a batch some views committed while others
    /// deferred (mirrors `safety.divergent_verdicts`).
    pub fn divergent_verdicts(&self) -> u64 {
        self.divergent.get()
    }

    /// First-hop subplans served from the cross-view cache (mirrors
    /// `subplan.shared_hits`).
    pub fn subplan_hits(&self) -> u64 {
        self.shared_hits.get()
    }

    /// First-hop subplans computed (mirrors `subplan.shared_misses`).
    pub fn subplan_misses(&self) -> u64 {
        self.shared_misses.get()
    }

    /// Deferred batches replayed to their view by the drain (mirrors
    /// `view.deferred_drains`).
    pub fn drained_commits(&self) -> u64 {
        self.drains.get()
    }

    /// Unregisters the `i`-th view: its slot (extent, deferred queue) is
    /// dropped, its staleness lane retired, the DAG rebuilt over the
    /// remaining views, and — when a WAL is attached — a fresh checkpoint
    /// written so subsequent `Applied` records match the new view count.
    pub fn drop_view(&mut self, i: usize) {
        let slot = self.slots.remove(i);
        if let (Some(tracker), Some(lane)) = (&self.staleness, slot.lane) {
            tracker.drop_view(lane);
        }
        self.dag = ViewDag::new();
        for (idx, s) in self.slots.iter().enumerate() {
            self.dag.add_view(idx, &s.sources, s.tier);
        }
        self.checkpoint_now();
    }

    /// The commit/drain order: ascending SLA tier, slot index breaking ties
    /// (the DAG's refresh order, restricted to registered slots).
    fn commit_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.slots.len()).collect();
        order.sort_by_key(|&i| (self.slots[i].tier, i));
        order
    }

    /// Replays deferred batches, per view in tier order, until each view's
    /// queue is empty or blocked again. Returns how many batches committed.
    ///
    /// A deferred batch is maintained against *one* view with the rest of
    /// that view's queue plus the shared UMQ as its SWEEP compensation set.
    /// A broken query means the correcting SC is further down the view's
    /// own queue: the drain merges batches forward up to and including the
    /// next SC-bearing batch and retries as one atomic adaptation — the
    /// per-view form of Dyno's cycle merge. If no SC is queued yet, the
    /// batch stays deferred (the SC will arrive and defer behind it).
    fn drain_deferred(&mut self, port: &mut dyn SourcePort) -> Result<u64, ViewError> {
        let mut commits = 0u64;
        for idx in self.commit_order() {
            while let Some(front) = self.slots[idx].deferred.front() {
                let batch = front.clone();
                let schema_changes = batch.iter().filter(|m| m.payload.is_schema_change()).count();
                let pending: Vec<UpdateMessage> = self.slots[idx]
                    .deferred
                    .iter()
                    .skip(1)
                    .flatten()
                    .map(|m| m.payload.clone())
                    .chain(self.umq.nodes().into_iter().flatten().map(|m| m.payload.clone()))
                    .collect();
                let is_single_du = batch.len() == 1 && !batch[0].payload.is_schema_change();
                port.on_maintenance_event(MaintEvent::Begin {
                    updates: batch.len(),
                    schema_changes,
                });
                let (staged, arrivals) = {
                    let slot = &mut self.slots[idx];
                    if is_single_du {
                        let (r, arrivals) = sweep_maintain_observed(
                            &slot.view,
                            &batch[0].payload,
                            &pending,
                            port,
                            &mut slot.plans,
                            &self.obs,
                        );
                        (r.map(Staged::Delta).map_err(BatchFailure::from), arrivals)
                    } else {
                        let refs: Vec<&UpdateMessage> = batch.iter().map(|m| &m.payload).collect();
                        let (r, arrivals) = adapt_batch_observed(
                            &slot.view,
                            &refs,
                            &pending,
                            &self.info,
                            self.adaptation,
                            port,
                            &self.obs,
                        );
                        (r.map(Staged::Adapted), arrivals)
                    }
                };
                self.ingest(arrivals);
                match staged {
                    Ok(st) => {
                        self.commit_drained(idx, &batch, st, schema_changes, port)?;
                        commits += 1;
                    }
                    Err(BatchFailure::Unavailable(_)) => {
                        self.obs.counter("view.parked").inc();
                        port.on_maintenance_event(MaintEvent::Park);
                        break;
                    }
                    Err(BatchFailure::Broken(_)) => {
                        self.slots[idx].stats.aborts += 1;
                        self.obs.counter("view.aborts").inc();
                        port.on_maintenance_event(MaintEvent::Abort);
                        let next_sc = self.slots[idx]
                            .deferred
                            .iter()
                            .skip(1)
                            .position(|b| b.iter().any(|m| m.payload.is_schema_change()));
                        let Some(ahead) = next_sc else { break };
                        let q = &mut self.slots[idx].deferred;
                        let mut merged = q.pop_front().expect("front exists");
                        for _ in 0..=ahead {
                            merged.extend(q.pop_front().expect("position was in range"));
                        }
                        q.push_front(merged);
                        // Retry the merged batch immediately.
                    }
                    Err(BatchFailure::Undefinable(e)) => {
                        self.last_error = Some(ViewError::Undefinable(e.clone()));
                        port.on_maintenance_event(MaintEvent::Abort);
                        return Err(ViewError::Undefinable(e));
                    }
                    Err(BatchFailure::Internal(e)) => {
                        self.last_error = Some(ViewError::Internal(e.clone()));
                        port.on_maintenance_event(MaintEvent::Abort);
                        return Err(ViewError::Internal(e));
                    }
                }
            }
        }
        Ok(commits)
    }

    /// Commits one drained batch to one view: extent + definition update,
    /// per-view vector advance, staleness refresh, and a WAL `Applied`
    /// record whose peers are `Skipped` (they already handled these keys).
    fn commit_drained(
        &mut self,
        idx: usize,
        batch: &[UpdateMeta<UpdateMessage>],
        staged: Staged,
        schema_changes: usize,
        port: &mut dyn SourcePort,
    ) -> Result<(), ViewError> {
        let keys: Vec<u64> = batch.iter().map(|m| m.key.0).collect();
        if let Some(log) = self.wal.as_mut() {
            log.log_intent(&keys, schema_changes > 0);
        }
        let pub_rows = self.replicate.then(|| match &staged {
            Staged::Delta(delta) => delta.rows.clone(),
            Staged::Adapted(Adapted::Replaced { extent, .. }) => extent.clone(),
            Staged::Adapted(Adapted::Incremental { delta, .. }) => delta.rows.clone(),
        });
        let clamp = self.umq_bound.is_some();
        let log_change = self.wal.is_some().then(|| match &staged {
            Staged::Delta(delta) => AppliedChange::Delta { rows: delta.rows.clone() },
            Staged::Adapted(Adapted::Replaced { view, cols, extent }) => AppliedChange::Replace {
                sql: view.to_string(),
                cols: cols.clone(),
                extent: extent.clone(),
            },
            Staged::Adapted(Adapted::Incremental { view, delta }) => {
                AppliedChange::Incremental { sql: view.to_string(), rows: delta.rows.clone() }
            }
        });
        {
            let slot = &mut self.slots[idx];
            let applied = match staged {
                Staged::Delta(delta) => {
                    let written = delta.rows.weight();
                    apply_signed(&mut slot.mv, &delta.cols, &delta.rows, clamp, &self.mv_clamped)
                        .map(|()| {
                            port.charge_mv_write(written);
                            slot.stats.du_committed += 1;
                        })
                }
                Staged::Adapted(Adapted::Replaced { view, cols, extent }) => {
                    let written = extent.weight();
                    slot.mv.replace(cols, extent).map(|()| {
                        port.charge_mv_write(written);
                        slot.view = view;
                        slot.plans.invalidate(schema_changes as u64, &self.obs);
                        slot.stats.batches_committed += 1;
                        slot.stats.batched_updates += batch.len() as u64;
                    })
                }
                Staged::Adapted(Adapted::Incremental { view, delta }) => {
                    let written = delta.rows.weight();
                    apply_signed(&mut slot.mv, &delta.cols, &delta.rows, clamp, &self.mv_clamped)
                        .map(|()| {
                            port.charge_mv_write(written);
                            slot.view = view;
                            slot.plans.invalidate(schema_changes as u64, &self.obs);
                            slot.stats.batches_committed += 1;
                            slot.stats.incremental_batches += 1;
                            slot.stats.batched_updates += batch.len() as u64;
                        })
                }
            };
            if let Err(e) = applied {
                self.last_error = Some(ViewError::Internal(e.clone()));
                port.on_maintenance_event(MaintEvent::Abort);
                return Err(ViewError::Internal(e));
            }
            for meta in batch {
                let entry = slot.reflected.entry(meta.payload.source).or_insert(0);
                *entry = (*entry).max(meta.payload.source_version);
            }
            slot.deferred.pop_front();
        }
        if let (Some(tracker), Some(lane)) = (&self.staleness, self.slots[idx].lane) {
            tracker.note_refresh_for(lane, &self.slots[idx].sorted_reflected(), self.obs.now_us());
        }
        if self.wal.is_some() {
            let change = log_change.expect("built when a wal is attached");
            let rec = AppliedRecord {
                keys: keys.clone(),
                changes: (0..self.slots.len())
                    .map(|i| if i == idx { change.clone() } else { AppliedChange::Skipped })
                    .collect(),
                reflected: sorted_versions(self.reflected.iter().map(|(s, v)| (s.0, *v))),
                view_reflected: self.slots.iter().map(ViewSlot::sorted_reflected).collect(),
            };
            if let Some(log) = self.wal.as_mut() {
                log.log_applied(&rec);
            }
        }
        if let Some(rows) = pub_rows {
            self.publish.push(PendingPublish {
                keys,
                rows: (0..self.slots.len())
                    .map(|i| if i == idx { rows.clone() } else { SignedBag::new() })
                    .collect(),
            });
        }
        self.drains.inc();
        self.obs.counter("view.commits").inc();
        port.on_maintenance_event(MaintEvent::Commit);
        self.maybe_checkpoint();
        Ok(())
    }
}

struct WarehouseCtx<'a> {
    slots: &'a mut Vec<ViewSlot>,
    info: &'a InfoSpace,
    reflected: &'a mut ReflectedVersions,
    adaptation: AdaptationMode,
    last_error: &'a mut Option<ViewError>,
    obs: &'a Collector,
    port: &'a mut dyn SourcePort,
    drained: Vec<UpdateMessage>,
    wal: &'a mut Option<DurableLog>,
    /// True when the warehouse runs admission shedding (bounded UMQ):
    /// deltas are applied clamped at zero, with the dropped magnitude
    /// counted in `clamped` instead of failing maintenance.
    clamp: bool,
    clamped: Counter,
    staleness: Option<&'a StalenessTracker>,
    /// Whether overlapping views share first-hop subplans this batch.
    share: bool,
    shared_hits: Counter,
    shared_misses: Counter,
    divergent: Counter,
    /// Replication: committed changes queue a [`PendingPublish`].
    replicate: bool,
    publish: &'a mut Vec<PendingPublish>,
}

/// Applies a signed delta to a view extent: strict when maintenance is
/// lossless (a negative multiplicity is a bug), clamped when admission
/// shedding is on (a shed insert's later delete legitimately misses the
/// extent; the dropped magnitude feeds `view.clamped_rows`).
fn apply_signed(
    mv: &mut MaterializedView,
    cols: &[String],
    rows: &SignedBag,
    clamp: bool,
    clamped: &Counter,
) -> Result<(), RelationalError> {
    if clamp {
        let dropped = mv.apply_delta_clamped(cols, rows)?;
        if dropped > 0 {
            clamped.add(dropped);
        }
        Ok(())
    } else {
        mv.apply_delta(cols, rows)
    }
}

impl Maintainer<UpdateMessage> for WarehouseCtx<'_> {
    fn maintain(
        &mut self,
        batch: &[UpdateMeta<UpdateMessage>],
        rest: &[&[UpdateMeta<UpdateMessage>]],
    ) -> MaintainOutcome {
        let schema_changes = batch.iter().filter(|m| m.payload.is_schema_change()).count();
        self.port.on_maintenance_event(MaintEvent::Begin { updates: batch.len(), schema_changes });
        let pending: Vec<UpdateMessage> =
            rest.iter().flat_map(|n| n.iter().map(|m| m.payload.clone())).collect();
        let is_plain_du =
            batch.len() == 1 && matches!(batch[0].payload.update, SourceUpdate::Data(_));

        let _span = self.obs.span(
            "view.maintain",
            &[
                field("updates", batch.len()),
                field("schema_changes", schema_changes),
                field("kind", if is_plain_du { "du" } else { "batch" }),
                field("views", self.slots.len()),
            ],
        );
        self.obs.counter("view.attempts").inc();

        // Pipeline-level profiling (the per-operator query profiles are
        // recorded deeper down, per view plan): one `(warehouse, pipeline)`
        // plan collecting classification, apply, and WAL-append costs.
        let prof: Option<Prof<'_>> =
            if self.obs.profile_on() { Some((self.obs, "warehouse")) } else { None };
        if let Some((o, v)) = prof {
            o.profile_invocation(v, "pipeline");
        }

        // Commit protocol, write 1 of 2: the intent is durable before any
        // maintenance query runs. A crash from here until `Applied` lands
        // leaves the batch in the checkpointed queue, to be redone whole.
        if let Some(log) = self.wal.as_mut() {
            let keys: Vec<u64> = batch.iter().map(|m| m.key.0).collect();
            let started = prof_start(prof);
            log.log_intent(&keys, schema_changes > 0);
            prof_op(
                prof,
                started,
                "pipeline",
                1,
                OpPhase::Wal,
                "log_intent",
                "batch",
                batch.len() as u64,
                batch.len() as u64,
            );
        }
        for meta in batch {
            self.obs.prov(meta.key.0, dyno_obs::stage::INTENT, &[]);
        }

        // Classify the batch per view. A slot with a non-empty deferred
        // queue defers *unconditionally* (per-view FIFO: skip-advancing its
        // vector past queued updates of the same source would corrupt the
        // point-in-time audit). SC-bearing batches are active for every
        // current slot — adaptation handles irrelevance internally, and the
        // relation-irrelevance argument that justifies `Skip` only holds
        // for data updates.
        let has_sc = schema_changes > 0;
        let classify_started = prof_start(prof);
        let mut dispo: Vec<Disposition> = self
            .slots
            .iter()
            .map(|slot| {
                if !slot.deferred.is_empty() {
                    Disposition::Defer
                } else if has_sc
                    || batch.iter().any(|m| match &m.payload.update {
                        SourceUpdate::Data(du) => slot.view.references_relation(&du.relation),
                        SourceUpdate::Schema(_) => true,
                    })
                {
                    Disposition::Active
                } else {
                    Disposition::Skip
                }
            })
            .collect();
        prof_op(
            prof,
            classify_started,
            "pipeline",
            0,
            OpPhase::Detect,
            "classify",
            "batch",
            batch.len() as u64,
            dispo.iter().filter(|d| matches!(d, Disposition::Active)).count() as u64,
        );

        // Phase 1: compute every active view's change without committing
        // anything, so a broken query in view k discards views 0..k's work
        // too. Overlapping views share first-hop join subplans through one
        // per-batch cache. A source being unavailable is per-view: that
        // view defers while its peers proceed — unless *every* active view
        // is blocked, which parks the whole entry (classic Dyno semantics).
        let mut shared = if is_plain_du && self.share { Some(SharedSubplans::new()) } else { None };
        let mut staged: Vec<Option<Staged>> = (0..self.slots.len()).map(|_| None).collect();
        let mut active_total = 0usize;
        let mut blocked = 0usize;
        for i in 0..self.slots.len() {
            if !matches!(dispo[i], Disposition::Active) {
                continue;
            }
            active_total += 1;
            let slot = &mut self.slots[i];
            let result = if is_plain_du {
                let (result, drained) = match shared.as_mut() {
                    Some(sh) => sweep_maintain_shared(
                        &slot.view,
                        &batch[0].payload,
                        &pending,
                        self.port,
                        &mut slot.plans,
                        self.obs,
                        sh,
                    ),
                    None => sweep_maintain_observed(
                        &slot.view,
                        &batch[0].payload,
                        &pending,
                        self.port,
                        &mut slot.plans,
                        self.obs,
                    ),
                };
                self.drained.extend(drained);
                result.map(Staged::Delta).map_err(BatchFailure::from)
            } else {
                let refs: Vec<&UpdateMessage> = batch.iter().map(|m| &m.payload).collect();
                let (result, drained) = adapt_batch_observed(
                    &slot.view,
                    &refs,
                    &pending,
                    self.info,
                    self.adaptation,
                    self.port,
                    self.obs,
                );
                self.drained.extend(drained);
                result.map(Staged::Adapted)
            };
            match result {
                Ok(s) => staged[i] = Some(s),
                Err(BatchFailure::Unavailable(e)) => {
                    blocked += 1;
                    dispo[i] = Disposition::Defer;
                    if self.obs.tracing_on() {
                        self.obs.event(
                            Level::Warn,
                            "view.defer",
                            &[field("view", i), field("error", e.to_string())],
                        );
                    }
                }
                Err(f) => return self.fail(f),
            }
        }
        if let Some(sh) = &shared {
            self.shared_hits.add(sh.hits());
            self.shared_misses.add(sh.misses());
        }
        if active_total > 0 && blocked == active_total {
            // Every view that needs this batch is blocked: nothing to
            // commit, nothing to defer — park the entry and retry whole.
            return self.fail(BatchFailure::Unavailable(RelationalError::Unavailable {
                source: "batch".into(),
                reason: format!("all {active_total} dependent views blocked"),
            }));
        }
        if blocked > 0 {
            // Split verdict: some views commit this batch, others defer.
            self.divergent.inc();
        }

        // Phase 2: commit in the DAG's refresh order (ascending tier, then
        // slot index). Active slots apply their staged change; skipped
        // slots advance their vector for free; deferring slots enqueue the
        // batch and freeze.
        let mut order: Vec<usize> = (0..self.slots.len()).collect();
        order.sort_by_key(|&i| (self.slots[i].tier, i));
        let mut total_written: u64 = 0;
        let mut logged_changes: Vec<AppliedChange> =
            (0..self.slots.len()).map(|_| AppliedChange::Skipped).collect();
        let mut pub_rows: Vec<SignedBag> =
            (0..self.slots.len()).map(|_| SignedBag::new()).collect();
        for &i in &order {
            let slot = &mut self.slots[i];
            match &dispo[i] {
                Disposition::Defer => {
                    logged_changes[i] = AppliedChange::Deferred;
                    slot.deferred.push_back(batch.to_vec());
                    continue;
                }
                Disposition::Skip => {
                    // `logged_changes[i]` stays `Skipped`.
                }
                Disposition::Active => {
                    let change = staged[i].take().expect("active slot staged a change");
                    if self.replicate {
                        pub_rows[i] = match &change {
                            Staged::Delta(delta) => delta.rows.clone(),
                            Staged::Adapted(Adapted::Replaced { extent, .. }) => extent.clone(),
                            Staged::Adapted(Adapted::Incremental { delta, .. }) => {
                                delta.rows.clone()
                            }
                        };
                    }
                    if self.wal.is_some() {
                        logged_changes[i] = match &change {
                            Staged::Delta(delta) => {
                                AppliedChange::Delta { rows: delta.rows.clone() }
                            }
                            Staged::Adapted(Adapted::Replaced { view, cols, extent }) => {
                                AppliedChange::Replace {
                                    sql: view.to_string(),
                                    cols: cols.clone(),
                                    extent: extent.clone(),
                                }
                            }
                            Staged::Adapted(Adapted::Incremental { view, delta }) => {
                                AppliedChange::Incremental {
                                    sql: view.to_string(),
                                    rows: delta.rows.clone(),
                                }
                            }
                        };
                    }
                    let apply_meta = prof.map(|_| {
                        let (op, rows): (&'static str, u64) = match &change {
                            Staged::Delta(d) => ("apply_delta", d.rows.distinct_len() as u64),
                            Staged::Adapted(Adapted::Replaced { extent, .. }) => {
                                ("replace", extent.distinct_len() as u64)
                            }
                            Staged::Adapted(Adapted::Incremental { delta, .. }) => {
                                ("apply_incremental", delta.rows.distinct_len() as u64)
                            }
                        };
                        (op, rows, slot.view.name.clone())
                    });
                    let apply_started = prof_start(prof);
                    let applied = match change {
                        Staged::Delta(delta) => {
                            let written = delta.rows.weight();
                            apply_signed(
                                &mut slot.mv,
                                &delta.cols,
                                &delta.rows,
                                self.clamp,
                                &self.clamped,
                            )
                            .map(|()| {
                                self.port.charge_mv_write(written);
                                total_written += written;
                                slot.stats.du_committed += 1;
                            })
                        }
                        Staged::Adapted(Adapted::Replaced { view, cols, extent }) => {
                            let written = extent.weight();
                            slot.mv.replace(cols, extent).map(|()| {
                                self.port.charge_mv_write(written);
                                total_written += written;
                                slot.view = view;
                                slot.plans.invalidate(schema_changes as u64, self.obs);
                                slot.stats.batches_committed += 1;
                                slot.stats.batched_updates += batch.len() as u64;
                            })
                        }
                        Staged::Adapted(Adapted::Incremental { view, delta }) => {
                            let written = delta.rows.weight();
                            apply_signed(
                                &mut slot.mv,
                                &delta.cols,
                                &delta.rows,
                                self.clamp,
                                &self.clamped,
                            )
                            .map(|()| {
                                self.port.charge_mv_write(written);
                                total_written += written;
                                slot.view = view;
                                slot.plans.invalidate(schema_changes as u64, self.obs);
                                slot.stats.batches_committed += 1;
                                slot.stats.incremental_batches += 1;
                                slot.stats.batched_updates += batch.len() as u64;
                            })
                        }
                    };
                    if let Some((op, rows, vname)) = apply_meta {
                        prof_op(
                            prof,
                            apply_started,
                            "pipeline",
                            2,
                            OpPhase::Apply,
                            op,
                            &vname,
                            rows,
                            rows,
                        );
                    }
                    if let Err(e) = applied {
                        *self.last_error = Some(ViewError::Internal(e));
                        self.port.on_maintenance_event(MaintEvent::Abort);
                        return MaintainOutcome::Failed;
                    }
                }
            }
            // Committed and skipped slots advance their own vector;
            // deferring slots froze above (they `continue`d).
            for meta in batch {
                let entry = slot.reflected.entry(meta.payload.source).or_insert(0);
                *entry = (*entry).max(meta.payload.source_version);
            }
            if let (Some(tracker), Some(lane)) = (self.staleness, slot.lane) {
                tracker.note_refresh_for(lane, &slot.sorted_reflected(), self.obs.now_us());
            }
        }
        for meta in batch {
            let entry = self.reflected.entry(meta.payload.source).or_insert(0);
            *entry = (*entry).max(meta.payload.source_version);
        }
        // Commit protocol, write 2 of 2: one atomic record across every
        // view, making the whole batch durable or (on a crash) none of it —
        // the durable form of Equation 6's all-or-nothing batch. Deferring
        // views are part of the atom: replay moves their copy of the batch
        // into their durable deferred queue.
        let was_cut = self.wal.as_ref().is_some_and(|w| w.power_cut());
        if self.wal.is_some() {
            let rec = AppliedRecord {
                keys: batch.iter().map(|m| m.key.0).collect(),
                changes: logged_changes,
                reflected: sorted_versions(self.reflected.iter().map(|(s, v)| (s.0, *v))),
                view_reflected: self.slots.iter().map(ViewSlot::sorted_reflected).collect(),
            };
            let started = prof_start(prof);
            if let Some(log) = self.wal.as_mut() {
                log.log_applied(&rec);
            }
            prof_op(
                prof,
                started,
                "pipeline",
                3,
                OpPhase::Wal,
                "log_applied",
                "batch",
                batch.len() as u64,
                total_written,
            );
        }
        if self.replicate {
            self.publish.push(PendingPublish {
                keys: batch.iter().map(|m| m.key.0).collect(),
                rows: pub_rows,
            });
        }
        // Terminal provenance, skipped when the power was already cut
        // before the Applied append (the append was dropped, so recovery
        // re-executes this batch and records the terminal stages exactly
        // once, post-recovery). A cut that trips ON the append leaves the
        // record durable — those terminals are recorded here, since
        // recovery will not redo them.
        if !was_cut {
            for meta in batch {
                self.obs.prov(meta.key.0, dyno_obs::stage::APPLIED, &[]);
            }
            if self.obs.lineage_on() {
                let keys: Vec<u64> = batch.iter().map(|m| m.key.0).collect();
                self.obs.prov_batch(
                    &keys,
                    dyno_obs::stage::EXTENT,
                    &[field("rows", total_written)],
                );
            }
        }
        self.obs.counter("view.commits").inc();
        self.port.on_maintenance_event(MaintEvent::Commit);
        MaintainOutcome::Committed
    }

    fn refresh_view_relevance(&mut self, queue: &mut Umq<UpdateMessage>) {
        // Shadow-evolve every view through the queue; a schema change is
        // relevant if it invalidates any shadow at its queue position. A
        // deferring view sees its own queued SCs *before* anything in the
        // shared queue, so its shadow starts from its deferred tail.
        self.obs.counter("vs.relevance_refreshes").inc();
        let mut shadows: Vec<ViewDefinition> = self
            .slots
            .iter()
            .map(|s| {
                let mut shadow = s.view.clone();
                for meta in s.deferred.iter().flatten() {
                    if let SourceUpdate::Schema(sc) = &meta.payload.update {
                        if shadow.is_invalidated_by(sc) {
                            if let Ok(next) = crate::vs::synchronize(&shadow, sc, self.info) {
                                shadow = next;
                            }
                        }
                    }
                }
                shadow
            })
            .collect();
        for meta in queue.metas_mut() {
            if let SourceUpdate::Schema(sc) = &meta.payload.update {
                let mut invalidates = false;
                for shadow in &mut shadows {
                    if shadow.is_invalidated_by(sc) {
                        invalidates = true;
                        if let Ok(next) = crate::vs::synchronize(shadow, sc, self.info) {
                            *shadow = next;
                            self.obs.counter("vs.shadow_rewrites").inc();
                        }
                    }
                }
                meta.kind = UpdateKind::Schema { invalidates_view: invalidates };
            }
        }
    }
}

impl WarehouseCtx<'_> {
    fn fail(&mut self, failure: BatchFailure) -> MaintainOutcome {
        match failure {
            BatchFailure::Broken(_) => {
                for slot in self.slots.iter_mut() {
                    slot.stats.aborts += 1;
                }
                self.obs.counter("view.aborts").inc();
                if self.obs.tracing_on() {
                    self.obs.event(Level::Warn, "view.abort", &[]);
                }
                self.port.on_maintenance_event(MaintEvent::Abort);
                MaintainOutcome::BrokenQuery
            }
            BatchFailure::Unavailable(e) => {
                self.obs.counter("view.parked").inc();
                if self.obs.tracing_on() {
                    self.obs.event(Level::Warn, "view.park", &[field("error", e.to_string())]);
                }
                self.port.on_maintenance_event(MaintEvent::Park);
                MaintainOutcome::Parked
            }
            BatchFailure::Undefinable(e) => {
                *self.last_error = Some(ViewError::Undefinable(e));
                self.port.on_maintenance_event(MaintEvent::Abort);
                MaintainOutcome::Failed
            }
            BatchFailure::Internal(e) => {
                *self.last_error = Some(ViewError::Internal(e));
                self.port.on_maintenance_event(MaintEvent::Abort);
                MaintainOutcome::Failed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InProcessPort;
    use crate::testkit::*;
    use dyno_relational::{DataUpdate, SchemaChange, SpjQuery};
    use dyno_source::SourceId;

    /// A second view over the Retailer only: store price list.
    fn pricelist_view() -> ViewDefinition {
        let q = SpjQuery::over(["Store", "Item"])
            .select("Store", "StoreName")
            .select("Item", "Book")
            .select("Item", "Price")
            .join_eq(("Store", "SID"), ("Item", "SID"))
            .build();
        ViewDefinition::new("PriceList", q)
    }

    /// A third view over the Library only.
    fn catalog_view() -> ViewDefinition {
        let q = SpjQuery::over(["Catalog"])
            .select("Catalog", "Title")
            .select("Catalog", "Publisher")
            .build();
        ViewDefinition::new("Titles", q)
    }

    fn warehouse() -> (Warehouse, InProcessPort) {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut wh = Warehouse::new(info, Strategy::Pessimistic);
        wh.add_view(bookinfo_view());
        wh.add_view(pricelist_view());
        wh.add_view(catalog_view());
        wh.initialize(&mut port).unwrap();
        (wh, port)
    }

    #[test]
    fn initializes_all_views() {
        let (wh, _) = warehouse();
        assert_eq!(wh.view_count(), 3);
        assert_eq!(wh.mv(0).len(), 1, "BookInfo: one matching book");
        assert_eq!(wh.mv(1).len(), 1, "PriceList: one item");
        assert_eq!(wh.mv(2).len(), 2, "Titles: both catalog rows");
    }

    #[test]
    fn one_du_updates_exactly_the_affected_views() {
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(wh.mv(0).len(), 2, "BookInfo gains the joined row");
        assert_eq!(wh.mv(1).len(), 2, "PriceList gains the item");
        assert_eq!(wh.mv(2).len(), 2, "Titles untouched");
    }

    #[test]
    fn schema_change_rewrites_only_affected_views() {
        let (mut wh, mut port) = warehouse();
        let store = port.space().server(SourceId(0)).catalog().get("Store").unwrap().clone();
        let item = port.space().server(SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(SourceId(0), SourceUpdate::Schema(storeitems_change(&store, &item))).unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert!(wh.view(0).references_relation("StoreItems"));
        assert!(wh.view(1).references_relation("StoreItems"));
        assert_eq!(wh.view(2), &catalog_view(), "Library-only view untouched");
        assert_eq!(wh.mv(0).len(), 1);
        assert_eq!(wh.mv(1).len(), 1);
        assert_eq!(wh.mv(2).len(), 2);
    }

    #[test]
    fn views_reflect_the_same_state_vector() {
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropAttribute {
                relation: "Catalog".into(),
                attr: "Review".into(),
            }),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        // Every view matches a fresh evaluation of its (current) definition
        // over the final source states.
        for i in 0..wh.view_count() {
            let expected = dyno_relational::eval(&wh.view(i).query, &port.space().provider())
                .expect("final definitions are valid");
            assert_eq!(wh.mv(i).extent(), &expected.rows, "view {i} converged");
        }
    }

    #[test]
    fn sc_relevant_to_any_view_is_scheduled_first() {
        // An SC irrelevant to view 0 but relevant to view 2 still reorders.
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::RenameAttribute {
                relation: "Catalog".into(),
                from: "Publisher".into(),
                to: "House".into(),
            }),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        // BookInfo and Titles both project Publisher → both rewritten.
        assert!(wh.view(0).query.to_string().contains("Catalog.House AS Publisher"));
        assert!(wh.view(2).query.to_string().contains("Catalog.House AS Publisher"));
        assert_eq!(wh.view(1), &pricelist_view(), "Retailer view untouched");
    }

    #[test]
    fn with_correction_preserves_stats_and_obs_regardless_of_order() {
        // Regression: Warehouse::with_correction rebuilt the scheduler,
        // resetting DynoStats and dropping the collector binding whenever it
        // was called before with_obs.
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let obs = Collector::wall();
        let mut wh = Warehouse::new(info, Strategy::Pessimistic)
            .with_correction(CorrectionPolicy::MergeAll)
            .with_obs(obs.clone());
        wh.add_view(bookinfo_view());
        wh.initialize(&mut port).unwrap();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        let before = wh.dyno_stats();
        assert!(before.committed > 0);
        assert_eq!(
            obs.registry().counter_value("dyno.committed"),
            Some(before.committed),
            "correction-then-obs order must not orphan the scheduler's metrics"
        );
        let wh = wh.with_correction(CorrectionPolicy::MergeCycles);
        assert_eq!(wh.dyno_stats(), before, "stats survive a mid-run policy change");
    }

    fn durable_warehouse() -> (Warehouse, InProcessPort, dyno_durable::MemStorage) {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let disk = dyno_durable::MemStorage::new();
        let mut wh = Warehouse::new(info, Strategy::Pessimistic);
        wh.add_view(bookinfo_view());
        wh.add_view(pricelist_view());
        wh.initialize(&mut port).unwrap();
        let log = DurableLog::create(Box::new(disk.clone())).unwrap();
        (wh.with_wal(log).expect("no admission bound"), port, disk)
    }

    #[test]
    fn recover_restores_views_versions_and_queue() {
        let (mut wh, mut port, disk) = durable_warehouse();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        // One more committed source update, ingested but not yet maintained.
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(11, "Adaptive Views", "Brook", 41)),
        )
        .unwrap();
        let arrivals = port.drain_arrivals();
        wh.ingest(arrivals);

        // Kill: drop the warehouse, recover from the shared disk.
        let info = port.space().info().clone();
        drop(wh);
        let (mut back, report) =
            Warehouse::recover(Box::new(disk), info, Collector::wall()).unwrap();
        assert_eq!(report.torn_records, 0);
        assert_eq!(report.reparked_intents, 0);
        assert_eq!(back.view_count(), 2);
        assert_eq!(back.mv(0).len(), 2, "the committed maintenance survived");
        // The queued-but-unmaintained update survives in the UMQ and is
        // maintained by the restarted scheduler.
        back.run_to_quiescence(&mut port, 100).unwrap();
        for i in 0..back.view_count() {
            let expected = dyno_relational::eval(&back.view(i).query, &port.space().provider())
                .expect("definitions valid");
            assert_eq!(back.mv(i).extent(), &expected.rows, "view {i} converged after restart");
        }
    }

    #[test]
    fn crash_after_intent_loses_nothing() {
        let (mut wh, mut port, disk) = durable_warehouse();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.arm_crash(CrashPlan { point: crate::wal::CrashPoint::AfterIntent, skip: 0 });
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert!(wh.wal_power_cut(), "the cut tripped during maintenance");
        assert_eq!(wh.mv(0).len(), 2, "the doomed process still sees its commit");

        let info = port.space().info().clone();
        drop(wh);
        let (mut back, report) =
            Warehouse::recover(Box::new(disk), info, Collector::wall()).unwrap();
        assert_eq!(report.reparked_intents, 1, "the intent had no applied");
        assert_eq!(back.mv(0).len(), 1, "the un-applied commit is gone");
        back.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(back.mv(0).len(), 2, "the re-parked batch is redone");
    }

    #[test]
    fn schema_change_commit_is_durable_across_recovery() {
        let (mut wh, mut port, disk) = durable_warehouse();
        let store = port.space().server(SourceId(0)).catalog().get("Store").unwrap().clone();
        let item = port.space().server(SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(SourceId(0), SourceUpdate::Schema(storeitems_change(&store, &item))).unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert!(wh.view(0).references_relation("StoreItems"));

        let expected = wh.reflected().clone();
        let frozen = wh.mv(0).sorted_tuples();
        let info = port.space().info().clone();
        drop(wh);
        let (back, report) = Warehouse::recover(Box::new(disk), info, Collector::wall()).unwrap();
        assert_eq!(report.reparked_intents, 0);
        assert!(back.view(0).references_relation("StoreItems"), "rewritten definition survives");
        assert!(back.view(1).references_relation("StoreItems"));
        assert_eq!(back.mv(0).sorted_tuples(), frozen, "extent is bit-identical after recovery");
        assert_eq!(back.reflected(), &expected, "version vector survives");
    }

    #[test]
    fn last_error_clears_when_a_later_step_succeeds() {
        // Regression: last_error was sticky forever, so CLI `stats` kept
        // reporting a failure long after maintenance had committed fine.
        let (mut wh, mut port) = warehouse();
        wh.last_error = Some(ViewError::Internal(RelationalError::InvalidQuery {
            reason: "earlier maintenance failure".into(),
        }));
        assert!(wh.last_error().is_some());
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert!(wh.dyno_stats().committed > 0, "a step committed");
        assert!(wh.last_error().is_none(), "the successful commit cleared the stale error");
    }

    #[test]
    fn last_error_stays_while_the_failure_persists() {
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Catalog".into() }),
        )
        .unwrap();
        assert!(wh.run_to_quiescence(&mut port, 100).is_err());
        assert!(wh.last_error().is_some(), "the failure is inspectable after being returned");
        assert!(wh.step(&mut port).is_err(), "the poisoned head keeps failing");
        assert!(wh.last_error().is_some(), "idle/failed steps do not clear the error");
    }

    #[test]
    fn umq_metrics_are_pre_registered_on_an_idle_warehouse() {
        // Satellite fix (same bug class as the PR 5 `wal.*` fix): the
        // admission series must exist — at zero — before any traffic, or
        // `monitor`/`stats` render a missing series for a healthy idle
        // warehouse.
        let obs = Collector::wall();
        let space = bookinfo_space();
        let _wh = Warehouse::new(space.info().clone(), Strategy::Pessimistic).with_obs(obs.clone());
        assert_eq!(obs.registry().gauge_value("umq.depth"), Some(0));
        assert_eq!(obs.registry().counter_value("umq.admitted"), Some(0));
        assert_eq!(obs.registry().counter_value("umq.shed"), Some(0));
    }

    #[test]
    fn bounded_warehouse_rejects_wal_and_vice_versa() {
        // A shedding warehouse cannot be durable: WAL replay applies every
        // admitted delta strictly, so a bound that sheds under pressure
        // would make recovery diverge from the live process. Both builder
        // orders must fail at construction time.
        let space = bookinfo_space();
        let info = space.info().clone();

        let bounded = Warehouse::new(info.clone(), Strategy::Pessimistic)
            .with_umq_bound(4)
            .expect("a bound alone is fine");
        let disk = dyno_durable::MemStorage::new();
        let log = DurableLog::create(Box::new(disk.clone())).unwrap();
        let err = bounded.with_wal(log).expect_err("bound + WAL must be rejected");
        assert!(
            err.to_string().contains("bounded UMQ"),
            "error names the conflicting combination: {err}"
        );

        let log = DurableLog::create(Box::new(disk)).unwrap();
        let durable =
            Warehouse::new(info, Strategy::Pessimistic).with_wal(log).expect("a WAL alone is fine");
        let err = durable.with_umq_bound(4).expect_err("WAL + bound must be rejected");
        assert!(
            err.to_string().contains("bounded UMQ"),
            "error names the conflicting combination: {err}"
        );
    }

    #[test]
    fn bounded_umq_sheds_data_updates_but_never_schema_changes() {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let obs = Collector::wall();
        let tracker = dyno_obs::StalenessTracker::new(8);
        let mut wh = Warehouse::new(info, Strategy::Pessimistic)
            .with_obs(obs.clone())
            .with_umq_bound(1)
            .expect("no wal attached")
            .with_staleness(tracker.clone());
        wh.add_view(bookinfo_view());
        wh.initialize(&mut port).unwrap();
        assert_eq!(tracker.view_names(), vec!["BookInfo".to_string()], "lane registered");

        // Three DUs into a bound of one: the first is admitted, the rest
        // shed; an SC gets through regardless.
        for k in 0..3 {
            let book = if k == 0 { "Data Integration Guide" } else { "Shed Fodder" };
            let msg = port
                .commit(SourceId(0), SourceUpdate::Data(insert_item(10 + k, book, "Adams", 36)))
                .unwrap();
            tracker.note_commit(msg.source.0, msg.source_version, 100 + k as u64);
        }
        let sc = port
            .commit(
                SourceId(1),
                SourceUpdate::Schema(SchemaChange::RenameAttribute {
                    relation: "Catalog".into(),
                    from: "Publisher".into(),
                    to: "House".into(),
                }),
            )
            .unwrap();
        tracker.note_commit(sc.source.0, sc.source_version, 200);
        wh.ingest(port.drain_arrivals());
        assert_eq!(wh.admitted_count(), 2, "one DU plus the SC");
        assert_eq!(wh.shed_count(), 2);
        assert_eq!(obs.registry().counter_value("umq.shed"), Some(2));
        assert!(obs.registry().gauge_value("umq.depth").unwrap() >= 1);
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(obs.registry().gauge_value("umq.depth"), Some(0), "drained");
        assert_eq!(tracker.lifetime(0).0, 2, "both admitted commits became staleness samples");
        assert_eq!(tracker.current_staleness_us(0, u64::MAX), 0, "shed commits do not age views");
        assert_eq!(wh.mv(0).len(), 2, "the admitted insert is reflected, the shed ones are not");
    }

    #[test]
    fn bounded_umq_clamps_deletes_of_shed_inserts() {
        // Shedding makes maintenance knowingly lossy: when an insert is
        // shed and its row is later deleted at the source, the delete's
        // view delta has nothing to cancel. A bounded warehouse must clamp
        // (count the divergence in `view.clamped_rows`) instead of failing
        // with a negative-multiplicity error.
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let obs = Collector::wall();
        let mut wh = Warehouse::new(info, Strategy::Pessimistic)
            .with_obs(obs.clone())
            .with_umq_bound(1)
            .expect("no wal attached");
        wh.add_view(bookinfo_view());
        wh.initialize(&mut port).unwrap();
        assert_eq!(obs.registry().counter_value("view.clamped_rows"), Some(0), "pre-registered");

        let admitted = insert_item(10, "Data Integration Guide", "Adams", 40);
        let shed = insert_item(10, "Data Integration Guide", "Adams", 41);
        port.commit(SourceId(0), SourceUpdate::Data(admitted)).unwrap();
        wh.ingest(port.drain_arrivals());
        port.commit(SourceId(0), SourceUpdate::Data(shed.clone())).unwrap();
        wh.ingest(port.drain_arrivals());
        assert_eq!(wh.shed_count(), 1, "the second insert hit the bound");
        wh.run_to_quiescence(&mut port, 100).unwrap();
        let len_before = wh.mv(0).len();

        // Delete the shed row at the source. The source state is
        // consistent (it applied both inserts); only the warehouse missed
        // one — exactly the divergence shedding signs up for.
        let row = shed.delta.rows().iter().next().unwrap().0.clone();
        let delete = DataUpdate::new(
            dyno_relational::Delta::deletes(item_schema(), [row]).expect("typed row"),
        );
        port.commit(SourceId(0), SourceUpdate::Data(delete)).unwrap();
        wh.ingest(port.drain_arrivals());
        wh.run_to_quiescence(&mut port, 100).expect("clamped apply absorbs the miss");
        assert_eq!(wh.mv(0).len(), len_before, "extent unchanged: nothing to delete");
        assert!(
            obs.registry().counter_value("view.clamped_rows").unwrap() > 0,
            "the dropped magnitude is visible as a counter"
        );
        assert!(wh.last_error().is_none(), "lossy apply is not a maintenance failure");
    }

    /// Delegates to an [`InProcessPort`] but reports queries touching a
    /// relation in `down` as unavailable — the liveness failure that makes
    /// one view defer while its peers proceed.
    struct DownPort {
        inner: InProcessPort,
        down: std::collections::BTreeSet<String>,
    }

    impl DownPort {
        fn new(inner: InProcessPort) -> Self {
            DownPort { inner, down: Default::default() }
        }

        fn err(rel: &str) -> RelationalError {
            RelationalError::Unavailable { source: rel.into(), reason: "host down".into() }
        }
    }

    impl SourcePort for DownPort {
        fn now_ms(&self) -> u64 {
            self.inner.now_ms()
        }

        fn execute(
            &mut self,
            query: &SpjQuery,
            bound: &[crate::engine::BoundTable],
        ) -> Result<dyno_relational::QueryResult, RelationalError> {
            if let Some(t) = query.tables.iter().find(|t| self.down.contains(t.as_str())) {
                return Err(Self::err(t));
            }
            self.inner.execute(query, bound)
        }

        fn fetch_relation_at(
            &mut self,
            source: SourceId,
            relation: &str,
            version: u64,
        ) -> Result<dyno_relational::Relation, RelationalError> {
            if self.down.contains(relation) {
                return Err(Self::err(relation));
            }
            self.inner.fetch_relation_at(source, relation, version)
        }

        fn locate(&mut self, relation: &str) -> Option<SourceId> {
            self.inner.locate(relation)
        }

        fn source_version(&mut self, source: SourceId) -> u64 {
            self.inner.source_version(source)
        }

        fn charge_local(&mut self, tuples: u64) {
            self.inner.charge_local(tuples)
        }

        fn drain_arrivals(&mut self) -> Vec<UpdateMessage> {
            self.inner.drain_arrivals()
        }
    }

    #[test]
    fn irrelevant_du_skips_but_advances_every_views_vector() {
        let (mut wh, mut port) = warehouse();
        let schema = port
            .space()
            .server(SourceId(2))
            .catalog()
            .get("ReaderDigest")
            .unwrap()
            .schema()
            .clone();
        let du = DataUpdate::new(
            dyno_relational::Delta::inserts(
                schema,
                [dyno_relational::Tuple::of([
                    dyno_relational::Value::str("On Views"),
                    dyno_relational::Value::str("insightful"),
                ])],
            )
            .unwrap(),
        );
        let msg = port.commit(SourceId(2), SourceUpdate::Data(du)).unwrap();
        let before: Vec<_> = (0..3).map(|i| wh.mv(i).sorted_tuples()).collect();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        for (i, extent) in before.iter().enumerate() {
            assert_eq!(&wh.mv(i).sorted_tuples(), extent, "view {i} extent untouched");
            assert!(
                wh.view_reflected(i).contains(&(2, msg.source_version)),
                "view {i} vector still advanced past the irrelevant update"
            );
        }
        assert_eq!(wh.deferred_total(), 0, "nothing deferred: the batch was skipped, not parked");
    }

    #[test]
    fn unavailable_source_defers_one_view_while_peers_commit() {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = DownPort::new(InProcessPort::new(space));
        let mut wh = Warehouse::new(info, Strategy::Pessimistic);
        wh.add_view(bookinfo_view()); // Store ⋈ Item ⋈ Catalog — needs the Library
        wh.add_view(pricelist_view()); // Store ⋈ Item — Retailer only
        wh.add_view(catalog_view()); // Catalog only — the DU does not touch it
        wh.initialize(&mut port).unwrap();

        port.down.insert("Catalog".into());
        port.inner
            .commit(
                SourceId(0),
                SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
            )
            .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();

        assert_eq!(wh.mv(1).len(), 2, "PriceList committed the insert");
        assert_eq!(wh.deferred_len(0), 1, "BookInfo deferred it");
        assert_eq!(wh.mv(0).len(), 1, "BookInfo's extent is frozen");
        assert!(wh.divergent_verdicts() >= 1, "commit/defer split is a divergent verdict");
        assert!(wh.subplan_hits() >= 1, "PriceList reused BookInfo's ΔItem ⋈ Store hop");
        let retailer = |vec: Vec<(u32, u64)>| vec.iter().find(|&&(s, _)| s == 0).map(|&(_, v)| v);
        assert!(
            retailer(wh.view_reflected(0)) < retailer(wh.view_reflected(1)),
            "the deferring view's Retailer version trails its peer's"
        );

        port.down.clear();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(wh.deferred_total(), 0, "the drain caught BookInfo up");
        assert_eq!(wh.drained_commits(), 1);
        assert_eq!(
            wh.view_reflected(0).iter().find(|&&(s, _)| s == 0),
            wh.view_reflected(1).iter().find(|&&(s, _)| s == 0),
            "Retailer versions re-converge after the drain"
        );
        for i in 0..wh.view_count() {
            let expected =
                dyno_relational::eval(&wh.view(i).query, &port.inner.space().provider()).unwrap();
            assert_eq!(wh.mv(i).extent(), &expected.rows, "view {i} converged");
        }
    }

    #[test]
    fn shared_and_unshared_execution_are_bit_identical() {
        let run = |share: bool| {
            let space = bookinfo_space();
            let info = space.info().clone();
            let mut port = InProcessPort::new(space);
            let mut wh = Warehouse::new(info, Strategy::Pessimistic).with_subplan_sharing(share);
            wh.add_view(bookinfo_view());
            wh.add_view(pricelist_view());
            wh.add_view(catalog_view());
            wh.initialize(&mut port).unwrap();
            for k in 0..4 {
                port.commit(
                    SourceId(0),
                    SourceUpdate::Data(insert_item(10 + k, "Data Integration Guide", "Adams", 36)),
                )
                .unwrap();
                wh.run_to_quiescence(&mut port, 100).unwrap();
            }
            let extents: Vec<_> = (0..wh.view_count()).map(|i| wh.mv(i).sorted_tuples()).collect();
            (extents, wh.subplan_hits())
        };
        let (shared, hits) = run(true);
        let (unshared, no_hits) = run(false);
        assert_eq!(shared, unshared, "shared hops derive bit-identical view deltas");
        assert!(hits >= 4, "each DU's ΔItem ⋈ Store hop was shared, got {hits}");
        assert_eq!(no_hits, 0, "sharing off never consults the cache");
    }

    #[test]
    fn dag_refresh_order_follows_tiers() {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut wh = Warehouse::new(info, Strategy::Pessimistic);
        wh.add_view_tiered(bookinfo_view(), 1);
        wh.add_view_tiered(pricelist_view(), 0);
        wh.add_view_tiered(catalog_view(), 1);
        wh.initialize(&mut port).unwrap();
        assert_eq!(wh.dag().refresh_order(), vec![1, 0, 2], "ascending tier, index breaks ties");
        assert_eq!(
            wh.dag().dependents_of(1),
            vec![0, 2],
            "the Library feeds BookInfo and Titles, in refresh order"
        );
        assert!(wh.dag().overlapping(0).contains(&1), "BookInfo and PriceList share the Retailer");
    }

    #[test]
    fn drop_view_retires_its_lane_and_checkpoints_the_new_shape() {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let disk = dyno_durable::MemStorage::new();
        let tracker = dyno_obs::StalenessTracker::new(8);
        let mut wh = Warehouse::new(info, Strategy::Pessimistic).with_staleness(tracker.clone());
        wh.add_view(bookinfo_view());
        wh.add_view(pricelist_view());
        wh.add_view(catalog_view());
        wh.initialize(&mut port).unwrap();
        let mut wh =
            wh.with_wal(DurableLog::create(Box::new(disk.clone())).unwrap()).expect("no bound");
        assert_eq!(wh.dag().view_count(), 3);

        wh.drop_view(1);
        assert_eq!(wh.view_count(), 2);
        assert_eq!(wh.dag().view_count(), 2);
        assert!(tracker.is_retired(1), "the dropped view's lane is tombstoned, not reindexed");

        // Maintenance after the drop logs records in the 2-view shape and
        // recovery replays them cleanly.
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        let info = port.space().info().clone();
        drop(wh);
        let (back, report) = Warehouse::recover(Box::new(disk), info, Collector::wall()).unwrap();
        assert_eq!(report.torn_records, 0);
        assert_eq!(back.view_count(), 2);
        assert_eq!(back.mv(0).len(), 2, "post-drop maintenance survived recovery");
    }

    #[test]
    fn deferred_batch_survives_recovery_and_drains() {
        let space = bookinfo_space();
        let info = space.info().clone();
        let disk = dyno_durable::MemStorage::new();
        let mut port = DownPort::new(InProcessPort::new(space));
        let mut wh = Warehouse::new(info, Strategy::Pessimistic);
        wh.add_view(bookinfo_view());
        wh.add_view(pricelist_view());
        wh.initialize(&mut port).unwrap();
        let mut wh =
            wh.with_wal(DurableLog::create(Box::new(disk.clone())).unwrap()).expect("no bound");

        port.down.insert("Catalog".into());
        port.inner
            .commit(
                SourceId(0),
                SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
            )
            .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(wh.deferred_len(0), 1);

        let info = port.inner.space().info().clone();
        drop(wh);
        let (mut back, _) = Warehouse::recover(Box::new(disk), info, Collector::wall()).unwrap();
        assert_eq!(back.deferred_len(0), 1, "the deferred batch is durable");
        assert_eq!(back.mv(1).len(), 2, "the peer's commit is durable");

        port.down.clear();
        back.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(back.deferred_total(), 0);
        for i in 0..back.view_count() {
            let expected =
                dyno_relational::eval(&back.view(i).query, &port.inner.space().provider()).unwrap();
            assert_eq!(back.mv(i).extent(), &expected.rows, "view {i} converged after restart");
        }
    }

    #[test]
    fn undefinable_for_one_view_fails_the_warehouse() {
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Catalog".into() }),
        )
        .unwrap();
        assert!(matches!(wh.run_to_quiescence(&mut port, 100), Err(ViewError::Undefinable(_))));
    }
}
