//! A multi-view warehouse: several materialized views over the same source
//! space, maintained through **one** Update Message Queue and one Dyno
//! schedule.
//!
//! The paper presents a single view for clarity, but its framework
//! (Figure 3) is a warehouse: the UMQ buffers every source update once, and
//! each update's maintenance must be correct for *every* view. The
//! scheduler-side generalizations are small and instructive:
//!
//! - a schema change is view-relevant (draws concurrent-dependency edges)
//!   iff it invalidates **any** view's definition — transitively, via the
//!   same shadow-evolution walk the single-view manager uses;
//! - one queue entry is maintained against all views **atomically**: a
//!   broken query during any view's maintenance aborts the entry for all of
//!   them (their already-computed deltas are discarded — abort cost), so
//!   every view reflects the same per-source state vector at all times.

use std::collections::HashMap;

use dyno_core::{
    CorrectionPolicy, Dyno, DynoStats, MaintainOutcome, Maintainer, StepOutcome, Strategy, Umq,
    UpdateKind, UpdateMeta,
};
use dyno_durable::storage::Storage;
use dyno_obs::{field, Collector, Counter, Gauge, Level, StalenessTracker};
use dyno_relational::{RelationalError, SignedBag, SourceUpdate};
use dyno_source::{InfoSpace, SourceId, UpdateMessage};

use crate::batch::{adapt_batch_observed, AdaptationMode, Adapted, BatchFailure};
use crate::engine::{MaintEvent, SourcePort};
use crate::ingress::IngressGate;
use crate::manager::{ReflectedVersions, ViewError, ViewStats};
use crate::mview::MaterializedView;
use crate::plan::PlanCache;
use crate::viewdef::ViewDefinition;
use crate::vm::sweep_maintain_observed;
use crate::wal::{
    sorted_versions, AppliedChange, AppliedRecord, CrashPlan, DurableLog, DurableState,
    RecoverError, RecoverReport, ViewState,
};

/// One view's state inside the warehouse.
#[derive(Debug, Clone)]
struct ViewSlot {
    view: ViewDefinition,
    mv: MaterializedView,
    stats: ViewStats,
    plans: PlanCache,
}

/// A set of materialized views maintained together.
#[derive(Debug, Clone)]
pub struct Warehouse {
    dyno: Dyno,
    umq: Umq<UpdateMessage>,
    slots: Vec<ViewSlot>,
    info: InfoSpace,
    reflected: ReflectedVersions,
    adaptation: AdaptationMode,
    last_error: Option<ViewError>,
    obs: Collector,
    ingress: IngressGate,
    wal: Option<DurableLog>,
    /// Admission bound on queued (unmaintained) updates; `None` = unbounded.
    umq_bound: Option<usize>,
    umq_depth: Gauge,
    umq_admitted: Counter,
    umq_shed: Counter,
    mv_clamped: Counter,
    staleness: Option<StalenessTracker>,
}

impl Warehouse {
    /// An empty warehouse with the given detection strategy.
    pub fn new(info: InfoSpace, strategy: Strategy) -> Self {
        Warehouse {
            dyno: Dyno::new(strategy),
            umq: Umq::new(),
            slots: Vec::new(),
            info,
            reflected: HashMap::new(),
            adaptation: AdaptationMode::default(),
            last_error: None,
            obs: Collector::disabled(),
            ingress: IngressGate::new(),
            wal: None,
            umq_bound: None,
            umq_depth: Gauge::default(),
            umq_admitted: Counter::default(),
            umq_shed: Counter::default(),
            mv_clamped: Counter::default(),
            staleness: None,
        }
    }

    /// Overrides the correction policy. Mutates the scheduler in place, so
    /// builder-call order does not matter and accumulated stats / the bound
    /// collector survive.
    pub fn with_correction(mut self, policy: CorrectionPolicy) -> Self {
        self.dyno.set_policy(policy);
        self
    }

    /// Attaches an observability collector (see [`crate::ViewManager::with_obs`]).
    pub fn with_obs(mut self, obs: Collector) -> Self {
        self.dyno = self.dyno.clone().with_obs(obs.clone());
        self.ingress.bind_obs(&obs);
        // Pre-register the admission metrics so `monitor`/`stats` see the
        // series on an idle warehouse (same bug class as the PR 5 `wal.*`
        // fix: a name that only appears once traffic flows reads as a
        // missing metric, not a zero).
        self.umq_depth = obs.gauge("umq.depth");
        self.umq_admitted = obs.counter("umq.admitted");
        self.umq_shed = obs.counter("umq.shed");
        self.mv_clamped = obs.counter("view.clamped_rows");
        self.obs = obs;
        self
    }

    /// Bounds the UMQ: once `capacity` updates are queued, further **data**
    /// updates are shed at admission (counted in `umq.shed`, recorded at
    /// lineage stage `shed`, reported to the staleness tracker). Schema
    /// changes are always admitted — shedding one would leave every view
    /// definition permanently behind the source schema.
    ///
    /// Shedding makes maintenance knowingly lossy: a later delete of a
    /// shed insert misses the extent, so bounded warehouses apply deltas
    /// clamped at zero and count the dropped magnitude in
    /// `view.clamped_rows` instead of failing. Do not combine with
    /// [`Warehouse::with_wal`]: the WAL logs raw admitted deltas and its
    /// replay applies them strictly, so recovery of a shedding warehouse
    /// is unsupported.
    pub fn with_umq_bound(mut self, capacity: usize) -> Self {
        self.umq_bound = Some(capacity);
        self
    }

    /// Attaches a staleness tracker: [`Warehouse::initialize`] registers
    /// one lane per view (with the sources its definition reads), committed
    /// maintenance notes refreshes, and admission-control sheds are
    /// reported so they stop aging the views.
    pub fn with_staleness(mut self, tracker: StalenessTracker) -> Self {
        self.staleness = Some(tracker);
        self
    }

    /// Enables/disables UMQ admission dedupe+resequencing (default on); see
    /// [`crate::ViewManager::with_ingest_dedupe`].
    pub fn with_ingest_dedupe(mut self, enabled: bool) -> Self {
        self.ingress.set_dedupe(enabled);
        self
    }

    /// The warehouse's observability collector.
    pub fn obs(&self) -> &Collector {
        &self.obs
    }

    /// Selects the view-adaptation mode.
    pub fn with_adaptation(mut self, mode: AdaptationMode) -> Self {
        self.adaptation = mode;
        self
    }

    /// Attaches a write-ahead log and writes the first checkpoint. Call
    /// **after** [`Warehouse::initialize`] so the baseline snapshot covers
    /// the populated extents.
    pub fn with_wal(mut self, mut log: DurableLog) -> Self {
        log.bind_obs(&self.obs);
        self.wal = Some(log);
        self.checkpoint_now();
        self
    }

    /// Snapshots everything recovery needs into a [`DurableState`].
    fn durable_state(&self) -> DurableState {
        DurableState {
            strategy: self.dyno.strategy(),
            policy: self.dyno.policy(),
            adaptation: self.adaptation,
            dedupe: self.ingress.dedupe_enabled(),
            views: self
                .slots
                .iter()
                .map(|s| ViewState {
                    sql: s.view.to_string(),
                    cols: s.mv.cols().to_vec(),
                    extent: s.mv.extent().clone(),
                })
                .collect(),
            reflected: sorted_versions(self.reflected.iter().map(|(s, v)| (s.0, *v))),
            marks: self.ingress.marks(),
            batches: self.umq.nodes().iter().map(|b| b.to_vec()).collect(),
            sc_flag: self.umq.schema_change_flag(),
        }
    }

    /// Forces a checkpoint now (no-op without a WAL or after a power cut).
    pub fn checkpoint_now(&mut self) {
        if self.wal.is_some() {
            let state = self.durable_state();
            if let Some(log) = self.wal.as_mut() {
                log.checkpoint(&state);
            }
        }
    }

    /// Arms a deterministic power cut on the attached WAL (chaos testing).
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        if let Some(log) = self.wal.as_mut() {
            log.arm(plan);
        }
    }

    /// True once the attached WAL's simulated power has been cut.
    pub fn wal_power_cut(&self) -> bool {
        self.wal.as_ref().is_some_and(DurableLog::power_cut)
    }

    /// The ingress gate's admitted high-water marks (resubscription baseline).
    pub fn ingress_marks(&self) -> Vec<(u32, u64)> {
        self.ingress.marks()
    }

    /// Rebuilds a warehouse from a WAL: replays checkpoint + tail, restores
    /// every view's definition and extent, the version vector, the ingress
    /// marks, and the UMQ (with merged-batch boundaries); re-parks batches
    /// whose `Intent` has no `Applied`; truncates any torn tail by writing a
    /// fresh checkpoint. Plan caches restart cold — they are derived data.
    ///
    /// `info` is the information space (replacement metadata is config, not
    /// warehouse state); `obs` receives `recover.*` counters and the reopened
    /// log's `wal.*` counters.
    pub fn recover(
        storage: Box<dyn Storage>,
        info: InfoSpace,
        obs: Collector,
    ) -> Result<(Self, RecoverReport), RecoverError> {
        let (log, state, report) = crate::wal::recover(storage, &obs)?;
        let mut dyno = Dyno::new(state.strategy).with_obs(obs.clone());
        dyno.set_policy(state.policy);
        let mut slots = Vec::with_capacity(state.views.len());
        for vs in &state.views {
            let view = ViewDefinition::parse(&vs.sql, "view")
                .map_err(|e| RecoverError::Corrupt(format!("checkpointed view sql: {e}")))?;
            let mut mv = MaterializedView::new(view.name.clone(), vs.cols.clone());
            mv.replace(vs.cols.clone(), vs.extent.clone())
                .map_err(|e| RecoverError::Corrupt(format!("checkpointed extent: {e}")))?;
            slots.push(ViewSlot { view, mv, stats: ViewStats::default(), plans: PlanCache::new() });
        }
        let mut ingress = IngressGate::new();
        ingress.bind_obs(&obs);
        ingress.set_dedupe(state.dedupe);
        ingress.restore_marks(&state.marks);
        let umq = Umq::restore(state.batches, state.sc_flag);
        let umq_depth = obs.gauge("umq.depth");
        umq_depth.set(umq.update_count() as i64);
        let wh = Warehouse {
            dyno,
            umq,
            slots,
            info,
            reflected: state.reflected.iter().map(|&(s, v)| (SourceId(s), v)).collect(),
            adaptation: state.adaptation,
            last_error: None,
            umq_admitted: obs.counter("umq.admitted"),
            umq_shed: obs.counter("umq.shed"),
            mv_clamped: obs.counter("view.clamped_rows"),
            umq_depth,
            obs,
            ingress,
            wal: Some(log),
            umq_bound: None,
            staleness: None,
        };
        Ok((wh, report))
    }

    /// Registers a view. Call before [`Warehouse::initialize`].
    pub fn add_view(&mut self, view: ViewDefinition) {
        let mv = MaterializedView::new(view.name.clone(), view.output_cols());
        self.slots.push(ViewSlot {
            view,
            mv,
            stats: ViewStats::default(),
            plans: PlanCache::new(),
        });
    }

    /// Populates every view's extent from the sources' current states and
    /// records the reflected versions.
    pub fn initialize(&mut self, port: &mut dyn SourcePort) -> Result<(), ViewError> {
        for slot in &mut self.slots {
            let result = port.execute(&slot.view.query, &[]).map_err(ViewError::Internal)?;
            slot.mv.replace(result.cols, result.rows).map_err(ViewError::Internal)?;
            let mut sources: Vec<u32> = Vec::new();
            for table in &slot.view.query.tables {
                if let Some(sid) = port.locate(table) {
                    let v = port.source_version(sid);
                    self.reflected.insert(sid, v);
                    if !sources.contains(&sid.0) {
                        sources.push(sid.0);
                    }
                }
            }
            if let Some(tracker) = &self.staleness {
                sources.sort_unstable();
                tracker.register_view(&slot.view.name, &sources);
            }
        }
        // Messages for updates already included in the initial evaluation
        // must not be maintained again.
        port.drain_arrivals();
        Ok(())
    }

    /// Enqueues wrapper messages, classifying each schema change against
    /// *all* views.
    pub fn ingest<I: IntoIterator<Item = UpdateMessage>>(&mut self, messages: I) {
        for msg in messages {
            // The admission gate dedupes and resequences per source (see
            // `ViewManager::ingest`); the reflected floor covers messages
            // committed before initialization.
            let floor = self.reflected.get(&msg.source).copied().unwrap_or(0);
            for msg in self.ingress.admit(msg, floor) {
                // Admission control: at the bound, data updates are shed
                // (freshness is sacrificed, visibly); schema changes always
                // get through (correctness cannot be shed — a skipped SC
                // would wedge every view definition behind its source).
                let depth = self.umq.update_count();
                if !msg.is_schema_change() && self.umq_bound.is_some_and(|cap| depth >= cap) {
                    self.umq_shed.inc();
                    self.obs.prov(
                        msg.id.0,
                        dyno_obs::stage::SHED,
                        &[
                            field("source", msg.source.0),
                            field("version", msg.source_version),
                            field("depth", depth),
                        ],
                    );
                    if self.obs.tracing_on() {
                        self.obs.event(
                            Level::Warn,
                            "umq.shed",
                            &[field("source", msg.source.0), field("depth", depth)],
                        );
                    }
                    if let Some(tracker) = &self.staleness {
                        tracker.note_shed(msg.source.0, msg.source_version);
                    }
                    continue;
                }
                self.umq_admitted.inc();
                let kind = match &msg.update {
                    SourceUpdate::Data(_) => UpdateKind::Data,
                    SourceUpdate::Schema(sc) => UpdateKind::Schema {
                        invalidates_view: self.slots.iter().any(|s| s.view.is_invalidated_by(sc)),
                    },
                };
                self.obs.prov(
                    msg.id.0,
                    dyno_obs::stage::ADMIT,
                    &[
                        field("source", msg.source.0),
                        field("version", msg.source_version),
                        field("kind", if msg.is_schema_change() { "SC" } else { "DU" }),
                    ],
                );
                let meta = UpdateMeta::new(msg.id.0, msg.source.0, kind, msg);
                if let Some(log) = self.wal.as_mut() {
                    log.log_admitted(&meta);
                }
                self.umq.enqueue(meta);
            }
        }
        self.umq_depth.set(self.umq.update_count() as i64);
    }

    /// Drains arrivals and runs one scheduling step.
    pub fn step(&mut self, port: &mut dyn SourcePort) -> Result<StepOutcome, ViewError> {
        let arrivals = port.drain_arrivals();
        self.ingest(arrivals);
        let mut ctx = WarehouseCtx {
            slots: &mut self.slots,
            info: &self.info,
            reflected: &mut self.reflected,
            adaptation: self.adaptation,
            last_error: &mut self.last_error,
            obs: &self.obs,
            port,
            drained: Vec::new(),
            wal: &mut self.wal,
            clamp: self.umq_bound.is_some(),
            clamped: self.mv_clamped.clone(),
        };
        let outcome = self.dyno.step(&mut self.umq, &mut ctx);
        let drained = std::mem::take(&mut ctx.drained);
        self.ingest(drained);
        self.umq_depth.set(self.umq.update_count() as i64);
        if outcome == StepOutcome::Committed {
            if let Some(tracker) = &self.staleness {
                let reflected: Vec<(u32, u64)> =
                    sorted_versions(self.reflected.iter().map(|(s, v)| (s.0, *v)));
                tracker.note_refresh(&reflected, self.obs.now_us());
            }
        }
        if outcome == StepOutcome::Failed {
            // Keep the error inspectable through `last_error()` even after
            // it has been returned (the CLI `stats` view reads it).
            return Err(self.last_error.clone().unwrap_or(ViewError::Internal(
                RelationalError::InvalidQuery {
                    reason: "warehouse maintenance failed without an error".into(),
                },
            )));
        }
        if outcome == StepOutcome::Committed {
            // A completed maintenance supersedes any earlier failure: the
            // error was acted on (or healed) — holding it would make every
            // later health check report a stale fault.
            self.last_error = None;
        }
        if self.wal.as_ref().is_some_and(DurableLog::should_checkpoint) {
            self.checkpoint_now();
        }
        Ok(outcome)
    }

    /// The most recent hard maintenance failure, if any. Cleared when a
    /// later step commits successfully — the warehouse is healthy again and
    /// health checks must not keep reporting the resolved fault.
    pub fn last_error(&self) -> Option<&ViewError> {
        self.last_error.as_ref()
    }

    /// Steps until quiescent or `max_steps` exhausted.
    pub fn run_to_quiescence(
        &mut self,
        port: &mut dyn SourcePort,
        max_steps: u64,
    ) -> Result<u64, ViewError> {
        let mut steps = 0;
        loop {
            match self.step(port)? {
                StepOutcome::Idle => return Ok(steps),
                _ => {
                    steps += 1;
                    if steps >= max_steps {
                        return Ok(steps);
                    }
                }
            }
        }
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.slots.len()
    }

    /// Updates admitted to the UMQ so far (mirrors the `umq.admitted`
    /// counter).
    pub fn admitted_count(&self) -> u64 {
        self.umq_admitted.get()
    }

    /// Updates shed at the admission bound so far (mirrors `umq.shed`).
    pub fn shed_count(&self) -> u64 {
        self.umq_shed.get()
    }

    /// The `i`-th view's current definition.
    pub fn view(&self, i: usize) -> &ViewDefinition {
        &self.slots[i].view
    }

    /// The `i`-th view's extent.
    pub fn mv(&self, i: usize) -> &MaterializedView {
        &self.slots[i].mv
    }

    /// The `i`-th view's maintenance counters.
    pub fn stats(&self, i: usize) -> ViewStats {
        self.slots[i].stats
    }

    /// Scheduler counters.
    pub fn dyno_stats(&self) -> DynoStats {
        self.dyno.stats()
    }

    /// Per-source versions every view currently reflects (they advance in
    /// lockstep — entries are maintained atomically across views).
    pub fn reflected(&self) -> &ReflectedVersions {
        &self.reflected
    }
}

struct WarehouseCtx<'a> {
    slots: &'a mut Vec<ViewSlot>,
    info: &'a InfoSpace,
    reflected: &'a mut ReflectedVersions,
    adaptation: AdaptationMode,
    last_error: &'a mut Option<ViewError>,
    obs: &'a Collector,
    port: &'a mut dyn SourcePort,
    drained: Vec<UpdateMessage>,
    wal: &'a mut Option<DurableLog>,
    /// True when the warehouse runs admission shedding (bounded UMQ):
    /// deltas are applied clamped at zero, with the dropped magnitude
    /// counted in `clamped` instead of failing maintenance.
    clamp: bool,
    clamped: Counter,
}

/// Applies a signed delta to a view extent: strict when maintenance is
/// lossless (a negative multiplicity is a bug), clamped when admission
/// shedding is on (a shed insert's later delete legitimately misses the
/// extent; the dropped magnitude feeds `view.clamped_rows`).
fn apply_signed(
    mv: &mut MaterializedView,
    cols: &[String],
    rows: &SignedBag,
    clamp: bool,
    clamped: &Counter,
) -> Result<(), RelationalError> {
    if clamp {
        let dropped = mv.apply_delta_clamped(cols, rows)?;
        if dropped > 0 {
            clamped.add(dropped);
        }
        Ok(())
    } else {
        mv.apply_delta(cols, rows)
    }
}

impl Maintainer<UpdateMessage> for WarehouseCtx<'_> {
    fn maintain(
        &mut self,
        batch: &[UpdateMeta<UpdateMessage>],
        rest: &[&[UpdateMeta<UpdateMessage>]],
    ) -> MaintainOutcome {
        let schema_changes = batch.iter().filter(|m| m.payload.is_schema_change()).count();
        self.port.on_maintenance_event(MaintEvent::Begin { updates: batch.len(), schema_changes });
        let pending: Vec<UpdateMessage> =
            rest.iter().flat_map(|n| n.iter().map(|m| m.payload.clone())).collect();
        let is_plain_du =
            batch.len() == 1 && matches!(batch[0].payload.update, SourceUpdate::Data(_));

        let _span = self.obs.span(
            "view.maintain",
            &[
                field("updates", batch.len()),
                field("schema_changes", schema_changes),
                field("kind", if is_plain_du { "du" } else { "batch" }),
                field("views", self.slots.len()),
            ],
        );
        self.obs.counter("view.attempts").inc();

        // Commit protocol, write 1 of 2: the intent is durable before any
        // maintenance query runs. A crash from here until `Applied` lands
        // leaves the batch in the checkpointed queue, to be redone whole.
        if let Some(log) = self.wal.as_mut() {
            let keys: Vec<u64> = batch.iter().map(|m| m.key.0).collect();
            log.log_intent(&keys, schema_changes > 0);
        }
        for meta in batch {
            self.obs.prov(meta.key.0, dyno_obs::stage::INTENT, &[]);
        }

        // Phase 1: compute every view's change without committing anything,
        // so a broken query in view k discards views 0..k's work too.
        enum Staged {
            Delta(crate::vm::ViewDelta),
            Adapted(Adapted),
        }
        let mut staged: Vec<Staged> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter_mut() {
            let outcome = if is_plain_du {
                let (result, drained) = sweep_maintain_observed(
                    &slot.view,
                    &batch[0].payload,
                    &pending,
                    self.port,
                    &mut slot.plans,
                    self.obs,
                );
                self.drained.extend(drained);
                match result {
                    Ok(delta) => Staged::Delta(delta),
                    Err(f) => return self.fail(BatchFailure::from(f)),
                }
            } else {
                let refs: Vec<&UpdateMessage> = batch.iter().map(|m| &m.payload).collect();
                let (result, drained) = adapt_batch_observed(
                    &slot.view,
                    &refs,
                    &pending,
                    self.info,
                    self.adaptation,
                    self.port,
                    self.obs,
                );
                self.drained.extend(drained);
                match result {
                    Ok(adapted) => Staged::Adapted(adapted),
                    Err(f) => return self.fail(f),
                }
            };
            staged.push(outcome);
        }

        // Phase 2: commit to every view.
        let mut total_written: u64 = 0;
        let mut logged_changes: Vec<AppliedChange> = Vec::new();
        for (slot, change) in self.slots.iter_mut().zip(staged) {
            if self.wal.is_some() {
                logged_changes.push(match &change {
                    Staged::Delta(delta) => AppliedChange::Delta { rows: delta.rows.clone() },
                    Staged::Adapted(Adapted::Replaced { view, cols, extent }) => {
                        AppliedChange::Replace {
                            sql: view.to_string(),
                            cols: cols.clone(),
                            extent: extent.clone(),
                        }
                    }
                    Staged::Adapted(Adapted::Incremental { view, delta }) => {
                        AppliedChange::Incremental {
                            sql: view.to_string(),
                            rows: delta.rows.clone(),
                        }
                    }
                });
            }
            let applied = match change {
                Staged::Delta(delta) => {
                    let written = delta.rows.weight();
                    apply_signed(&mut slot.mv, &delta.cols, &delta.rows, self.clamp, &self.clamped)
                        .map(|()| {
                            self.port.charge_mv_write(written);
                            total_written += written;
                            slot.stats.du_committed += 1;
                        })
                }
                Staged::Adapted(Adapted::Replaced { view, cols, extent }) => {
                    let written = extent.weight();
                    slot.mv.replace(cols, extent).map(|()| {
                        self.port.charge_mv_write(written);
                        total_written += written;
                        slot.view = view;
                        slot.plans.invalidate(schema_changes as u64, self.obs);
                        slot.stats.batches_committed += 1;
                        slot.stats.batched_updates += batch.len() as u64;
                    })
                }
                Staged::Adapted(Adapted::Incremental { view, delta }) => {
                    let written = delta.rows.weight();
                    apply_signed(&mut slot.mv, &delta.cols, &delta.rows, self.clamp, &self.clamped)
                        .map(|()| {
                            self.port.charge_mv_write(written);
                            total_written += written;
                            slot.view = view;
                            slot.plans.invalidate(schema_changes as u64, self.obs);
                            slot.stats.batches_committed += 1;
                            slot.stats.incremental_batches += 1;
                            slot.stats.batched_updates += batch.len() as u64;
                        })
                }
            };
            if let Err(e) = applied {
                *self.last_error = Some(ViewError::Internal(e));
                self.port.on_maintenance_event(MaintEvent::Abort);
                return MaintainOutcome::Failed;
            }
        }
        for meta in batch {
            let entry = self.reflected.entry(meta.payload.source).or_insert(0);
            *entry = (*entry).max(meta.payload.source_version);
        }
        // Commit protocol, write 2 of 2: one atomic record across every
        // view, making the whole batch durable or (on a crash) none of it —
        // the durable form of Equation 6's all-or-nothing batch.
        let was_cut = self.wal.as_ref().is_some_and(|w| w.power_cut());
        if let Some(log) = self.wal.as_mut() {
            log.log_applied(&AppliedRecord {
                keys: batch.iter().map(|m| m.key.0).collect(),
                changes: logged_changes,
                reflected: sorted_versions(self.reflected.iter().map(|(s, v)| (s.0, *v))),
            });
        }
        // Terminal provenance, skipped when the power was already cut
        // before the Applied append (the append was dropped, so recovery
        // re-executes this batch and records the terminal stages exactly
        // once, post-recovery). A cut that trips ON the append leaves the
        // record durable — those terminals are recorded here, since
        // recovery will not redo them.
        if !was_cut {
            for meta in batch {
                self.obs.prov(meta.key.0, dyno_obs::stage::APPLIED, &[]);
            }
            if self.obs.lineage_on() {
                let keys: Vec<u64> = batch.iter().map(|m| m.key.0).collect();
                self.obs.prov_batch(
                    &keys,
                    dyno_obs::stage::EXTENT,
                    &[field("rows", total_written)],
                );
            }
        }
        self.obs.counter("view.commits").inc();
        self.port.on_maintenance_event(MaintEvent::Commit);
        MaintainOutcome::Committed
    }

    fn refresh_view_relevance(&mut self, queue: &mut Umq<UpdateMessage>) {
        // Shadow-evolve every view through the queue; a schema change is
        // relevant if it invalidates any shadow at its queue position.
        self.obs.counter("vs.relevance_refreshes").inc();
        let mut shadows: Vec<ViewDefinition> = self.slots.iter().map(|s| s.view.clone()).collect();
        for meta in queue.metas_mut() {
            if let SourceUpdate::Schema(sc) = &meta.payload.update {
                let mut invalidates = false;
                for shadow in &mut shadows {
                    if shadow.is_invalidated_by(sc) {
                        invalidates = true;
                        if let Ok(next) = crate::vs::synchronize(shadow, sc, self.info) {
                            *shadow = next;
                            self.obs.counter("vs.shadow_rewrites").inc();
                        }
                    }
                }
                meta.kind = UpdateKind::Schema { invalidates_view: invalidates };
            }
        }
    }
}

impl WarehouseCtx<'_> {
    fn fail(&mut self, failure: BatchFailure) -> MaintainOutcome {
        match failure {
            BatchFailure::Broken(_) => {
                for slot in self.slots.iter_mut() {
                    slot.stats.aborts += 1;
                }
                self.obs.counter("view.aborts").inc();
                if self.obs.tracing_on() {
                    self.obs.event(Level::Warn, "view.abort", &[]);
                }
                self.port.on_maintenance_event(MaintEvent::Abort);
                MaintainOutcome::BrokenQuery
            }
            BatchFailure::Unavailable(e) => {
                self.obs.counter("view.parked").inc();
                if self.obs.tracing_on() {
                    self.obs.event(Level::Warn, "view.park", &[field("error", e.to_string())]);
                }
                self.port.on_maintenance_event(MaintEvent::Park);
                MaintainOutcome::Parked
            }
            BatchFailure::Undefinable(e) => {
                *self.last_error = Some(ViewError::Undefinable(e));
                self.port.on_maintenance_event(MaintEvent::Abort);
                MaintainOutcome::Failed
            }
            BatchFailure::Internal(e) => {
                *self.last_error = Some(ViewError::Internal(e));
                self.port.on_maintenance_event(MaintEvent::Abort);
                MaintainOutcome::Failed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InProcessPort;
    use crate::testkit::*;
    use dyno_relational::{DataUpdate, SchemaChange, SpjQuery};
    use dyno_source::SourceId;

    /// A second view over the Retailer only: store price list.
    fn pricelist_view() -> ViewDefinition {
        let q = SpjQuery::over(["Store", "Item"])
            .select("Store", "StoreName")
            .select("Item", "Book")
            .select("Item", "Price")
            .join_eq(("Store", "SID"), ("Item", "SID"))
            .build();
        ViewDefinition::new("PriceList", q)
    }

    /// A third view over the Library only.
    fn catalog_view() -> ViewDefinition {
        let q = SpjQuery::over(["Catalog"])
            .select("Catalog", "Title")
            .select("Catalog", "Publisher")
            .build();
        ViewDefinition::new("Titles", q)
    }

    fn warehouse() -> (Warehouse, InProcessPort) {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut wh = Warehouse::new(info, Strategy::Pessimistic);
        wh.add_view(bookinfo_view());
        wh.add_view(pricelist_view());
        wh.add_view(catalog_view());
        wh.initialize(&mut port).unwrap();
        (wh, port)
    }

    #[test]
    fn initializes_all_views() {
        let (wh, _) = warehouse();
        assert_eq!(wh.view_count(), 3);
        assert_eq!(wh.mv(0).len(), 1, "BookInfo: one matching book");
        assert_eq!(wh.mv(1).len(), 1, "PriceList: one item");
        assert_eq!(wh.mv(2).len(), 2, "Titles: both catalog rows");
    }

    #[test]
    fn one_du_updates_exactly_the_affected_views() {
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(wh.mv(0).len(), 2, "BookInfo gains the joined row");
        assert_eq!(wh.mv(1).len(), 2, "PriceList gains the item");
        assert_eq!(wh.mv(2).len(), 2, "Titles untouched");
    }

    #[test]
    fn schema_change_rewrites_only_affected_views() {
        let (mut wh, mut port) = warehouse();
        let store = port.space().server(SourceId(0)).catalog().get("Store").unwrap().clone();
        let item = port.space().server(SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(SourceId(0), SourceUpdate::Schema(storeitems_change(&store, &item))).unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert!(wh.view(0).references_relation("StoreItems"));
        assert!(wh.view(1).references_relation("StoreItems"));
        assert_eq!(wh.view(2), &catalog_view(), "Library-only view untouched");
        assert_eq!(wh.mv(0).len(), 1);
        assert_eq!(wh.mv(1).len(), 1);
        assert_eq!(wh.mv(2).len(), 2);
    }

    #[test]
    fn views_reflect_the_same_state_vector() {
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropAttribute {
                relation: "Catalog".into(),
                attr: "Review".into(),
            }),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        // Every view matches a fresh evaluation of its (current) definition
        // over the final source states.
        for i in 0..wh.view_count() {
            let expected = dyno_relational::eval(&wh.view(i).query, &port.space().provider())
                .expect("final definitions are valid");
            assert_eq!(wh.mv(i).extent(), &expected.rows, "view {i} converged");
        }
    }

    #[test]
    fn sc_relevant_to_any_view_is_scheduled_first() {
        // An SC irrelevant to view 0 but relevant to view 2 still reorders.
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::RenameAttribute {
                relation: "Catalog".into(),
                from: "Publisher".into(),
                to: "House".into(),
            }),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        // BookInfo and Titles both project Publisher → both rewritten.
        assert!(wh.view(0).query.to_string().contains("Catalog.House AS Publisher"));
        assert!(wh.view(2).query.to_string().contains("Catalog.House AS Publisher"));
        assert_eq!(wh.view(1), &pricelist_view(), "Retailer view untouched");
    }

    #[test]
    fn with_correction_preserves_stats_and_obs_regardless_of_order() {
        // Regression: Warehouse::with_correction rebuilt the scheduler,
        // resetting DynoStats and dropping the collector binding whenever it
        // was called before with_obs.
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let obs = Collector::wall();
        let mut wh = Warehouse::new(info, Strategy::Pessimistic)
            .with_correction(CorrectionPolicy::MergeAll)
            .with_obs(obs.clone());
        wh.add_view(bookinfo_view());
        wh.initialize(&mut port).unwrap();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        let before = wh.dyno_stats();
        assert!(before.committed > 0);
        assert_eq!(
            obs.registry().counter_value("dyno.committed"),
            Some(before.committed),
            "correction-then-obs order must not orphan the scheduler's metrics"
        );
        let wh = wh.with_correction(CorrectionPolicy::MergeCycles);
        assert_eq!(wh.dyno_stats(), before, "stats survive a mid-run policy change");
    }

    fn durable_warehouse() -> (Warehouse, InProcessPort, dyno_durable::MemStorage) {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let disk = dyno_durable::MemStorage::new();
        let mut wh = Warehouse::new(info, Strategy::Pessimistic);
        wh.add_view(bookinfo_view());
        wh.add_view(pricelist_view());
        wh.initialize(&mut port).unwrap();
        let log = DurableLog::create(Box::new(disk.clone())).unwrap();
        (wh.with_wal(log), port, disk)
    }

    #[test]
    fn recover_restores_views_versions_and_queue() {
        let (mut wh, mut port, disk) = durable_warehouse();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        // One more committed source update, ingested but not yet maintained.
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(11, "Adaptive Views", "Brook", 41)),
        )
        .unwrap();
        let arrivals = port.drain_arrivals();
        wh.ingest(arrivals);

        // Kill: drop the warehouse, recover from the shared disk.
        let info = port.space().info().clone();
        drop(wh);
        let (mut back, report) =
            Warehouse::recover(Box::new(disk), info, Collector::wall()).unwrap();
        assert_eq!(report.torn_records, 0);
        assert_eq!(report.reparked_intents, 0);
        assert_eq!(back.view_count(), 2);
        assert_eq!(back.mv(0).len(), 2, "the committed maintenance survived");
        // The queued-but-unmaintained update survives in the UMQ and is
        // maintained by the restarted scheduler.
        back.run_to_quiescence(&mut port, 100).unwrap();
        for i in 0..back.view_count() {
            let expected = dyno_relational::eval(&back.view(i).query, &port.space().provider())
                .expect("definitions valid");
            assert_eq!(back.mv(i).extent(), &expected.rows, "view {i} converged after restart");
        }
    }

    #[test]
    fn crash_after_intent_loses_nothing() {
        let (mut wh, mut port, disk) = durable_warehouse();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.arm_crash(CrashPlan { point: crate::wal::CrashPoint::AfterIntent, skip: 0 });
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert!(wh.wal_power_cut(), "the cut tripped during maintenance");
        assert_eq!(wh.mv(0).len(), 2, "the doomed process still sees its commit");

        let info = port.space().info().clone();
        drop(wh);
        let (mut back, report) =
            Warehouse::recover(Box::new(disk), info, Collector::wall()).unwrap();
        assert_eq!(report.reparked_intents, 1, "the intent had no applied");
        assert_eq!(back.mv(0).len(), 1, "the un-applied commit is gone");
        back.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(back.mv(0).len(), 2, "the re-parked batch is redone");
    }

    #[test]
    fn schema_change_commit_is_durable_across_recovery() {
        let (mut wh, mut port, disk) = durable_warehouse();
        let store = port.space().server(SourceId(0)).catalog().get("Store").unwrap().clone();
        let item = port.space().server(SourceId(0)).catalog().get("Item").unwrap().clone();
        port.commit(SourceId(0), SourceUpdate::Schema(storeitems_change(&store, &item))).unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert!(wh.view(0).references_relation("StoreItems"));

        let expected = wh.reflected().clone();
        let frozen = wh.mv(0).sorted_tuples();
        let info = port.space().info().clone();
        drop(wh);
        let (back, report) = Warehouse::recover(Box::new(disk), info, Collector::wall()).unwrap();
        assert_eq!(report.reparked_intents, 0);
        assert!(back.view(0).references_relation("StoreItems"), "rewritten definition survives");
        assert!(back.view(1).references_relation("StoreItems"));
        assert_eq!(back.mv(0).sorted_tuples(), frozen, "extent is bit-identical after recovery");
        assert_eq!(back.reflected(), &expected, "version vector survives");
    }

    #[test]
    fn last_error_clears_when_a_later_step_succeeds() {
        // Regression: last_error was sticky forever, so CLI `stats` kept
        // reporting a failure long after maintenance had committed fine.
        let (mut wh, mut port) = warehouse();
        wh.last_error = Some(ViewError::Internal(RelationalError::InvalidQuery {
            reason: "earlier maintenance failure".into(),
        }));
        assert!(wh.last_error().is_some());
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert!(wh.dyno_stats().committed > 0, "a step committed");
        assert!(wh.last_error().is_none(), "the successful commit cleared the stale error");
    }

    #[test]
    fn last_error_stays_while_the_failure_persists() {
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Catalog".into() }),
        )
        .unwrap();
        assert!(wh.run_to_quiescence(&mut port, 100).is_err());
        assert!(wh.last_error().is_some(), "the failure is inspectable after being returned");
        assert!(wh.step(&mut port).is_err(), "the poisoned head keeps failing");
        assert!(wh.last_error().is_some(), "idle/failed steps do not clear the error");
    }

    #[test]
    fn umq_metrics_are_pre_registered_on_an_idle_warehouse() {
        // Satellite fix (same bug class as the PR 5 `wal.*` fix): the
        // admission series must exist — at zero — before any traffic, or
        // `monitor`/`stats` render a missing series for a healthy idle
        // warehouse.
        let obs = Collector::wall();
        let space = bookinfo_space();
        let _wh = Warehouse::new(space.info().clone(), Strategy::Pessimistic).with_obs(obs.clone());
        assert_eq!(obs.registry().gauge_value("umq.depth"), Some(0));
        assert_eq!(obs.registry().counter_value("umq.admitted"), Some(0));
        assert_eq!(obs.registry().counter_value("umq.shed"), Some(0));
    }

    #[test]
    fn bounded_umq_sheds_data_updates_but_never_schema_changes() {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let obs = Collector::wall();
        let tracker = dyno_obs::StalenessTracker::new(8);
        let mut wh = Warehouse::new(info, Strategy::Pessimistic)
            .with_obs(obs.clone())
            .with_umq_bound(1)
            .with_staleness(tracker.clone());
        wh.add_view(bookinfo_view());
        wh.initialize(&mut port).unwrap();
        assert_eq!(tracker.view_names(), vec!["BookInfo".to_string()], "lane registered");

        // Three DUs into a bound of one: the first is admitted, the rest
        // shed; an SC gets through regardless.
        for k in 0..3 {
            let book = if k == 0 { "Data Integration Guide" } else { "Shed Fodder" };
            let msg = port
                .commit(SourceId(0), SourceUpdate::Data(insert_item(10 + k, book, "Adams", 36)))
                .unwrap();
            tracker.note_commit(msg.source.0, msg.source_version, 100 + k as u64);
        }
        let sc = port
            .commit(
                SourceId(1),
                SourceUpdate::Schema(SchemaChange::RenameAttribute {
                    relation: "Catalog".into(),
                    from: "Publisher".into(),
                    to: "House".into(),
                }),
            )
            .unwrap();
        tracker.note_commit(sc.source.0, sc.source_version, 200);
        wh.ingest(port.drain_arrivals());
        assert_eq!(wh.admitted_count(), 2, "one DU plus the SC");
        assert_eq!(wh.shed_count(), 2);
        assert_eq!(obs.registry().counter_value("umq.shed"), Some(2));
        assert!(obs.registry().gauge_value("umq.depth").unwrap() >= 1);
        wh.run_to_quiescence(&mut port, 100).unwrap();
        assert_eq!(obs.registry().gauge_value("umq.depth"), Some(0), "drained");
        assert_eq!(tracker.lifetime(0).0, 2, "both admitted commits became staleness samples");
        assert_eq!(tracker.current_staleness_us(0, u64::MAX), 0, "shed commits do not age views");
        assert_eq!(wh.mv(0).len(), 2, "the admitted insert is reflected, the shed ones are not");
    }

    #[test]
    fn bounded_umq_clamps_deletes_of_shed_inserts() {
        // Shedding makes maintenance knowingly lossy: when an insert is
        // shed and its row is later deleted at the source, the delete's
        // view delta has nothing to cancel. A bounded warehouse must clamp
        // (count the divergence in `view.clamped_rows`) instead of failing
        // with a negative-multiplicity error.
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let obs = Collector::wall();
        let mut wh =
            Warehouse::new(info, Strategy::Pessimistic).with_obs(obs.clone()).with_umq_bound(1);
        wh.add_view(bookinfo_view());
        wh.initialize(&mut port).unwrap();
        assert_eq!(obs.registry().counter_value("view.clamped_rows"), Some(0), "pre-registered");

        let admitted = insert_item(10, "Data Integration Guide", "Adams", 40);
        let shed = insert_item(10, "Data Integration Guide", "Adams", 41);
        port.commit(SourceId(0), SourceUpdate::Data(admitted)).unwrap();
        wh.ingest(port.drain_arrivals());
        port.commit(SourceId(0), SourceUpdate::Data(shed.clone())).unwrap();
        wh.ingest(port.drain_arrivals());
        assert_eq!(wh.shed_count(), 1, "the second insert hit the bound");
        wh.run_to_quiescence(&mut port, 100).unwrap();
        let len_before = wh.mv(0).len();

        // Delete the shed row at the source. The source state is
        // consistent (it applied both inserts); only the warehouse missed
        // one — exactly the divergence shedding signs up for.
        let row = shed.delta.rows().iter().next().unwrap().0.clone();
        let delete = DataUpdate::new(
            dyno_relational::Delta::deletes(item_schema(), [row]).expect("typed row"),
        );
        port.commit(SourceId(0), SourceUpdate::Data(delete)).unwrap();
        wh.ingest(port.drain_arrivals());
        wh.run_to_quiescence(&mut port, 100).expect("clamped apply absorbs the miss");
        assert_eq!(wh.mv(0).len(), len_before, "extent unchanged: nothing to delete");
        assert!(
            obs.registry().counter_value("view.clamped_rows").unwrap() > 0,
            "the dropped magnitude is visible as a counter"
        );
        assert!(wh.last_error().is_none(), "lossy apply is not a maintenance failure");
    }

    #[test]
    fn undefinable_for_one_view_fails_the_warehouse() {
        let (mut wh, mut port) = warehouse();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Catalog".into() }),
        )
        .unwrap();
        assert!(matches!(wh.run_to_quiescence(&mut port, 100), Err(ViewError::Undefinable(_))));
    }
}
