//! The materialized view extent.

use std::fmt;

use dyno_relational::{RelationalError, SignedBag, Tuple};

/// The stored extent of a view: named output columns over a bag of tuples.
///
/// Kept untyped (column names only): the view's output types follow the
/// source schemas, which change over time; the extent is always replaced or
/// delta-adjusted in lockstep with the view definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedView {
    name: String,
    cols: Vec<String>,
    extent: SignedBag,
}

impl MaterializedView {
    /// An empty extent with the given columns.
    pub fn new(name: impl Into<String>, cols: Vec<String>) -> Self {
        MaterializedView { name: name.into(), cols, extent: SignedBag::new() }
    }

    /// The view name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output column names.
    pub fn cols(&self) -> &[String] {
        &self.cols
    }

    /// The extent.
    pub fn extent(&self) -> &SignedBag {
        &self.extent
    }

    /// Number of tuples (with duplicates).
    pub fn len(&self) -> u64 {
        self.extent.weight()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.extent.is_empty()
    }

    /// Applies a signed delta whose columns must match positionally.
    /// The resulting extent must be non-negative (a view never holds
    /// "negative tuples"); violations indicate a maintenance bug and are
    /// reported as errors.
    pub fn apply_delta(
        &mut self,
        cols: &[String],
        delta: &SignedBag,
    ) -> Result<(), RelationalError> {
        if cols != self.cols.as_slice() {
            return Err(RelationalError::InvalidQuery {
                reason: format!(
                    "view delta columns {:?} do not match view columns {:?}",
                    cols, self.cols
                ),
            });
        }
        // A negative multiplicity can only appear at a tuple the delta
        // touches, so merge in place and check just those keys — O(|Δ| log n)
        // instead of cloning and re-walking the whole extent. On violation
        // the merge is undone, preserving the unchanged-on-error contract.
        self.extent.merge(delta);
        if delta.iter().any(|(t, _)| self.extent.count(t) < 0) {
            self.extent.merge_negated(delta);
            return Err(RelationalError::InvalidQuery {
                reason: format!(
                    "applying delta to view `{}` would produce negative multiplicities",
                    self.name
                ),
            });
        }
        Ok(())
    }

    /// Like [`MaterializedView::apply_delta`], but **clamps** instead of
    /// erroring: entries that would go negative are dropped and their
    /// magnitude returned. This is the apply path for warehouses running
    /// admission shedding (DESIGN.md §14) — a shed insert's later delete
    /// legitimately misses the extent, and the divergence is the priced-in
    /// cost of bounding the queue, surfaced through the returned count
    /// rather than a maintenance failure.
    pub fn apply_delta_clamped(
        &mut self,
        cols: &[String],
        delta: &SignedBag,
    ) -> Result<u64, RelationalError> {
        if cols != self.cols.as_slice() {
            return Err(RelationalError::InvalidQuery {
                reason: format!(
                    "view delta columns {:?} do not match view columns {:?}",
                    cols, self.cols
                ),
            });
        }
        self.extent.merge(delta);
        Ok(self.extent.clamp_non_negative())
    }

    /// Replaces columns and extent wholesale (view adaptation after a
    /// definition rewrite).
    pub fn replace(&mut self, cols: Vec<String>, extent: SignedBag) -> Result<(), RelationalError> {
        if !extent.is_non_negative() {
            return Err(RelationalError::InvalidQuery {
                reason: format!(
                    "replacement extent for `{}` has negative multiplicities",
                    self.name
                ),
            });
        }
        self.cols = cols;
        self.extent = extent;
        Ok(())
    }

    /// Tuples in deterministic order (tests, display).
    pub fn sorted_tuples(&self) -> Vec<(Tuple, i64)> {
        self.extent.sorted_entries()
    }
}

impl fmt::Display for MaterializedView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}({}) [{} tuples]", self.name, self.cols.join(", "), self.len())?;
        for (t, c) in self.sorted_tuples().into_iter().take(20) {
            if c == 1 {
                writeln!(f, "  {t}")?;
            } else {
                writeln!(f, "  {t} x{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::Value;

    fn cols() -> Vec<String> {
        vec!["a".to_string(), "b".to_string()]
    }

    fn t(a: i64, b: &str) -> Tuple {
        Tuple::of([Value::from(a), Value::str(b)])
    }

    #[test]
    fn delta_application() {
        let mut mv = MaterializedView::new("V", cols());
        let mut d = SignedBag::new();
        d.add(t(1, "x"), 2);
        mv.apply_delta(&cols(), &d).unwrap();
        assert_eq!(mv.len(), 2);
        let mut d2 = SignedBag::new();
        d2.add(t(1, "x"), -1);
        mv.apply_delta(&cols(), &d2).unwrap();
        assert_eq!(mv.len(), 1);
    }

    #[test]
    fn negative_extent_rejected_and_untouched() {
        let mut mv = MaterializedView::new("V", cols());
        let mut d = SignedBag::new();
        d.add(t(1, "x"), -1);
        assert!(mv.apply_delta(&cols(), &d).is_err());
        assert!(mv.is_empty());
    }

    #[test]
    fn column_mismatch_rejected() {
        let mut mv = MaterializedView::new("V", cols());
        let d = SignedBag::new();
        assert!(mv.apply_delta(&["a".to_string()], &d).is_err());
    }

    #[test]
    fn replace_swaps_schema() {
        let mut mv = MaterializedView::new("V", cols());
        let mut extent = SignedBag::new();
        extent.add(Tuple::of([Value::from(5)]), 1);
        mv.replace(vec!["only".to_string()], extent).unwrap();
        assert_eq!(mv.cols(), &["only".to_string()]);
        assert_eq!(mv.len(), 1);
    }
}
