//! Cached maintenance-query plans.
//!
//! The *shape* of a SWEEP maintenance run — the local seed query, the chain
//! of `__D ⋈ target` queries, and the final projection — depends only on
//! the view definition and the updated relation, not on the delta's rows.
//! A fig08-style run maintains thousands of data updates against a view
//! that changes only when view synchronization rewrites it, so the plan is
//! computed once per (view definition, relation) and replayed from a
//! [`PlanCache`].
//!
//! Invalidation is two-layered: the view manager explicitly invalidates on
//! every schema-change batch commit (VS rewrote or revalidated the view),
//! and the cache additionally fingerprints the rendered view definition —
//! if a view ever changes without an explicit invalidation, the fingerprint
//! mismatch clears the cache rather than serving a stale plan.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use dyno_obs::Collector;
use dyno_relational::{CmpOp, ColRef, Predicate, ProjItem, RelationalError, SpjQuery, Value};

use crate::viewdef::ViewDefinition;
use crate::vm::{flat, D};

/// One maintenance-query step: join the running intermediate `__D` with
/// `target` through the view's predicates.
///
/// Besides the shippable [`SpjQuery`], each step carries the *compiled*
/// delta-operator form of the same join — key positions, residual filters,
/// and the target projection — so view-manager-local work (SWEEP
/// compensation against a pending delta) runs as direct Z-set algebra
/// instead of replaying the query over rebuilt bound tables. Target-side
/// attribute names are resolved against the concrete delta schema at use
/// time, which keeps the plan valid across schema versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintStep {
    /// The view relation this step joins in.
    pub target: String,
    /// The `__D ⋈ target` query shipped to the source hosting `target`.
    pub query: SpjQuery,
    /// Column names of the intermediate flowing *into* this step (the
    /// bound `__D` table's columns).
    pub d_cols_in: Vec<String>,
    /// Equi-join keys: position in `d_cols_in` ↔ target attribute name.
    pub join_keys: Vec<(usize, String)>,
    /// Residual constant filters on the target (attribute, op, literal).
    pub t_filters: Vec<(String, CmpOp, Value)>,
    /// Target attributes the view references, in step-projection order
    /// (the step output is all of `d_cols_in` followed by these).
    pub t_proj: Vec<String>,
}

/// The full per-relation maintenance plan for a view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintPlan {
    /// The updated relation this plan maintains.
    pub relation: String,
    /// Step 0: local projection/selection of the delta itself.
    pub local_query: SpjQuery,
    /// Step 0 compiled: constant filters on the updated relation
    /// (attribute, op, literal), applied with executor semantics.
    pub local_filters: Vec<(String, CmpOp, Value)>,
    /// Step 0 compiled: referenced attributes of the updated relation, in
    /// seed-projection order.
    pub local_proj: Vec<String>,
    /// The `__D ⋈ target` chain, in join order.
    pub steps: Vec<MaintStep>,
    /// Projection from the final intermediate to the view's SELECT list.
    pub final_indices: Vec<usize>,
    /// The view's output column names.
    pub out_cols: Vec<String>,
}

impl MaintPlan {
    /// Plans maintenance of an update to `relation` against `view`. The
    /// relation must be referenced by the view.
    pub fn build(view: &ViewDefinition, relation: &str) -> Result<MaintPlan, RelationalError> {
        let out_cols = view.output_cols();

        // Step 0: local projection/selection of the delta itself.
        let referenced = view.cols_of_relation(relation);
        let local_query = SpjQuery {
            tables: vec![relation.to_string()],
            projection: referenced.iter().map(|c| ProjItem::aliased(c.clone(), flat(c))).collect(),
            predicates: view
                .query
                .predicates
                .iter()
                .filter(|p| matches!(p, Predicate::Compare(c, _, _) if c.relation == relation))
                .cloned()
                .collect(),
        };
        let local_filters: Vec<(String, CmpOp, Value)> = local_query
            .predicates
            .iter()
            .filter_map(|p| match p {
                Predicate::Compare(c, op, v) => Some((c.attr.clone(), *op, v.clone())),
                _ => None,
            })
            .collect();
        let local_proj: Vec<String> = referenced.iter().map(|c| c.attr.clone()).collect();
        let mut d_cols: Vec<String> =
            local_query.projection.iter().map(|p| p.output.clone()).collect();
        let mut joined: Vec<String> = vec![relation.to_string()];

        // Join order: repeatedly pick a not-yet-joined view relation
        // connected to the current intermediate by an equi-join predicate.
        let mut remaining: Vec<String> =
            view.query.tables.iter().filter(|t| **t != relation).cloned().collect();
        let mut steps = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let next_pos = remaining
                .iter()
                .position(|t| {
                    view.query.predicates.iter().any(|p| match p {
                        Predicate::JoinEq(a, b) => {
                            (a.relation == *t && joined.contains(&b.relation))
                                || (b.relation == *t && joined.contains(&a.relation))
                        }
                        _ => false,
                    })
                })
                .unwrap_or(0);
            let target = remaining.remove(next_pos);

            // The maintenance query: __D ⋈ target with the view's join and
            // filter predicates, projecting __D plus target's referenced
            // columns (flattened).
            let target_refs = view.cols_of_relation(&target);
            let mut q = SpjQuery {
                tables: vec![D.to_string(), target.clone()],
                projection: d_cols
                    .iter()
                    .map(|c| ProjItem::aliased(ColRef::new(D, c.clone()), c.clone()))
                    .chain(target_refs.iter().map(|c| ProjItem::aliased(c.clone(), flat(c))))
                    .collect(),
                predicates: Vec::new(),
            };
            let mut join_keys: Vec<(usize, String)> = Vec::new();
            let mut t_filters: Vec<(String, CmpOp, Value)> = Vec::new();
            for p in &view.query.predicates {
                match p {
                    Predicate::JoinEq(a, b) => {
                        let (d_side, t_side) =
                            if a.relation == target && joined.contains(&b.relation) {
                                (b, a)
                            } else if b.relation == target && joined.contains(&a.relation) {
                                (a, b)
                            } else {
                                continue;
                            };
                        let d_pos =
                            d_cols.iter().position(|c| *c == flat(d_side)).ok_or_else(|| {
                                RelationalError::InvalidQuery {
                                    reason: format!(
                                        "join column {d_side} missing from intermediate"
                                    ),
                                }
                            })?;
                        join_keys.push((d_pos, t_side.attr.clone()));
                        q.predicates
                            .push(Predicate::JoinEq(ColRef::new(D, flat(d_side)), t_side.clone()));
                    }
                    Predicate::Compare(c, op, v) if c.relation == target => {
                        t_filters.push((c.attr.clone(), *op, v.clone()));
                        q.predicates.push(Predicate::Compare(c.clone(), *op, v.clone()));
                    }
                    Predicate::Compare(..) => {}
                }
            }

            let d_cols_out: Vec<String> = q.projection.iter().map(|p| p.output.clone()).collect();
            let t_proj: Vec<String> = target_refs.iter().map(|c| c.attr.clone()).collect();
            steps.push(MaintStep {
                target: target.clone(),
                query: q,
                d_cols_in: d_cols,
                join_keys,
                t_filters,
                t_proj,
            });
            d_cols = d_cols_out;
            joined.push(target);
        }

        // Final projection to the view's SELECT list.
        let final_indices: Vec<usize> = view
            .query
            .projection
            .iter()
            .map(|item| {
                d_cols.iter().position(|c| *c == flat(&item.col)).ok_or_else(|| {
                    RelationalError::InvalidQuery {
                        reason: format!("column {} missing from maintenance result", item.col),
                    }
                })
            })
            .collect::<Result<_, _>>()?;

        Ok(MaintPlan {
            relation: relation.to_string(),
            local_query,
            local_filters,
            local_proj,
            steps,
            final_indices,
            out_cols,
        })
    }
}

/// Per-view cache of [`MaintPlan`]s, keyed by updated relation and pinned
/// to a fingerprint of the view definition.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    fingerprint: Option<u64>,
    plans: HashMap<String, Rc<MaintPlan>>,
}

fn fingerprint_of(view: &ViewDefinition) -> u64 {
    let mut h = DefaultHasher::new();
    view.to_string().hash(&mut h);
    h.finish()
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True iff no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Explicit invalidation: a schema-change batch committed, so VS has
    /// rewritten (or at least revalidated) the view under `schema_changes`
    /// source schema changes. Counts one invalidation per schema change —
    /// the granularity the fig10 trace check asserts against.
    pub fn invalidate(&mut self, schema_changes: u64, obs: &Collector) {
        if schema_changes == 0 {
            return;
        }
        self.plans.clear();
        self.fingerprint = None;
        obs.counter("plan.cache_invalidations").add(schema_changes);
    }

    /// The plan maintaining `relation` against `view`: cached when the view
    /// fingerprint still matches, rebuilt (and counted as a miss) otherwise.
    pub fn plan_for(
        &mut self,
        view: &ViewDefinition,
        relation: &str,
        obs: &Collector,
    ) -> Result<Rc<MaintPlan>, RelationalError> {
        let fp = fingerprint_of(view);
        if self.fingerprint != Some(fp) {
            if self.fingerprint.is_some() {
                // The view changed without an explicit invalidation — the
                // fingerprint safety net catches it.
                obs.counter("plan.cache_invalidations").inc();
            }
            self.plans.clear();
            self.fingerprint = Some(fp);
        }
        if let Some(plan) = self.plans.get(relation) {
            obs.counter("plan.cache_hits").inc();
            return Ok(Rc::clone(plan));
        }
        obs.counter("plan.cache_misses").inc();
        let plan = Rc::new(MaintPlan::build(view, relation)?);
        self.plans.insert(relation.to_string(), Rc::clone(&plan));
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::bookinfo_view;
    use dyno_obs::Collector;

    #[test]
    fn plan_is_cached_per_relation() {
        let obs = Collector::wall();
        let mut cache = PlanCache::new();
        let view = bookinfo_view();
        let p1 = cache.plan_for(&view, "Item", &obs).unwrap();
        let p2 = cache.plan_for(&view, "Item", &obs).unwrap();
        assert!(Rc::ptr_eq(&p1, &p2));
        cache.plan_for(&view, "Catalog", &obs).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(obs.registry().counter_value("plan.cache_hits"), Some(1));
        assert_eq!(obs.registry().counter_value("plan.cache_misses"), Some(2));
    }

    #[test]
    fn explicit_invalidation_clears_and_counts() {
        let obs = Collector::wall();
        let mut cache = PlanCache::new();
        let view = bookinfo_view();
        cache.plan_for(&view, "Item", &obs).unwrap();
        cache.invalidate(3, &obs);
        assert!(cache.is_empty());
        assert_eq!(obs.registry().counter_value("plan.cache_invalidations"), Some(3));
        // Re-planning after invalidation is a miss, not a hit.
        cache.plan_for(&view, "Item", &obs).unwrap();
        assert_eq!(obs.registry().counter_value("plan.cache_hits"), None);
    }

    #[test]
    fn fingerprint_mismatch_is_a_safety_net() {
        let obs = Collector::wall();
        let mut cache = PlanCache::new();
        let view = bookinfo_view();
        cache.plan_for(&view, "Item", &obs).unwrap();
        let mut renamed = view.clone();
        renamed.name = "other_view".into();
        cache.plan_for(&renamed, "Item", &obs).unwrap();
        assert_eq!(obs.registry().counter_value("plan.cache_invalidations"), Some(1));
        assert_eq!(cache.len(), 1, "plans for the old definition are gone");
    }

    #[test]
    fn plan_join_order_matches_sweep_expectations() {
        let view = bookinfo_view();
        let plan = MaintPlan::build(&view, "Item").unwrap();
        assert_eq!(plan.steps.len(), view.query.tables.len() - 1);
        for step in &plan.steps {
            assert_eq!(step.query.tables[0], D);
            assert_eq!(step.query.tables[1], step.target);
            assert!(
                step.query.predicates.iter().any(|p| matches!(p, Predicate::JoinEq(..))),
                "each step joins through at least one equi-join key"
            );
        }
        assert_eq!(plan.out_cols, view.output_cols());
    }
}
