//! View adaptation and merged-batch processing (paper Section 5 and
//! Equation 6).
//!
//! When Dyno merges a dependency cycle, the resulting batch — data updates
//! and schema changes from several sources — must be maintained **atomically**:
//!
//! 1. *preprocess*: split the batch per source, compose its schema changes
//!    (`rename A→B` ∘ `rename B→C` ⇒ `rename A→C`; implemented in
//!    `dyno_relational::ddl::compose`);
//! 2. *rewrite*: synchronize the view definition through the composed
//!    changes (module [`crate::vs`]), yielding `V′`;
//! 3. *homogenize*: batch data updates may be schema-inconsistent when
//!    schema changes interleave them (the paper's example: `insert (3,4)`,
//!    `drop first attribute`, `insert (5)` — homogenized to
//!    `insert (4),(5)`); [`homogenize_delta`] maps each delta through the
//!    composed changes into the final schema;
//! 4. *adapt*: compute the new extent. When the batch's schema changes are
//!    renames/additions (the view's shape is preserved), the **incremental**
//!    path computes `ΔV` by paper Equation 6 over the homogenized deltas
//!    and applies it — writing only `|ΔV|` tuples to the view. Otherwise
//!    (relation replacements, attribute replacements pulling in new
//!    relations, column pruning) the **recompute** path evaluates `V′` over
//!    the batch-point source states wholesale. Both paths fetch through
//!    real (breakable!) maintenance queries and roll back the effect of
//!    *pending-but-unprocessed* concurrent data updates locally — the same
//!    compensation idea SWEEP uses.

use std::collections::HashMap;

use dyno_relational::exec::{RelationProvider, TableSlice};
use dyno_relational::{
    ProjItem, QueryResult, RelationalError, Schema, SchemaChange, SignedBag, SourceUpdate, SpjQuery,
};
use dyno_source::UpdateMessage;

use crate::engine::{schema_from_bag, LocalProvider, SourcePort};
use crate::viewdef::ViewDefinition;
use crate::vm::{prof_op, prof_start, MaintFailure, Prof, ViewDelta};
use crate::vs::{synchronize_all, VsError};

/// The result of adapting the view for one (possibly merged) batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Adapted {
    /// The extent was recomputed wholesale at the batch point.
    Replaced {
        /// The rewritten view definition.
        view: ViewDefinition,
        /// Output column names of the adapted view.
        cols: Vec<String>,
        /// The full replacement extent.
        extent: SignedBag,
    },
    /// The extent change was computed incrementally (paper Equation 6 over
    /// homogenized batch deltas); only `delta` needs writing to the view.
    Incremental {
        /// The rewritten view definition (same output columns as before).
        view: ViewDefinition,
        /// The signed change to the extent.
        delta: ViewDelta,
    },
}

impl Adapted {
    /// The rewritten view definition.
    pub fn view(&self) -> &ViewDefinition {
        match self {
            Adapted::Replaced { view, .. } | Adapted::Incremental { view, .. } => view,
        }
    }
}

/// Which adaptation paths the view manager may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptationMode {
    /// Incremental (Equation 6) when the batch preserves the view's shape,
    /// recompute otherwise.
    #[default]
    Auto,
    /// Always recompute — the ablation baseline for the incremental path.
    RecomputeOnly,
}

/// Why batch adaptation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchFailure {
    /// A maintenance query broke against a concurrently changed schema.
    Broken(MaintFailure),
    /// The view cannot be synchronized over the batch's schema changes.
    Undefinable(VsError),
    /// A source the batch needs is down; park the entry and retry later.
    Unavailable(RelationalError),
    /// Internal invariant violation.
    Internal(RelationalError),
}

impl From<MaintFailure> for BatchFailure {
    fn from(f: MaintFailure) -> Self {
        match f {
            MaintFailure::Internal(e) => BatchFailure::Internal(e),
            MaintFailure::Unavailable(e) => BatchFailure::Unavailable(e),
            broken => BatchFailure::Broken(broken),
        }
    }
}

/// Adapts the view through a batch of updates.
///
/// * `pending` — received-but-unprocessed messages *excluding* this batch.
/// * Returns the adaptation plus any messages that arrived during the
///   maintenance queries (to be enqueued by the caller).
pub fn adapt_batch(
    view: &ViewDefinition,
    batch: &[&UpdateMessage],
    pending: &[UpdateMessage],
    info: &dyno_source::InfoSpace,
    mode: AdaptationMode,
    port: &mut dyn SourcePort,
) -> (Result<Adapted, BatchFailure>, Vec<UpdateMessage>) {
    let mut drained = Vec::new();
    let result = adapt_inner(view, batch, pending, info, mode, port, &mut drained, None);
    (result, drained)
}

/// [`adapt_batch`] under a `va.adapt` span: reports which adaptation path
/// was taken per batch (`va.mode` event, `va.incremental`/`va.recompute`
/// counters) and surfaces broken maintenance queries as `va.broken_query`
/// warning events.
pub fn adapt_batch_observed(
    view: &ViewDefinition,
    batch: &[&UpdateMessage],
    pending: &[UpdateMessage],
    info: &dyno_source::InfoSpace,
    mode: AdaptationMode,
    port: &mut dyn SourcePort,
    obs: &dyno_obs::Collector,
) -> (Result<Adapted, BatchFailure>, Vec<UpdateMessage>) {
    use dyno_obs::{field, Level};
    let _span =
        obs.span("va.adapt", &[field("updates", batch.len()), field("pending", pending.len())]);
    let prof: Option<Prof<'_>> =
        if obs.profile_on() { Some((obs, view.name.as_str())) } else { None };
    let mut drained = Vec::new();
    let result = adapt_inner(view, batch, pending, info, mode, port, &mut drained, prof);
    let out = (result, drained);
    match &out.0 {
        Ok(Adapted::Incremental { .. }) => {
            obs.counter("va.incremental").inc();
            obs.event(Level::Info, "va.mode", &[field("mode", "incremental")]);
        }
        Ok(Adapted::Replaced { .. }) => {
            obs.counter("va.recompute").inc();
            obs.event(Level::Info, "va.mode", &[field("mode", "recompute")]);
        }
        Err(BatchFailure::Broken(MaintFailure::Broken { query, .. })) => {
            obs.counter("engine.break_detections").inc();
            if obs.tracing_on() {
                obs.event(Level::Warn, "va.broken_query", &[field("query", query.clone())]);
            }
        }
        Err(_) => {}
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn adapt_inner(
    view: &ViewDefinition,
    batch: &[&UpdateMessage],
    pending: &[UpdateMessage],
    info: &dyno_source::InfoSpace,
    mode: AdaptationMode,
    port: &mut dyn SourcePort,
    drained: &mut Vec<UpdateMessage>,
    prof: Option<Prof<'_>>,
) -> Result<Adapted, BatchFailure> {
    // Step 1: compose the batch's schema changes (in commit order — the
    // batch preserves queue order, which preserves per-source commit order).
    let schema_changes: Vec<SchemaChange> = batch
        .iter()
        .filter_map(|m| match &m.update {
            SourceUpdate::Schema(sc) => Some(sc.clone()),
            SourceUpdate::Data(_) => None,
        })
        .collect();
    let composed = dyno_relational::compose(&schema_changes);

    // Step 2: rewrite the view definition.
    let new_view = synchronize_all(view, &composed, info).map_err(BatchFailure::Undefinable)?;
    port.charge_local(composed.len() as u64);

    if mode == AdaptationMode::Auto && incremental_applicable(view, &new_view, &composed) {
        adapt_incremental(&new_view, batch, pending, port, drained, prof)
    } else {
        adapt_recompute(new_view, batch, pending, port, drained)
    }
}

/// The recompute path: fetch batch-point states for every relation of `V′`
/// and evaluate it wholesale. Each fetch is a real maintenance query and
/// may break.
fn adapt_recompute(
    new_view: ViewDefinition,
    batch: &[&UpdateMessage],
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    drained: &mut Vec<UpdateMessage>,
) -> Result<Adapted, BatchFailure> {
    let batch_ids: Vec<_> = batch.iter().map(|m| m.id).collect();
    let mut states = LocalProvider::new();
    for table in &new_view.query.tables {
        let (schema, rows) =
            fetch_batch_point_state(&new_view, table, &batch_ids, pending, port, drained)?;
        states.insert(schema, rows);
    }

    // Evaluate V′ over the batch-point states.
    let result = dyno_relational::eval(&new_view.query, &states).map_err(BatchFailure::Internal)?;
    port.charge_local(result.weight());
    if !result.rows.is_non_negative() {
        return Err(BatchFailure::Internal(RelationalError::InvalidQuery {
            reason: "recomputed view extent has negative multiplicities".into(),
        }));
    }
    Ok(Adapted::Replaced { view: new_view, cols: result.cols, extent: result.rows })
}

/// Fetches one relation's current extent projected to the view's referenced
/// columns, rolled back to the batch point by subtracting pending non-batch
/// data updates (anomaly-type-(2) compensation). The batch's own effects —
/// its data updates and committed schema changes — remain included.
fn fetch_batch_point_state(
    new_view: &ViewDefinition,
    table: &str,
    batch_ids: &[dyno_source::UpdateId],
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    drained: &mut Vec<UpdateMessage>,
) -> Result<(Schema, SignedBag), BatchFailure> {
    let referenced = new_view.cols_of_relation(table);
    let q = SpjQuery {
        tables: vec![table.to_string()],
        projection: referenced.iter().map(|c| ProjItem::plain(c.clone())).collect(),
        predicates: Vec::new(),
    };
    let fetched =
        port.execute(&q, &[]).map_err(|e| BatchFailure::from(MaintFailure::from_query(&q, e)))?;
    drained.extend(port.drain_arrivals());

    let mut rows = fetched.rows;
    let col_names: Vec<String> = fetched.cols.clone();
    for m in pending.iter().chain(drained.iter()) {
        if batch_ids.contains(&m.id) {
            continue;
        }
        if let SourceUpdate::Data(du) = &m.update {
            if du.relation == *table {
                let projected = du.delta.project_to(&col_names).map_err(classify_rollback_error)?;
                port.charge_local(projected.weight());
                rows.merge_negated(projected.rows());
            }
        }
    }
    Ok((narrow_schema(table, &col_names, &rows), rows))
}

/// The incremental path applies when the batch's composed schema changes
/// preserve the view's *shape*: same relation count (after renames), same
/// output columns, and no relation drops/replacements. Renames, additive
/// changes, and drops of attributes the view never referenced all qualify.
fn incremental_applicable(
    old: &ViewDefinition,
    new: &ViewDefinition,
    composed: &[SchemaChange],
) -> bool {
    if old.query.tables.len() != new.query.tables.len() {
        return false;
    }
    if old.output_cols() != new.output_cols() {
        return false;
    }
    composed.iter().all(|c| {
        matches!(
            c,
            SchemaChange::RenameRelation { .. }
                | SchemaChange::RenameAttribute { .. }
                | SchemaChange::AddAttribute { .. }
                | SchemaChange::CreateRelation { .. }
                | SchemaChange::DropAttribute { .. }
        )
    })
}

/// The incremental path (paper Section 5 + Equation 6): homogenize the
/// batch's data updates into the final schema, derive per-relation deltas,
/// reconstruct old states by rolling the fetched current states back past
/// the batch's own deltas, and compute `ΔV` by Equation 6.
fn adapt_incremental(
    new_view: &ViewDefinition,
    batch: &[&UpdateMessage],
    pending: &[UpdateMessage],
    port: &mut dyn SourcePort,
    drained: &mut Vec<UpdateMessage>,
    prof: Option<Prof<'_>>,
) -> Result<Adapted, BatchFailure> {
    let batch_ids: Vec<_> = batch.iter().map(|m| m.id).collect();

    // Homogenize and group the batch's data updates by final relation name.
    // Each delta must be mapped through the *raw* schema changes that follow
    // it in the batch (batch order preserves per-source commit order): the
    // composed sequence has collapsed away intermediate relation names that
    // deltas committed mid-chain still carry.
    let mut batch_deltas: HashMap<String, dyno_relational::Delta> = HashMap::new();
    for (i, m) in batch.iter().enumerate() {
        if let SourceUpdate::Data(du) = &m.update {
            let later_scs: Vec<SchemaChange> = batch[i + 1..]
                .iter()
                .filter_map(|m| match &m.update {
                    SourceUpdate::Schema(sc) => Some(sc.clone()),
                    SourceUpdate::Data(_) => None,
                })
                .collect();
            let homogenized =
                homogenize_delta(&du.delta, &later_scs).map_err(BatchFailure::Internal)?;
            port.charge_local(homogenized.weight());
            let name = homogenized.schema().relation.clone();
            if !new_view.references_relation(&name) {
                continue; // irrelevant to this view
            }
            match batch_deltas.entry(name) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge(&homogenized).map_err(BatchFailure::Internal)?;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(homogenized);
                }
            }
        }
    }

    // Fetch batch-point states, then roll the batch's own deltas back out to
    // obtain the *old* states and the referenced-column-projected deltas.
    let mut old_states: HashMap<String, (Schema, SignedBag)> = HashMap::new();
    let mut deltas: HashMap<String, SignedBag> = HashMap::new();
    for table in &new_view.query.tables {
        let (schema, mut rows) =
            fetch_batch_point_state(new_view, table, &batch_ids, pending, port, drained)?;
        if let Some(delta) = batch_deltas.get(table) {
            let cols: Vec<String> = schema.attrs().iter().map(|a| a.name.clone()).collect();
            let projected = delta.project_to(&cols).map_err(classify_rollback_error)?;
            rows.merge_negated(projected.rows());
            deltas.insert(table.clone(), projected.rows().clone());
        }
        old_states.insert(table.clone(), (schema, rows));
    }

    if let Some((o, v)) = prof {
        o.profile_invocation(v, "batch");
    }
    let dv = equation6_delta_profiled(&new_view.query, &old_states, &deltas, prof)
        .map_err(BatchFailure::Internal)?;
    port.charge_local(dv.weight());
    Ok(Adapted::Incremental {
        view: new_view.clone(),
        delta: ViewDelta { cols: new_view.output_cols(), rows: dv.rows },
    })
}

/// Homogenizes a data update's delta through a composed schema-change
/// sequence (paper Section 5): relation and attribute renames are followed,
/// dropped attributes are projected out, and attributes added later are
/// filled with their declared defaults — so deltas committed under different
/// schema versions become union-compatible in the final schema.
pub fn homogenize_delta(
    delta: &dyno_relational::Delta,
    composed: &[SchemaChange],
) -> Result<dyno_relational::Delta, RelationalError> {
    let mut name = delta.schema().relation.clone();
    let mut schema = delta.schema().clone();
    let mut rows = delta.rows().clone();
    for change in composed {
        match change {
            SchemaChange::RenameRelation { from, to } if *from == name => {
                name = to.clone();
                schema = schema.renamed(to.clone());
            }
            SchemaChange::RenameAttribute { relation, from, to }
                if *relation == name && schema.has_attr(from) =>
            {
                schema = schema.with_attr_renamed(from, to)?;
            }
            SchemaChange::DropAttribute { relation, attr }
                if *relation == name && schema.has_attr(attr) =>
            {
                let idx = schema.require(attr)?;
                let keep: Vec<usize> = (0..schema.arity()).filter(|&i| i != idx).collect();
                schema = schema.with_attr_dropped(attr)?;
                rows = rows.project(&keep);
            }
            SchemaChange::AddAttribute { relation, attr, default }
                if *relation == name && !schema.has_attr(&attr.name) =>
            {
                schema = schema.with_attr_added(attr.clone())?;
                let mut widened = SignedBag::new();
                for (t, c) in rows.iter() {
                    let mut vals = t.values().to_vec();
                    vals.push(default.clone());
                    widened.add(dyno_relational::Tuple::new(vals), c);
                }
                rows = widened;
            }
            _ => {}
        }
    }
    dyno_relational::Delta::from_rows(schema, rows.iter().map(|(t, c)| (t.clone(), c)))
}

/// Rollback projection failures: a missing attribute means a concurrent
/// schema change drifted under us — a broken-query situation, not a bug.
fn classify_rollback_error(e: RelationalError) -> BatchFailure {
    if e.is_schema_conflict() {
        BatchFailure::Broken(MaintFailure::Broken { query: "<delta rollback>".into(), error: e })
    } else {
        BatchFailure::Internal(e)
    }
}

/// Builds the schema of a fetched, projected state (the fetch projects to
/// the view's referenced columns, so attribute names are the plain source
/// names).
fn narrow_schema(table: &str, cols: &[String], rows: &SignedBag) -> Schema {
    schema_from_bag(table, cols, rows)
}

/// Paper Equation 6: the incremental delta of an n-way join view given, for
/// each relation, its old state and its delta. Term `i` joins relations
/// `1..i` at their **new** states, relation `i`'s **delta**, and relations
/// `i+1..n` at their **old** states:
///
/// ```text
/// ΔV = ΔR₁ ⋈ R₂ ⋈ … ⋈ Rₙ
///    + R₁ⁿᵉʷ ⋈ ΔR₂ ⋈ R₃ ⋈ … ⋈ Rₙ
///    + …
///    + R₁ⁿᵉʷ ⋈ … ⋈ Rₙ₋₁ⁿᵉʷ ⋈ ΔRₙ
/// ```
///
/// `old` maps each of the query's tables to `(schema, rows)` at the state
/// the view currently reflects; `deltas` maps table name to its signed
/// change (tables absent from `deltas` are unchanged). The query is
/// evaluated once per changed relation, entirely locally.
///
/// ```
/// use std::collections::HashMap;
/// use dyno_relational::{AttrType, Schema, SignedBag, SpjQuery, Tuple};
/// use dyno_view::equation6_delta;
///
/// let schema = |n: &str| Schema::of(n, &[("k", AttrType::Int)]);
/// let row = |k: i64| Tuple::of([k]);
/// let bag = |ks: &[i64]| ks.iter().map(|&k| (row(k), 1)).collect::<SignedBag>();
///
/// let query = SpjQuery::over(["R", "S"])
///     .select("R", "k")
///     .join_eq(("R", "k"), ("S", "k"))
///     .build();
/// let mut old = HashMap::new();
/// old.insert("R".to_string(), (schema("R"), bag(&[1, 2])));
/// old.insert("S".to_string(), (schema("S"), bag(&[2, 3])));
/// // R gains key 3: the join gains one row.
/// let mut deltas = HashMap::new();
/// deltas.insert("R".to_string(), bag(&[3]));
///
/// let dv = equation6_delta(&query, &old, &deltas).unwrap();
/// assert_eq!(dv.rows.count(&row(3)), 1);
/// assert_eq!(dv.weight(), 1);
/// ```
pub fn equation6_delta(
    query: &SpjQuery,
    old: &HashMap<String, (Schema, SignedBag)>,
    deltas: &HashMap<String, SignedBag>,
) -> Result<QueryResult, RelationalError> {
    equation6_delta_profiled(query, old, deltas, None)
}

/// [`equation6_delta`] with per-term cost profiling: when `prof` is set,
/// each evaluated term lands in the plan profile as an `eq6_term` node
/// (scope `"batch"`, phase `adapt`) keyed by the changed relation.
pub(crate) fn equation6_delta_profiled(
    query: &SpjQuery,
    old: &HashMap<String, (Schema, SignedBag)>,
    deltas: &HashMap<String, SignedBag>,
    prof: Option<Prof<'_>>,
) -> Result<QueryResult, RelationalError> {
    let tables = &query.tables;
    for t in tables {
        if !old.contains_key(t) {
            return Err(RelationalError::UnknownRelation { relation: t.clone() });
        }
    }
    let empty_cols: Vec<String> = query.projection.iter().map(|p| p.output.clone()).collect();
    let mut total = QueryResult::empty(empty_cols);

    // Materialize each changed relation's new state exactly once for the whole
    // equation (one clone + merge per changed table); every term below then
    // borrows old / new / delta Z-sets instead of cloning tables per term.
    let mut new_states: HashMap<&str, SignedBag> = HashMap::new();
    for table in tables {
        if let Some(d) = deltas.get(table) {
            if !d.is_empty() {
                let mut r = old[table].1.clone();
                r.merge(d);
                new_states.insert(table.as_str(), r);
            }
        }
    }

    for (i, table_i) in tables.iter().enumerate() {
        let Some(delta_i) = deltas.get(table_i) else {
            continue; // unchanged relation contributes no term
        };
        if delta_i.is_empty() {
            continue;
        }
        let mut provider = SliceProvider { tables: HashMap::new() };
        for (j, table_j) in tables.iter().enumerate() {
            let (schema, old_rows) = &old[table_j];
            let rows = if j < i {
                // New state: old + delta (unchanged tables have no new state).
                new_states.get(table_j.as_str()).unwrap_or(old_rows)
            } else if j == i {
                delta_i
            } else {
                old_rows
            };
            provider.tables.insert(table_j.as_str(), TableSlice { schema, rows });
        }
        let started = prof_start(prof);
        let term = dyno_relational::eval(query, &provider)?;
        prof_op(
            prof,
            started,
            "batch",
            (i + 1) as u32,
            dyno_obs::OpPhase::Adapt,
            "eq6_term",
            table_i,
            delta_i.distinct_len() as u64,
            term.rows.distinct_len() as u64,
        );
        total.rows.merge(&term.rows);
        total.cols = term.cols;
    }
    Ok(total)
}

/// Borrow-only relation provider for [`equation6_delta`]: each term of the
/// equation views the same old/new/delta Z-sets without copying them.
struct SliceProvider<'a> {
    tables: HashMap<&'a str, TableSlice<'a>>,
}

impl RelationProvider for SliceProvider<'_> {
    fn table(&self, name: &str) -> Result<TableSlice<'_>, RelationalError> {
        self.tables
            .get(name)
            .copied()
            .ok_or_else(|| RelationalError::UnknownRelation { relation: name.into() })
    }
}

/// Convenience: applies Equation 6 and wraps the result as a [`ViewDelta`].
pub fn equation6_view_delta(
    view: &ViewDefinition,
    old: &HashMap<String, (Schema, SignedBag)>,
    deltas: &HashMap<String, SignedBag>,
) -> Result<ViewDelta, RelationalError> {
    let out = equation6_delta(&view.query, old, deltas)?;
    Ok(ViewDelta { cols: view.output_cols(), rows: out.rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InProcessPort;
    use crate::testkit::*;
    use dyno_relational::{Tuple, Value};
    use dyno_source::SourceId;

    fn states_of(
        space: &dyno_source::SourceSpace,
        view: &ViewDefinition,
    ) -> HashMap<String, (Schema, SignedBag)> {
        let mut out = HashMap::new();
        for t in &view.query.tables {
            let sid = space.locate(t).unwrap();
            let rel = space.server(sid).catalog().get(t).unwrap();
            out.insert(t.clone(), (rel.schema().clone(), rel.rows().clone()));
        }
        out
    }

    #[test]
    fn equation6_matches_recompute_for_inserts() {
        let space = bookinfo_space();
        let view = bookinfo_view();
        let old = states_of(&space, &view);
        // Delta: insert an item matching Store 10 and the Guide catalog row.
        let du = insert_item(10, "Data Integration Guide", "Adams", 36);
        let mut deltas = HashMap::new();
        deltas.insert("Item".to_string(), du.delta.rows().clone());

        let dv = equation6_delta(&view.query, &old, &deltas).unwrap();

        // Recompute: apply delta and evaluate fully, then diff.
        let mut provider_old = LocalProvider::new();
        let mut provider_new = LocalProvider::new();
        for (name, (schema, rows)) in &old {
            provider_old.insert(schema.clone(), rows.clone());
            let mut r = rows.clone();
            if let Some(d) = deltas.get(name) {
                r.merge(d);
            }
            provider_new.insert(schema.clone(), r);
        }
        let before = dyno_relational::eval(&view.query, &provider_old).unwrap();
        let after = dyno_relational::eval(&view.query, &provider_new).unwrap();
        assert_eq!(dv.rows, after.rows.diff(&before.rows));
        assert_eq!(dv.weight(), 1);
    }

    #[test]
    fn equation6_multi_relation_deltas() {
        let space = bookinfo_space();
        let view = bookinfo_view();
        let old = states_of(&space, &view);
        let mut deltas = HashMap::new();
        // Insert a store and an item that join with each other.
        let mut store_d = SignedBag::new();
        store_d.add(Tuple::of([Value::from(99), Value::str("Powell's")]), 1);
        let mut item_d = SignedBag::new();
        item_d.add(
            Tuple::of([
                Value::from(99),
                Value::str("Databases"),
                Value::str("Ullman"),
                Value::from(45),
            ]),
            1,
        );
        // And delete the original matching item.
        item_d.add(
            Tuple::of([
                Value::from(1),
                Value::str("Databases"),
                Value::str("Ullman"),
                Value::from(50),
            ]),
            -1,
        );
        deltas.insert("Store".to_string(), store_d);
        deltas.insert("Item".to_string(), item_d);

        let dv = equation6_delta(&view.query, &old, &deltas).unwrap();
        // Net effect: one row leaves (old item), one arrives (new pair).
        assert_eq!(dv.rows.net(), 0);
        assert_eq!(dv.rows.weight(), 2);
    }

    #[test]
    fn homogenize_matches_paper_example() {
        // Paper Section 5: "insert (3,4)", "drop first attribute",
        // "insert (5)" — the first insert homogenizes to "insert (4)".
        let schema2 = Schema::of(
            "T",
            &[("a", dyno_relational::AttrType::Int), ("b", dyno_relational::AttrType::Int)],
        );
        let early = dyno_relational::Delta::inserts(schema2, [Tuple::of([3i64, 4])]).unwrap();
        let composed = vec![SchemaChange::DropAttribute { relation: "T".into(), attr: "a".into() }];
        let h = homogenize_delta(&early, &composed).unwrap();
        assert_eq!(h.schema().arity(), 1);
        assert_eq!(h.rows().count(&Tuple::of([4i64])), 1);
    }

    #[test]
    fn homogenize_follows_renames_and_adds() {
        let schema = Schema::of("T", &[("a", dyno_relational::AttrType::Int)]);
        let delta = dyno_relational::Delta::inserts(schema, [Tuple::of([1i64])]).unwrap();
        let composed = vec![
            SchemaChange::RenameRelation { from: "T".into(), to: "T2".into() },
            SchemaChange::RenameAttribute {
                relation: "T2".into(),
                from: "a".into(),
                to: "x".into(),
            },
            SchemaChange::AddAttribute {
                relation: "T2".into(),
                attr: dyno_relational::Attribute::new("y", dyno_relational::AttrType::Int),
                default: Value::from(0),
            },
        ];
        let h = homogenize_delta(&delta, &composed).unwrap();
        assert_eq!(h.schema().relation, "T2");
        assert!(h.schema().has_attr("x") && h.schema().has_attr("y"));
        assert_eq!(h.rows().count(&Tuple::of([1i64, 0])), 1);
    }

    #[test]
    fn rename_batch_takes_incremental_path() {
        // A rename plus a same-source DU merge into a batch whose composed
        // changes preserve the view's shape → Equation-6 incremental path.
        let mut space = bookinfo_space();
        let view = bookinfo_view();
        let du = insert_item(10, "Data Integration Guide", "Adams", 36);
        let m1 = space.commit(SourceId(0), SourceUpdate::Data(du)).unwrap();
        let m2 = space
            .commit(
                SourceId(0),
                SourceUpdate::Schema(SchemaChange::RenameRelation {
                    from: "Item".into(),
                    to: "Item2".into(),
                }),
            )
            .unwrap();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let (res, _) = adapt_batch(&view, &[&m1, &m2], &[], &info, AdaptationMode::Auto, &mut port);
        match res.unwrap() {
            Adapted::Incremental { view: v, delta } => {
                assert!(v.references_relation("Item2"));
                assert_eq!(delta.rows.net(), 1, "one new view tuple from the insert");
            }
            other => panic!("expected incremental adaptation, got {other:?}"),
        }
        // Forcing recompute yields the same definition and a full extent
        // whose content equals old extent + delta.
        let (res2, _) =
            adapt_batch(&view, &[&m1, &m2], &[], &info, AdaptationMode::RecomputeOnly, &mut port);
        match res2.unwrap() {
            Adapted::Replaced { extent, .. } => assert_eq!(extent.weight(), 2),
            other => panic!("RecomputeOnly must recompute, got {other:?}"),
        }
    }

    #[test]
    fn adapt_batch_reproduces_query5_scenario() {
        // Section 3.5 / Figure 4: DU1 + SC1 (StoreItems) + SC2 (drop Review)
        // merged into one batch; the adapted view is Query (5) and its
        // extent reflects all three updates.
        let mut space = bookinfo_space();
        let view = bookinfo_view();
        let du1 = insert_item(10, "Data Integration Guide", "Adams", 36);
        let m1 = space.commit(SourceId(0), SourceUpdate::Data(du1)).unwrap();
        let store = space.server(SourceId(0)).catalog().get("Store").unwrap().clone();
        let item = space.server(SourceId(0)).catalog().get("Item").unwrap().clone();
        let sc1 = storeitems_change(&store, &item);
        let m2 = space.commit(SourceId(0), SourceUpdate::Schema(sc1)).unwrap();
        let sc2 = SchemaChange::DropAttribute { relation: "Catalog".into(), attr: "Review".into() };
        let m3 = space.commit(SourceId(1), SourceUpdate::Schema(sc2)).unwrap();

        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let batch = [&m1, &m2, &m3];
        let (res, drained) =
            adapt_batch(&view, &batch, &[], &info, AdaptationMode::Auto, &mut port);
        assert!(drained.is_empty());
        let adapted = res.unwrap();
        assert!(adapted.view().references_relation("StoreItems"));
        assert!(adapted.view().references_relation("ReaderDigest"));
        // A relation replacement forces the recompute path; the extent holds
        // 'Databases' (Store 1) and 'Data Integration Guide' (Store 10),
        // both joining Catalog and ReaderDigest.
        match adapted {
            Adapted::Replaced { extent, .. } => assert_eq!(extent.weight(), 2),
            other => panic!("expected recompute for a relation replacement, got {other:?}"),
        }
    }

    #[test]
    fn adapt_batch_breaks_on_concurrent_rename() {
        // A schema change outside the batch renames Catalog before the
        // adaptation queries run → broken query.
        let mut space = bookinfo_space();
        let view = bookinfo_view();
        let sc2 = SchemaChange::DropAttribute { relation: "Catalog".into(), attr: "Review".into() };
        let m = space.commit(SourceId(1), SourceUpdate::Schema(sc2)).unwrap();
        // Concurrent, unbuffered rename commits at the source.
        space
            .commit(
                SourceId(1),
                SourceUpdate::Schema(SchemaChange::RenameRelation {
                    from: "Catalog".into(),
                    to: "Catalogue".into(),
                }),
            )
            .unwrap();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let (res, _) = adapt_batch(&view, &[&m], &[], &info, AdaptationMode::Auto, &mut port);
        assert!(matches!(res.unwrap_err(), BatchFailure::Broken(_)));
    }

    #[test]
    fn adapt_batch_compensates_pending_updates() {
        // A pending (unprocessed, non-batch) DU must not leak into the
        // batch-point extent.
        let mut space = bookinfo_space();
        let view = bookinfo_view();
        let sc = SchemaChange::DropAttribute { relation: "Catalog".into(), attr: "Review".into() };
        let m_sc = space.commit(SourceId(1), SourceUpdate::Schema(sc)).unwrap();
        // Pending DU committed after the SC.
        let du = insert_item(10, "Data Integration Guide", "Adams", 36);
        let m_du = space.commit(SourceId(0), SourceUpdate::Data(du)).unwrap();

        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let (res, _) = adapt_batch(
            &view,
            &[&m_sc],
            std::slice::from_ref(&m_du),
            &info,
            AdaptationMode::Auto,
            &mut port,
        );
        // Only the original 'Databases' row — the pending insert is rolled
        // back (it will be maintained by its own SWEEP pass later).
        match res.unwrap() {
            Adapted::Replaced { extent, .. } => assert_eq!(extent.weight(), 1),
            other => panic!("attribute replacement adds a relation → recompute, got {other:?}"),
        }
    }
}
