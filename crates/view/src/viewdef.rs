//! View definitions — the critical shared resource of the paper.
//!
//! Every maintenance process *reads* the view definition (to construct its
//! maintenance queries); processing a schema change *rewrites* it. The
//! read/write conflict on this object is the root cause of broken-query
//! anomalies (paper Section 3.2).

use std::fmt;

use dyno_relational::{ColRef, SchemaChange, SpjQuery};

/// A named SPJ view over the source space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDefinition {
    /// The view's name (e.g. `BookInfo`).
    pub name: String,
    /// The defining query.
    pub query: SpjQuery,
}

impl ViewDefinition {
    /// Creates a view definition.
    pub fn new(name: impl Into<String>, query: SpjQuery) -> Self {
        ViewDefinition { name: name.into(), query }
    }

    /// Parses a view from SQL: either `CREATE VIEW name AS SELECT …` or a
    /// bare `SELECT …` (which gets `default_name`).
    ///
    /// ```
    /// use dyno_view::ViewDefinition;
    /// let v = ViewDefinition::parse(
    ///     "CREATE VIEW BookInfo AS \
    ///      SELECT Store.StoreName, Item.Book FROM Store, Item \
    ///      WHERE Store.SID = Item.SID",
    ///     "unnamed",
    /// ).unwrap();
    /// assert_eq!(v.name, "BookInfo");
    /// assert!(v.references_relation("Item"));
    /// ```
    pub fn parse(sql: &str, default_name: &str) -> Result<Self, dyno_relational::ParseError> {
        let (name, query) = dyno_relational::parse_create_view(sql)?;
        Ok(ViewDefinition::new(name.unwrap_or_else(|| default_name.to_string()), query))
    }

    /// Output column names, in SELECT order.
    pub fn output_cols(&self) -> Vec<String> {
        self.query.projection.iter().map(|p| p.output.clone()).collect()
    }

    /// True iff the schema change touches metadata this view references —
    /// the criterion of paper Section 4.1.1 for drawing a concurrent
    /// dependency edge: the change will force a rewrite of this definition.
    pub fn is_invalidated_by(&self, sc: &SchemaChange) -> bool {
        if self.query.tables.iter().any(|t| sc.invalidates_relation(t)) {
            return true;
        }
        self.query.referenced_cols().iter().any(|c| sc.invalidates_column(&c.relation, &c.attr))
    }

    /// Column references the view uses from the given relation.
    pub fn cols_of_relation(&self, relation: &str) -> Vec<ColRef> {
        self.query.referenced_cols().into_iter().filter(|c| c.relation == relation).collect()
    }

    /// True iff the view's FROM clause includes the relation.
    pub fn references_relation(&self, relation: &str) -> bool {
        self.query.references_relation(relation)
    }
}

impl fmt::Display for ViewDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE VIEW {} AS {}", self.name, self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::{AttrType, Attribute, Value};

    /// The paper's Query (1): BookInfo over Store ⋈ Item ⋈ Catalog.
    pub(crate) fn bookinfo() -> ViewDefinition {
        let q = SpjQuery::over(["Store", "Item", "Catalog"])
            .select("Store", "StoreName")
            .select("Item", "Book")
            .select("Item", "Author")
            .select("Item", "Price")
            .select("Catalog", "Publisher")
            .select("Catalog", "Category")
            .select("Catalog", "Review")
            .join_eq(("Store", "SID"), ("Item", "SID"))
            .join_eq(("Item", "Book"), ("Catalog", "Title"))
            .build();
        ViewDefinition::new("BookInfo", q)
    }

    #[test]
    fn invalidated_by_relation_level_changes() {
        let v = bookinfo();
        assert!(v.is_invalidated_by(&SchemaChange::DropRelation { relation: "Store".into() }));
        assert!(v.is_invalidated_by(&SchemaChange::RenameRelation {
            from: "Item".into(),
            to: "Items2".into()
        }));
        assert!(!v.is_invalidated_by(&SchemaChange::DropRelation { relation: "Unrelated".into() }));
    }

    #[test]
    fn invalidated_by_referenced_attribute_changes() {
        let v = bookinfo();
        // Review is projected (Example 1 / Section 3.5's SC2).
        assert!(v.is_invalidated_by(&SchemaChange::DropAttribute {
            relation: "Catalog".into(),
            attr: "Review".into()
        }));
        // Join attribute.
        assert!(v.is_invalidated_by(&SchemaChange::RenameAttribute {
            relation: "Store".into(),
            from: "SID".into(),
            to: "StoreID".into()
        }));
        // An attribute the view never references (paper: "a broken query
        // anomaly may not always cause the query to fail").
        assert!(!v.is_invalidated_by(&SchemaChange::DropAttribute {
            relation: "Catalog".into(),
            attr: "Year".into()
        }));
    }

    #[test]
    fn additive_changes_never_invalidate() {
        let v = bookinfo();
        assert!(!v.is_invalidated_by(&SchemaChange::AddAttribute {
            relation: "Catalog".into(),
            attr: Attribute::new("ISBN", AttrType::Str),
            default: Value::Null,
        }));
    }

    #[test]
    fn output_cols_in_select_order() {
        assert_eq!(
            bookinfo().output_cols(),
            vec!["StoreName", "Book", "Author", "Price", "Publisher", "Category", "Review"]
        );
    }

    #[test]
    fn display_renders_create_view() {
        let s = bookinfo().to_string();
        assert!(s.starts_with("CREATE VIEW BookInfo AS SELECT "));
        assert!(s.contains("FROM Store, Item, Catalog"));
        assert!(s.contains("WHERE Store.SID = Item.SID AND Item.Book = Catalog.Title"));
    }

    #[test]
    fn cols_of_relation() {
        let v = bookinfo();
        let cols = v.cols_of_relation("Store");
        assert!(cols.contains(&ColRef::new("Store", "StoreName")));
        assert!(cols.contains(&ColRef::new("Store", "SID")));
        assert_eq!(cols.len(), 2);
    }
}
