//! The warehouse's durable commit protocol over a [`dyno_durable::Wal`].
//!
//! ## Records
//!
//! | tag | record | written |
//! |---|---|---|
//! | 1 | `Checkpoint(DurableState)` | at attach, periodically, and at the end of every recovery (as a [`Wal::rewrite`], truncating the log) |
//! | 2 | `Admitted(UpdateMeta)` | when the ingress gate admits a message to the UMQ |
//! | 3 | `Intent{keys, has_sc}` | immediately **before** a batch's maintenance executes |
//! | 4 | `Applied{keys, changes, reflected}` | immediately **after** the in-memory commit of a batch, as **one** record covering every view |
//! | 5 | `Replica` (`Published{bytes}` / `Remote{view, key, post, applied, bytes}`) | when the replication engine publishes a commit's peer deltas (before they reach the network) and when a received peer delta is resolved (applied or superseded) |
//!
//! ## The recovery invariants
//!
//! * **Intent without Applied ⇒ nothing happened.** The in-memory commit is
//!   atomic with writing `Applied`; a crash between them discards the
//!   process along with its un-logged view writes, so replay simply re-parks
//!   the batch (it is still in the restored UMQ) and the restarted scheduler
//!   redoes it. This is the paper's Equation 6 atomicity made durable: a
//!   batch node is either fully applied (one `Applied` record covering every
//!   view and every batched update) or not at all.
//! * **Torn tail ⇒ never sent.** [`dyno_durable::Wal::open`] stops at the
//!   first corrupt byte; everything before it is a complete record,
//!   everything after was never acknowledged to anyone (the warehouse acks
//!   sources only from checkpoints/applied state).
//! * **Dependency edges are not persisted.** Correction is a deterministic
//!   function of (queue, views, policy); the restored scheduler recomputes
//!   the graph from the restored queue, so persisting it would only create a
//!   second source of truth. SC-batch *boundaries* (merged entries) ARE
//!   persisted — they are queue structure, not derived data.
//!
//! ## Deterministic power cuts
//!
//! [`CrashPlan`] arms the log to simulate a power failure at a chosen
//! protocol point: after the N-th matching record is written, the log
//! silently drops every later write, exactly like a host that lost power
//! with its page cache unflushed. The chaos driver polls
//! [`DurableLog::power_cut`] and kills/recovers the warehouse when it trips.

use dyno_core::wire as core_wire;
use dyno_core::{CorrectionPolicy, Strategy, UpdateMeta};
use dyno_durable::codec::{dec_seq, enc_seq, Dec, Enc, WireError};
use dyno_durable::storage::Storage;
use dyno_durable::wal::{Wal, WalError};
use dyno_obs::{field, Collector};
use dyno_relational::wire as rel_wire;
use dyno_relational::{SignedBag, Value};
use dyno_source::wire as src_wire;
use dyno_source::UpdateMessage;

use crate::batch::AdaptationMode;

/// One view's recoverable state: its definition (as round-trippable SQL),
/// output columns, extent, and — in a multi-view warehouse — the per-view
/// progress a deferring view may hold back from its peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewState {
    /// `CREATE VIEW name AS SELECT …` — the Display form of the definition.
    pub sql: String,
    /// Output column names of the materialized extent.
    pub cols: Vec<String>,
    /// The extent itself.
    pub extent: SignedBag,
    /// *This* view's reflected version vector, sorted by source. Views
    /// advance independently: a batch one view defers freezes its vector
    /// while its peers move on.
    pub reflected: Vec<(u32, u64)>,
    /// Batches committed warehouse-wide but deferred by this view (its
    /// source was unavailable), in arrival order — replayed by the
    /// per-view drain after recovery.
    pub deferred: Vec<Vec<UpdateMeta<UpdateMessage>>>,
    /// SLA tier (lower = refreshed earlier).
    pub tier: u8,
}

/// Everything a warehouse needs to resume after a kill: scheduler
/// configuration, every view, the version vector, the ingress gate's
/// high-water marks, and the UMQ including merged-batch boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableState {
    /// Detection strategy the scheduler ran with.
    pub strategy: Strategy,
    /// Correction policy the scheduler ran with.
    pub policy: CorrectionPolicy,
    /// View-adaptation mode.
    pub adaptation: AdaptationMode,
    /// Whether the ingress gate's dedupe/resequencing was enabled.
    pub dedupe: bool,
    /// Every registered view, in slot order.
    pub views: Vec<ViewState>,
    /// Per-source versions the views reflect, sorted by source.
    pub reflected: Vec<(u32, u64)>,
    /// The ingress gate's admitted high-water marks, sorted by source —
    /// the resubscription baseline after a restart.
    pub marks: Vec<(u32, u64)>,
    /// The UMQ's entries in order, each a batch of one or more updates
    /// (SC-batch boundaries survive the crash).
    pub batches: Vec<Vec<UpdateMeta<UpdateMessage>>>,
    /// The `NewSchemaChangeFlag`.
    pub sc_flag: bool,
    /// Opaque replication-engine snapshot (vector clock, HLC, conflict
    /// registers, outbox, sequence floors) — owned and encoded by the
    /// engine, carried in every checkpoint. Empty when the warehouse is
    /// not replicated.
    pub ext: Vec<u8>,
    /// Post-checkpoint replication events, rebuilt by replay and **never
    /// encoded**: the engine pairs `Applied` with `Published` to re-publish
    /// commits the crash cut off before their peer deltas went out, and
    /// replays `Remote` write-backs/registers. Recovery truncates these
    /// records with its closing checkpoint, so the engine must fold the
    /// tail and re-checkpoint before normal operation resumes.
    pub tail: Vec<ReplicaTailEvent>,
}

/// One post-checkpoint replication event surfaced to the engine by replay
/// (see [`DurableState::tail`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaTailEvent {
    /// A local commit landed (its `Applied` record was durable). `rows` are
    /// the per-view extent changes — enough for the engine to recompute
    /// which `(view, key)` post-images the commit should have published.
    Applied {
        /// Update keys of the committed batch.
        keys: Vec<u64>,
        /// Per-view changed rows, in slot order (a `Replace` contributes
        /// its whole new extent; `Skipped`/`Deferred` contribute nothing).
        rows: Vec<SignedBag>,
    },
    /// The engine published the peer deltas for a commit; `bytes` is the
    /// engine-encoded publish event (assigned sequences, message bodies,
    /// stamps).
    Published {
        /// Engine-opaque publish event.
        bytes: Vec<u8>,
    },
    /// A peer delta was received and resolved. Replay has already folded an
    /// `applied` event's post-image into the view extent (exactly once);
    /// `bytes` is the engine-encoded stamp metadata for register/floor
    /// restoration.
    Remote {
        /// View slot the delta targeted.
        view: u32,
        /// Join-key column in the view's output row.
        key_col: u32,
        /// The key whose post-image the delta replaced.
        key: Value,
        /// The winning post-image rows.
        post: SignedBag,
        /// True iff the delta won resolution and was applied (a superseded
        /// loser is logged too, so registers survive the crash).
        applied: bool,
        /// Engine-opaque stamp metadata.
        bytes: Vec<u8>,
    },
}

/// The change one `Applied` record carries for one view slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppliedChange {
    /// SWEEP delta merged into the extent (definition and columns unchanged).
    Delta {
        /// Signed rows merged into the extent.
        rows: SignedBag,
    },
    /// Adaptation replaced the extent wholesale (and rewrote the definition).
    Replace {
        /// The rewritten definition's SQL.
        sql: String,
        /// The adapted view's output columns.
        cols: Vec<String>,
        /// The full replacement extent.
        extent: SignedBag,
    },
    /// Adaptation rewrote the definition but patched the extent
    /// incrementally (Equation 6; output columns unchanged).
    Incremental {
        /// The rewritten definition's SQL.
        sql: String,
        /// Signed rows merged into the extent.
        rows: SignedBag,
    },
    /// The batch did not touch this view's sources/relations: the view's
    /// extent is unchanged but its reflected vector still advances.
    Skipped,
    /// The view could not maintain this batch (source unavailable) while
    /// its peers committed: the batch moves to the view's deferred queue
    /// and its reflected vector freezes.
    Deferred,
}

/// One atomic commit: which queue entries it consumed, what it did to every
/// view, and the version vector after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedRecord {
    /// Update keys of the committed batch.
    pub keys: Vec<u64>,
    /// Per-view changes, in slot order.
    pub changes: Vec<AppliedChange>,
    /// The full reflected version vector after the commit, sorted.
    pub reflected: Vec<(u32, u64)>,
    /// Per-view reflected vectors after the commit, in slot order (a
    /// deferring view's vector stays frozen while its peers advance).
    pub view_reflected: Vec<Vec<(u32, u64)>>,
}

/// Where in the commit protocol a planned power cut strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After a completed commit (`Applied` durable), before the next step.
    BetweenSteps,
    /// After the `Intent` of a single plain-DU maintenance, before its
    /// `Applied` — the half-done SWEEP.
    AfterIntent,
    /// After the `Intent` of a merged batch or schema-change node, before
    /// its `Applied` — the half-done adaptation Equation 6 must never
    /// expose.
    MidBatch,
}

/// A deterministic kill: power is cut right after the `(skip+1)`-th record
/// matching [`CrashPoint`] is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The protocol point to strike at.
    pub point: CrashPoint,
    /// How many matching records to let through first.
    pub skip: u64,
}

/// Why a recovery could not produce a warehouse.
#[derive(Debug, Clone)]
pub enum RecoverError {
    /// The underlying log failed (storage I/O).
    Wal(WalError),
    /// The log contains no checkpoint record — nothing to recover from.
    NoCheckpoint,
    /// An intact (CRC-valid) record decoded to an impossible value.
    Corrupt(String),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Wal(e) => write!(f, "{e}"),
            RecoverError::NoCheckpoint => write!(f, "log holds no checkpoint record"),
            RecoverError::Corrupt(why) => write!(f, "corrupt log record: {why}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<WalError> for RecoverError {
    fn from(e: WalError) -> Self {
        RecoverError::Wal(e)
    }
}

/// What a recovery replay found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverReport {
    /// Intact records replayed (checkpoint + tail).
    pub replayed_records: u64,
    /// 1 if a torn/corrupt tail was discarded.
    pub torn_records: u64,
    /// Bytes discarded with it.
    pub torn_bytes: u64,
    /// In-flight intents without a matching `Applied` — batches the crash
    /// interrupted mid-maintenance, re-parked for the restarted scheduler.
    pub reparked_intents: u64,
}

const TAG_CHECKPOINT: u8 = 1;
const TAG_ADMITTED: u8 = 2;
const TAG_INTENT: u8 = 3;
const TAG_APPLIED: u8 = 4;
const TAG_REPLICA: u8 = 5;

const REPL_PUBLISHED: u8 = 0;
const REPL_REMOTE: u8 = 1;

/// Default checkpoint policy: snapshot after this many appended records.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 64;

/// The commit-protocol log: typed records over a [`Wal`], plus the armed
/// power-cut machinery for crash testing.
///
/// Log methods are infallible by design: a storage failure mid-run is
/// indistinguishable from a power cut, so it latches [`DurableLog::power_cut`]
/// instead of surfacing an error into the maintenance path (the driver kills
/// and recovers, which is exactly the correct response).
#[derive(Debug, Clone)]
pub struct DurableLog {
    wal: Wal,
    checkpoint_every: u64,
    appends_since_ckpt: u64,
    plan: Option<CrashPlan>,
    cut: bool,
    obs: Collector,
}

enum RecordKind {
    Admitted,
    Intent { batch_len: usize, has_sc: bool },
    Applied,
    Replica,
}

impl DurableLog {
    /// Starts a fresh log on `storage` (erasing prior content).
    pub fn create(storage: Box<dyn Storage>) -> Result<Self, WalError> {
        Ok(DurableLog {
            wal: Wal::create(storage)?,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            appends_since_ckpt: 0,
            plan: None,
            cut: false,
            obs: Collector::disabled(),
        })
    }

    /// Overrides the checkpoint policy: snapshot after `n` appended records
    /// (`u64::MAX` disables periodic checkpoints).
    pub fn with_checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n.max(1);
        self
    }

    /// Binds `wal.*` counters into a collector's registry.
    pub fn bind_obs(&mut self, obs: &Collector) {
        self.obs = obs.clone();
        self.wal.bind_obs(obs);
    }

    /// Arms a deterministic power cut.
    pub fn arm(&mut self, plan: CrashPlan) {
        self.plan = Some(plan);
    }

    /// True once the (simulated) power has been cut: every write since was
    /// silently dropped and the process should be considered dead.
    pub fn power_cut(&self) -> bool {
        self.cut
    }

    /// Current log size in bytes (0 after a cut is *not* implied — the cut
    /// only stops new writes).
    pub fn len_bytes(&self) -> u64 {
        self.wal.len_bytes().unwrap_or(0)
    }

    fn append(&mut self, kind: RecordKind, payload: &[u8]) {
        if self.cut {
            return;
        }
        if self.wal.append(payload).is_err() {
            self.cut = true;
            return;
        }
        self.appends_since_ckpt += 1;
        if let Some(plan) = &mut self.plan {
            let matches = match (&plan.point, &kind) {
                (CrashPoint::BetweenSteps, RecordKind::Applied) => true,
                (CrashPoint::AfterIntent, RecordKind::Intent { batch_len, has_sc }) => {
                    *batch_len == 1 && !has_sc
                }
                (CrashPoint::MidBatch, RecordKind::Intent { batch_len, has_sc }) => {
                    *batch_len > 1 || *has_sc
                }
                _ => false,
            };
            if matches {
                if plan.skip == 0 {
                    self.cut = true;
                    self.obs.counter("wal.power_cuts").inc();
                } else {
                    plan.skip -= 1;
                }
            }
        }
    }

    /// Logs one gate-admitted message (with its classification) before it
    /// enters the UMQ.
    pub fn log_admitted(&mut self, meta: &UpdateMeta<UpdateMessage>) {
        let mut e = Enc::new();
        e.u8(TAG_ADMITTED);
        core_wire::enc_meta(&mut e, meta, src_wire::enc_message);
        self.append(RecordKind::Admitted, &e.finish());
    }

    /// Logs the intent to maintain a batch, before any query runs.
    pub fn log_intent(&mut self, keys: &[u64], has_sc: bool) {
        let mut e = Enc::new();
        e.u8(TAG_INTENT);
        enc_seq(&mut e, keys, |e, k| e.u64(*k));
        e.bool(has_sc);
        self.append(RecordKind::Intent { batch_len: keys.len(), has_sc }, &e.finish());
    }

    /// Logs a completed commit — one atomic record across every view.
    pub fn log_applied(&mut self, rec: &AppliedRecord) {
        let mut e = Enc::new();
        e.u8(TAG_APPLIED);
        enc_applied(&mut e, rec);
        self.append(RecordKind::Applied, &e.finish());
    }

    /// Logs the engine-encoded publish event for a commit — written
    /// **before** the messages reach the network, so a crash after this
    /// record re-sends (receivers dedupe by sequence) rather than assigning
    /// the same sequences to different bodies.
    pub fn log_replica_published(&mut self, bytes: &[u8]) {
        let mut e = Enc::new();
        e.u8(TAG_REPLICA);
        e.u8(REPL_PUBLISHED);
        e.bytes(bytes);
        self.append(RecordKind::Replica, &e.finish());
    }

    /// Logs one received peer delta and its resolution. Replay folds an
    /// `applied` record's post-image into the view extent exactly once;
    /// `bytes` carries the engine's stamp metadata either way.
    pub fn log_replica_remote(
        &mut self,
        view: u32,
        key_col: u32,
        key: &Value,
        post: &SignedBag,
        applied: bool,
        bytes: &[u8],
    ) {
        let mut e = Enc::new();
        e.u8(TAG_REPLICA);
        e.u8(REPL_REMOTE);
        e.u32(view);
        e.u32(key_col);
        rel_wire::enc_value(&mut e, key);
        rel_wire::enc_bag(&mut e, post);
        e.bool(applied);
        e.bytes(bytes);
        self.append(RecordKind::Replica, &e.finish());
    }

    /// True when the size/record-count policy says it is checkpoint time.
    pub fn should_checkpoint(&self) -> bool {
        !self.cut && self.appends_since_ckpt >= self.checkpoint_every
    }

    /// Writes a checkpoint, atomically truncating the log to that single
    /// record (sequence numbers keep counting).
    pub fn checkpoint(&mut self, state: &DurableState) {
        if self.cut {
            return;
        }
        let mut e = Enc::new();
        e.u8(TAG_CHECKPOINT);
        enc_state(&mut e, state);
        if self.wal.rewrite(&e.finish()).is_err() {
            self.cut = true;
            return;
        }
        self.appends_since_ckpt = 0;
    }
}

/// Replays a log: checkpoint + tail, folding every intact record into the
/// state, discarding the torn tail, and counting intents the crash left
/// open. Ends by writing a fresh checkpoint (which truncates the torn bytes
/// and makes recovery idempotent). Returns the reopened log, the state to
/// rebuild a warehouse from, and the replay accounting.
pub fn recover(
    storage: Box<dyn Storage>,
    obs: &Collector,
) -> Result<(DurableLog, DurableState, RecoverReport), RecoverError> {
    let (wal, replay) = Wal::open(storage)?;
    let _span = obs.span(
        "recover.replay",
        &[field("records", replay.payloads.len()), field("torn_bytes", replay.torn_bytes)],
    );
    let mut report = RecoverReport {
        torn_records: replay.torn_records,
        torn_bytes: replay.torn_bytes,
        ..RecoverReport::default()
    };
    let mut state: Option<DurableState> = None;
    let mut open_intents: Vec<Vec<u64>> = Vec::new();

    'replay: for payload in &replay.payloads {
        let mut d = Dec::new(payload);
        let parsed: Result<(), WireError> = (|| {
            match d.u8()? {
                TAG_CHECKPOINT => {
                    state = Some(dec_state(&mut d)?);
                    open_intents.clear();
                }
                TAG_ADMITTED => {
                    let meta = core_wire::dec_meta(&mut d, src_wire::dec_message)?;
                    let st = state
                        .as_mut()
                        .ok_or_else(|| WireError::Invalid("record before checkpoint".into()))?;
                    bump_mark(&mut st.marks, meta.source.0, meta.payload.source_version);
                    if meta.kind.is_schema_change() {
                        st.sc_flag = true;
                    }
                    st.batches.push(vec![meta]);
                }
                TAG_INTENT => {
                    let keys = dec_seq(&mut d, |d| d.u64())?;
                    let _has_sc = d.bool()?;
                    open_intents.push(keys);
                }
                TAG_APPLIED => {
                    let rec = dec_applied(&mut d)?;
                    let st = state
                        .as_mut()
                        .ok_or_else(|| WireError::Invalid("record before checkpoint".into()))?;
                    apply_record(st, &rec)?;
                    st.tail.push(ReplicaTailEvent::Applied {
                        keys: rec.keys.clone(),
                        rows: rec
                            .changes
                            .iter()
                            .map(|c| match c {
                                AppliedChange::Delta { rows }
                                | AppliedChange::Incremental { rows, .. } => rows.clone(),
                                AppliedChange::Replace { extent, .. } => extent.clone(),
                                AppliedChange::Skipped | AppliedChange::Deferred => {
                                    SignedBag::new()
                                }
                            })
                            .collect(),
                    });
                    open_intents.clear();
                }
                TAG_REPLICA => {
                    let st = state
                        .as_mut()
                        .ok_or_else(|| WireError::Invalid("record before checkpoint".into()))?;
                    match d.u8()? {
                        REPL_PUBLISHED => {
                            st.tail
                                .push(ReplicaTailEvent::Published { bytes: d.bytes()?.to_vec() });
                        }
                        REPL_REMOTE => {
                            let view = d.u32()?;
                            let key_col = d.u32()?;
                            let key = rel_wire::dec_value(&mut d)?;
                            let post = rel_wire::dec_bag(&mut d)?;
                            let applied = d.bool()?;
                            let bytes = d.bytes()?.to_vec();
                            if applied {
                                let vs = st.views.get_mut(view as usize).ok_or_else(|| {
                                    WireError::Invalid(format!("remote delta for view {view}"))
                                })?;
                                fold_remote(vs, key_col as usize, &key, &post);
                            }
                            st.tail.push(ReplicaTailEvent::Remote {
                                view,
                                key_col,
                                key,
                                post,
                                applied,
                                bytes,
                            });
                        }
                        t => return Err(WireError::Invalid(format!("replica subtag {t}"))),
                    }
                }
                t => return Err(WireError::Invalid(format!("record tag {t}"))),
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => report.replayed_records += 1,
            Err(_) => {
                // A CRC-valid record that fails to decode can only come
                // from a format bug or hand-corruption; treat it like a
                // torn tail — keep the intact prefix, drop from here on.
                report.torn_records += 1;
                break 'replay;
            }
        }
    }

    let state = state.ok_or(RecoverError::NoCheckpoint)?;
    report.reparked_intents = open_intents.len() as u64;

    obs.counter("recover.replayed").add(report.replayed_records);
    obs.counter("recover.torn_records").add(report.torn_records);
    obs.counter("recover.reparked_intents").add(report.reparked_intents);

    let mut log = DurableLog {
        wal,
        checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        appends_since_ckpt: 0,
        plan: None,
        cut: false,
        obs: obs.clone(),
    };
    log.bind_obs(obs);
    // Recovery commits its result durably: the torn tail is truncated away
    // and a second recovery from the same storage replays exactly this
    // checkpoint.
    log.checkpoint(&state);
    Ok((log, state, report))
}

/// Replaces `key`'s rows in a view extent with the winning post-image — the
/// replay-side mirror of [`Warehouse::apply_remote`](crate::Warehouse::apply_remote),
/// idempotent because the post-image is absolute.
fn fold_remote(vs: &mut ViewState, key_col: usize, key: &Value, post: &SignedBag) {
    let mut delta = SignedBag::new();
    for (t, w) in vs.extent.iter() {
        if t.get(key_col) == key {
            delta.add(t.clone(), -w);
        }
    }
    for (t, w) in post.iter() {
        delta.add(t.clone(), w);
    }
    vs.extent.merge(&delta);
}

fn bump_mark(marks: &mut Vec<(u32, u64)>, source: u32, version: u64) {
    match marks.iter_mut().find(|(s, _)| *s == source) {
        Some((_, v)) => *v = (*v).max(version),
        None => {
            marks.push((source, version));
            marks.sort_unstable();
        }
    }
}

/// Folds one `Applied` record into the replayed state — the replay-side
/// mirror of the in-memory commit it describes.
fn apply_record(st: &mut DurableState, rec: &AppliedRecord) -> Result<(), WireError> {
    if rec.changes.len() != st.views.len() {
        return Err(WireError::Invalid(format!(
            "applied record covers {} views, state has {}",
            rec.changes.len(),
            st.views.len()
        )));
    }
    if !rec.view_reflected.is_empty() && rec.view_reflected.len() != st.views.len() {
        return Err(WireError::Invalid(format!(
            "applied record carries {} view vectors, state has {} views",
            rec.view_reflected.len(),
            st.views.len()
        )));
    }
    // A deferring view takes its copy of the batch from the queue *before*
    // the committed keys are removed from it.
    let deferred_batch: Vec<UpdateMeta<UpdateMessage>> =
        st.batches.iter().flatten().filter(|m| rec.keys.contains(&m.key.0)).cloned().collect();
    for (view, change) in st.views.iter_mut().zip(&rec.changes) {
        match change {
            AppliedChange::Delta { rows } => view.extent.merge(rows),
            AppliedChange::Replace { sql, cols, extent } => {
                view.sql = sql.clone();
                view.cols = cols.clone();
                view.extent = extent.clone();
            }
            AppliedChange::Incremental { sql, rows } => {
                view.sql = sql.clone();
                view.extent.merge(rows);
            }
            AppliedChange::Skipped => {}
            AppliedChange::Deferred => {
                if deferred_batch.is_empty() {
                    return Err(WireError::Invalid(
                        "deferred change with no queued batch to defer".into(),
                    ));
                }
                view.deferred.push(deferred_batch.clone());
            }
        }
        // A materializing change resolves the keys from this view's own
        // deferred queue too (the per-view drain commits deferred batches
        // through the same record shape, the peers marked `Skipped`).
        if matches!(
            change,
            AppliedChange::Delta { .. }
                | AppliedChange::Replace { .. }
                | AppliedChange::Incremental { .. }
        ) {
            for batch in &mut view.deferred {
                batch.retain(|m| !rec.keys.contains(&m.key.0));
            }
            view.deferred.retain(|b| !b.is_empty());
        }
    }
    for (view, vr) in st.views.iter_mut().zip(&rec.view_reflected) {
        view.reflected = vr.clone();
    }
    st.reflected = rec.reflected.clone();
    // The committed batch leaves the queue.
    for batch in &mut st.batches {
        batch.retain(|m| !rec.keys.contains(&m.key.0));
    }
    st.batches.retain(|b| !b.is_empty());
    Ok(())
}

fn enc_state(e: &mut Enc, st: &DurableState) {
    core_wire::enc_strategy(e, st.strategy);
    core_wire::enc_policy(e, st.policy);
    e.u8(match st.adaptation {
        AdaptationMode::Auto => 0,
        AdaptationMode::RecomputeOnly => 1,
    });
    e.bool(st.dedupe);
    enc_seq(e, &st.views, |e, v| {
        e.str(&v.sql);
        enc_seq(e, &v.cols, |e, c| e.str(c));
        rel_wire::enc_bag(e, &v.extent);
        enc_seq(e, &v.reflected, |e, (s, ver)| {
            e.u32(*s);
            e.u64(*ver);
        });
        enc_seq(e, &v.deferred, |e, batch| {
            enc_seq(e, batch, |e, m| core_wire::enc_meta(e, m, src_wire::enc_message));
        });
        e.u8(v.tier);
    });
    enc_seq(e, &st.reflected, |e, (s, v)| {
        e.u32(*s);
        e.u64(*v);
    });
    enc_seq(e, &st.marks, |e, (s, v)| {
        e.u32(*s);
        e.u64(*v);
    });
    enc_seq(e, &st.batches, |e, batch| {
        enc_seq(e, batch, |e, m| core_wire::enc_meta(e, m, src_wire::enc_message));
    });
    e.bool(st.sc_flag);
    e.bytes(&st.ext);
}

fn dec_state(d: &mut Dec<'_>) -> Result<DurableState, WireError> {
    let strategy = core_wire::dec_strategy(d)?;
    let policy = core_wire::dec_policy(d)?;
    let adaptation = match d.u8()? {
        0 => AdaptationMode::Auto,
        1 => AdaptationMode::RecomputeOnly,
        t => return Err(WireError::Invalid(format!("adaptation tag {t}"))),
    };
    let dedupe = d.bool()?;
    let views = dec_seq(d, |d| {
        Ok(ViewState {
            sql: d.str()?,
            cols: dec_seq(d, |d| d.str())?,
            extent: rel_wire::dec_bag(d)?,
            reflected: dec_seq(d, |d| Ok((d.u32()?, d.u64()?)))?,
            deferred: dec_seq(d, |d| {
                dec_seq(d, |d| core_wire::dec_meta(d, src_wire::dec_message))
            })?,
            tier: d.u8()?,
        })
    })?;
    let reflected = dec_seq(d, |d| Ok((d.u32()?, d.u64()?)))?;
    let marks = dec_seq(d, |d| Ok((d.u32()?, d.u64()?)))?;
    let batches = dec_seq(d, |d| dec_seq(d, |d| core_wire::dec_meta(d, src_wire::dec_message)))?;
    let sc_flag = d.bool()?;
    let ext = d.bytes()?.to_vec();
    Ok(DurableState {
        strategy,
        policy,
        adaptation,
        dedupe,
        views,
        reflected,
        marks,
        batches,
        sc_flag,
        ext,
        tail: Vec::new(),
    })
}

fn enc_applied(e: &mut Enc, rec: &AppliedRecord) {
    enc_seq(e, &rec.keys, |e, k| e.u64(*k));
    enc_seq(e, &rec.changes, |e, c| match c {
        AppliedChange::Delta { rows } => {
            e.u8(0);
            rel_wire::enc_bag(e, rows);
        }
        AppliedChange::Replace { sql, cols, extent } => {
            e.u8(1);
            e.str(sql);
            enc_seq(e, cols, |e, c| e.str(c));
            rel_wire::enc_bag(e, extent);
        }
        AppliedChange::Incremental { sql, rows } => {
            e.u8(2);
            e.str(sql);
            rel_wire::enc_bag(e, rows);
        }
        AppliedChange::Skipped => e.u8(3),
        AppliedChange::Deferred => e.u8(4),
    });
    enc_seq(e, &rec.reflected, |e, (s, v)| {
        e.u32(*s);
        e.u64(*v);
    });
    enc_seq(e, &rec.view_reflected, |e, vr| {
        enc_seq(e, vr, |e, (s, v)| {
            e.u32(*s);
            e.u64(*v);
        });
    });
}

fn dec_applied(d: &mut Dec<'_>) -> Result<AppliedRecord, WireError> {
    let keys = dec_seq(d, |d| d.u64())?;
    let changes = dec_seq(d, |d| {
        Ok(match d.u8()? {
            0 => AppliedChange::Delta { rows: rel_wire::dec_bag(d)? },
            1 => AppliedChange::Replace {
                sql: d.str()?,
                cols: dec_seq(d, |d| d.str())?,
                extent: rel_wire::dec_bag(d)?,
            },
            2 => AppliedChange::Incremental { sql: d.str()?, rows: rel_wire::dec_bag(d)? },
            3 => AppliedChange::Skipped,
            4 => AppliedChange::Deferred,
            t => return Err(WireError::Invalid(format!("applied change tag {t}"))),
        })
    })?;
    let reflected = dec_seq(d, |d| Ok((d.u32()?, d.u64()?)))?;
    let view_reflected = dec_seq(d, |d| dec_seq(d, |d| Ok((d.u32()?, d.u64()?))))?;
    Ok(AppliedRecord { keys, changes, reflected, view_reflected })
}

/// Helper for warehouse/manager: sorted `(source, version)` pairs from any
/// iterator of pairs (the canonical on-disk form of a version vector).
pub fn sorted_versions(it: impl IntoIterator<Item = (u32, u64)>) -> Vec<(u32, u64)> {
    let mut v: Vec<(u32, u64)> = it.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_core::UpdateKind;
    use dyno_durable::storage::MemStorage;
    use dyno_relational::{Tuple, Value};
    use dyno_source::{SourceId, UpdateId};

    fn msg(key: u64, source: u32, version: u64) -> UpdateMessage {
        let schema = dyno_relational::Schema::of("R", &[("a", dyno_relational::AttrType::Int)]);
        UpdateMessage {
            id: UpdateId(key),
            source: SourceId(source),
            source_version: version,
            update: dyno_relational::SourceUpdate::Data(dyno_relational::DataUpdate::new(
                dyno_relational::Delta::inserts(schema, [Tuple::of([key as i64])]).unwrap(),
            )),
        }
    }

    fn meta(key: u64, source: u32, version: u64) -> UpdateMeta<UpdateMessage> {
        UpdateMeta::new(key, source, UpdateKind::Data, msg(key, source, version))
    }

    fn bag(vals: &[i64]) -> SignedBag {
        vals.iter().map(|&v| (Tuple::new(vec![Value::Int(v)]), 1)).collect()
    }

    fn sample_state() -> DurableState {
        DurableState {
            strategy: Strategy::Pessimistic,
            policy: CorrectionPolicy::MergeCycles,
            adaptation: AdaptationMode::Auto,
            dedupe: true,
            views: vec![ViewState {
                sql: "CREATE VIEW V AS SELECT R.a FROM R".into(),
                cols: vec!["a".into()],
                extent: bag(&[1, 2]),
                reflected: vec![(0, 3), (1, 1)],
                deferred: vec![],
                tier: 0,
            }],
            reflected: vec![(0, 3), (1, 1)],
            marks: vec![(0, 3), (1, 1)],
            batches: vec![vec![meta(7, 0, 4)]],
            sc_flag: false,
            ext: vec![0xAB, 0xCD],
            tail: Vec::new(),
        }
    }

    #[test]
    fn state_round_trips_through_a_checkpoint() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        let st = sample_state();
        log.checkpoint(&st);

        let obs = Collector::wall();
        let (_, recovered, report) = recover(Box::new(disk), &obs).unwrap();
        assert_eq!(recovered, st);
        assert_eq!(report.replayed_records, 1);
        assert_eq!(report.torn_records, 0);
        assert_eq!(report.reparked_intents, 0);
    }

    #[test]
    fn admitted_and_applied_fold_into_the_state() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        let st = sample_state();
        log.checkpoint(&st);
        // A new message is admitted…
        log.log_admitted(&meta(8, 1, 2));
        // …then the older queued batch commits.
        log.log_intent(&[7], false);
        log.log_applied(&AppliedRecord {
            keys: vec![7],
            changes: vec![AppliedChange::Delta { rows: bag(&[4]) }],
            reflected: vec![(0, 4), (1, 1)],
            view_reflected: vec![vec![(0, 4), (1, 1)]],
        });

        let obs = Collector::wall();
        let (_, recovered, report) = recover(Box::new(disk), &obs).unwrap();
        assert_eq!(report.replayed_records, 4);
        assert_eq!(report.reparked_intents, 0, "the intent has its applied");
        assert_eq!(recovered.views[0].extent, bag(&[1, 2, 4]));
        assert_eq!(recovered.reflected, vec![(0, 4), (1, 1)]);
        assert_eq!(recovered.marks, vec![(0, 3), (1, 2)], "admitted bumped source 1");
        assert_eq!(recovered.batches.len(), 1, "batch 7 gone, admitted 8 queued");
        assert_eq!(recovered.batches[0][0].key.0, 8);
    }

    /// Two-view state: V0 as in `sample_state`, V1 a peer over source 1.
    fn two_view_state() -> DurableState {
        let mut st = sample_state();
        st.views.push(ViewState {
            sql: "CREATE VIEW W AS SELECT R.a FROM R".into(),
            cols: vec!["a".into()],
            extent: bag(&[9]),
            reflected: vec![(0, 3), (1, 1)],
            deferred: vec![],
            tier: 1,
        });
        st
    }

    #[test]
    fn deferred_change_moves_the_batch_to_the_views_queue() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        let st = two_view_state();
        log.checkpoint(&st);
        // V0 commits batch 7, V1 defers it (its source was down): V1's
        // vector freezes while V0's advances.
        log.log_intent(&[7], false);
        log.log_applied(&AppliedRecord {
            keys: vec![7],
            changes: vec![AppliedChange::Delta { rows: bag(&[4]) }, AppliedChange::Deferred],
            reflected: vec![(0, 4), (1, 1)],
            view_reflected: vec![vec![(0, 4), (1, 1)], vec![(0, 3), (1, 1)]],
        });

        let obs = Collector::wall();
        let (_, recovered, _) = recover(Box::new(disk.clone()), &obs).unwrap();
        assert_eq!(recovered.views[0].extent, bag(&[1, 2, 4]));
        assert_eq!(recovered.views[0].reflected, vec![(0, 4), (1, 1)]);
        assert_eq!(recovered.views[1].extent, bag(&[9]), "deferring view untouched");
        assert_eq!(recovered.views[1].reflected, vec![(0, 3), (1, 1)], "frozen vector");
        assert_eq!(recovered.views[1].deferred.len(), 1, "batch parked per-view");
        assert_eq!(recovered.views[1].deferred[0][0].key.0, 7);
        assert!(recovered.batches.is_empty(), "the shared queue is drained");

        // The per-view drain later commits the deferred batch for V1 alone
        // (V0 marked Skipped) — replay must resolve V1's deferred copy.
        let mut log2 = DurableLog::create(Box::new(disk.clone())).unwrap();
        log2.checkpoint(&recovered);
        log2.log_intent(&[7], false);
        log2.log_applied(&AppliedRecord {
            keys: vec![7],
            changes: vec![AppliedChange::Skipped, AppliedChange::Delta { rows: bag(&[4]) }],
            reflected: vec![(0, 4), (1, 1)],
            view_reflected: vec![vec![(0, 4), (1, 1)], vec![(0, 4), (1, 1)]],
        });
        let (_, drained, _) = recover(Box::new(disk), &obs).unwrap();
        assert_eq!(drained.views[0].extent, bag(&[1, 2, 4]), "skipped peer untouched");
        assert_eq!(drained.views[1].extent, bag(&[9, 4]));
        assert!(drained.views[1].deferred.is_empty(), "deferred copy resolved");
        assert_eq!(drained.views[1].reflected, vec![(0, 4), (1, 1)], "vector caught up");
    }

    #[test]
    fn skipped_peer_keeps_its_own_deferred_copy() {
        // Both views deferred batch 7; V0 drains it first. V1's copy must
        // survive the drain record (its change is `Skipped`, not applied).
        let mut st = two_view_state();
        st.views[0].deferred = vec![vec![meta(7, 0, 4)]];
        st.views[1].deferred = vec![vec![meta(7, 0, 4)]];
        st.batches.clear();
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        log.checkpoint(&st);
        log.log_applied(&AppliedRecord {
            keys: vec![7],
            changes: vec![AppliedChange::Delta { rows: bag(&[4]) }, AppliedChange::Skipped],
            reflected: vec![(0, 4), (1, 1)],
            view_reflected: vec![vec![(0, 4), (1, 1)], vec![(0, 3), (1, 1)]],
        });
        let obs = Collector::wall();
        let (_, recovered, _) = recover(Box::new(disk), &obs).unwrap();
        assert!(recovered.views[0].deferred.is_empty(), "drained view's copy resolved");
        assert_eq!(recovered.views[1].deferred.len(), 1, "peer's copy survives");
    }

    #[test]
    fn intent_without_applied_is_reparked() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        log.checkpoint(&sample_state());
        log.log_intent(&[7], false);
        // crash here — no Applied.
        let obs = Collector::wall();
        let (_, recovered, report) = recover(Box::new(disk), &obs).unwrap();
        assert_eq!(report.reparked_intents, 1);
        assert_eq!(recovered.batches.len(), 1, "the batch is still queued");
        assert_eq!(obs.registry().counter_value("recover.reparked_intents"), Some(1));
    }

    #[test]
    fn armed_after_intent_cut_drops_the_applied() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        log.checkpoint(&sample_state());
        log.arm(CrashPlan { point: CrashPoint::AfterIntent, skip: 0 });
        log.log_intent(&[7], false);
        assert!(log.power_cut(), "single-DU intent trips AfterIntent");
        // The in-memory commit still "happens" in the live process…
        log.log_applied(&AppliedRecord {
            keys: vec![7],
            changes: vec![AppliedChange::Delta { rows: bag(&[4]) }],
            reflected: vec![(0, 4), (1, 1)],
            view_reflected: vec![vec![(0, 4), (1, 1)]],
        });
        // …but was never durable.
        let obs = Collector::wall();
        let (_, recovered, report) = recover(Box::new(disk), &obs).unwrap();
        assert_eq!(report.reparked_intents, 1);
        assert_eq!(recovered.views[0].extent, bag(&[1, 2]), "the applied never landed");
    }

    #[test]
    fn crash_point_classification() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk)).unwrap();
        log.arm(CrashPlan { point: CrashPoint::MidBatch, skip: 1 });
        log.log_intent(&[1], false); // plain DU: no match
        assert!(!log.power_cut());
        log.log_intent(&[2], true); // SC node: first match, skipped
        assert!(!log.power_cut());
        log.log_intent(&[3, 4], false); // merged batch: second match → cut
        assert!(log.power_cut());
    }

    #[test]
    fn between_steps_cut_fires_on_applied() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk)).unwrap();
        log.arm(CrashPlan { point: CrashPoint::BetweenSteps, skip: 0 });
        log.log_intent(&[1], false);
        assert!(!log.power_cut());
        log.log_applied(&AppliedRecord {
            keys: vec![1],
            changes: vec![],
            reflected: vec![],
            view_reflected: vec![],
        });
        assert!(log.power_cut());
    }

    #[test]
    fn torn_tail_is_reported_and_truncated_by_recovery() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        log.checkpoint(&sample_state());
        let intact = disk.snapshot().len();
        log.log_admitted(&meta(8, 1, 2));
        // Tear the admitted record.
        disk.truncate(intact + 5);

        let obs = Collector::wall();
        let (_, recovered, report) = recover(Box::new(disk.clone()), &obs).unwrap();
        assert_eq!(report.torn_records, 1);
        assert!(report.torn_bytes > 0);
        assert_eq!(recovered, sample_state(), "checkpointed prefix survives intact");
        assert_eq!(obs.registry().counter_value("recover.torn_records"), Some(1));

        // Recovery re-checkpointed: a second pass replays cleanly.
        let (_, again, report2) = recover(Box::new(disk), &obs).unwrap();
        assert_eq!(again, recovered);
        assert_eq!(report2.torn_records, 0, "the torn tail was truncated away");
    }

    #[test]
    fn replica_records_fold_and_surface_in_the_tail() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        log.checkpoint(&sample_state());
        log.log_replica_published(&[1, 2, 3]);
        // A winning remote post-image replaces key 1's rows…
        log.log_replica_remote(0, 0, &Value::Int(1), &bag(&[5]), true, &[9]);
        // …a superseded loser is logged but never applied.
        log.log_replica_remote(0, 0, &Value::Int(2), &bag(&[7]), false, &[8]);

        let obs = Collector::wall();
        let (_, recovered, report) = recover(Box::new(disk.clone()), &obs).unwrap();
        assert_eq!(report.replayed_records, 4);
        assert_eq!(recovered.views[0].extent, bag(&[2, 5]), "applied folded exactly once");
        assert_eq!(recovered.tail.len(), 3);
        assert_eq!(recovered.tail[0], ReplicaTailEvent::Published { bytes: vec![1, 2, 3] });
        assert!(matches!(
            &recovered.tail[1],
            ReplicaTailEvent::Remote { applied: true, bytes, .. } if bytes == &vec![9]
        ));
        assert!(matches!(&recovered.tail[2], ReplicaTailEvent::Remote { applied: false, .. }));

        // Recovery's closing checkpoint truncated the tail records: a
        // second pass starts from the folded extent with an empty tail.
        let (_, again, _) = recover(Box::new(disk), &obs).unwrap();
        assert_eq!(again.views[0].extent, bag(&[2, 5]));
        assert!(again.tail.is_empty());
    }

    #[test]
    fn applied_records_surface_their_rows_in_the_tail() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        log.checkpoint(&sample_state());
        log.log_intent(&[7], false);
        log.log_applied(&AppliedRecord {
            keys: vec![7],
            changes: vec![AppliedChange::Delta { rows: bag(&[4]) }],
            reflected: vec![(0, 4), (1, 1)],
            view_reflected: vec![vec![(0, 4), (1, 1)]],
        });
        let obs = Collector::wall();
        let (_, recovered, _) = recover(Box::new(disk), &obs).unwrap();
        assert_eq!(
            recovered.tail,
            vec![ReplicaTailEvent::Applied { keys: vec![7], rows: vec![bag(&[4])] }]
        );
    }

    #[test]
    fn empty_log_has_no_checkpoint() {
        let disk = MemStorage::new();
        let obs = Collector::wall();
        assert!(matches!(recover(Box::new(disk), &obs), Err(RecoverError::NoCheckpoint)));
    }

    #[test]
    fn power_cut_makes_the_log_read_only() {
        let disk = MemStorage::new();
        let mut log = DurableLog::create(Box::new(disk.clone())).unwrap();
        log.checkpoint(&sample_state());
        let frozen = disk.snapshot();
        log.arm(CrashPlan { point: CrashPoint::BetweenSteps, skip: 0 });
        log.log_applied(&AppliedRecord {
            keys: vec![1],
            changes: vec![],
            reflected: vec![],
            view_reflected: vec![],
        });
        let after_cut = disk.snapshot();
        log.log_admitted(&meta(9, 0, 9));
        log.checkpoint(&sample_state());
        assert_eq!(disk.snapshot(), after_cut, "nothing lands after the cut");
        assert!(after_cut.len() > frozen.len(), "the tripping record itself did land");
    }
}
