//! The query engine boundary between the view manager and the source space.
//!
//! The [`SourcePort`] trait is where all the paper's timing phenomena live:
//! a port executes maintenance queries against the sources' **current**
//! states (committing any updates that become due first — that is how
//! concurrent updates sneak into query results), reports schema conflicts as
//! broken queries, meters simulated cost, and streams newly committed
//! updates back to the wrapper/UMQ side.
//!
//! `dyno-view` ships [`InProcessPort`], an untimed implementation over a
//! [`SourceSpace`] for tests and examples; the discrete-event simulation in
//! `dyno-sim` provides the timed implementation used by the experiments.

use std::collections::HashMap;

use dyno_relational::exec::{RelationProvider, TableSlice};
use dyno_relational::{
    eval, AttrType, Attribute, QueryResult, RelationalError, Schema, SignedBag, SpjQuery,
};
use dyno_source::{SourceId, SourceSpace, UpdateMessage};

/// A table shipped with a query (e.g. an update's delta bound in place of
/// its relation in a maintenance query).
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// The name the query refers to it by.
    pub name: String,
    /// Column names, in tuple order.
    pub cols: Vec<String>,
    /// Signed rows.
    pub rows: SignedBag,
}

impl BoundTable {
    /// Builds the schema the executor needs, inferring attribute types from
    /// the data (bound tables are intermediate results; any non-NULL value
    /// determines its column's type, and empty/all-NULL columns default to
    /// `Int`, which type-checks trivially because there is nothing to check).
    pub fn to_schema(&self) -> Schema {
        schema_from_bag(&self.name, &self.cols, &self.rows)
    }
}

/// Infers a [`Schema`] for an intermediate result.
pub fn schema_from_bag(name: &str, cols: &[String], rows: &SignedBag) -> Schema {
    let mut types: Vec<Option<AttrType>> = vec![None; cols.len()];
    for (t, _) in rows.iter() {
        let mut all_known = true;
        for (i, v) in t.values().iter().enumerate() {
            if types[i].is_none() {
                types[i] = v.runtime_type();
            }
            all_known &= types[i].is_some();
        }
        if all_known {
            break;
        }
    }
    let attrs = cols
        .iter()
        .zip(&types)
        .map(|(n, ty)| Attribute::new(n.clone(), ty.unwrap_or(AttrType::Int)))
        .collect();
    Schema::new(name, attrs).expect("intermediate columns are unique by construction")
}

/// Maintenance lifecycle notifications, so a timed port can meter
/// per-maintenance and abort ("wasted work") costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintEvent {
    /// Maintenance of one queue entry is starting.
    Begin {
        /// Updates in the entry (1 unless a merged batch).
        updates: usize,
        /// How many of them are schema changes.
        schema_changes: usize,
    },
    /// Maintenance committed to the view.
    Commit,
    /// Maintenance aborted on a broken query; all its work is discarded.
    Abort,
    /// Maintenance could not run because a source it needs is down; the
    /// entry stays queued and nothing about the view changed.
    Park,
}

/// The view manager's window onto the source space.
pub trait SourcePort {
    /// Current simulated time (milliseconds). Untimed ports return 0.
    fn now_ms(&self) -> u64;

    /// Current simulated time in microseconds — the resolution fault
    /// injection works at. Defaults to `now_ms() * 1000`; timed ports
    /// override with their exact clock.
    fn now_us(&self) -> u64 {
        self.now_ms() * 1000
    }

    /// Charges pure waiting time (retry backoff, crash-recovery waits) to
    /// the clock without attributing it to any query. Untimed ports ignore
    /// it.
    fn advance_wait(&mut self, _us: u64) {}

    /// Executes a query over the sources' current states, with `bound`
    /// tables spliced in by name. Schema conflicts surface as
    /// `Err(e)` with `e.is_schema_conflict()` — the broken-query signal.
    fn execute(
        &mut self,
        query: &SpjQuery,
        bound: &[BoundTable],
    ) -> Result<QueryResult, RelationalError>;

    /// Fetches the named relation's extent *as of* a past source version
    /// (the intelligent wrapper's history capability, used by view
    /// adaptation for the pre-images of Equation 6). Pinned reads cannot be
    /// broken by concurrent schema changes.
    fn fetch_relation_at(
        &mut self,
        source: SourceId,
        relation: &str,
        version: u64,
    ) -> Result<dyno_relational::Relation, RelationalError>;

    /// The source currently hosting `relation`, if any.
    fn locate(&mut self, relation: &str) -> Option<SourceId>;

    /// Current version of a source.
    fn source_version(&mut self, source: SourceId) -> u64;

    /// Charges view-manager-local computation (compensation joins, Equation-6
    /// term evaluation) at the local cost rate.
    fn charge_local(&mut self, tuples: u64);

    /// Charges the `w(MV)` write of `tuples` tuples into the materialized
    /// view on commit. Defaults to the local rate.
    fn charge_mv_write(&mut self, tuples: u64) {
        self.charge_local(tuples);
    }

    /// Drains updates committed at the sources since the last drain —
    /// the wrapper → UMQ stream. Called by the view manager before each
    /// scheduling step and after each query (in-exec arrivals).
    fn drain_arrivals(&mut self) -> Vec<UpdateMessage>;

    /// Maintenance lifecycle notification (metering hook).
    fn on_maintenance_event(&mut self, _event: MaintEvent) {}
}

/// Evaluates a query against a base provider plus bound tables. Shared by
/// port implementations and by the view manager's *local* compensation
/// evaluation.
pub fn eval_with_bound<P: RelationProvider + ?Sized>(
    base: &P,
    query: &SpjQuery,
    bound: &[BoundTable],
) -> Result<QueryResult, RelationalError> {
    let schemas: Vec<Schema> = bound.iter().map(BoundTable::to_schema).collect();
    let mut overlay = dyno_relational::Overlay::new(base);
    for (b, s) in bound.iter().zip(&schemas) {
        overlay = overlay.bind(b.name.clone(), TableSlice { schema: s, rows: &b.rows });
    }
    eval(query, &overlay)
}

/// A provider over owned (schema, rows) pairs — used to evaluate queries
/// entirely at the view manager (compensation, Equation-6 terms).
#[derive(Debug, Clone, Default)]
pub struct LocalProvider {
    tables: HashMap<String, (Schema, SignedBag)>,
}

impl LocalProvider {
    /// Empty provider.
    pub fn new() -> Self {
        LocalProvider::default()
    }

    /// Adds a table under its schema's relation name.
    pub fn insert(&mut self, schema: Schema, rows: SignedBag) {
        self.tables.insert(schema.relation.clone(), (schema, rows));
    }

    /// Adds a relation.
    pub fn insert_relation(&mut self, relation: &dyno_relational::Relation) {
        self.insert(relation.schema().clone(), relation.rows().clone());
    }
}

impl RelationProvider for LocalProvider {
    fn table(&self, name: &str) -> Result<TableSlice<'_>, RelationalError> {
        self.tables
            .get(name)
            .map(|(s, r)| TableSlice { schema: s, rows: r })
            .ok_or_else(|| RelationalError::UnknownRelation { relation: name.to_string() })
    }
}

/// A decorator recording every source interaction in the notation of paper
/// Definition 1 — `r(DS₁) r(DS₂) … w(MV) c(MV)` — so tests and examples can
/// assert the *shape* of a maintenance process. (`r(VD)`/`w(VD)` happen
/// inside the view manager and are logged by the lifecycle events.)
pub struct TracingPort<'a, P: SourcePort + ?Sized> {
    inner: &'a mut P,
    trace: Vec<String>,
}

impl<'a, P: SourcePort + ?Sized> TracingPort<'a, P> {
    /// Wraps a port.
    pub fn new(inner: &'a mut P) -> Self {
        TracingPort { inner, trace: Vec::new() }
    }

    /// The operations recorded so far.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Takes the recorded operations, leaving the trace empty.
    pub fn take_trace(&mut self) -> Vec<String> {
        std::mem::take(&mut self.trace)
    }
}

impl<P: SourcePort + ?Sized> SourcePort for TracingPort<'_, P> {
    fn now_ms(&self) -> u64 {
        self.inner.now_ms()
    }

    fn now_us(&self) -> u64 {
        self.inner.now_us()
    }

    fn advance_wait(&mut self, us: u64) {
        self.inner.advance_wait(us);
    }

    fn execute(
        &mut self,
        query: &SpjQuery,
        bound: &[BoundTable],
    ) -> Result<QueryResult, RelationalError> {
        let targets: Vec<&str> = query
            .tables
            .iter()
            .filter(|t| !bound.iter().any(|b| b.name == **t))
            .map(String::as_str)
            .collect();
        let result = self.inner.execute(query, bound);
        for t in targets {
            self.trace.push(match self.inner.locate(t) {
                Some(sid) => format!("r({sid}:{t})"),
                None => format!("r(?:{t})!"),
            });
        }
        if result.is_err() {
            if let Some(last) = self.trace.last_mut() {
                last.push_str("BROKEN");
            }
        }
        result
    }

    fn fetch_relation_at(
        &mut self,
        source: SourceId,
        relation: &str,
        version: u64,
    ) -> Result<dyno_relational::Relation, RelationalError> {
        self.trace.push(format!("r({source}:{relation}@{version})"));
        self.inner.fetch_relation_at(source, relation, version)
    }

    fn locate(&mut self, relation: &str) -> Option<SourceId> {
        self.inner.locate(relation)
    }

    fn source_version(&mut self, source: SourceId) -> u64 {
        self.inner.source_version(source)
    }

    fn charge_local(&mut self, tuples: u64) {
        self.inner.charge_local(tuples);
    }

    fn charge_mv_write(&mut self, tuples: u64) {
        self.trace.push("w(MV)".to_string());
        self.inner.charge_mv_write(tuples);
    }

    fn drain_arrivals(&mut self) -> Vec<UpdateMessage> {
        self.inner.drain_arrivals()
    }

    fn on_maintenance_event(&mut self, event: MaintEvent) {
        match event {
            MaintEvent::Begin { schema_changes, .. } => {
                self.trace.push(if schema_changes > 0 {
                    "r(VD)w(VD)".to_string()
                } else {
                    "r(VD)".to_string()
                });
            }
            MaintEvent::Commit => self.trace.push("c(MV)".to_string()),
            MaintEvent::Abort => self.trace.push("ABORT".to_string()),
            MaintEvent::Park => self.trace.push("PARK".to_string()),
        }
        self.inner.on_maintenance_event(event);
    }
}

/// An untimed, in-process port over a [`SourceSpace`]: queries see current
/// states immediately; commits made through [`InProcessPort::commit`] are
/// buffered as arrivals. Used by unit/integration tests and examples.
#[derive(Debug, Clone)]
pub struct InProcessPort {
    space: SourceSpace,
    arrivals: Vec<UpdateMessage>,
}

impl InProcessPort {
    /// Wraps a source space.
    pub fn new(space: SourceSpace) -> Self {
        InProcessPort { space, arrivals: Vec::new() }
    }

    /// The wrapped space.
    pub fn space(&self) -> &SourceSpace {
        &self.space
    }

    /// Mutable access to the wrapped space (test setup).
    pub fn space_mut(&mut self) -> &mut SourceSpace {
        &mut self.space
    }

    /// Commits an update at a source and buffers the wrapper message as an
    /// arrival for the view manager.
    pub fn commit(
        &mut self,
        source: SourceId,
        update: dyno_relational::SourceUpdate,
    ) -> Result<UpdateMessage, RelationalError> {
        let msg = self.space.commit(source, update)?;
        self.arrivals.push(msg.clone());
        Ok(msg)
    }
}

impl SourcePort for InProcessPort {
    fn now_ms(&self) -> u64 {
        0
    }

    fn execute(
        &mut self,
        query: &SpjQuery,
        bound: &[BoundTable],
    ) -> Result<QueryResult, RelationalError> {
        eval_with_bound(&self.space.provider(), query, bound)
    }

    fn fetch_relation_at(
        &mut self,
        source: SourceId,
        relation: &str,
        version: u64,
    ) -> Result<dyno_relational::Relation, RelationalError> {
        let catalog = self.space.server(source).state_at(version)?;
        catalog.get(relation).cloned()
    }

    fn locate(&mut self, relation: &str) -> Option<SourceId> {
        self.space.locate(relation)
    }

    fn source_version(&mut self, source: SourceId) -> u64 {
        self.space.server(source).version()
    }

    fn charge_local(&mut self, _tuples: u64) {}

    fn drain_arrivals(&mut self) -> Vec<UpdateMessage> {
        std::mem::take(&mut self.arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::{Catalog, Relation, Tuple, Value};
    use dyno_source::SourceServer;

    fn small_space() -> SourceSpace {
        let mut sp = SourceSpace::new();
        let mut c = Catalog::new();
        c.add_relation(
            Relation::from_tuples(
                Schema::of("R", &[("id", AttrType::Int), ("v", AttrType::Str)]),
                [Tuple::of([Value::from(1), Value::str("a")])],
            )
            .unwrap(),
        )
        .unwrap();
        sp.add_server(SourceServer::new(SourceId(0), "s0", c));
        sp
    }

    #[test]
    fn schema_inference_from_data() {
        let mut rows = SignedBag::new();
        rows.add(Tuple::of([Value::Null, Value::str("x")]), 1);
        rows.add(Tuple::of([Value::from(3), Value::str("y")]), 1);
        let s = schema_from_bag("T", &["a".into(), "b".into()], &rows);
        assert_eq!(s.attrs()[0].ty, AttrType::Int);
        assert_eq!(s.attrs()[1].ty, AttrType::Str);
    }

    #[test]
    fn schema_inference_empty_defaults() {
        let s = schema_from_bag("T", &["a".into()], &SignedBag::new());
        assert_eq!(s.attrs()[0].ty, AttrType::Int);
    }

    #[test]
    fn in_process_port_executes_and_streams() {
        let mut port = InProcessPort::new(small_space());
        let q = SpjQuery::over(["R"]).select("R", "v").build();
        let out = port.execute(&q, &[]).unwrap();
        assert_eq!(out.weight(), 1);

        let schema = Schema::of("R", &[("id", AttrType::Int), ("v", AttrType::Str)]);
        port.commit(
            SourceId(0),
            dyno_relational::SourceUpdate::Data(dyno_relational::DataUpdate::new(
                dyno_relational::Delta::inserts(
                    schema,
                    [Tuple::of([Value::from(2), Value::str("b")])],
                )
                .unwrap(),
            )),
        )
        .unwrap();
        // The next query sees the committed update (concurrency!).
        let out2 = port.execute(&q, &[]).unwrap();
        assert_eq!(out2.weight(), 2);
        // And the arrival is streamed exactly once.
        assert_eq!(port.drain_arrivals().len(), 1);
        assert!(port.drain_arrivals().is_empty());
    }

    #[test]
    fn bound_table_shadows_source_relation() {
        let mut port = InProcessPort::new(small_space());
        let q = SpjQuery::over(["R"]).select("R", "v").build();
        let mut rows = SignedBag::new();
        rows.add(Tuple::of([Value::from(9), Value::str("z")]), 1);
        let bound = BoundTable { name: "R".into(), cols: vec!["id".into(), "v".into()], rows };
        let out = port.execute(&q, &[bound]).unwrap();
        assert_eq!(out.weight(), 1);
        assert_eq!(out.rows.count(&Tuple::of([Value::str("z")])), 1);
    }

    #[test]
    fn historical_fetch_is_pinned() {
        let mut port = InProcessPort::new(small_space());
        port.commit(
            SourceId(0),
            dyno_relational::SourceUpdate::Schema(dyno_relational::SchemaChange::DropRelation {
                relation: "R".into(),
            }),
        )
        .unwrap();
        // Current query breaks…
        let q = SpjQuery::over(["R"]).select("R", "v").build();
        assert!(port.execute(&q, &[]).unwrap_err().is_schema_conflict());
        // …but the version-0 read still works.
        let r = port.fetch_relation_at(SourceId(0), "R", 0).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn tracing_port_records_definition1_shape() {
        use crate::testkit::{bookinfo_space, bookinfo_view, insert_item};
        use dyno_core::Strategy;
        use dyno_relational::SourceUpdate;

        // M(DU) = r(VD) r(DS…)… w(MV) c(MV)  (paper Definition 1(1)).
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut mgr =
            crate::manager::ViewManager::new(bookinfo_view(), info, Strategy::Pessimistic);
        mgr.initialize(&mut port).unwrap();
        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        let mut traced = TracingPort::new(&mut port);
        mgr.run_to_quiescence(&mut traced, 10).unwrap();
        let trace = traced.take_trace();
        assert_eq!(trace.first().map(String::as_str), Some("r(VD)"));
        assert_eq!(trace.last().map(String::as_str), Some("c(MV)"));
        assert_eq!(trace[trace.len() - 2], "w(MV)");
        let reads = trace.iter().filter(|t| t.starts_with("r(DS") || t.contains(":")).count();
        assert_eq!(reads, 2, "probes Store and Catalog: {trace:?}");
    }

    #[test]
    fn tracing_port_records_sc_shape() {
        use crate::testkit::{bookinfo_space, bookinfo_view};
        use dyno_core::Strategy;
        use dyno_relational::{SchemaChange, SourceUpdate};

        // M(SC) = r(VD) w(VD) r(DS…)… w(MV) c(MV)  (paper Definition 1(2)).
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut mgr =
            crate::manager::ViewManager::new(bookinfo_view(), info, Strategy::Pessimistic);
        mgr.initialize(&mut port).unwrap();
        port.commit(
            SourceId(1),
            SourceUpdate::Schema(SchemaChange::DropAttribute {
                relation: "Catalog".into(),
                attr: "Review".into(),
            }),
        )
        .unwrap();
        let mut traced = TracingPort::new(&mut port);
        mgr.run_to_quiescence(&mut traced, 10).unwrap();
        let trace = traced.take_trace();
        assert_eq!(trace.first().map(String::as_str), Some("r(VD)w(VD)"));
        assert_eq!(trace.last().map(String::as_str), Some("c(MV)"));
        assert!(trace.contains(&"w(MV)".to_string()));
    }

    #[test]
    fn local_provider_roundtrip() {
        let mut lp = LocalProvider::new();
        let schema = Schema::of("X", &[("a", AttrType::Int)]);
        let mut rows = SignedBag::new();
        rows.add(Tuple::of([Value::from(1)]), -2);
        lp.insert(schema, rows);
        let q = SpjQuery::over(["X"]).select("X", "a").build();
        let out = eval(&q, &lp).unwrap();
        assert_eq!(out.rows.count(&Tuple::of([Value::from(1)])), -2);
    }
}
