//! Dependency-graph construction (paper Section 4.1.1).
//!
//! Nodes are the entries of the Update Message Queue in their current
//! processing order. An entry is usually a single update, but a previous
//! correction pass may have merged several updates into an atomic batch; a
//! batch node behaves like the union of its members.
//!
//! Edges:
//! - **Concurrent** — for every node `Y` containing a view-invalidating
//!   schema change, every other node `X` gets `M(X) cd← M(Y)` (every
//!   maintenance reads the view definition that `M(Y)` rewrites). This is
//!   the `O(m·n)` pass, `m` = number of schema changes.
//! - **Semantic** — per source, adjacent nodes containing that source's
//!   updates are chained `M(later) sd← M(earlier)` — the `O(n)` bucketed
//!   pass.

use std::collections::{BTreeMap, BTreeSet};

use dyno_obs::{field, Collector, Level};

use crate::dependency::{DepKind, Dependency};
use crate::meta::{SourceKey, UpdateMeta};

/// A dependency graph over queue nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepGraph {
    node_count: usize,
    deps: Vec<Dependency>,
}

impl DepGraph {
    /// Builds the graph from the queue's node snapshot. Each element of
    /// `nodes` is one queue entry (a batch of one or more updates in commit
    /// order).
    ///
    /// ```
    /// use dyno_core::{DepGraph, UpdateKind, UpdateMeta};
    ///
    /// // A data update queued before a view-invalidating schema change:
    /// let du = vec![UpdateMeta::new(0, 0, UpdateKind::Data, "du")];
    /// let sc = vec![UpdateMeta::new(
    ///     1, 1, UpdateKind::Schema { invalidates_view: true }, "sc",
    /// )];
    /// let graph = DepGraph::build(&[&du, &sc]);
    /// // M(du) cd← M(sc) points forward in the queue: unsafe (Def. 6).
    /// assert!(!graph.order_is_legal());
    /// assert_eq!(graph.unsafe_dependencies().count(), 1);
    /// ```
    pub fn build<P>(nodes: &[&[UpdateMeta<P>]]) -> DepGraph {
        let n = nodes.len();
        let mut deps: BTreeSet<(usize, usize, DepKind)> = BTreeSet::new();

        // Concurrent dependencies: O(m·n).
        for (j, node) in nodes.iter().enumerate() {
            if node.iter().any(|u| u.kind.writes_view_definition()) {
                for i in 0..n {
                    if i != j {
                        deps.insert((i, j, DepKind::Concurrent));
                    }
                }
            }
        }

        // Semantic dependencies: one bucket per source, O(n) scan.
        let mut buckets: BTreeMap<SourceKey, Vec<usize>> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            let mut seen: BTreeSet<SourceKey> = BTreeSet::new();
            for u in node.iter() {
                if seen.insert(u.source) {
                    buckets.entry(u.source).or_default().push(i);
                }
            }
        }
        for positions in buckets.values() {
            for w in positions.windows(2) {
                deps.insert((w[1], w[0], DepKind::Semantic));
            }
        }

        DepGraph {
            node_count: n,
            deps: deps
                .into_iter()
                .map(|(dependent, prerequisite, kind)| Dependency { dependent, prerequisite, kind })
                .collect(),
        }
    }

    /// [`DepGraph::build`] wrapped in a `graph.build` span, reporting edge
    /// counts and the unsafe-order verdict to `obs`. The scheduler calls
    /// this; direct callers that don't observe keep using `build`.
    pub fn build_observed<P>(nodes: &[&[UpdateMeta<P>]], obs: &Collector) -> DepGraph {
        let _span = obs.span("graph.build", &[field("nodes", nodes.len())]);
        let graph = DepGraph::build(nodes);
        let (cd, sd) = graph.edge_counts();
        obs.counter("graph.builds").inc();
        obs.counter("graph.cd_edges").add(cd as u64);
        obs.counter("graph.sd_edges").add(sd as u64);
        obs.event(
            Level::Debug,
            "graph.built",
            &[
                field("nodes", nodes.len()),
                field("cd_edges", cd),
                field("sd_edges", sd),
                field("order_is_legal", graph.order_is_legal()),
            ],
        );
        if obs.lineage_on() {
            graph.record_conflicts(nodes, obs);
        }
        graph
    }

    /// Emits one `conflict` provenance record per member of the dependent
    /// node of every unsafe edge, tagged with the paper's anomaly class:
    /// 1 = same-source DU ordering (SD between data updates), 2 = semantic
    /// dependency involving a schema change, 3 = concurrent DU/SC conflict,
    /// 4 = mutual concurrent conflict (the SC↔SC cycle of Section 3.5).
    fn record_conflicts<P>(&self, nodes: &[&[UpdateMeta<P>]], obs: &Collector) {
        let cd_pairs: BTreeSet<(usize, usize)> = self
            .deps
            .iter()
            .filter(|d| d.kind == DepKind::Concurrent)
            .map(|d| (d.dependent, d.prerequisite))
            .collect();
        for d in self.unsafe_dependencies() {
            let class: u64 = match d.kind {
                DepKind::Concurrent => {
                    if cd_pairs.contains(&(d.prerequisite, d.dependent)) {
                        4
                    } else {
                        3
                    }
                }
                DepKind::Semantic => {
                    let any_sc = nodes[d.dependent]
                        .iter()
                        .chain(nodes[d.prerequisite].iter())
                        .any(|u| u.kind.is_schema_change());
                    if any_sc {
                        2
                    } else {
                        1
                    }
                }
                // Cross-replica conflicts never enter the intra-warehouse
                // queue graph (they are detected at the peer-ingest path),
                // but the class is numbered for forensics continuity.
                DepKind::Replica => 5,
            };
            let with = nodes[d.prerequisite].first().map_or(0, |u| u.key.0);
            let kind = match d.kind {
                DepKind::Concurrent => "CD",
                DepKind::Semantic => "SD",
                DepKind::Replica => "RD",
            };
            for u in nodes[d.dependent] {
                obs.prov(
                    u.key.0,
                    dyno_obs::stage::CONFLICT,
                    &[field("with", with), field("class", class), field("kind", kind)],
                );
            }
        }
    }

    /// `(concurrent, semantic)` edge counts.
    pub fn edge_counts(&self) -> (usize, usize) {
        let cd = self.deps.iter().filter(|d| d.kind == DepKind::Concurrent).count();
        (cd, self.deps.len() - cd)
    }

    /// Builds a graph from explicit dependencies (for tests, benchmarks and
    /// worked examples over abstract graphs, e.g. paper Figure 5).
    pub fn from_edges(node_count: usize, deps: Vec<Dependency>) -> DepGraph {
        for d in &deps {
            assert!(
                d.dependent < node_count && d.prerequisite < node_count,
                "dependency references node out of range"
            );
        }
        DepGraph { node_count, deps }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All dependencies.
    pub fn dependencies(&self) -> &[Dependency] {
        &self.deps
    }

    /// The dependencies violated by the current (index) order — Definition 6
    /// unsafe dependencies.
    pub fn unsafe_dependencies(&self) -> impl Iterator<Item = &Dependency> {
        self.deps.iter().filter(|d| d.is_unsafe())
    }

    /// True iff the current order is already *legal* (Definition 7).
    pub fn order_is_legal(&self) -> bool {
        self.unsafe_dependencies().next().is_none()
    }

    /// Renders the graph in Graphviz DOT format, `labels(i)` naming node
    /// `i`. Concurrent dependencies are solid red edges, semantic ones
    /// dashed blue; unsafe edges are bold. Arrows point from dependent to
    /// prerequisite ("must run first").
    pub fn to_dot(&self, labels: impl Fn(usize) -> String) -> String {
        let mut out = String::from("digraph dependencies {\n  rankdir=LR;\n");
        for i in 0..self.node_count {
            out.push_str(&format!("  n{i} [label=\"{}\"];\n", labels(i)));
        }
        for d in &self.deps {
            let (color, style) = match d.kind {
                DepKind::Concurrent => ("red", "solid"),
                DepKind::Semantic => ("blue", "dashed"),
                DepKind::Replica => ("purple", "dotted"),
            };
            let penwidth = if d.is_unsafe() { 2.5 } else { 1.0 };
            out.push_str(&format!(
                "  n{} -> n{} [label=\"{}\", color={color}, style={style}, penwidth={penwidth}];\n",
                d.dependent, d.prerequisite, d.kind
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Adjacency in "dependent → prerequisite" direction, for SCC/topo
    /// algorithms: `adj[i]` lists the nodes `i` depends on.
    pub fn prerequisite_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.node_count];
        for d in &self.deps {
            adj[d.dependent].push(d.prerequisite);
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::UpdateKind;

    type M = UpdateMeta<()>;

    fn du(key: u64, source: u32) -> M {
        UpdateMeta::new(key, source, UpdateKind::Data, ())
    }

    fn sc(key: u64, source: u32, invalidates: bool) -> M {
        UpdateMeta::new(key, source, UpdateKind::Schema { invalidates_view: invalidates }, ())
    }

    fn graph_of(nodes: &[Vec<M>]) -> DepGraph {
        let views: Vec<&[M]> = nodes.iter().map(|v| v.as_slice()).collect();
        DepGraph::build(&views)
    }

    #[test]
    fn data_updates_only_chain_semantically() {
        let g = graph_of(&[vec![du(0, 0)], vec![du(1, 0)], vec![du(2, 1)]]);
        assert_eq!(g.dependencies().len(), 1);
        let d = g.dependencies()[0];
        assert_eq!((d.dependent, d.prerequisite, d.kind), (1, 0, DepKind::Semantic));
        assert!(g.order_is_legal(), "commit-order DUs are already safe");
    }

    #[test]
    fn view_invalidating_sc_gets_edges_from_everyone() {
        // DU, then SC (view-relevant) on a different source.
        let g = graph_of(&[vec![du(0, 0)], vec![sc(1, 1, true)]]);
        let cds: Vec<_> =
            g.dependencies().iter().filter(|d| d.kind == DepKind::Concurrent).collect();
        assert_eq!(cds.len(), 1);
        assert_eq!((cds[0].dependent, cds[0].prerequisite), (0, 1));
        assert!(!g.order_is_legal(), "DU before its invalidating SC is unsafe");
    }

    #[test]
    fn irrelevant_sc_draws_no_cd() {
        let g = graph_of(&[vec![du(0, 0)], vec![sc(1, 1, false)]]);
        assert!(g.dependencies().iter().all(|d| d.kind == DepKind::Semantic));
        assert!(g.order_is_legal());
    }

    #[test]
    fn two_relevant_scs_form_cycle() {
        // Paper Section 3.5: SC1 and SC2 both invalidate the view → mutual CD.
        let g = graph_of(&[vec![sc(0, 0, true)], vec![sc(1, 1, true)]]);
        let pairs: BTreeSet<(usize, usize)> = g
            .dependencies()
            .iter()
            .filter(|d| d.kind == DepKind::Concurrent)
            .map(|d| (d.dependent, d.prerequisite))
            .collect();
        assert!(pairs.contains(&(0, 1)) && pairs.contains(&(1, 0)));
    }

    #[test]
    fn figure4_scenario() {
        // DU1 (source 1), SC1 (source 0, relevant), SC2 (source 1, relevant).
        let g = graph_of(&[vec![du(0, 1)], vec![sc(1, 0, true)], vec![sc(2, 1, true)]]);
        // Semantic: node2 (SC2) depends on node0 (DU1) — same source chain.
        assert!(g.dependencies().contains(&Dependency {
            dependent: 2,
            prerequisite: 0,
            kind: DepKind::Semantic
        }));
        // Concurrent: everyone depends on SC1 and SC2.
        assert!(g.dependencies().contains(&Dependency {
            dependent: 0,
            prerequisite: 1,
            kind: DepKind::Concurrent
        }));
        assert!(g.dependencies().contains(&Dependency {
            dependent: 1,
            prerequisite: 2,
            kind: DepKind::Concurrent
        }));
        assert!(g.dependencies().contains(&Dependency {
            dependent: 2,
            prerequisite: 1,
            kind: DepKind::Concurrent
        }));
        assert!(!g.order_is_legal());
    }

    #[test]
    fn batch_nodes_act_as_unions() {
        // A batch containing an invalidating SC is a CD prerequisite; its
        // sources all participate in semantic chains.
        let g = graph_of(&[vec![du(0, 0)], vec![sc(1, 1, true), du(2, 0)]]);
        assert!(g.dependencies().contains(&Dependency {
            dependent: 0,
            prerequisite: 1,
            kind: DepKind::Concurrent
        }));
        assert!(g.dependencies().contains(&Dependency {
            dependent: 1,
            prerequisite: 0,
            kind: DepKind::Semantic
        }));
    }

    #[test]
    fn dot_export_shape() {
        let g = graph_of(&[vec![du(0, 0)], vec![sc(1, 0, true)]]);
        let dot = g.to_dot(|i| format!("u{i}"));
        assert!(dot.starts_with("digraph dependencies {"));
        assert!(dot.contains("n0 [label=\"u0\"]"));
        assert!(dot.contains("n0 -> n1"), "CD edge: DU depends on SC");
        assert!(dot.contains("n1 -> n0"), "SD edge: SC depends on DU");
        assert!(dot.contains("color=red") && dot.contains("color=blue"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn complexity_shape_edge_counts() {
        // 3 relevant SCs + 7 DUs on distinct sources: CD edges = m*(n-1).
        let mut nodes: Vec<Vec<M>> = Vec::new();
        for k in 0..7 {
            nodes.push(vec![du(k, k as u32 + 10)]);
        }
        for k in 0..3 {
            nodes.push(vec![sc(100 + k, k as u32 + 50, true)]);
        }
        let g = graph_of(&nodes);
        let cd = g.dependencies().iter().filter(|d| d.kind == DepKind::Concurrent).count();
        assert_eq!(cd, 3 * 9);
    }
}
