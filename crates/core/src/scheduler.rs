//! The Dyno scheduler loop (paper Figure 6) with pluggable detection
//! strategy (Section 4.1.3).

use dyno_obs::{field, Collector, Counter, Gauge, Level};

use crate::correct::{legal_schedule_observed, merge_all_schedule};
use crate::graph::DepGraph;
use crate::meta::UpdateMeta;
use crate::umq::Umq;

/// When unsafe-dependency detection runs (paper Section 4.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Pre-exec detection before every maintenance round (plus in-exec as a
    /// safety net): anticipates and avoids broken queries at the price of a
    /// detection pass whenever a new schema change has arrived.
    Pessimistic,
    /// In-exec detection only: maintenance is attempted optimistically; a
    /// broken query triggers correction after the fact (abort + redo).
    Optimistic,
}

impl Strategy {
    /// Lower-case name, used as a trace field.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Pessimistic => "pessimistic",
            Strategy::Optimistic => "optimistic",
        }
    }
}

/// How unsafe dependencies are corrected (paper Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CorrectionPolicy {
    /// Merge only dependency cycles, then topologically sort — the paper's
    /// proposal: updates are maintained at "the smallest possible
    /// granularity" and the view refreshes as often as possible.
    #[default]
    MergeCycles,
    /// Merge the whole queue into one batch whenever the order is illegal —
    /// the simplistic alternative the paper rejects; kept for ablation.
    MergeAll,
}

/// How a maintenance attempt for one queue entry ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainOutcome {
    /// The batch was maintained and committed to the view.
    Committed,
    /// A maintenance query failed against a source's changed schema
    /// (in-exec detection, paper Figure 7 `Query_Engine`). The work done so
    /// far for this entry is discarded (abort cost).
    BrokenQuery,
    /// Maintenance failed for a reason that is *not* a schema conflict (an
    /// internal invariant violation). The scheduler stops touching the queue
    /// and surfaces the failure to the caller.
    Failed,
    /// A source the entry needs is unavailable (crashed / retry budget
    /// exhausted). The entry stays at the head of the queue — parked, not
    /// aborted — and maintenance resumes once the source recovers.
    Parked,
}

/// The maintenance machinery Dyno drives: the composite of VM, VS, VA and
/// the query engine. Implementations must be able to process a batch of
/// updates atomically (singleton batches are ordinary single-update
/// maintenance; merged batches use the Section 5 algorithm).
pub trait Maintainer<P> {
    /// Attempts to maintain one queue entry.
    ///
    /// `rest` is the remainder of the queue (everything buffered but not yet
    /// processed, excluding `batch`): compensation-based view maintenance
    /// needs it to subtract the effect of concurrent, not-yet-maintained
    /// data updates from maintenance-query results (anomaly types 1–2).
    fn maintain(&mut self, batch: &[UpdateMeta<P>], rest: &[&[UpdateMeta<P>]]) -> MaintainOutcome;

    /// Recomputes whether each buffered schema change still invalidates the
    /// *current* (possibly just rewritten) view definition. Called before
    /// every graph build, because processing one schema change rewrites the
    /// view definition and may change which other changes are relevant.
    fn refresh_view_relevance(&mut self, queue: &mut Umq<P>);
}

/// Counters describing one run of the scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynoStats {
    /// Maintenance attempts that committed.
    pub committed: u64,
    /// Maintenance attempts aborted by a broken query.
    pub broken_queries: u64,
    /// Dependency-graph builds (detection passes).
    pub graph_builds: u64,
    /// Correction passes that actually changed the queue order.
    pub reorders: u64,
    /// Cycle merges performed (batches created).
    pub merges: u64,
    /// Head checks that skipped detection via the O(1) schema-change-flag
    /// fast path.
    pub fast_path_hits: u64,
    /// Maintenance attempts parked on an unavailable source.
    pub parked: u64,
}

/// What one [`Dyno::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The queue was empty.
    Idle,
    /// The head entry was maintained and removed.
    Committed,
    /// The head entry's maintenance hit a broken query; the queue has been
    /// corrected and the entry will be retried in a later step.
    Aborted,
    /// Maintenance reported an internal failure; the queue is untouched and
    /// the caller must inspect the maintainer's error state.
    Failed,
    /// The head entry needs a source that is currently down; it stays queued
    /// untouched and the caller should advance time before stepping again.
    Parked,
}

/// Registry handles the scheduler updates on its hot path. Bound once at
/// construction: incrementing is a `Cell` store, never a name lookup. On a
/// disabled collector the handles are detached cells — still just stores,
/// and invisible.
#[derive(Debug, Clone, Default)]
struct DynoMetrics {
    steps: Counter,
    committed: Counter,
    broken_queries: Counter,
    graph_builds: Counter,
    reorders: Counter,
    merges: Counter,
    fast_path_hits: Counter,
    parked: Counter,
    umq_depth: Gauge,
    umq_updates: Gauge,
}

impl DynoMetrics {
    fn bind(obs: &Collector) -> Self {
        DynoMetrics {
            steps: obs.counter("dyno.steps"),
            committed: obs.counter("dyno.committed"),
            broken_queries: obs.counter("dyno.broken_queries"),
            graph_builds: obs.counter("dyno.graph_builds"),
            reorders: obs.counter("dyno.reorders"),
            merges: obs.counter("dyno.merges"),
            fast_path_hits: obs.counter("dyno.fast_path_hits"),
            parked: obs.counter("dyno.parked"),
            umq_depth: obs.gauge("umq.depth"),
            umq_updates: obs.gauge("umq.updates"),
        }
    }
}

/// The Dyno dynamic scheduler: integrates detection (pre-exec and/or
/// in-exec) and static correction into the maintenance loop of paper
/// Figure 6.
#[derive(Debug, Clone)]
pub struct Dyno {
    strategy: Strategy,
    policy: CorrectionPolicy,
    stats: DynoStats,
    /// Raised by an abort so the next step corrects even if no new schema
    /// change arrived meanwhile.
    force_correction: bool,
    obs: Collector,
    metrics: DynoMetrics,
}

impl Dyno {
    /// Creates a scheduler with the given detection strategy and the
    /// cycle-merge correction policy.
    pub fn new(strategy: Strategy) -> Self {
        Dyno {
            strategy,
            policy: CorrectionPolicy::default(),
            stats: DynoStats::default(),
            force_correction: false,
            obs: Collector::disabled(),
            metrics: DynoMetrics::default(),
        }
    }

    /// Overrides the correction policy (ablation).
    pub fn with_policy(mut self, policy: CorrectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Changes the correction policy in place, preserving accumulated stats
    /// and the bound collector (unlike rebuilding via [`Dyno::new`] +
    /// [`Dyno::with_policy`], which would silently reset both).
    pub fn set_policy(&mut self, policy: CorrectionPolicy) {
        self.policy = policy;
    }

    /// Attaches an observability collector; scheduler phases become spans
    /// and the `dyno.*` / `umq.*` metrics go live.
    pub fn with_obs(mut self, obs: Collector) -> Self {
        self.metrics = DynoMetrics::bind(&obs);
        self.obs = obs;
        self
    }

    /// The attached collector (disabled unless [`Dyno::with_obs`] was used).
    pub fn obs(&self) -> &Collector {
        &self.obs
    }

    /// The configured correction policy.
    pub fn policy(&self) -> CorrectionPolicy {
        self.policy
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Statistics so far.
    pub fn stats(&self) -> DynoStats {
        self.stats
    }

    /// Runs one iteration of the Figure 6 loop: (pessimistic only) detect and
    /// correct if a new schema change arrived; then maintain the head entry;
    /// on a broken query, correct and leave the entry queued for retry.
    pub fn step<P, M: Maintainer<P>>(
        &mut self,
        queue: &mut Umq<P>,
        maintainer: &mut M,
    ) -> StepOutcome {
        self.metrics.steps.inc();
        self.metrics.umq_depth.set(queue.len() as i64);
        if self.obs.is_enabled() {
            // update_count is O(queue); don't pay it when nobody is looking.
            self.metrics.umq_updates.set(queue.update_count() as i64);
        }
        let _step = self.obs.span(
            "dyno.step",
            &[field("strategy", self.strategy.name()), field("queue_depth", queue.len())],
        );
        let should_correct = match self.strategy {
            Strategy::Pessimistic => {
                let flagged = queue.take_schema_change_flag();
                if !flagged && !self.force_correction {
                    self.stats.fast_path_hits += 1;
                    self.metrics.fast_path_hits.inc();
                }
                flagged || self.force_correction
            }
            // Optimistic: never pre-exec; correct only after an abort.
            Strategy::Optimistic => {
                if self.force_correction {
                    // The abort-triggered correction consumes the flag too:
                    // the graph build sees every buffered update.
                    queue.take_schema_change_flag();
                }
                self.force_correction
            }
        };
        if should_correct {
            self.obs.event(
                Level::Info,
                "dyno.detect",
                &[field("trigger", if self.force_correction { "abort" } else { "flag" })],
            );
            self.correct(queue, maintainer);
            self.force_correction = false;
        }

        let nodes = queue.nodes();
        let Some((head, rest)) = nodes.split_first() else {
            return StepOutcome::Idle;
        };
        // Captured only when provenance is on: the `Parked` arm below needs
        // the head's causal ids after the queue borrow ends.
        let head_keys: Vec<u64> =
            if self.obs.lineage_on() { head.iter().map(|u| u.key.0).collect() } else { Vec::new() };
        let outcome = {
            let _maintain = self.obs.span("dyno.maintain", &[field("batch", head.len())]);
            maintainer.maintain(head, rest)
        };
        drop(nodes);
        match outcome {
            MaintainOutcome::Committed => {
                self.stats.committed += 1;
                self.metrics.committed.inc();
                queue.remove_head();
                self.metrics.umq_depth.set(queue.len() as i64);
                StepOutcome::Committed
            }
            MaintainOutcome::BrokenQuery => {
                self.stats.broken_queries += 1;
                self.metrics.broken_queries.inc();
                self.obs.event(Level::Warn, "dyno.broken_query", &[]);
                // In-exec detection fired: by Theorem 1 an unsafe dependency
                // exists; correct now (both strategies) and retry later.
                self.correct(queue, maintainer);
                queue.take_schema_change_flag();
                self.force_correction = false;
                StepOutcome::Aborted
            }
            MaintainOutcome::Failed => StepOutcome::Failed,
            MaintainOutcome::Parked => {
                self.stats.parked += 1;
                self.metrics.parked.inc();
                self.obs.event(Level::Warn, "dyno.parked", &[]);
                for &k in &head_keys {
                    self.obs.prov(k, dyno_obs::stage::PARK, &[]);
                }
                // No correction, no removal: the schedule is still legal; the
                // entry simply cannot run until its source comes back.
                StepOutcome::Parked
            }
        }
    }

    /// Builds the dependency graph over the queue and applies a legal
    /// schedule (Sections 4.1.1 and 4.2).
    fn correct<P, M: Maintainer<P>>(&mut self, queue: &mut Umq<P>, maintainer: &mut M) {
        let _span = self.obs.span("dyno.correct", &[field("nodes", queue.len())]);
        maintainer.refresh_view_relevance(queue);
        let graph = DepGraph::build_observed(&queue.nodes(), &self.obs);
        self.stats.graph_builds += 1;
        self.metrics.graph_builds.inc();
        let schedule = match self.policy {
            CorrectionPolicy::MergeCycles => legal_schedule_observed(&graph, &self.obs),
            CorrectionPolicy::MergeAll => merge_all_schedule(&graph),
        };
        if !schedule.is_identity() {
            self.stats.reorders += 1;
            self.metrics.reorders.inc();
            let merged = schedule.merged_batches() as u64;
            self.stats.merges += merged;
            self.metrics.merges.add(merged);
            self.obs.event(
                Level::Info,
                "dyno.reordered",
                &[field("batches", schedule.batches.len()), field("merged_batches", merged)],
            );
            if self.obs.lineage_on() {
                let nodes = queue.nodes();
                let mut flat_pos = 0usize;
                for (pos, batch) in schedule.batches.iter().enumerate() {
                    let members: Vec<u64> =
                        batch.iter().flat_map(|&i| nodes[i].iter().map(|u| u.key.0)).collect();
                    if batch.len() > 1 {
                        // A cyclic-group merge: the batch record carries the
                        // member causal ids.
                        self.obs.prov_batch(
                            &members,
                            dyno_obs::stage::MERGE,
                            &[field("position", pos as u64)],
                        );
                    }
                    // Updates whose node moved were topologically reordered.
                    let moved = batch.iter().enumerate().any(|(off, &i)| i != flat_pos + off);
                    if moved {
                        for &m in &members {
                            self.obs.prov(m, dyno_obs::stage::REORDER, &[]);
                        }
                    }
                    flat_pos += batch.len();
                }
            }
            queue.apply_schedule(&schedule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{UpdateKind, UpdateMeta};

    /// A scripted maintainer: schema changes "break" any maintenance whose
    /// batch does not contain them while they wait in the queue — mimicking
    /// the broken-query anomaly without a relational layer.
    struct Scripted {
        /// Keys of schema changes that will break earlier-scheduled work.
        breaks_while_queued: Vec<u64>,
        maintained: Vec<Vec<u64>>,
    }

    impl Maintainer<()> for Scripted {
        fn maintain(
            &mut self,
            batch: &[UpdateMeta<()>],
            _rest: &[&[UpdateMeta<()>]],
        ) -> MaintainOutcome {
            let keys: Vec<u64> = batch.iter().map(|u| u.key.0).collect();
            // If a breaking SC exists that is not in this batch and has not
            // been maintained yet, the query breaks.
            let pending_break = self
                .breaks_while_queued
                .iter()
                .any(|k| !keys.contains(k) && !self.maintained.iter().flatten().any(|m| m == k));
            if pending_break {
                return MaintainOutcome::BrokenQuery;
            }
            self.maintained.push(keys);
            MaintainOutcome::Committed
        }

        fn refresh_view_relevance(&mut self, _queue: &mut Umq<()>) {}
    }

    fn du(key: u64, source: u32) -> UpdateMeta<()> {
        UpdateMeta::new(key, source, UpdateKind::Data, ())
    }

    fn sc(key: u64, source: u32) -> UpdateMeta<()> {
        UpdateMeta::new(key, source, UpdateKind::Schema { invalidates_view: true }, ())
    }

    #[test]
    fn pessimistic_avoids_broken_query() {
        // DU then SC on different sources: pre-exec correction runs the SC
        // first, so the DU never breaks.
        let mut q = Umq::new();
        q.enqueue(du(0, 0));
        q.enqueue(sc(1, 1));
        let mut m = Scripted { breaks_while_queued: vec![1], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Pessimistic);
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        assert_eq!(m.maintained, vec![vec![1], vec![0]]);
        assert_eq!(dyno.stats().broken_queries, 0);
        assert_eq!(dyno.stats().graph_builds, 1);
    }

    #[test]
    fn optimistic_endures_abort_then_recovers() {
        let mut q = Umq::new();
        q.enqueue(du(0, 0));
        q.enqueue(sc(1, 1));
        let mut m = Scripted { breaks_while_queued: vec![1], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Optimistic);
        let mut outcomes = Vec::new();
        while !q.is_empty() {
            outcomes.push(dyno.step(&mut q, &mut m));
        }
        assert_eq!(outcomes[0], StepOutcome::Aborted, "optimistic hits the broken query");
        assert_eq!(m.maintained, vec![vec![1], vec![0]]);
        assert_eq!(dyno.stats().broken_queries, 1);
    }

    #[test]
    fn du_only_fast_path_never_builds_graph() {
        let mut q = Umq::new();
        for k in 0..50 {
            q.enqueue(du(k, (k % 3) as u32));
        }
        let mut m = Scripted { breaks_while_queued: vec![], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Pessimistic);
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        assert_eq!(dyno.stats().graph_builds, 0, "O(1) flag check suffices for DUs");
        assert_eq!(dyno.stats().fast_path_hits, 50);
        assert_eq!(dyno.stats().committed, 50);
    }

    #[test]
    fn cycle_merges_into_one_batch() {
        // DU then SC on the same source: SD + CD cycle → merged batch.
        let mut q = Umq::new();
        q.enqueue(du(0, 0));
        q.enqueue(sc(1, 0));
        let mut m = Scripted { breaks_while_queued: vec![1], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Pessimistic);
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        assert_eq!(m.maintained, vec![vec![0, 1]], "cycle processed atomically");
        assert_eq!(dyno.stats().merges, 1);
    }

    #[test]
    fn merge_all_policy_batches_everything() {
        let mut q = Umq::new();
        q.enqueue(du(0, 0));
        q.enqueue(du(1, 1));
        q.enqueue(sc(2, 2));
        q.enqueue(du(3, 3));
        let mut m = Scripted { breaks_while_queued: vec![2], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Pessimistic).with_policy(CorrectionPolicy::MergeAll);
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        assert_eq!(m.maintained, vec![vec![0, 1, 2, 3]], "one atomic batch");
        assert_eq!(dyno.stats().committed, 1, "a single view refresh");
    }

    #[test]
    fn merge_all_policy_leaves_legal_queues_alone() {
        let mut q = Umq::new();
        q.enqueue(du(0, 0));
        q.enqueue(du(1, 1));
        let mut m = Scripted { breaks_while_queued: vec![], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Pessimistic).with_policy(CorrectionPolicy::MergeAll);
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        assert_eq!(m.maintained, vec![vec![0], vec![1]]);
    }

    #[test]
    fn observed_run_mirrors_stats_in_registry() {
        let obs = dyno_obs::Collector::wall().with_tracing(256);
        let mut q = Umq::new();
        q.enqueue(du(0, 0));
        q.enqueue(sc(1, 1));
        q.enqueue(du(2, 2));
        let mut m = Scripted { breaks_while_queued: vec![1], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Pessimistic).with_obs(obs.clone());
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        let reg = obs.registry();
        let stats = dyno.stats();
        assert_eq!(reg.counter_value("dyno.committed"), Some(stats.committed));
        assert_eq!(reg.counter_value("dyno.graph_builds"), Some(stats.graph_builds));
        assert_eq!(reg.counter_value("dyno.fast_path_hits"), Some(stats.fast_path_hits));
        assert_eq!(reg.counter_value("graph.builds"), Some(stats.graph_builds));
        assert_eq!(reg.gauge_value("umq.depth"), Some(0), "drained");
        // Phase spans made it into the trace.
        let names: Vec<&str> = obs.trace_records().iter().map(|r| r.name).collect();
        assert!(names.contains(&"dyno.step"));
        assert!(names.contains(&"dyno.correct"));
        assert!(names.contains(&"graph.build"));
        assert!(names.contains(&"dyno.maintain"));
    }

    #[test]
    fn disabled_collector_records_nothing() {
        // The default Dyno carries a disabled collector: stepping must leave
        // no trace records and no registry entries anywhere.
        let mut q = Umq::new();
        q.enqueue(du(0, 0));
        q.enqueue(sc(1, 1));
        let mut m = Scripted { breaks_while_queued: vec![], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Pessimistic);
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        assert!(!dyno.obs().is_enabled());
        assert!(dyno.obs().trace_records().is_empty());
        assert_eq!(dyno.obs().registry().counter_value("dyno.steps"), None);
        assert_eq!(dyno.stats().committed, 2, "scheduling itself is unaffected");
    }

    /// Parks the first `park_for` attempts, then delegates to [`Scripted`].
    struct Flaky {
        park_for: u32,
        inner: Scripted,
    }

    impl Maintainer<()> for Flaky {
        fn maintain(
            &mut self,
            batch: &[UpdateMeta<()>],
            rest: &[&[UpdateMeta<()>]],
        ) -> MaintainOutcome {
            if self.park_for > 0 {
                self.park_for -= 1;
                return MaintainOutcome::Parked;
            }
            self.inner.maintain(batch, rest)
        }

        fn refresh_view_relevance(&mut self, queue: &mut Umq<()>) {
            self.inner.refresh_view_relevance(queue);
        }
    }

    #[test]
    fn parked_head_stays_queued_and_resumes() {
        let mut q = Umq::new();
        q.enqueue(du(0, 0));
        q.enqueue(du(1, 1));
        let mut m = Flaky {
            park_for: 2,
            inner: Scripted { breaks_while_queued: vec![], maintained: vec![] },
        };
        let mut dyno = Dyno::new(Strategy::Pessimistic);
        assert_eq!(dyno.step(&mut q, &mut m), StepOutcome::Parked);
        assert_eq!(dyno.step(&mut q, &mut m), StepOutcome::Parked);
        assert_eq!(q.len(), 2, "parked entries are not consumed");
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        assert_eq!(m.inner.maintained, vec![vec![0], vec![1]], "order preserved across parks");
        assert_eq!(dyno.stats().parked, 2);
        assert_eq!(dyno.stats().broken_queries, 0, "a park is not an abort");
    }

    #[test]
    fn set_policy_preserves_stats_and_obs() {
        let obs = dyno_obs::Collector::wall();
        let mut q = Umq::new();
        q.enqueue(du(0, 0));
        let mut m = Scripted { breaks_while_queued: vec![], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Pessimistic).with_obs(obs.clone());
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        let before = dyno.stats();
        dyno.set_policy(CorrectionPolicy::MergeAll);
        assert_eq!(dyno.policy(), CorrectionPolicy::MergeAll);
        assert_eq!(dyno.stats(), before, "stats survive a policy change");
        assert!(dyno.obs().is_enabled(), "collector binding survives too");
        // The bound metric handles still feed the same registry.
        q.enqueue(du(1, 1));
        while !q.is_empty() {
            dyno.step(&mut q, &mut m);
        }
        assert_eq!(obs.registry().counter_value("dyno.committed"), Some(dyno.stats().committed));
    }

    #[test]
    fn idle_on_empty_queue() {
        let mut q: Umq<()> = Umq::new();
        let mut m = Scripted { breaks_while_queued: vec![], maintained: vec![] };
        let mut dyno = Dyno::new(Strategy::Pessimistic);
        assert_eq!(dyno.step(&mut q, &mut m), StepOutcome::Idle);
    }

    #[test]
    fn late_sc_breaks_then_corrected_once() {
        // SC arrives only after the DU's maintenance has begun — modeled by
        // enqueueing it before stepping but letting the scripted maintainer
        // break. Both strategies converge to the same final sequence.
        for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
            let mut q = Umq::new();
            q.enqueue(du(0, 0));
            let mut m = Scripted { breaks_while_queued: vec![5], maintained: vec![] };
            let mut dyno = Dyno::new(strategy);
            // First step: maintenance of DU breaks (the SC is committed at the
            // source but not yet in the UMQ — Theorem 1's in-exec case).
            assert_eq!(dyno.step(&mut q, &mut m), StepOutcome::Aborted);
            // Now the SC arrives.
            q.enqueue(sc(5, 1));
            while !q.is_empty() {
                dyno.step(&mut q, &mut m);
            }
            assert_eq!(m.maintained, vec![vec![5], vec![0]], "{strategy:?}");
        }
    }
}
