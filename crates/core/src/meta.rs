//! Model-independent description of source updates.
//!
//! The paper claims Dyno is "independent of any data model": the scheduler
//! never inspects tuples or DDL — it only needs to know, for each buffered
//! update, *which source committed it* and *whether it is a schema change
//! that invalidates the current view definition*. [`UpdateMeta`] captures
//! exactly that, carrying the model-specific payload opaquely.

use std::fmt;

/// Scheduler-local key for one update (the view layer uses the wrapper's
/// global update id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UpdateKey(pub u64);

impl fmt::Display for UpdateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Scheduler-local source identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceKey(pub u32);

impl fmt::Display for SourceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// What kind of maintenance an update requires (paper Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Data update: `M(DU) = r(VD) r(DS₁)…r(DSₙ) w(MV) c(MV)` — reads the
    /// view definition, never writes it.
    Data,
    /// Schema change: `M(SC) = r(VD) w(VD) r(DS₁)…r(DSₙ) w(MV) c(MV)` —
    /// rewrites the view definition.
    Schema {
        /// True iff the change touches metadata (relations/attributes) that
        /// the *current* view definition references, i.e. processing it will
        /// actually rewrite the view definition. Only such changes are drawn
        /// as concurrent-dependency prerequisites (Section 4.1.1).
        invalidates_view: bool,
    },
}

impl UpdateKind {
    /// True for any schema change.
    pub fn is_schema_change(self) -> bool {
        matches!(self, UpdateKind::Schema { .. })
    }

    /// True iff this update's maintenance writes the view definition in a
    /// way that invalidates concurrent readers.
    pub fn writes_view_definition(self) -> bool {
        matches!(self, UpdateKind::Schema { invalidates_view: true })
    }
}

/// One buffered update, as the scheduler sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateMeta<P> {
    /// Scheduler key (unique; monotone in global commit order).
    pub key: UpdateKey,
    /// Committing source.
    pub source: SourceKey,
    /// Maintenance kind.
    pub kind: UpdateKind,
    /// Opaque model-specific payload (e.g. the actual delta or DDL).
    pub payload: P,
}

impl<P> UpdateMeta<P> {
    /// Convenience constructor.
    pub fn new(key: u64, source: u32, kind: UpdateKind, payload: P) -> Self {
        UpdateMeta { key: UpdateKey(key), source: SourceKey(source), kind, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(!UpdateKind::Data.is_schema_change());
        assert!(!UpdateKind::Data.writes_view_definition());
        assert!(UpdateKind::Schema { invalidates_view: false }.is_schema_change());
        assert!(!UpdateKind::Schema { invalidates_view: false }.writes_view_definition());
        assert!(UpdateKind::Schema { invalidates_view: true }.writes_view_definition());
    }

    #[test]
    fn keys_order_by_commit() {
        assert!(UpdateKey(3) < UpdateKey(10));
    }
}
