//! Iterative Tarjan strongly-connected-components algorithm.
//!
//! Used to find dependency cycles (paper Section 3.5 "maintenance
//! deadlocks") before the merge-and-topologically-sort correction. The
//! implementation is iterative so pathological queues cannot overflow the
//! stack. Complexity O(n + e).

/// Computes strongly connected components of a directed graph given as
/// adjacency lists. Returns `assignment[v] = component index`, with
/// components numbered in **reverse topological order** of the condensation
/// (a Tarjan property: a component is finished only after everything it can
/// reach). Component count is also returned.
pub fn scc(adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = adj.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut assignment = vec![UNVISITED; n];
    let mut next_index = 0usize;
    let mut comp_count = 0usize;

    // Explicit DFS frames: (vertex, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if lowlink[v] == index[v] {
                    // v is a component root: pop the component.
                    loop {
                        let w = stack.pop().expect("component members on stack");
                        on_stack[w] = false;
                        assignment[w] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
    }
    (assignment, comp_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn components(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let (assign, count) = scc(adj);
        let mut out = vec![Vec::new(); count];
        for (v, &c) in assign.iter().enumerate() {
            out[c].push(v);
        }
        out
    }

    #[test]
    fn singletons_in_dag() {
        // 0 -> 1 -> 2
        let adj = vec![vec![1], vec![2], vec![]];
        let comps = components(&adj);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
        // Reverse topological: node 2 (sink) finishes first.
        let (assign, _) = scc(&adj);
        assert!(assign[2] < assign[1] && assign[1] < assign[0]);
    }

    #[test]
    fn two_cycle() {
        let adj = vec![vec![1], vec![0]];
        let comps = components(&adj);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 2);
    }

    #[test]
    fn figure5_like_mixed_graph() {
        // 0 <-> 1 form a cycle; 2 depends on that cycle; 3 isolated.
        let adj = vec![vec![1], vec![0], vec![0], vec![]];
        let (assign, count) = scc(&adj);
        assert_eq!(count, 3);
        assert_eq!(assign[0], assign[1]);
        assert_ne!(assign[2], assign[0]);
        // 2 depends on the cycle, so the cycle finishes first (smaller id).
        assert!(assign[0] < assign[2]);
    }

    #[test]
    fn self_loop_is_component() {
        let adj = vec![vec![0], vec![]];
        let (assign, count) = scc(&adj);
        assert_eq!(count, 2);
        assert_ne!(assign[0], assign[1]);
    }

    #[test]
    fn long_chain_no_stack_overflow() {
        // 100_000-node chain — would overflow a recursive implementation.
        let n = 100_000;
        let adj: Vec<Vec<usize>> =
            (0..n).map(|i| if i + 1 < n { vec![i + 1] } else { vec![] }).collect();
        let (_, count) = scc(&adj);
        assert_eq!(count, n);
    }

    #[test]
    fn big_cycle() {
        let n = 1000;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
        let (_, count) = scc(&adj);
        assert_eq!(count, 1);
    }

    #[test]
    fn empty_graph() {
        let (assign, count) = scc(&[]);
        assert!(assign.is_empty());
        assert_eq!(count, 0);
    }
}
