//! Causal clocks for replicated warehouses: a hybrid logical clock and a
//! fixed-width vector clock.
//!
//! The paper's CD/SD formalism orders maintenance *within* one warehouse;
//! peer replicas exchanging committed extent deltas need an ordering
//! *between* warehouses. Two clocks carry it:
//!
//! * [`Hlc`] — a hybrid logical clock packed into one `u64`
//!   (`physical_us << LOGICAL_BITS | logical`). HLC timestamps are totally
//!   ordered, monotone per replica, and stay close to physical time, which
//!   makes last-writer-wins both deterministic and explainable ("the later
//!   write won").
//! * [`VectorClock`] — one counter per replica. Comparing two vectors
//!   yields the [`CausalOrder`]: a delta whose vector dominates the
//!   receiver's register happened-after it (apply); a dominated delta is
//!   stale (supersede); incomparable vectors are **causally concurrent** —
//!   the cross-replica dependency class ([`crate::DepKind::Replica`]) that
//!   the HLC then resolves.
//!
//! Both clocks are plain data driven by an explicit `now_us` so replicated
//! runs under the simulator's virtual clock are bit-reproducible.

/// Bits reserved for the logical component of an [`Hlc`] timestamp.
pub const LOGICAL_BITS: u32 = 20;

const LOGICAL_MASK: u64 = (1 << LOGICAL_BITS) - 1;

/// A hybrid logical clock: monotone, totally ordered, physical-time-close.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hlc {
    last: u64,
}

impl Hlc {
    /// A clock that has never ticked.
    pub fn new() -> Self {
        Hlc::default()
    }

    /// The last timestamp issued or observed (0 before the first tick).
    pub fn last(&self) -> u64 {
        self.last
    }

    /// Restores a clock from a persisted timestamp.
    pub fn restore(last: u64) -> Self {
        Hlc { last }
    }

    /// Issues a timestamp for a local event at physical time `now_us`:
    /// `max(now << LOGICAL_BITS, last + 1)`, so timestamps are strictly
    /// monotone even when the physical clock stalls.
    pub fn tick(&mut self, now_us: u64) -> u64 {
        let physical = now_us << LOGICAL_BITS;
        self.last = physical.max(self.last + 1);
        self.last
    }

    /// Merges a remote timestamp into the clock (receive path): the clock
    /// advances past both the remote stamp and local physical time without
    /// issuing a new timestamp.
    pub fn observe(&mut self, remote: u64, now_us: u64) {
        let physical = now_us << LOGICAL_BITS;
        self.last = self.last.max(remote).max(physical);
    }

    /// Splits a packed timestamp into `(physical_us, logical)`.
    pub fn unpack(stamp: u64) -> (u64, u64) {
        (stamp >> LOGICAL_BITS, stamp & LOGICAL_MASK)
    }
}

/// How two vector clocks relate causally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalOrder {
    /// Component-wise identical.
    Equal,
    /// `self` happened strictly before `other` (other dominates).
    Before,
    /// `self` happened strictly after `other` (self dominates).
    After,
    /// Neither dominates: the events are causally concurrent.
    Concurrent,
}

/// A fixed-width vector clock: one counter per replica, width set at
/// construction (the replica-set size is static for a run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    counters: Vec<u64>,
}

impl VectorClock {
    /// The zero vector over `n` replicas.
    pub fn new(n: usize) -> Self {
        VectorClock { counters: vec![0; n] }
    }

    /// Restores a vector from persisted counters.
    pub fn restore(counters: Vec<u64>) -> Self {
        VectorClock { counters }
    }

    /// The raw counters.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Number of replicas the vector covers.
    pub fn width(&self) -> usize {
        self.counters.len()
    }

    /// Increments replica `i`'s component (a local event).
    pub fn bump(&mut self, i: usize) {
        self.counters[i] += 1;
    }

    /// Component-wise maximum (merging an observed remote vector).
    pub fn merge(&mut self, other: &[u64]) {
        if self.counters.len() < other.len() {
            self.counters.resize(other.len(), 0);
        }
        for (mine, theirs) in self.counters.iter_mut().zip(other) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Compares `self` against raw counters (zero-extended to equal width).
    pub fn compare(&self, other: &[u64]) -> CausalOrder {
        let width = self.counters.len().max(other.len());
        let mut less = false;
        let mut greater = false;
        for i in 0..width {
            let a = self.counters.get(i).copied().unwrap_or(0);
            let b = other.get(i).copied().unwrap_or(0);
            if a < b {
                less = true;
            } else if a > b {
                greater = true;
            }
        }
        match (less, greater) {
            (false, false) => CausalOrder::Equal,
            (true, false) => CausalOrder::Before,
            (false, true) => CausalOrder::After,
            (true, true) => CausalOrder::Concurrent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hlc_is_strictly_monotone() {
        let mut h = Hlc::new();
        let a = h.tick(100);
        let b = h.tick(100);
        let c = h.tick(50); // physical time went backwards
        assert!(a < b && b < c);
        assert_eq!(Hlc::unpack(a), (100, 0));
        assert_eq!(Hlc::unpack(b), (100, 1));
    }

    #[test]
    fn hlc_observe_advances_past_remote() {
        let mut h = Hlc::new();
        h.tick(10);
        let remote = 1_000u64 << LOGICAL_BITS;
        h.observe(remote, 10);
        assert!(h.tick(10) > remote, "next local stamp orders after the remote one");
    }

    #[test]
    fn vector_clock_orders() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        assert_eq!(a.compare(b.counters()), CausalOrder::Equal);
        a.bump(0);
        assert_eq!(a.compare(b.counters()), CausalOrder::After);
        assert_eq!(b.compare(a.counters()), CausalOrder::Before);
        b.bump(1);
        assert_eq!(a.compare(b.counters()), CausalOrder::Concurrent);
        a.merge(b.counters());
        assert_eq!(a.compare(b.counters()), CausalOrder::After);
        assert_eq!(a.counters(), &[1, 1, 0]);
    }

    #[test]
    fn compare_zero_extends_width() {
        let mut a = VectorClock::new(1);
        a.bump(0);
        assert_eq!(a.compare(&[1, 0, 0]), CausalOrder::Equal);
        assert_eq!(a.compare(&[0, 1]), CausalOrder::Concurrent);
    }

    #[test]
    fn roundtrip_restore() {
        let mut a = VectorClock::new(2);
        a.bump(1);
        let b = VectorClock::restore(a.counters().to_vec());
        assert_eq!(a, b);
        let mut h = Hlc::new();
        h.tick(7);
        assert_eq!(Hlc::restore(h.last()).last(), h.last());
    }
}
