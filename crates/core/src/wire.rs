//! Binary (de)serialization of scheduler metadata for the warehouse WAL.
//!
//! `UpdateMeta<P>` is generic over its payload, so the encoder takes a
//! payload closure — the view layer supplies `dyno_source::wire::enc_message`
//! when it persists its UMQ. Strategy and correction policy travel as one
//! tag byte each, so a recovered warehouse restarts with the scheduler
//! configuration it crashed with.

use crate::meta::{UpdateKind, UpdateMeta};
use crate::scheduler::{CorrectionPolicy, Strategy};
use dyno_durable::codec::{Dec, Enc, WireError};

/// Encode an [`UpdateKind`].
pub fn enc_kind(e: &mut Enc, k: UpdateKind) {
    match k {
        UpdateKind::Data => e.u8(0),
        UpdateKind::Schema { invalidates_view } => {
            e.u8(1);
            e.bool(invalidates_view);
        }
    }
}

/// Decode an [`UpdateKind`].
pub fn dec_kind(d: &mut Dec<'_>) -> Result<UpdateKind, WireError> {
    Ok(match d.u8()? {
        0 => UpdateKind::Data,
        1 => UpdateKind::Schema { invalidates_view: d.bool()? },
        t => return Err(WireError::Invalid(format!("update kind tag {t}"))),
    })
}

/// Encode an [`UpdateMeta`]; `payload` writes the model-specific part.
pub fn enc_meta<P>(e: &mut Enc, m: &UpdateMeta<P>, payload: impl FnOnce(&mut Enc, &P)) {
    e.u64(m.key.0);
    e.u32(m.source.0);
    enc_kind(e, m.kind);
    payload(e, &m.payload);
}

/// Decode an [`UpdateMeta`]; `payload` reads the model-specific part.
pub fn dec_meta<P>(
    d: &mut Dec<'_>,
    payload: impl FnOnce(&mut Dec<'_>) -> Result<P, WireError>,
) -> Result<UpdateMeta<P>, WireError> {
    let key = d.u64()?;
    let source = d.u32()?;
    let kind = dec_kind(d)?;
    Ok(UpdateMeta::new(key, source, kind, payload(d)?))
}

/// Encode a [`Strategy`].
pub fn enc_strategy(e: &mut Enc, s: Strategy) {
    e.u8(match s {
        Strategy::Pessimistic => 0,
        Strategy::Optimistic => 1,
    });
}

/// Decode a [`Strategy`].
pub fn dec_strategy(d: &mut Dec<'_>) -> Result<Strategy, WireError> {
    Ok(match d.u8()? {
        0 => Strategy::Pessimistic,
        1 => Strategy::Optimistic,
        t => return Err(WireError::Invalid(format!("strategy tag {t}"))),
    })
}

/// Encode a [`CorrectionPolicy`].
pub fn enc_policy(e: &mut Enc, p: CorrectionPolicy) {
    e.u8(match p {
        CorrectionPolicy::MergeCycles => 0,
        CorrectionPolicy::MergeAll => 1,
    });
}

/// Decode a [`CorrectionPolicy`].
pub fn dec_policy(d: &mut Dec<'_>) -> Result<CorrectionPolicy, WireError> {
    Ok(match d.u8()? {
        0 => CorrectionPolicy::MergeCycles,
        1 => CorrectionPolicy::MergeAll,
        t => return Err(WireError::Invalid(format!("correction policy tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips_with_opaque_payload() {
        let m = UpdateMeta::new(9, 2, UpdateKind::Schema { invalidates_view: true }, 77u64);
        let mut e = Enc::new();
        enc_meta(&mut e, &m, |e, p| e.u64(*p));
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(dec_meta(&mut d, |d| d.u64()).unwrap(), m);
        assert!(d.is_done());
    }

    #[test]
    fn scheduler_config_round_trips() {
        for s in [Strategy::Pessimistic, Strategy::Optimistic] {
            let mut e = Enc::new();
            enc_strategy(&mut e, s);
            let buf = e.finish();
            assert_eq!(dec_strategy(&mut Dec::new(&buf)).unwrap(), s);
        }
        for p in [CorrectionPolicy::MergeCycles, CorrectionPolicy::MergeAll] {
            let mut e = Enc::new();
            enc_policy(&mut e, p);
            let buf = e.finish();
            assert_eq!(dec_policy(&mut Dec::new(&buf)).unwrap(), p);
        }
    }

    #[test]
    fn unknown_tags_are_invalid() {
        for bytes in [[9u8], [9u8], [9u8]] {
            let mut d = Dec::new(&bytes);
            assert!(dec_kind(&mut d).is_err());
        }
        assert!(dec_strategy(&mut Dec::new(&[7])).is_err());
        assert!(dec_policy(&mut Dec::new(&[7])).is_err());
    }
}
