//! Dependency relationships between maintenance processes (paper Section 3).

use std::fmt;

/// The dependency classes: the paper's two intra-warehouse classes plus the
/// cross-replica class replicated warehouses add.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// Concurrent dependency (Definition 3): `M(X) cd← M(Y)` iff `M(X)`
    /// reads the view definition while `M(Y)` writes it. Every maintenance
    /// reads the view definition; a view-invalidating schema change's
    /// maintenance writes it — so every other update's maintenance is
    /// concurrent-dependent on it.
    Concurrent,
    /// Semantic dependency (Definition 4): `M(X) sd← M(Y)` iff `X` and `Y`
    /// were committed at the same source and `Y` committed first — the view
    /// must reflect that source's states in commit order.
    Semantic,
    /// Replica dependency: a committed extent delta from a peer warehouse
    /// whose vector clock is causally **concurrent** with the receiver's
    /// last write to the same key — neither happened-before the other, so
    /// applying either blindly loses the other. Detected by
    /// [`crate::VectorClock::compare`] and corrected deterministically
    /// (HLC last-writer-wins; the loser is superseded, never applied).
    Replica,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Concurrent => f.write_str("cd"),
            DepKind::Semantic => f.write_str("sd"),
            DepKind::Replica => f.write_str("rd"),
        }
    }
}

/// A directed dependency between two queue nodes: `M(dependent) ← M(prerequisite)`,
/// meaning the prerequisite's maintenance must be processed first
/// (Definition 5). Nodes are identified by their position in the queue
/// snapshot the graph was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dependency {
    /// The node whose maintenance depends on the other.
    pub dependent: usize,
    /// The node that must be maintained first.
    pub prerequisite: usize,
    /// Concurrent or semantic.
    pub kind: DepKind,
}

impl Dependency {
    /// Definition 6: with nodes stored in queue (processing) order, a
    /// dependency is **unsafe** iff the dependent is scheduled *before* its
    /// prerequisite.
    pub fn is_unsafe(&self) -> bool {
        self.dependent < self.prerequisite
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M(#{}) {}← M(#{})", self.dependent, self.kind, self.prerequisite)
    }
}

/// Definition 6 relationship between two queue positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRelationship {
    /// No dependency in either direction.
    Independent,
    /// Dependencies exist and all point from later to earlier positions.
    SafeDependent,
    /// At least one dependency points from an earlier to a later position.
    UnsafeDependent,
}

/// Classifies the relationship between two positions given all dependencies
/// among them.
pub fn classify_pair(deps: &[Dependency], a: usize, b: usize) -> PairRelationship {
    let (first, second) = if a < b { (a, b) } else { (b, a) };
    let mut any = false;
    let mut unsafe_found = false;
    for d in deps {
        let touches = (d.dependent == first && d.prerequisite == second)
            || (d.dependent == second && d.prerequisite == first);
        if touches {
            any = true;
            if d.is_unsafe() {
                unsafe_found = true;
            }
        }
    }
    if !any {
        PairRelationship::Independent
    } else if unsafe_found {
        PairRelationship::UnsafeDependent
    } else {
        PairRelationship::SafeDependent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_by_position() {
        // dependent after prerequisite: safe
        assert!(!Dependency { dependent: 3, prerequisite: 1, kind: DepKind::Semantic }.is_unsafe());
        // dependent before prerequisite: unsafe
        assert!(Dependency { dependent: 0, prerequisite: 2, kind: DepKind::Concurrent }.is_unsafe());
    }

    #[test]
    fn pair_classification() {
        let deps = vec![
            Dependency { dependent: 0, prerequisite: 1, kind: DepKind::Concurrent }, // unsafe
            Dependency { dependent: 2, prerequisite: 1, kind: DepKind::Semantic },   // safe
        ];
        assert_eq!(classify_pair(&deps, 0, 1), PairRelationship::UnsafeDependent);
        assert_eq!(classify_pair(&deps, 1, 2), PairRelationship::SafeDependent);
        assert_eq!(classify_pair(&deps, 0, 2), PairRelationship::Independent);
    }

    #[test]
    fn mutual_pair_is_unsafe() {
        // A cycle between two positions always contains an unsafe direction.
        let deps = vec![
            Dependency { dependent: 0, prerequisite: 1, kind: DepKind::Concurrent },
            Dependency { dependent: 1, prerequisite: 0, kind: DepKind::Concurrent },
        ];
        assert_eq!(classify_pair(&deps, 0, 1), PairRelationship::UnsafeDependent);
    }

    #[test]
    fn display_forms() {
        let d = Dependency { dependent: 0, prerequisite: 2, kind: DepKind::Concurrent };
        assert_eq!(d.to_string(), "M(#0) cd← M(#2)");
    }
}
