//! The Update Message Queue (UMQ) — the view manager's buffer of pending
//! source updates (paper Figures 3, 6, 7).

use std::collections::VecDeque;

use crate::correct::Schedule;
use crate::meta::UpdateMeta;

/// The UMQ: an ordered queue of entries, each a batch of one or more updates
/// (singletons until a correction pass merges a dependency cycle), plus the
/// `NewSchemaChangeFlag` that lets the pessimistic strategy skip detection in
/// data-update-only periods (the O(1) fast path of Section 4.1.1).
#[derive(Debug, Clone)]
pub struct Umq<P> {
    entries: VecDeque<Vec<UpdateMeta<P>>>,
    new_schema_change: bool,
    enqueued: u64,
}

impl<P> Default for Umq<P> {
    fn default() -> Self {
        Umq { entries: VecDeque::new(), new_schema_change: false, enqueued: 0 }
    }
}

impl<P> Umq<P> {
    /// An empty queue.
    pub fn new() -> Self {
        Umq::default()
    }

    /// Rebuilds a queue from recovered state: the batch structure (including
    /// merged SC batches) and the schema-change flag exactly as a WAL
    /// checkpoint captured them. `total_enqueued` restarts from the restored
    /// update count — statistics are not part of the durability contract.
    pub fn restore(batches: Vec<Vec<UpdateMeta<P>>>, new_schema_change: bool) -> Self {
        let enqueued = batches.iter().map(|b| b.len() as u64).sum();
        Umq {
            entries: batches.into_iter().filter(|b| !b.is_empty()).collect(),
            new_schema_change,
            enqueued,
        }
    }

    /// Removes every buffered update whose key is in `keys` (recovery uses
    /// this to drop updates a logged `Applied` record proves were committed).
    /// Entries left empty disappear. Returns how many updates were removed.
    pub fn remove_by_keys(&mut self, keys: &[crate::meta::UpdateKey]) -> usize {
        let mut removed = 0;
        for batch in &mut self.entries {
            let before = batch.len();
            batch.retain(|m| !keys.contains(&m.key));
            removed += before - batch.len();
        }
        self.entries.retain(|b| !b.is_empty());
        removed
    }

    /// Enqueues a newly arrived update (the `UMQ_Manager` process of paper
    /// Figure 7): appends it as a singleton entry and raises the
    /// schema-change flag if it is a schema change.
    pub fn enqueue(&mut self, meta: UpdateMeta<P>) {
        if meta.kind.is_schema_change() {
            self.new_schema_change = true;
        }
        self.enqueued += 1;
        self.entries.push_back(vec![meta]);
    }

    /// `Test_If_True_Set_False(NewSchemaChangeFlag)` from paper Figure 6:
    /// returns whether a schema change arrived since the last correction,
    /// atomically lowering the flag.
    pub fn take_schema_change_flag(&mut self) -> bool {
        std::mem::take(&mut self.new_schema_change)
    }

    /// Peeks at the flag without lowering it.
    pub fn schema_change_flag(&self) -> bool {
        self.new_schema_change
    }

    /// The head entry (the batch Dyno will maintain next).
    pub fn head(&self) -> Option<&[UpdateMeta<P>]> {
        self.entries.front().map(Vec::as_slice)
    }

    /// Removes the head entry after successful maintenance.
    pub fn remove_head(&mut self) -> Option<Vec<UpdateMeta<P>>> {
        self.entries.pop_front()
    }

    /// Number of entries (batches).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total updates across all entries.
    pub fn update_count(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// Updates ever enqueued (for statistics).
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Borrow the entries as node slices, the graph builder's input.
    pub fn nodes(&self) -> Vec<&[UpdateMeta<P>]> {
        self.entries.iter().map(Vec::as_slice).collect()
    }

    /// Mutable iteration over every buffered update, e.g. to recompute each
    /// schema change's view-relevance after the view definition is rewritten.
    pub fn metas_mut(&mut self) -> impl Iterator<Item = &mut UpdateMeta<P>> {
        self.entries.iter_mut().flat_map(|b| b.iter_mut())
    }

    /// Rebuilds the queue according to a correction schedule computed over
    /// the current entries. Panics if the schedule does not cover the exact
    /// set of current entries (schedules must be applied to the snapshot
    /// they were computed from; Dyno is single-threaded per the paper's
    /// maintenance loop).
    pub fn apply_schedule(&mut self, schedule: &Schedule) {
        assert_eq!(
            schedule.node_count(),
            self.entries.len(),
            "schedule must cover the queue snapshot it was computed from"
        );
        let mut old: Vec<Option<Vec<UpdateMeta<P>>>> = self.entries.drain(..).map(Some).collect();
        for batch in &schedule.batches {
            let mut merged: Vec<UpdateMeta<P>> = Vec::new();
            for &idx in batch {
                merged.extend(old[idx].take().expect("schedule references each node exactly once"));
            }
            self.entries.push_back(merged);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correct::Schedule;
    use crate::meta::{UpdateKind, UpdateMeta};

    fn du(key: u64) -> UpdateMeta<&'static str> {
        UpdateMeta::new(key, 0, UpdateKind::Data, "du")
    }

    fn sc(key: u64) -> UpdateMeta<&'static str> {
        UpdateMeta::new(key, 1, UpdateKind::Schema { invalidates_view: true }, "sc")
    }

    #[test]
    fn flag_raises_on_schema_change_only() {
        let mut q = Umq::new();
        q.enqueue(du(0));
        assert!(!q.schema_change_flag());
        q.enqueue(sc(1));
        assert!(q.schema_change_flag());
        assert!(q.take_schema_change_flag());
        assert!(!q.take_schema_change_flag(), "test-and-set lowers the flag");
    }

    #[test]
    fn fifo_until_reordered() {
        let mut q = Umq::new();
        q.enqueue(du(0));
        q.enqueue(sc(1));
        assert_eq!(q.head().unwrap()[0].key.0, 0);
        q.remove_head();
        assert_eq!(q.head().unwrap()[0].key.0, 1);
    }

    #[test]
    fn apply_schedule_reorders_and_merges() {
        let mut q = Umq::new();
        q.enqueue(du(0));
        q.enqueue(sc(1));
        q.enqueue(du(2));
        // Schedule: [1], then merged [0,2].
        q.apply_schedule(&Schedule { batches: vec![vec![1], vec![0, 2]] });
        assert_eq!(q.len(), 2);
        assert_eq!(q.head().unwrap()[0].key.0, 1);
        q.remove_head();
        let batch = q.head().unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!((batch[0].key.0, batch[1].key.0), (0, 2));
    }

    #[test]
    #[should_panic(expected = "schedule must cover")]
    fn stale_schedule_panics() {
        let mut q = Umq::new();
        q.enqueue(du(0));
        q.apply_schedule(&Schedule { batches: vec![vec![0], vec![1]] });
    }

    #[test]
    fn restore_rebuilds_batches_and_flag() {
        let q = Umq::restore(vec![vec![sc(1)], vec![du(0), du(2)], vec![]], true);
        assert_eq!(q.len(), 2, "empty batches are dropped");
        assert_eq!(q.update_count(), 3);
        assert_eq!(q.total_enqueued(), 3);
        assert!(q.schema_change_flag());
    }

    #[test]
    fn remove_by_keys_drops_committed_updates() {
        let mut q = Umq::new();
        q.enqueue(du(0));
        q.enqueue(sc(1));
        q.enqueue(du(2));
        q.apply_schedule(&Schedule { batches: vec![vec![1], vec![0, 2]] });
        use crate::meta::UpdateKey;
        assert_eq!(q.remove_by_keys(&[UpdateKey(1)]), 1);
        assert_eq!(q.len(), 1, "the emptied SC batch disappears");
        assert_eq!(q.remove_by_keys(&[UpdateKey(0), UpdateKey(2), UpdateKey(9)]), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn counts() {
        let mut q: Umq<&'static str> = Umq::new();
        assert!(q.is_empty());
        q.enqueue(du(0));
        q.enqueue(du(1));
        q.apply_schedule(&Schedule { batches: vec![vec![0, 1]] });
        assert_eq!(q.len(), 1);
        assert_eq!(q.update_count(), 2);
        assert_eq!(q.total_enqueued(), 2);
    }
}
