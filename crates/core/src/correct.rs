//! Static correction of unsafe dependencies (paper Section 4.2).
//!
//! Given the dependency graph over the queue's nodes:
//! 1. find cycles (Tarjan SCC) and **merge** each cycle into one atomic
//!    batch — aborting is impossible because the source updates are already
//!    committed, so cyclically-dependent updates must be maintained together
//!    by the batch view-adaptation algorithm (paper Section 5);
//! 2. **topologically sort** the resulting DAG so every dependency points
//!    from a later to an earlier position — a *legal order* (Definition 7,
//!    guaranteed to exist by Theorem 2).
//!
//! The sort is deterministic: among ready components it always picks the one
//! whose earliest member appeared first in the original queue, disturbing
//! the arrival order as little as possible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dyno_obs::{field, Collector, Level};

use crate::graph::DepGraph;
use crate::tarjan::scc;

/// A corrected processing schedule: batches of original node positions, in
/// the order they must be maintained. Singleton batches are ordinary
/// updates; larger batches are merged cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Batches of original node indices. Within a batch, indices are in
    /// original queue order (which preserves per-source commit order).
    pub batches: Vec<Vec<usize>>,
}

impl Schedule {
    /// Total number of original nodes scheduled.
    pub fn node_count(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// Number of merged (multi-node) batches.
    pub fn merged_batches(&self) -> usize {
        self.batches.iter().filter(|b| b.len() > 1).count()
    }

    /// True iff the schedule leaves every node in place as a singleton, in
    /// the original order (i.e. correction was a no-op).
    pub fn is_identity(&self) -> bool {
        self.batches.iter().enumerate().all(|(i, b)| b.len() == 1 && b[0] == i)
    }
}

/// Computes a legal schedule for the graph (merge cycles, then topological
/// sort). Complexity O(n + e) for SCC plus O(n log n + e) for the
/// deterministic sort.
///
/// ```
/// use dyno_core::{legal_schedule, DepGraph, UpdateKind, UpdateMeta};
///
/// // A DU and a schema change from the *same* source: the commit order
/// // (semantic) and the view-definition conflict (concurrent) pull in
/// // opposite directions — a cycle, which merges into one batch.
/// let du = vec![UpdateMeta::new(0, 7, UpdateKind::Data, ())];
/// let sc = vec![UpdateMeta::new(
///     1, 7, UpdateKind::Schema { invalidates_view: true }, (),
/// )];
/// let schedule = legal_schedule(&DepGraph::build(&[&du, &sc]));
/// assert_eq!(schedule.batches, vec![vec![0, 1]]);
/// ```
pub fn legal_schedule(graph: &DepGraph) -> Schedule {
    let adj = graph.prerequisite_adjacency();
    let (assign, comp_count) = scc(&adj);

    // Members of each component, in original-queue order (indices ascend).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
    for (v, &c) in assign.iter().enumerate() {
        members[c].push(v);
    }

    // Condensed graph in "prerequisite → dependent" direction, so a standard
    // Kahn sort emits prerequisites first.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
    let mut in_degree = vec![0usize; comp_count];
    for (v, prereqs) in adj.iter().enumerate() {
        for &p in prereqs {
            let (cv, cp) = (assign[v], assign[p]);
            if cv != cp {
                out_edges[cp].push(cv);
                in_degree[cv] += 1;
            }
        }
    }

    // Kahn's algorithm; ready components ordered by earliest original member.
    let earliest: Vec<usize> = members.iter().map(|m| m[0]).collect();
    let mut ready: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
    for c in 0..comp_count {
        if in_degree[c] == 0 {
            ready.push(Reverse((earliest[c], c)));
        }
    }
    let mut batches = Vec::with_capacity(comp_count);
    while let Some(Reverse((_, c))) = ready.pop() {
        batches.push(members[c].clone());
        for &d in &out_edges[c] {
            in_degree[d] -= 1;
            if in_degree[d] == 0 {
                ready.push(Reverse((earliest[d], d)));
            }
        }
    }
    debug_assert_eq!(
        batches.iter().map(Vec::len).sum::<usize>(),
        graph.node_count(),
        "condensation of a finite graph is acyclic, so Kahn emits every component",
    );
    Schedule { batches }
}

/// [`legal_schedule`] with its outcome reported to `obs`: counts the SCCs
/// found and emits one `correct.cycle_merged` event per multi-node cycle
/// (with the number of nodes merged into it).
pub fn legal_schedule_observed(graph: &DepGraph, obs: &Collector) -> Schedule {
    let schedule = legal_schedule(graph);
    obs.counter("correct.sccs").add(schedule.batches.len() as u64);
    for batch in &schedule.batches {
        if batch.len() > 1 {
            obs.counter("correct.merged_nodes").add(batch.len() as u64);
            obs.event(Level::Info, "correct.cycle_merged", &[field("nodes", batch.len())]);
        }
    }
    schedule
}

/// The "blind merge" alternative the paper argues against (Section 4.2):
/// whenever the current order is not legal, merge *every* queued node into
/// one atomic batch. Correct but coarse — more intermediate view states are
/// skipped, and the long-running batch is more exposed to new conflicts.
/// Kept as the ablation baseline for the cycle-merge strategy.
pub fn merge_all_schedule(graph: &DepGraph) -> Schedule {
    if graph.order_is_legal() {
        Schedule { batches: (0..graph.node_count()).map(|i| vec![i]).collect() }
    } else {
        Schedule { batches: vec![(0..graph.node_count()).collect()] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepGraph;
    use crate::meta::{UpdateKind, UpdateMeta};

    type M = UpdateMeta<()>;

    fn du(key: u64, source: u32) -> M {
        UpdateMeta::new(key, source, UpdateKind::Data, ())
    }

    fn sc(key: u64, source: u32) -> M {
        UpdateMeta::new(key, source, UpdateKind::Schema { invalidates_view: true }, ())
    }

    fn schedule_of(nodes: &[Vec<M>]) -> Schedule {
        let views: Vec<&[M]> = nodes.iter().map(|v| v.as_slice()).collect();
        legal_schedule(&DepGraph::build(&views))
    }

    #[test]
    fn independent_updates_keep_order() {
        let s = schedule_of(&[vec![du(0, 0)], vec![du(1, 1)], vec![du(2, 2)]]);
        assert!(s.is_identity());
    }

    #[test]
    fn du_before_sc_gets_reordered() {
        // DU (source 0) then invalidating SC (source 1): unsafe CD — SC first.
        let s = schedule_of(&[vec![du(0, 0)], vec![sc(1, 1)]]);
        assert_eq!(s.batches, vec![vec![1], vec![0]]);
    }

    #[test]
    fn du_and_sc_same_source_merge() {
        // DU then SC on the same source: CD wants SC first, SD wants DU
        // first — a 2-cycle that must merge.
        let s = schedule_of(&[vec![du(0, 0)], vec![sc(1, 0)]]);
        assert_eq!(s.batches, vec![vec![0, 1]]);
        assert_eq!(s.merged_batches(), 1);
    }

    #[test]
    fn figure4_merges_all_three() {
        // DU1 (library), SC1 (retailer, relevant), SC2 (library, relevant):
        // mutual CDs between SC1/SC2 plus SD DU1→SC2 and CD DU1←SC1/SC2
        // put all three in one cycle (paper Figure 4).
        let s = schedule_of(&[vec![du(0, 1)], vec![sc(1, 0)], vec![sc(2, 1)]]);
        assert_eq!(s.batches, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn schedule_is_legal_by_theorem2() {
        let nodes =
            vec![vec![du(0, 0)], vec![sc(1, 1)], vec![du(2, 0)], vec![du(3, 2)], vec![sc(4, 0)]];
        let s = schedule_of(&nodes);
        // Re-assemble the queue per the schedule and re-check legality.
        let reordered: Vec<Vec<M>> =
            s.batches.iter().map(|b| b.iter().flat_map(|&i| nodes[i].clone()).collect()).collect();
        let views: Vec<&[M]> = reordered.iter().map(|v| v.as_slice()).collect();
        let g2 = DepGraph::build(&views);
        assert!(g2.order_is_legal(), "Theorem 2: corrected schedule is legal");
    }

    #[test]
    fn batch_members_keep_original_order() {
        let s = schedule_of(&[vec![du(0, 1)], vec![sc(1, 0)], vec![sc(2, 1)]]);
        for b in &s.batches {
            let mut sorted = b.clone();
            sorted.sort_unstable();
            assert_eq!(*b, sorted);
        }
    }

    #[test]
    fn deterministic_tiebreak_prefers_arrival_order() {
        // Two independent chains; interleaving must follow original order.
        let s = schedule_of(&[vec![du(0, 0)], vec![du(1, 1)], vec![du(2, 0)], vec![du(3, 1)]]);
        assert!(s.is_identity());
    }

    #[test]
    fn merge_all_is_identity_when_legal() {
        let nodes = [vec![du(0, 0)], vec![du(1, 1)]];
        let views: Vec<&[M]> = nodes.iter().map(|v| v.as_slice()).collect();
        let s = merge_all_schedule(&DepGraph::build(&views));
        assert!(s.is_identity());
    }

    #[test]
    fn merge_all_collapses_on_conflict() {
        let nodes = [vec![du(0, 0)], vec![sc(1, 1)], vec![du(2, 2)]];
        let views: Vec<&[M]> = nodes.iter().map(|v| v.as_slice()).collect();
        let s = merge_all_schedule(&DepGraph::build(&views));
        assert_eq!(s.batches, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_queue() {
        let s = schedule_of(&[]);
        assert!(s.batches.is_empty());
        assert_eq!(s.node_count(), 0);
    }
}
