//! # dyno-core — the Dyno concurrency-control scheduler
//!
//! Reproduction of the primary contribution of *"Detection and Correction of
//! Conflicting Source Updates for View Maintenance"* (ICDE 2004): a
//! data-model-independent scheduler that makes materialized-view maintenance
//! correct under autonomous, concurrent source **data updates and schema
//! changes**.
//!
//! The pieces map to the paper as follows:
//! - [`meta`] — Definition 1's two maintenance shapes, abstracted to what the
//!   scheduler needs (who committed, does it rewrite the view definition).
//! - [`dependency`] — concurrent (Def. 3) and semantic (Def. 4) dependencies,
//!   safe/unsafe classification (Def. 6).
//! - [`graph`] — the O(m·n) + O(n) dependency-graph build (Section 4.1.1).
//! - [`tarjan`] + [`correct`] — cycle detection, cycle **merge**, and
//!   topological sort into a *legal order* (Section 4.2, Theorem 2).
//! - [`umq`] — the Update Message Queue with the `NewSchemaChangeFlag` O(1)
//!   fast path.
//! - [`scheduler`] — the Dyno loop (Figure 6) with pessimistic/optimistic
//!   detection strategies (Section 4.1.3).
//!
//! This crate deliberately has **no dependency on the relational layer**: the
//! paper argues Dyno "has the potential to be plugged into any view system",
//! and the [`scheduler::Maintainer`] trait is that plug.

#![warn(missing_docs)]

pub mod clock;
pub mod correct;
pub mod dag;
pub mod dependency;
pub mod graph;
pub mod meta;
pub mod scheduler;
pub mod tarjan;
pub mod umq;
pub mod wire;

pub use clock::{CausalOrder, Hlc, VectorClock};
pub use correct::{legal_schedule, merge_all_schedule, Schedule};
pub use dag::ViewDag;
pub use dependency::{classify_pair, DepKind, Dependency, PairRelationship};
pub use graph::DepGraph;
pub use meta::{SourceKey, UpdateKey, UpdateKind, UpdateMeta};
pub use scheduler::{
    CorrectionPolicy, Dyno, DynoStats, MaintainOutcome, Maintainer, StepOutcome, Strategy,
};
pub use umq::Umq;
