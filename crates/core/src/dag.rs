//! The source→view dependency DAG of a multi-view warehouse.
//!
//! A warehouse maintains N views over overlapping sources. Every admitted
//! update fans out of the single shared UMQ to the views that *depend* on
//! its source; everything else about maintenance (per-view safety verdicts,
//! per-view deferral, staleness lanes) is keyed by the view's index in this
//! DAG. The structure is deliberately simple — views depend only on base
//! sources, never on each other, so the "topological order" collapses to a
//! stable ordering by SLA tier — but it is the single place that answers
//! the two scheduling questions the warehouse asks on every batch:
//!
//! * **fan-out** — which views depend on the sources this batch touched
//!   ([`ViewDag::dependents_of`])?
//! * **refresh order** — in which order should dependent views be brought
//!   up to date ([`ViewDag::refresh_order`]): ascending SLA tier (tier 0 =
//!   tightest staleness SLO first), index order within a tier for
//!   determinism.
//!
//! The DAG is data-model independent (sources are opaque `u32` ids, views
//! are opaque indices), so it lives here in `dyno-core` beside the
//! dependency graph and the scheduler rather than in the relational layer.

use std::collections::BTreeMap;

/// One registered view: the sources it reads and its SLA tier.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ViewNode {
    /// Sorted, deduplicated source ids this view reads from.
    sources: Vec<u32>,
    /// SLA tier: lower = tighter staleness target = refreshed earlier.
    tier: u8,
}

/// Source→view dependency DAG with per-view SLA tiers.
///
/// Views are addressed by the caller's index (the warehouse slot index);
/// indices need not be dense — a removed view simply stops participating.
#[derive(Debug, Clone, Default)]
pub struct ViewDag {
    views: BTreeMap<usize, ViewNode>,
    /// source id → sorted view indices reading it (the fan-out edge list).
    dependents: BTreeMap<u32, Vec<usize>>,
}

impl ViewDag {
    /// An empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) view `idx` as reading `sources` at SLA
    /// tier `tier`. Re-registering replaces the previous edges.
    pub fn add_view(&mut self, idx: usize, sources: &[u32], tier: u8) {
        self.remove_view(idx);
        let mut srcs: Vec<u32> = sources.to_vec();
        srcs.sort_unstable();
        srcs.dedup();
        for &s in &srcs {
            let deps = self.dependents.entry(s).or_default();
            if let Err(pos) = deps.binary_search(&idx) {
                deps.insert(pos, idx);
            }
        }
        self.views.insert(idx, ViewNode { sources: srcs, tier });
    }

    /// Removes view `idx` and all its edges. Unknown indices are a no-op.
    pub fn remove_view(&mut self, idx: usize) {
        if self.views.remove(&idx).is_none() {
            return;
        }
        self.dependents.retain(|_, deps| {
            deps.retain(|&v| v != idx);
            !deps.is_empty()
        });
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// The sorted source ids view `idx` reads, if registered.
    pub fn sources_of(&self, idx: usize) -> Option<&[u32]> {
        self.views.get(&idx).map(|n| n.sources.as_slice())
    }

    /// The SLA tier of view `idx` (`None` if unregistered).
    pub fn tier_of(&self, idx: usize) -> Option<u8> {
        self.views.get(&idx).map(|n| n.tier)
    }

    /// View indices depending on source `source`, in refresh order
    /// (ascending tier, then index).
    pub fn dependents_of(&self, source: u32) -> Vec<usize> {
        let mut out: Vec<usize> = self.dependents.get(&source).cloned().unwrap_or_default();
        self.sort_refresh(&mut out);
        out
    }

    /// View indices depending on *any* of `sources`, deduplicated, in
    /// refresh order.
    pub fn dependents_of_any(&self, sources: &[u32]) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for &s in sources {
            if let Some(deps) = self.dependents.get(&s) {
                for &v in deps {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        self.sort_refresh(&mut out);
        out
    }

    /// All registered view indices in refresh order: ascending SLA tier
    /// (tier 0 first), ascending index within a tier. Views read only base
    /// sources — never other views — so this tier order *is* the
    /// topological refresh order of the maintenance DAG.
    pub fn refresh_order(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.views.keys().copied().collect();
        self.sort_refresh(&mut out);
        out
    }

    /// Views sharing at least one source with view `idx` (excluding
    /// itself) — the overlap set whose join subplans are candidates for
    /// shared computation.
    pub fn overlapping(&self, idx: usize) -> Vec<usize> {
        let Some(node) = self.views.get(&idx) else { return Vec::new() };
        let mut out: Vec<usize> = Vec::new();
        for &s in &node.sources {
            if let Some(deps) = self.dependents.get(&s) {
                for &v in deps {
                    if v != idx && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn sort_refresh(&self, order: &mut [usize]) {
        order.sort_by_key(|&v| (self.views.get(&v).map_or(u8::MAX, |n| n.tier), v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dag3() -> ViewDag {
        let mut dag = ViewDag::new();
        dag.add_view(0, &[0, 1], 1); // wide view, relaxed tier
        dag.add_view(1, &[0], 0); // hot view on source 0
        dag.add_view(2, &[1, 2], 2);
        dag
    }

    #[test]
    fn fan_out_follows_source_edges() {
        let dag = dag3();
        assert_eq!(dag.dependents_of(0), vec![1, 0]); // tier 0 before tier 1
        assert_eq!(dag.dependents_of(1), vec![0, 2]);
        assert_eq!(dag.dependents_of(2), vec![2]);
        assert_eq!(dag.dependents_of(9), Vec::<usize>::new());
    }

    #[test]
    fn dependents_of_any_dedupes_and_orders_by_tier() {
        let dag = dag3();
        assert_eq!(dag.dependents_of_any(&[0, 1, 2]), vec![1, 0, 2]);
        assert_eq!(dag.dependents_of_any(&[2]), vec![2]);
    }

    #[test]
    fn refresh_order_is_tier_then_index() {
        let dag = dag3();
        assert_eq!(dag.refresh_order(), vec![1, 0, 2]);
    }

    #[test]
    fn remove_view_drops_all_edges() {
        let mut dag = dag3();
        dag.remove_view(0);
        assert_eq!(dag.view_count(), 2);
        assert_eq!(dag.dependents_of(0), vec![1]);
        assert_eq!(dag.dependents_of(1), vec![2]);
        assert_eq!(dag.sources_of(0), None);
        // Removing twice is a no-op.
        dag.remove_view(0);
        assert_eq!(dag.view_count(), 2);
    }

    #[test]
    fn reregistering_replaces_edges() {
        let mut dag = dag3();
        dag.add_view(1, &[2, 2, 1], 3); // dup source collapses
        assert_eq!(dag.sources_of(1), Some(&[1, 2][..]));
        assert_eq!(dag.tier_of(1), Some(3));
        assert_eq!(dag.dependents_of(0), vec![0]);
        assert_eq!(dag.dependents_of(2), vec![2, 1]); // tier 2 before tier 3
    }

    #[test]
    fn overlapping_views_share_a_source() {
        let dag = dag3();
        assert_eq!(dag.overlapping(0), vec![1, 2]);
        assert_eq!(dag.overlapping(1), vec![0]);
        assert_eq!(dag.overlapping(2), vec![0]);
    }
}
