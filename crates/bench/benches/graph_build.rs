//! μ1: dependency-graph construction cost (paper Section 4.1.1).
//!
//! Verifies the claimed complexities empirically: O(m·n) with `m` schema
//! changes among `n` updates, collapsing to a trivial O(n) semantic pass
//! when `m = 0` — and O(1) for the schema-change-flag fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyno_core::{DepGraph, Umq, UpdateKind, UpdateMeta};

fn queue(n_du: usize, n_sc: usize) -> Vec<Vec<UpdateMeta<()>>> {
    let mut nodes = Vec::with_capacity(n_du + n_sc);
    for k in 0..n_du {
        nodes.push(vec![UpdateMeta::new(k as u64, (k % 6) as u32, UpdateKind::Data, ())]);
    }
    for k in 0..n_sc {
        nodes.push(vec![UpdateMeta::new(
            (n_du + k) as u64,
            (k % 6) as u32,
            UpdateKind::Schema { invalidates_view: true },
            (),
        )]);
    }
    nodes
}

fn bench_graph_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_build");
    g.sample_size(30);
    for (n_du, n_sc) in [(200, 0), (200, 5), (200, 20), (1000, 5), (1000, 20)] {
        let nodes = queue(n_du, n_sc);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_du}du_{n_sc}sc")),
            &nodes,
            |b, nodes| {
                b.iter(|| {
                    let views: Vec<&[UpdateMeta<()>]> =
                        nodes.iter().map(Vec::as_slice).collect();
                    DepGraph::build(&views)
                })
            },
        );
    }
    g.finish();
}

fn bench_flag_fast_path(c: &mut Criterion) {
    // The O(1) alternative to graph building in DU-only phases.
    let mut q: Umq<()> = Umq::new();
    for k in 0..1000 {
        q.enqueue(UpdateMeta::new(k, (k % 6) as u32, UpdateKind::Data, ()));
    }
    c.bench_function("schema_change_flag_check", |b| {
        b.iter(|| q.schema_change_flag())
    });
}

criterion_group!(benches, bench_graph_build, bench_flag_fast_path);
criterion_main!(benches);
