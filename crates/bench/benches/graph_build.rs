//! μ1: dependency-graph construction cost (paper Section 4.1.1).
//!
//! Verifies the claimed complexities empirically: O(m·n) with `m` schema
//! changes among `n` updates, collapsing to a trivial O(n) semantic pass
//! when `m = 0` — and O(1) for the schema-change-flag fast path.

use dyno_bench::harness::Harness;
use dyno_core::{DepGraph, Umq, UpdateKind, UpdateMeta};

fn queue(n_du: usize, n_sc: usize) -> Vec<Vec<UpdateMeta<()>>> {
    let mut nodes = Vec::with_capacity(n_du + n_sc);
    for k in 0..n_du {
        nodes.push(vec![UpdateMeta::new(k as u64, (k % 6) as u32, UpdateKind::Data, ())]);
    }
    for k in 0..n_sc {
        nodes.push(vec![UpdateMeta::new(
            (n_du + k) as u64,
            (k % 6) as u32,
            UpdateKind::Schema { invalidates_view: true },
            (),
        )]);
    }
    nodes
}

fn main() {
    let mut h = Harness::new("graph_build");
    for (n_du, n_sc) in [(200, 0), (200, 5), (200, 20), (1000, 5), (1000, 20)] {
        let nodes = queue(n_du, n_sc);
        h.bench(&format!("{n_du}du_{n_sc}sc"), || {
            let views: Vec<&[UpdateMeta<()>]> = nodes.iter().map(Vec::as_slice).collect();
            DepGraph::build(&views)
        });
    }

    // The O(1) alternative to graph building in DU-only phases.
    let mut q: Umq<()> = Umq::new();
    for k in 0..1000 {
        q.enqueue(UpdateMeta::new(k, (k % 6) as u32, UpdateKind::Data, ()));
    }
    h.bench("schema_change_flag_check", || q.schema_change_flag());
    h.finish();
}
