//! μ2: cycle detection, merge, and topological sort (paper Section 4.2,
//! Theorem 2) — O(n + e) on chains, DAGs and cyclic graphs.

use dyno_bench::harness::Harness;
use dyno_core::{legal_schedule, DepGraph, DepKind, Dependency};

fn chain(n: usize) -> DepGraph {
    let deps = (1..n)
        .map(|i| Dependency { dependent: i, prerequisite: i - 1, kind: DepKind::Semantic })
        .collect();
    DepGraph::from_edges(n, deps)
}

/// Alternating unsafe CDs and safe SDs with embedded 2-cycles every 10 nodes.
fn cyclic(n: usize) -> DepGraph {
    let mut deps = Vec::new();
    for i in 1..n {
        deps.push(Dependency { dependent: i, prerequisite: i - 1, kind: DepKind::Semantic });
        if i % 10 == 0 {
            deps.push(Dependency { dependent: i - 1, prerequisite: i, kind: DepKind::Concurrent });
        }
    }
    DepGraph::from_edges(n, deps)
}

fn main() {
    let mut h = Harness::new("legal_schedule");
    for n in [100usize, 1000, 10_000] {
        let ch = chain(n);
        h.bench(&format!("chain/{n}"), || legal_schedule(&ch));
        let cy = cyclic(n);
        h.bench(&format!("cyclic/{n}"), || legal_schedule(&cy));
    }
    h.finish();
}
