//! μ2: cycle detection, merge, and topological sort (paper Section 4.2,
//! Theorem 2) — O(n + e) on chains, DAGs and cyclic graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyno_core::{legal_schedule, DepGraph, DepKind, Dependency};

fn chain(n: usize) -> DepGraph {
    let deps = (1..n)
        .map(|i| Dependency { dependent: i, prerequisite: i - 1, kind: DepKind::Semantic })
        .collect();
    DepGraph::from_edges(n, deps)
}

/// Alternating unsafe CDs and safe SDs with embedded 2-cycles every 10 nodes.
fn cyclic(n: usize) -> DepGraph {
    let mut deps = Vec::new();
    for i in 1..n {
        deps.push(Dependency { dependent: i, prerequisite: i - 1, kind: DepKind::Semantic });
        if i % 10 == 0 {
            deps.push(Dependency {
                dependent: i - 1,
                prerequisite: i,
                kind: DepKind::Concurrent,
            });
        }
    }
    DepGraph::from_edges(n, deps)
}

fn bench_correction(c: &mut Criterion) {
    let mut g = c.benchmark_group("legal_schedule");
    g.sample_size(30);
    for n in [100usize, 1000, 10_000] {
        let ch = chain(n);
        g.bench_with_input(BenchmarkId::new("chain", n), &ch, |b, graph| {
            b.iter(|| legal_schedule(graph))
        });
        let cy = cyclic(n);
        g.bench_with_input(BenchmarkId::new("cyclic", n), &cy, |b, graph| {
            b.iter(|| legal_schedule(graph))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_correction);
criterion_main!(benches);
