//! μ3: view-maintenance machinery — SWEEP incremental maintenance of one
//! data update, Equation-6 incremental adaptation vs. full recompute, and
//! batch adaptation of a merged schema-change group.

use std::collections::HashMap;

use dyno_bench::harness::Harness;
use dyno_relational::{DataUpdate, Delta, SignedBag, SourceUpdate, Tuple, Value};
use dyno_sim::{build_testbed, TestbedConfig};
use dyno_source::{SourceId, UpdateId, UpdateMessage};
use dyno_view::{equation6_delta, sweep_maintain, InProcessPort, LocalProvider};

fn cfg(tuples: usize) -> TestbedConfig {
    TestbedConfig { tuples_per_relation: tuples, ..Default::default() }
}

fn one_insert(cfg: &TestbedConfig) -> DataUpdate {
    let schema = cfg.schema(0);
    let vals: Vec<Value> = (0..schema.arity()).map(|i| Value::from(i as i64)).collect();
    DataUpdate::new(Delta::inserts(schema, [Tuple::new(vals)]).expect("testbed schema"))
}

/// Relation sizes for the index sweep, from `DYNO_SWEEP_TUPLES` (default
/// the paper's 100 000 plus two doublings).
fn sweep_sizes() -> Vec<usize> {
    std::env::var("DYNO_SWEEP_TUPLES")
        .unwrap_or_else(|_| "100000,200000,400000".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// Per-DU maintenance time as relation size grows. With key indexes every
/// `__D ⋈ Ri` step is a constant-size probe, so the curve stays flat;
/// without them each step hash-builds over the whole relation, so the
/// per-DU cost grows linearly with the relation size.
fn bench_du_size_sweep(h: &mut Harness) {
    for indexed in [true, false] {
        for tuples in sweep_sizes() {
            let tb = TestbedConfig { indexes: indexed, ..cfg(tuples) };
            let (mut space, view) = build_testbed(&tb);
            let du = one_insert(&tb);
            let msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
            let mut port = InProcessPort::new(space);
            let mode = if indexed { "indexed" } else { "scan" };
            // `sweep_maintain` only reads through the port (its cost
            // charges are no-ops in-process), so one port serves every
            // sample without a per-call clone of the whole source space.
            h.bench(&format!("sweep_du_{mode}/{tuples}"), || {
                sweep_maintain(&view, &msg, &[], &mut port)
            });
        }
    }
}

fn bench_sweep(h: &mut Harness) {
    for tuples in [1_000usize, 5_000] {
        let cfg = cfg(tuples);
        let (mut space, view) = build_testbed(&cfg);
        let du = one_insert(&cfg);
        let msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
        let port = InProcessPort::new(space);
        h.bench_with_setup(
            &format!("sweep_one_du/{tuples}"),
            || port.clone(),
            |mut port| sweep_maintain(&view, &msg, &[], &mut port),
        );
    }
}

type States = HashMap<String, (dyno_relational::Schema, SignedBag)>;
type Deltas = HashMap<String, SignedBag>;

fn states_and_delta(tuples: usize) -> (dyno_view::ViewDefinition, States, Deltas) {
    let cfg = cfg(tuples);
    let (space, view) = build_testbed(&cfg);
    let mut old = HashMap::new();
    for t in &view.query.tables {
        let sid = space.locate(t).expect("testbed relation");
        let rel = space.server(sid).catalog().get(t).expect("testbed relation");
        old.insert(t.clone(), (rel.schema().clone(), rel.rows().clone()));
    }
    let du = one_insert(&cfg);
    let mut deltas = HashMap::new();
    deltas.insert("R0".to_string(), du.delta.rows().clone());
    (view, old, deltas)
}

fn bench_equation6_vs_recompute(h: &mut Harness) {
    for tuples in [1_000usize, 5_000] {
        let (view, old, deltas) = states_and_delta(tuples);
        h.bench(&format!("equation6/{tuples}"), || {
            equation6_delta(&view.query, &old, &deltas).expect("well-formed")
        });
        h.bench(&format!("recompute/{tuples}"), || {
            let mut provider = LocalProvider::new();
            for (schema, rows) in old.values() {
                let mut r = rows.clone();
                if let Some(d) = deltas.get(&schema.relation) {
                    r.merge(d);
                }
                provider.insert(schema.clone(), r);
            }
            dyno_relational::eval(&view.query, &provider).expect("well-formed")
        });
    }
}

fn bench_compensation(h: &mut Harness) {
    // SWEEP with a growing pending set: compensation is per-pending-update
    // local work.
    let cfg = cfg(1_000);
    let (mut space, view) = build_testbed(&cfg);
    let du = one_insert(&cfg);
    let msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
    for n_pending in [0usize, 10, 50] {
        let pending: Vec<UpdateMessage> = (0..n_pending)
            .map(|k| UpdateMessage {
                id: UpdateId(1000 + k as u64),
                source: SourceId(0),
                source_version: 2 + k as u64,
                update: SourceUpdate::Data(one_insert(&cfg)),
            })
            .collect();
        let port = InProcessPort::new(space.clone());
        h.bench_with_setup(
            &format!("sweep_compensation/{n_pending}"),
            || port.clone(),
            |mut port| sweep_maintain(&view, &msg, &pending, &mut port),
        );
    }
}

fn main() {
    let mut h = Harness::new("maintenance");
    bench_du_size_sweep(&mut h);
    bench_sweep(&mut h);
    bench_equation6_vs_recompute(&mut h);
    bench_compensation(&mut h);
    h.finish();
}
