//! μ3: view-maintenance machinery — SWEEP incremental maintenance of one
//! data update, Equation-6 incremental adaptation vs. full recompute, and
//! batch adaptation of a merged schema-change group.

use std::collections::HashMap;

use dyno_bench::harness::Harness;
use dyno_relational::{delta_join_probe, DataUpdate, Delta, SignedBag, SourceUpdate, Tuple, Value};
use dyno_sim::{build_testbed, TestbedConfig};
use dyno_source::{SourceId, UpdateId, UpdateMessage};
use dyno_view::{
    equation6_delta, eval_with_bound, sweep_maintain, BoundTable, InProcessPort, LocalProvider,
    MaintPlan,
};

fn cfg(tuples: usize) -> TestbedConfig {
    TestbedConfig { tuples_per_relation: tuples, ..Default::default() }
}

fn one_insert(cfg: &TestbedConfig) -> DataUpdate {
    let schema = cfg.schema(0);
    let vals: Vec<Value> = (0..schema.arity()).map(|i| Value::from(i as i64)).collect();
    DataUpdate::new(Delta::inserts(schema, [Tuple::new(vals)]).expect("testbed schema"))
}

/// Relation sizes for the index sweep, from `DYNO_SWEEP_TUPLES` (default
/// the paper's 100 000 plus two doublings).
fn sweep_sizes() -> Vec<usize> {
    std::env::var("DYNO_SWEEP_TUPLES")
        .unwrap_or_else(|_| "100000,200000,400000".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// Scan-mode testbeds above this size are skipped: the per-DU cost is
/// already demonstrably linear by 400 000 rows, and a multi-million-row
/// scan testbed spends minutes per maintenance call for no extra signal.
/// The indexed path runs at every requested size (the flat curve is the
/// claim under test up to 10 M rows).
const SCAN_SWEEP_CAP: usize = 400_000;

/// Per-DU maintenance and delta-join propagation as relation size grows,
/// on the indexed path. With key indexes every `__D ⋈ Ri` step is a
/// constant-size probe, so the sweep curve stays flat to 10 M rows.
///
/// One testbed per size serves both bench pairs: at 10 M rows the build
/// (~17 GB of BTreeMap rows plus hash indexes) dominates the whole bench
/// run, so it is paid exactly once — the read-only join benches run first,
/// then the testbed is consumed by the maintenance port.
///
/// `join_replay` vs `delta_join_probe` is the same logical step
/// `__D ⋈ R1` (one-row delta against the first join target) answered two
/// ways: the full executor round the per-step path used to pay per
/// compensation term (validation, planning, bound-table overlay, then the
/// indexed probe) against the Z-set operator probing the key index
/// directly. The gap is the per-step machinery cost the algebraic seed and
/// compensation paths no longer pay.
fn bench_indexed_sweep(h: &mut Harness) {
    for tuples in sweep_sizes() {
        let tb = cfg(tuples);
        let (mut space, view) = build_testbed(&tb);
        let plan = MaintPlan::build(&view, "R0").expect("testbed view plans");
        let step = &plan.steps[0];
        let du = one_insert(&tb);
        let schema = du.delta.schema();
        let proj: Vec<usize> =
            plan.local_proj.iter().map(|a| schema.require(a).expect("delta attr")).collect();
        let d_rows: SignedBag = du.delta.rows().project(&proj);
        {
            let bound = vec![BoundTable {
                name: "__D".to_string(),
                cols: step.d_cols_in.clone(),
                rows: d_rows.clone(),
            }];
            let provider = space.provider();
            h.bench(&format!("join_replay/{tuples}"), || {
                eval_with_bound(&provider, &step.query, &bound).expect("step query")
            });

            let sid = space.locate(&step.target).expect("testbed relation");
            let idx = space
                .server(sid)
                .catalog()
                .index_covering(&step.target, &["K"])
                .expect("testbed key index");
            let probe_cols: Vec<usize> = step.join_keys.iter().map(|&(i, _)| i).collect();
            h.bench(&format!("delta_join_probe/{tuples}"), || {
                delta_join_probe(&d_rows, &probe_cols, idx)
            });
        }
        let msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
        let mut port = InProcessPort::new(space);
        // `sweep_maintain` only reads through the port (its cost charges
        // are no-ops in-process), so one port serves every sample without
        // a per-call clone of the whole source space.
        h.bench(&format!("sweep_du_indexed/{tuples}"), || {
            sweep_maintain(&view, &msg, &[], &mut port)
        });
    }
}

/// The scan baseline for the per-DU sweep: without indexes each step
/// hash-builds over the whole relation, so the per-DU cost grows linearly
/// with relation size.
fn bench_scan_sweep(h: &mut Harness) {
    for tuples in sweep_sizes() {
        if tuples > SCAN_SWEEP_CAP {
            continue;
        }
        let tb = TestbedConfig { indexes: false, ..cfg(tuples) };
        let (mut space, view) = build_testbed(&tb);
        let du = one_insert(&tb);
        let msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
        let mut port = InProcessPort::new(space);
        h.bench(&format!("sweep_du_scan/{tuples}"), || sweep_maintain(&view, &msg, &[], &mut port));
    }
}

fn bench_sweep(h: &mut Harness) {
    for tuples in [1_000usize, 5_000] {
        let cfg = cfg(tuples);
        let (mut space, view) = build_testbed(&cfg);
        let du = one_insert(&cfg);
        let msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
        let port = InProcessPort::new(space);
        h.bench_with_setup(
            &format!("sweep_one_du/{tuples}"),
            || port.clone(),
            |mut port| sweep_maintain(&view, &msg, &[], &mut port),
        );
    }
}

type States = HashMap<String, (dyno_relational::Schema, SignedBag)>;
type Deltas = HashMap<String, SignedBag>;

fn states_and_delta(tuples: usize) -> (dyno_view::ViewDefinition, States, Deltas) {
    let cfg = cfg(tuples);
    let (space, view) = build_testbed(&cfg);
    let mut old = HashMap::new();
    for t in &view.query.tables {
        let sid = space.locate(t).expect("testbed relation");
        let rel = space.server(sid).catalog().get(t).expect("testbed relation");
        old.insert(t.clone(), (rel.schema().clone(), rel.rows().clone()));
    }
    let du = one_insert(&cfg);
    let mut deltas = HashMap::new();
    deltas.insert("R0".to_string(), du.delta.rows().clone());
    (view, old, deltas)
}

fn bench_equation6_vs_recompute(h: &mut Harness) {
    for tuples in [1_000usize, 5_000] {
        let (view, old, deltas) = states_and_delta(tuples);
        h.bench(&format!("equation6/{tuples}"), || {
            equation6_delta(&view.query, &old, &deltas).expect("well-formed")
        });
        h.bench(&format!("recompute/{tuples}"), || {
            let mut provider = LocalProvider::new();
            for (schema, rows) in old.values() {
                let mut r = rows.clone();
                if let Some(d) = deltas.get(&schema.relation) {
                    r.merge(d);
                }
                provider.insert(schema.clone(), r);
            }
            dyno_relational::eval(&view.query, &provider).expect("well-formed")
        });
    }
}

fn bench_compensation(h: &mut Harness) {
    // SWEEP with a growing pending set: compensation is per-pending-update
    // local work.
    let cfg = cfg(1_000);
    let (mut space, view) = build_testbed(&cfg);
    let du = one_insert(&cfg);
    let msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
    for n_pending in [0usize, 10, 50] {
        let pending: Vec<UpdateMessage> = (0..n_pending)
            .map(|k| UpdateMessage {
                id: UpdateId(1000 + k as u64),
                source: SourceId(0),
                source_version: 2 + k as u64,
                update: SourceUpdate::Data(one_insert(&cfg)),
            })
            .collect();
        let port = InProcessPort::new(space.clone());
        h.bench_with_setup(
            &format!("sweep_compensation/{n_pending}"),
            || port.clone(),
            |mut port| sweep_maintain(&view, &msg, &pending, &mut port),
        );
    }
}

fn main() {
    let mut h = Harness::new("maintenance");
    bench_indexed_sweep(&mut h);
    bench_scan_sweep(&mut h);
    // `DYNO_SWEEP_ONLY` lets a driver script run each sweep size in its
    // own process (heap state left behind by a smaller testbed skews the
    // next size's medians) without re-running the fixed-size groups and
    // duplicating their rows in the JSONL capture.
    if std::env::var_os("DYNO_SWEEP_ONLY").is_none() {
        bench_sweep(&mut h);
        bench_equation6_vs_recompute(&mut h);
        bench_compensation(&mut h);
    }
    h.finish();
}
