//! μ3: view-maintenance machinery — SWEEP incremental maintenance of one
//! data update, Equation-6 incremental adaptation vs. full recompute, and
//! batch adaptation of a merged schema-change group.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyno_relational::{DataUpdate, Delta, SignedBag, SourceUpdate, Tuple, Value};
use dyno_sim::{build_testbed, TestbedConfig};
use dyno_source::{SourceId, UpdateId, UpdateMessage};
use dyno_view::{equation6_delta, sweep_maintain, InProcessPort, LocalProvider};

fn cfg(tuples: usize) -> TestbedConfig {
    TestbedConfig { tuples_per_relation: tuples, ..Default::default() }
}

fn one_insert(cfg: &TestbedConfig) -> DataUpdate {
    let schema = cfg.schema(0);
    let vals: Vec<Value> = (0..schema.arity()).map(|i| Value::from(i as i64)).collect();
    DataUpdate::new(Delta::inserts(schema, [Tuple::new(vals)]).expect("testbed schema"))
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_one_du");
    g.sample_size(20);
    for tuples in [1_000usize, 5_000] {
        let cfg = cfg(tuples);
        let (mut space, view) = build_testbed(&cfg);
        let du = one_insert(&cfg);
        let msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
        let port = InProcessPort::new(space);
        g.bench_with_input(BenchmarkId::from_parameter(tuples), &tuples, |b, _| {
            b.iter_batched(
                || port.clone(),
                |mut port| sweep_maintain(&view, &msg, &[], &mut port),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

type States = HashMap<String, (dyno_relational::Schema, SignedBag)>;
type Deltas = HashMap<String, SignedBag>;

fn states_and_delta(tuples: usize) -> (dyno_view::ViewDefinition, States, Deltas) {
    let cfg = cfg(tuples);
    let (space, view) = build_testbed(&cfg);
    let mut old = HashMap::new();
    for t in &view.query.tables {
        let sid = space.locate(t).expect("testbed relation");
        let rel = space.server(sid).catalog().get(t).expect("testbed relation");
        old.insert(t.clone(), (rel.schema().clone(), rel.rows().clone()));
    }
    let du = one_insert(&cfg);
    let mut deltas = HashMap::new();
    deltas.insert("R0".to_string(), du.delta.rows().clone());
    (view, old, deltas)
}

fn bench_equation6_vs_recompute(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptation");
    g.sample_size(20);
    for tuples in [1_000usize, 5_000] {
        let (view, old, deltas) = states_and_delta(tuples);
        g.bench_with_input(BenchmarkId::new("equation6", tuples), &tuples, |b, _| {
            b.iter(|| equation6_delta(&view.query, &old, &deltas).expect("well-formed"))
        });
        g.bench_with_input(BenchmarkId::new("recompute", tuples), &tuples, |b, _| {
            b.iter(|| {
                let mut provider = LocalProvider::new();
                for (schema, rows) in old.values() {
                    let mut r = rows.clone();
                    if let Some(d) = deltas.get(&schema.relation) {
                        r.merge(d);
                    }
                    provider.insert(schema.clone(), r);
                }
                dyno_relational::eval(&view.query, &provider).expect("well-formed")
            })
        });
    }
    g.finish();
}

fn bench_compensation(c: &mut Criterion) {
    // SWEEP with a growing pending set: compensation is per-pending-update
    // local work.
    let mut g = c.benchmark_group("sweep_compensation");
    g.sample_size(20);
    let cfg = cfg(1_000);
    let (mut space, view) = build_testbed(&cfg);
    let du = one_insert(&cfg);
    let msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
    for n_pending in [0usize, 10, 50] {
        let pending: Vec<UpdateMessage> = (0..n_pending)
            .map(|k| UpdateMessage {
                id: UpdateId(1000 + k as u64),
                source: SourceId(0),
                source_version: 2 + k as u64,
                update: SourceUpdate::Data(one_insert(&cfg)),
            })
            .collect();
        let port = InProcessPort::new(space.clone());
        g.bench_with_input(BenchmarkId::from_parameter(n_pending), &pending, |b, pending| {
            b.iter_batched(
                || port.clone(),
                |mut port| sweep_maintain(&view, &msg, pending, &mut port),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep, bench_equation6_vs_recompute, bench_compensation);
criterion_main!(benches);
