//! μ4 / Figure 8's mechanism at micro scale: the per-step overhead of the
//! pessimistic strategy's detection in a DU-only stream is a single flag
//! check — compare scheduler throughput under both strategies with a no-op
//! maintainer.

use dyno_bench::harness::Harness;
use dyno_core::{Dyno, MaintainOutcome, Maintainer, Strategy, Umq, UpdateKind, UpdateMeta};

struct Noop;

impl Maintainer<()> for Noop {
    fn maintain(
        &mut self,
        _batch: &[UpdateMeta<()>],
        _rest: &[&[UpdateMeta<()>]],
    ) -> MaintainOutcome {
        MaintainOutcome::Committed
    }

    fn refresh_view_relevance(&mut self, _queue: &mut Umq<()>) {}
}

fn main() {
    let mut h = Harness::new("dyno_step_du_only");
    for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
        h.bench_with_setup(
            &format!("{strategy:?}"),
            || {
                let mut q: Umq<()> = Umq::new();
                for k in 0..1000u64 {
                    q.enqueue(UpdateMeta::new(k, (k % 6) as u32, UpdateKind::Data, ()));
                }
                (q, Dyno::new(strategy), Noop)
            },
            |(mut q, mut dyno, mut m)| {
                while !q.is_empty() {
                    dyno.step(&mut q, &mut m);
                }
                dyno.stats()
            },
        );
    }
    h.finish();
}
