//! Provenance overhead: the lineage layer must be free when it is off.
//!
//! Three levels are measured:
//!
//! * the raw `prov()` call — disabled collector, enabled-but-off, and on
//!   (the on path pays a clock read, a `Vec` copy of the fields, and a
//!   ring append);
//! * a full maintenance run (the SWEEP-heavy mixed workload of the chaos
//!   suite, fault-free) with lineage off vs. on;
//! * and, before any timing, a **hard assertion** that the off paths
//!   allocate nothing: a counting global allocator brackets 10 000 `prov`
//!   calls on a disabled and an enabled-but-off collector and demands a
//!   delta of zero.
//!
//! `DYNO_BENCH_JSON` appends results as JSON lines (see `BENCH_pr5.json`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use dyno_bench::harness::Harness;
use dyno_core::Strategy;
use dyno_obs::{field, stage, Collector, VirtualClock};
use dyno_sim::{build_testbed, run_scenario, Scenario, TestbedConfig, WorkloadGen};

/// Counts every heap allocation (alloc + realloc + alloc_zeroed).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// 10 000 `prov` calls against `obs` must not allocate.
fn assert_zero_alloc(label: &str, obs: &Collector) {
    let before = allocations();
    for i in 0..10_000u64 {
        obs.prov(black_box(i), stage::ADMIT, &[field("source", i % 6), field("version", i)]);
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "{label}: prov with lineage off must not allocate (saw {delta})");
    println!("zero-alloc check ({label}): 10000 prov calls, 0 allocations");
}

/// The chaos suite's mixed workload, fault-free: 12 DUs + 3 SCs over a
/// 200-tuple testbed — every SWEEP/merge/reorder instrumentation point runs.
fn sweep_scenario(lineage: bool) -> Scenario {
    let cfg = TestbedConfig { tuples_per_relation: 200, ..Default::default() };
    let (space, view) = build_testbed(&cfg);
    let mut gen = WorkloadGen::new(cfg, 42);
    let mut schedule = gen.du_flood(12);
    schedule.extend(gen.sc_train(3, 1_000_000, 20_000_000));
    let s = Scenario::new(space, view, schedule).with_strategy(Strategy::Pessimistic);
    if lineage {
        s.with_lineage()
    } else {
        s
    }
}

fn main() {
    assert_zero_alloc("disabled collector", &Collector::disabled());
    let enabled = Collector::with_virtual_clock(VirtualClock::new());
    assert_zero_alloc("enabled, lineage off", &enabled);
    println!();

    let mut h = Harness::new("provenance");

    // Raw call overhead at each gate level.
    let disabled = Collector::disabled();
    h.bench("prov/disabled", || {
        disabled.prov(black_box(7), stage::ADMIT, &[field("source", 1u64)]);
    });
    let off = Collector::with_virtual_clock(VirtualClock::new());
    h.bench("prov/enabled_off", || {
        off.prov(black_box(7), stage::ADMIT, &[field("source", 1u64)]);
    });
    let on = Collector::with_virtual_clock(VirtualClock::new()).with_lineage(64 * 1024);
    h.bench("prov/on", || {
        on.prov(black_box(7), stage::ADMIT, &[field("source", 1u64)]);
    });

    // Whole maintenance runs: the number the ISSUE cares about — what does
    // switching lineage on cost an entire sweep-heavy run.
    h.bench_with_setup(
        "sweep_run/lineage_off",
        || sweep_scenario(false),
        |s| {
            let r = run_scenario(s).expect("fault-free run");
            assert!(r.converged);
            r.steps
        },
    );
    h.bench_with_setup(
        "sweep_run/lineage_on",
        || sweep_scenario(true),
        |s| {
            let r = run_scenario(s).expect("fault-free run");
            assert!(r.converged);
            assert!(!r.obs.lineage_records().is_empty(), "lineage actually captured");
            r.steps
        },
    );

    h.finish();
}
