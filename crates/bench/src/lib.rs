//! Shared helpers for the experiment binaries (`fig04`, `fig05`,
//! `fig08`–`fig12`) that regenerate the paper's figures, and for the
//! in-repo micro-benchmarks ([`harness`]).

use dyno_sim::TestbedConfig;

pub mod harness;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--json <path>`: also write the figure's series as JSON.
    pub json: Option<String>,
    /// `--trace <path>`: run one representative scenario with structured
    /// tracing on, writing the JSONL trace to `<path>` and the metrics
    /// snapshot to `<path>.metrics.json` (binaries that support it).
    pub trace: Option<String>,
    /// `--chrome <path>`: run one representative scenario with tracing and
    /// lineage on, writing a Chrome `trace_event` JSON document to `<path>`
    /// — load it in Perfetto to see per-subsystem lanes and per-update flow
    /// arrows (binaries that support it).
    pub chrome: Option<String>,
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with a usage message on unknown
    /// flags.
    pub fn parse() -> BenchArgs {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        let bin = std::env::args().next().unwrap_or_else(|| "bench".into());
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => out.json = args.next().or_else(|| usage(&bin)),
                "--trace" => out.trace = args.next().or_else(|| usage(&bin)),
                "--chrome" => out.chrome = args.next().or_else(|| usage(&bin)),
                _ => {
                    usage(&bin);
                }
            }
        }
        out
    }
}

fn usage(bin: &str) -> Option<String> {
    eprintln!("usage: {bin} [--json <path>] [--trace <path>] [--chrome <path>]");
    std::process::exit(2);
}

/// Writes a figure's table as JSON: `{"figure": ..., "header": [...],
/// "rows": [[...], ...]}`, with all strings escaped by the obs JSON
/// writer. Cells are emitted as numbers when they parse as such, so the
/// series plot directly.
pub fn write_json_table(
    path: &str,
    figure: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    write_json_table_with_status(path, figure, header, rows, None)
}

/// Like [`write_json_table`], with a trailing `"last_error"` field: `null`
/// for a clean run, or the warehouse's sticky
/// [`dyno_view::Warehouse::last_error`] message — so scripts consuming a
/// figure can tell a truncated series from a complete one.
pub fn write_json_table_with_status(
    path: &str,
    figure: &str,
    header: &[&str],
    rows: &[Vec<String>],
    last_error: Option<&str>,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\"figure\":");
    dyno_obs::json::push_str(&mut out, figure);
    out.push_str(",\"header\":[");
    for (i, h) in header.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        dyno_obs::json::push_str(&mut out, h);
    }
    out.push_str("],\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            // A bare numeric cell (no %, units, or commas) stays a number.
            if cell.parse::<f64>().map(f64::is_finite).unwrap_or(false) {
                out.push_str(cell);
            } else {
                dyno_obs::json::push_str(&mut out, cell);
            }
        }
        out.push(']');
    }
    out.push(']');
    match last_error {
        Some(e) => {
            out.push_str(",\"last_error\":");
            dyno_obs::json::push_str(&mut out, e);
        }
        None => out.push_str(",\"last_error\":null"),
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Reads the testbed scale from `DYNO_TUPLES` (tuples per relation).
/// Defaults to 2 000 for reasonable wall-clock time on one core; pass
/// `DYNO_TUPLES=100000` for the paper's full size. The cost model is
/// re-calibrated per scale ([`dyno_sim::CostModel::calibrated`]), so the
/// simulated-second results keep the paper's magnitudes at any size.
pub fn testbed_config() -> TestbedConfig {
    let tuples = std::env::var("DYNO_TUPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(2_000);
    TestbedConfig { tuples_per_relation: tuples, ..Default::default() }
}

/// The cost model matched to [`testbed_config`]'s scale.
pub fn cost_model() -> dyno_sim::CostModel {
    dyno_sim::CostModel::calibrated(testbed_config().tuples_per_relation as u64)
}

/// Warns when running unoptimized (the experiment binaries are meant to run
/// with `--release`).
pub fn warn_if_debug() {
    #[cfg(debug_assertions)]
    eprintln!(
        "note: running a debug build; pass --release for sensible wall-clock time \
         (simulated results are identical)"
    );
}

/// Renders an aligned text table: header row plus data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let mut out = fmt_row(&header_cells);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats seconds with one decimal.
pub fn secs(us: u64) -> String {
    format!("{:.1}", us as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "20000000".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn secs_format() {
        assert_eq!(secs(1_500_000), "1.5");
        assert_eq!(secs(0), "0.0");
    }

    #[test]
    fn json_table_quotes_text_and_passes_numbers() {
        let dir = std::env::temp_dir().join("dyno_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        write_json_table(
            path.to_str().unwrap(),
            "fig-test",
            &["n", "cost (s)"],
            &[vec!["100".into(), "1.5".into()], vec!["200".into(), "+0.25%".into()]],
        )
        .unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            got,
            "{\"figure\":\"fig-test\",\"header\":[\"n\",\"cost (s)\"],\
             \"rows\":[[100,1.5],[200,\"+0.25%\"]],\"last_error\":null}\n"
        );
    }

    #[test]
    fn json_table_surfaces_last_error() {
        let dir = std::env::temp_dir().join("dyno_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("err.json");
        write_json_table_with_status(
            path.to_str().unwrap(),
            "chaos",
            &["seed", "converged"],
            &[vec!["1".into(), "false".into()]],
            Some("source \"2\" unavailable: retry budget exhausted"),
        )
        .unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            got,
            "{\"figure\":\"chaos\",\"header\":[\"seed\",\"converged\"],\
             \"rows\":[[1,\"false\"]],\
             \"last_error\":\"source \\\"2\\\" unavailable: retry budget exhausted\"}\n",
            "the error lands in a dedicated field, JSON-escaped"
        );
    }
}
