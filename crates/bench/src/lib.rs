//! Shared helpers for the experiment binaries (`fig04`, `fig05`,
//! `fig08`–`fig12`) that regenerate the paper's figures, and for the
//! Criterion micro-benchmarks.

use dyno_sim::TestbedConfig;

/// Reads the testbed scale from `DYNO_TUPLES` (tuples per relation).
/// Defaults to 2 000 for reasonable wall-clock time on one core; pass
/// `DYNO_TUPLES=100000` for the paper's full size. The cost model is
/// re-calibrated per scale ([`dyno_sim::CostModel::calibrated`]), so the
/// simulated-second results keep the paper's magnitudes at any size.
pub fn testbed_config() -> TestbedConfig {
    let tuples = std::env::var("DYNO_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    TestbedConfig { tuples_per_relation: tuples, ..Default::default() }
}

/// The cost model matched to [`testbed_config`]'s scale.
pub fn cost_model() -> dyno_sim::CostModel {
    dyno_sim::CostModel::calibrated(testbed_config().tuples_per_relation as u64)
}

/// Warns when running unoptimized (the experiment binaries are meant to run
/// with `--release`).
pub fn warn_if_debug() {
    #[cfg(debug_assertions)]
    eprintln!(
        "note: running a debug build; pass --release for sensible wall-clock time \
         (simulated results are identical)"
    );
}

/// Renders an aligned text table: header row plus data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let mut out = fmt_row(&header_cells);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats seconds with one decimal.
pub fn secs(us: u64) -> String {
    format!("{:.1}", us as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "20000000".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn secs_format() {
        assert_eq!(secs(1_500_000), "1.5");
        assert_eq!(secs(0), "0.0");
    }
}
