//! A small timing harness for the micro-benchmarks (`benches/*.rs`),
//! replacing the external criterion dependency so the workspace builds
//! offline.
//!
//! Methodology: warm up, estimate the per-call cost, then group calls into
//! blocks sized so each timed block is long enough for the OS clock to
//! resolve (~20 µs), and report per-call statistics over many blocks. The
//! per-bench time budget comes from `DYNO_BENCH_MS` (default 200 ms).

use std::hint::black_box;
use std::time::Instant;

use crate::render_table;

/// Per-call timing statistics for one benchmark, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Number of timed samples (blocks).
    pub samples: usize,
    /// Calls per timed block.
    pub block: u64,
    /// Fastest per-call time observed.
    pub min_ns: f64,
    /// Median per-call time (the headline number).
    pub median_ns: f64,
    /// Mean per-call time.
    pub mean_ns: f64,
    /// Slowest per-call time observed.
    pub max_ns: f64,
}

impl Stats {
    fn from_samples(mut per_call_ns: Vec<f64>, block: u64) -> Stats {
        per_call_ns.sort_by(|a, b| a.total_cmp(b));
        let n = per_call_ns.len();
        let median = if n % 2 == 1 {
            per_call_ns[n / 2]
        } else {
            (per_call_ns[n / 2 - 1] + per_call_ns[n / 2]) / 2.0
        };
        Stats {
            samples: n,
            block,
            min_ns: per_call_ns[0],
            median_ns: median,
            mean_ns: per_call_ns.iter().sum::<f64>() / n as f64,
            max_ns: per_call_ns[n - 1],
        }
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// One benchmark group: collects results and prints an aligned table.
#[derive(Debug)]
pub struct Harness {
    group: String,
    budget_ns: f64,
    rows: Vec<(String, Stats)>,
}

impl Harness {
    /// A harness for `group`, budgeted per bench by `DYNO_BENCH_MS`
    /// (default 200 ms).
    pub fn new(group: &str) -> Self {
        let ms: f64 =
            std::env::var("DYNO_BENCH_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(200.0);
        Harness { group: group.to_string(), budget_ns: ms * 1e6, rows: Vec::new() }
    }

    /// Benchmarks a routine callable back-to-back (no per-call setup).
    pub fn bench<R>(&mut self, id: &str, mut routine: impl FnMut() -> R) {
        self.progress_start(id);
        // Warm up and estimate cost: at least 3 calls or 10 ms.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_calls < 3 || warm_start.elapsed().as_millis() < 10 {
            black_box(routine());
            warm_calls += 1;
            if warm_calls >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_calls as f64).max(1.0);

        // Blocks long enough to time reliably; enough samples for the budget.
        let block = ((20_000.0 / est_ns).ceil() as u64).clamp(1, 1_000_000);
        let samples = ((self.budget_ns / (est_ns * block as f64)) as usize).clamp(10, 2_000);
        let mut per_call = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..block {
                black_box(routine());
            }
            per_call.push(t.elapsed().as_nanos() as f64 / block as f64);
        }
        let stats = Stats::from_samples(per_call, block);
        self.progress_end(id, &stats);
        self.rows.push((id.to_string(), stats));
    }

    /// Benchmarks a routine that consumes fresh state built by `setup`
    /// (setup time is excluded). For routines heavy enough that one call
    /// per timed block is fine — the criterion `iter_batched` replacement.
    pub fn bench_with_setup<S, R>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        self.progress_start(id);
        let warm_start = Instant::now();
        let mut est_ns = 0.0;
        for _ in 0..3 {
            let s = setup();
            let t = Instant::now();
            black_box(routine(s));
            est_ns += t.elapsed().as_nanos() as f64;
        }
        est_ns = (est_ns / 3.0).max(1.0);
        let _ = warm_start;

        let samples = ((self.budget_ns / est_ns) as usize).clamp(5, 500);
        let mut per_call = Vec::with_capacity(samples);
        for _ in 0..samples {
            let s = setup();
            let t = Instant::now();
            black_box(routine(s));
            per_call.push(t.elapsed().as_nanos() as f64);
        }
        let stats = Stats::from_samples(per_call, 1);
        self.progress_end(id, &stats);
        self.rows.push((id.to_string(), stats));
    }

    /// Live progress on stderr: benches can run for minutes on multi-million
    /// row testbeds, and the results table only prints at [`Harness::finish`],
    /// so without these lines a long run is indistinguishable from a hang.
    fn progress_start(&self, id: &str) {
        eprintln!("[{}] {id} ...", self.group);
    }

    fn progress_end(&self, id: &str, stats: &Stats) {
        eprintln!(
            "[{}] {id}: median {} ({} samples x {} calls)",
            self.group,
            fmt_ns(stats.median_ns),
            stats.samples,
            stats.block
        );
    }

    /// The collected results.
    pub fn results(&self) -> &[(String, Stats)] {
        &self.rows
    }

    /// Prints the group's results as an aligned table. When
    /// `DYNO_BENCH_JSON` names a file, each result is also appended to it
    /// as one JSON line (`{"group":...,"bench":...,"median_ns":...}`), so
    /// scripts can assemble machine-readable baselines across groups.
    pub fn finish(self) {
        if let Ok(path) = std::env::var("DYNO_BENCH_JSON") {
            if let Err(e) = self.append_json(&path) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
        println!("== bench group: {} ==", self.group);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(id, s)| {
                vec![
                    id.clone(),
                    s.samples.to_string(),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.median_ns),
                    fmt_ns(s.mean_ns),
                    fmt_ns(s.max_ns),
                ]
            })
            .collect();
        println!("{}", render_table(&["bench", "samples", "min", "median", "mean", "max"], &rows));
    }

    fn append_json(&self, path: &str) -> std::io::Result<()> {
        use std::io::Write;
        let mut out = String::new();
        for (id, s) in &self.rows {
            out.push_str("{\"group\":");
            dyno_obs::json::push_str(&mut out, &self.group);
            out.push_str(",\"bench\":");
            dyno_obs::json::push_str(&mut out, id);
            out.push_str(&format!(
                ",\"samples\":{},\"block\":{},\"min_ns\":{:.1},\"median_ns\":{:.1},\
                 \"mean_ns\":{:.1},\"max_ns\":{:.1}}}\n",
                s.samples, s.block, s.min_ns, s.median_ns, s.mean_ns, s.max_ns
            ));
        }
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(out.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_over_known_samples() {
        let s = Stats::from_samples(vec![10.0, 30.0, 20.0, 40.0], 1);
        assert_eq!(s.samples, 4);
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.max_ns, 40.0);
        assert_eq!(s.median_ns, 25.0);
        assert_eq!(s.mean_ns, 25.0);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }

    #[test]
    fn harness_records_a_result() {
        std::env::set_var("DYNO_BENCH_MS", "1");
        let mut h = Harness::new("t");
        h.bench("add", || std::hint::black_box(2u64) + 2);
        assert_eq!(h.results().len(), 1);
        assert!(h.results()[0].1.min_ns > 0.0);
    }
}
