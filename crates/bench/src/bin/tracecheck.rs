//! Validates a Chrome `trace_event` JSON document (as written by
//! `fig10 --chrome`, i.e. [`dyno_obs::export_chrome`]) without loading it
//! into a browser:
//!
//! * the document parses and has a `traceEvents` array;
//! * duration events balance — every `"B"` has a matching `"E"` with the
//!   same name on the same `(pid, tid)` lane, properly nested, none left
//!   open;
//! * flow arrows resolve — every `"t"`/`"f"` step is preceded (in document
//!   order) by the `"s"` that opened that flow id, and no flow is left
//!   without a finish.
//!
//! Exits 0 with a one-line summary on success, 1 with a diagnostic on the
//! first violation — `scripts/verify.sh` runs this as the trace-export
//! smoke test.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use dyno_obs::json::{parse, Value};

fn fail(msg: &str) -> ExitCode {
    eprintln!("tracecheck: FAIL: {msg}");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: tracecheck <trace.json>");
        return ExitCode::from(2);
    };
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let v = match parse(&doc) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
    };
    let Some(events) = v.get("traceEvents").and_then(Value::as_arr) else {
        return fail("no traceEvents array");
    };

    // Per-lane span stacks and flow bookkeeping, in document order (the
    // exporter emits capture order, which is timestamp order).
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut open_flows: BTreeSet<u64> = BTreeSet::new();
    let mut finished_flows: BTreeSet<u64> = BTreeSet::new();
    let (mut spans, mut flows, mut instants, mut slices) = (0u64, 0u64, 0u64, 0u64);

    for (i, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        let lane = (
            e.get("pid").and_then(Value::as_num).unwrap_or(0.0) as u64,
            e.get("tid").and_then(Value::as_num).unwrap_or(0.0) as u64,
        );
        match ph {
            "B" => {
                stacks.entry(lane).or_default().push(name.to_string());
                spans += 1;
            }
            "E" => match stacks.entry(lane).or_default().pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return fail(&format!(
                        "event {i}: E \"{name}\" closes B \"{open}\" on lane {lane:?}"
                    ));
                }
                None => {
                    return fail(&format!("event {i}: E \"{name}\" with no open B on {lane:?}"));
                }
            },
            "s" | "t" | "f" => {
                let Some(id) = e.get("id").and_then(Value::as_num) else {
                    return fail(&format!("event {i}: flow \"{ph}\" without an id"));
                };
                let id = id as u64;
                match ph {
                    "s" => {
                        if !open_flows.insert(id) {
                            return fail(&format!("event {i}: flow {id} started twice"));
                        }
                        flows += 1;
                    }
                    _ => {
                        if !open_flows.contains(&id) {
                            return fail(&format!(
                                "event {i}: flow \"{ph}\" for {id} before its \"s\""
                            ));
                        }
                        if ph == "f" {
                            finished_flows.insert(id);
                        }
                    }
                }
            }
            "i" => instants += 1,
            "X" => slices += 1,
            "M" => {}
            other => return fail(&format!("event {i}: unknown phase \"{other}\"")),
        }
    }

    for (lane, stack) in &stacks {
        if let Some(open) = stack.last() {
            return fail(&format!("lane {lane:?}: B \"{open}\" never closed"));
        }
    }
    if let Some(id) = open_flows.difference(&finished_flows).next() {
        return fail(&format!("flow {id} never finished"));
    }

    println!(
        "tracecheck: OK: {} events ({spans} span pairs, {slices} prov slices, \
         {instants} instants, {flows} flows, all balanced and resolved)",
        events.len()
    );
    ExitCode::SUCCESS
}
