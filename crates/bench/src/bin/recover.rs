//! Recovery-time sweep: how long `ViewManager::recover` takes as a function
//! of WAL length × checkpoint interval.
//!
//! Each configuration drives a real manager through `n` insert/delete DU
//! pairs with a write-ahead log attached (every DU writes an Admitted, an
//! Intent, and an Applied record, plus periodic checkpoints). The pairs
//! cancel, so the extent — and with it the checkpoint snapshot — stays O(1)
//! while the log history grows with `n`. Cold recovery from the resulting
//! disk image is then timed. The expected shape: with checkpointing
//! enabled, recovery cost is bounded by the records written *since the last
//! snapshot* — independent of history length — while with checkpointing
//! disabled (`ckpt=off`) it replays all `6n` records and grows linearly
//! with `n`.
//!
//! `DYNO_BENCH_MS` budgets each cell; `DYNO_BENCH_JSON` appends the series
//! as JSON lines (the checked-in `BENCH_pr4.json` baseline).

use dyno_bench::harness::Harness;
use dyno_core::Strategy;
use dyno_durable::MemStorage;
use dyno_obs::Collector;
use dyno_relational::{
    AttrType, Catalog, DataUpdate, Delta, Schema, SchemaChange, SourceUpdate, Tuple, Value,
};
use dyno_source::{SourceId, SourceServer, SourceSpace};
use dyno_view::{DurableLog, InProcessPort, ViewDefinition, ViewManager};

/// Runs `n` maintained DUs with a WAL at the given checkpoint interval and
/// returns the disk image plus the final log size in bytes.
fn build_log(n: usize, checkpoint_every: u64) -> (MemStorage, u64) {
    let mut space = SourceSpace::new();
    let source = SourceId(0);
    space.add_server(SourceServer::new(source, "s0", Catalog::new()));
    let schema = Schema::of("T", &[("a", AttrType::Int), ("b", AttrType::Int)]);
    space
        .commit(
            source,
            SourceUpdate::Schema(SchemaChange::CreateRelation { schema: schema.clone() }),
        )
        .expect("create T");
    let info = space.info().clone();
    let mut port = InProcessPort::new(space);

    let view = ViewDefinition::parse("SELECT T.a, T.b FROM T", "V").expect("view parses");
    let disk = MemStorage::new();
    let log = DurableLog::create(Box::new(disk.clone()))
        .expect("MemStorage never fails")
        .with_checkpoint_every(checkpoint_every);
    let mut mgr =
        ViewManager::new(view, info, Strategy::Pessimistic).with_obs(Collector::disabled());
    mgr.initialize(&mut port).expect("initialize");
    let mut mgr = mgr.with_wal(log);

    for i in 0..n {
        let row = Tuple::of([Value::from(i as i64), Value::from(1i64)]);
        let ins = Delta::inserts(schema.clone(), [row.clone()]).expect("delta");
        port.commit(source, SourceUpdate::Data(DataUpdate::new(ins))).expect("commit");
        mgr.step(&mut port).expect("maintain");
        let del = Delta::deletes(schema.clone(), [row]).expect("delta");
        port.commit(source, SourceUpdate::Data(DataUpdate::new(del))).expect("commit");
        mgr.step(&mut port).expect("maintain");
    }
    let bytes = disk.snapshot().len() as u64;
    (disk, bytes)
}

fn main() {
    dyno_bench::warn_if_debug();
    println!("== recovery-time sweep (log length x checkpoint interval) ==\n");

    let mut h = Harness::new("recover");
    for &n in &[64usize, 256, 1024] {
        for &(label, every) in &[("16", 16u64), ("64", 64), ("off", u64::MAX)] {
            let (disk, bytes) = build_log(n, every);
            let info = {
                // Recovery only needs the info space for relevance wiring;
                // rebuild the same single-source layout.
                let mut space = SourceSpace::new();
                space.add_server(SourceServer::new(SourceId(0), "s0", Catalog::new()));
                let schema = Schema::of("T", &[("a", AttrType::Int), ("b", AttrType::Int)]);
                space
                    .commit(
                        SourceId(0),
                        SourceUpdate::Schema(SchemaChange::CreateRelation { schema }),
                    )
                    .expect("create T");
                space.info().clone()
            };
            // `recover` compacts the log it replays (it ends by writing a
            // fresh checkpoint), so every timed call gets its own disk
            // restored from the image; the restore is setup, not timed.
            let image = disk.snapshot();
            let id = format!("n={n}/ckpt={label} ({bytes} B)");
            h.bench_with_setup(
                &id,
                || {
                    let d = MemStorage::new();
                    d.set(image.clone());
                    d
                },
                |d| {
                    ViewManager::recover(Box::new(d), info.clone(), Collector::disabled())
                        .expect("recover")
                },
            );
        }
    }
    h.finish();
}
