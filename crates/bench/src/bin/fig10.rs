//! Paper Figure 10: effect of the time interval between schema changes.
//!
//! Workload: 200 data updates trickling through the run plus a train of ten
//! schema changes (one drop-attribute, then nine rename-relations, randomly
//! targeted over the six relations), with the inter-SC interval swept from
//! 0 s to 41 s. Expected shape (paper Section 6.4.1):
//! * interval 0 — all SCs flood in before maintenance starts; one
//!   correction fixes everything, no broken queries, lowest cost;
//! * interval ≈ one SC-maintenance time (≈ 25 simulated seconds here) —
//!   each SC lands near the end of the previous SC's maintenance, maximal
//!   abort cost;
//! * interval ≫ maintenance time — updates stop interfering, cost flattens
//!   to pure maintenance;
//! * pessimistic ≤ optimistic throughout.

use dyno_bench::{
    cost_model, render_table, secs, testbed_config, warn_if_debug, write_json_table, BenchArgs,
};
use dyno_core::Strategy;
use dyno_sim::{build_testbed, run_scenario, Scenario, WorkloadGen};

const SEEDS: u64 = 3;

fn main() {
    warn_if_debug();
    let args = BenchArgs::parse();
    let cfg = testbed_config();
    println!("== Figure 10: time interval of schema changes ==");
    println!("200 DUs + 10 SCs (1 drop-attr + 9 renames); simulated seconds, mean of 3 seeds\n");

    let mut rows = Vec::new();
    for interval_s in [0u64, 3, 9, 17, 23, 29, 41] {
        let mut cells = vec![interval_s.to_string()];
        for strategy in [Strategy::Optimistic, Strategy::Pessimistic] {
            let (mut total, mut abort) = (0u64, 0u64);
            for seed in 0..SEEDS {
                let (space, view) = build_testbed(&cfg);
                let mut gen = WorkloadGen::new(cfg, 0xF10 + interval_s + 1000 * seed);
                // DUs trickle every 0.5 s across the run; 10 SCs at the interval.
                let schedule = gen.mixed(200, 500_000, 10, 0, interval_s * 1_000_000);
                let report = run_scenario(
                    Scenario::new(space, view, schedule)
                        .with_strategy(strategy)
                        .with_cost(cost_model()),
                )
                .unwrap_or_else(|e| panic!("interval {interval_s}s/{strategy:?}: {e}"));
                assert!(report.converged, "interval {interval_s}s/{strategy:?} must converge");
                total += report.metrics.total_cost_us();
                abort += report.metrics.abort_us;
            }
            cells.push(secs(total / SEEDS));
            cells.push(secs(abort / SEEDS));
        }
        rows.push(cells);
    }
    let header = [
        "interval (s)",
        "optimistic (s)",
        "abort of opt (s)",
        "pessimistic (s)",
        "abort of pess (s)",
    ];
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: cost lowest at interval 0 (everything corrected at once),\n\
         peaks when the interval matches one SC maintenance time (~25 s), then\n\
         flattens; pessimistic stays at or below optimistic."
    );
    if let Some(path) = &args.json {
        write_json_table(path, "fig10", &header, &rows).expect("write --json output");
        println!("\nseries written to {path}");
    }
    if let Some(path) = &args.trace {
        traced_run(path, &cfg);
    }
    if let Some(path) = &args.chrome {
        chrome_run(path, &cfg);
    }
}

/// One representative traced run (interval 17 s, optimistic — plenty of
/// aborts): JSONL trace to `path`, metrics snapshot to `path.metrics.json`.
fn traced_run(path: &str, cfg: &dyno_sim::TestbedConfig) {
    let (space, view) = build_testbed(cfg);
    let mut gen = WorkloadGen::new(*cfg, 0xF10 + 17);
    let schedule = gen.mixed(200, 500_000, 10, 0, 17_000_000);
    let report = run_scenario(
        Scenario::new(space, view, schedule)
            .with_strategy(Strategy::Optimistic)
            .with_cost(cost_model())
            .with_tracing(),
    )
    .expect("traced run");
    std::fs::write(path, report.obs.trace_jsonl()).expect("write trace");
    let metrics_path = format!("{path}.metrics.json");
    std::fs::write(&metrics_path, report.obs.metrics_json()).expect("write metrics snapshot");

    // The snapshot is a projection of the same registry the Metrics struct
    // reads, so these hold exactly.
    let reg = report.obs.registry();
    assert_eq!(reg.counter_value("sim.committed_us"), Some(report.metrics.committed_us));
    assert_eq!(reg.counter_value("sim.abort_us"), Some(report.metrics.abort_us));
    assert_eq!(reg.counter_value("sim.aborts"), Some(report.metrics.aborts));
    let spans = report
        .obs
        .trace_records()
        .iter()
        .filter(|r| r.kind == dyno_obs::RecordKind::SpanStart && r.name == "view.maintain")
        .count() as u64;
    assert_eq!(spans, report.metrics.attempts, "one span per maintenance attempt");
    println!(
        "\ntraced run (interval 17 s, optimistic): {} records ({} maintenance spans, \
         {} aborts) -> {path}\nmetrics snapshot (consistent with sim::Metrics) -> \
         {metrics_path}",
        report.obs.trace_records().len(),
        spans,
        report.metrics.aborts,
    );
}

/// One representative run with tracing *and* lineage, exported as a Chrome
/// `trace_event` document: per-subsystem lanes, 1 µs `prov.*` slices, and
/// flow arrows following each causal id from source commit to extent delta.
/// Load the file at <https://ui.perfetto.dev>.
fn chrome_run(path: &str, cfg: &dyno_sim::TestbedConfig) {
    let (space, view) = build_testbed(cfg);
    let mut gen = WorkloadGen::new(*cfg, 0xF10 + 17);
    let schedule = gen.mixed(200, 500_000, 10, 0, 17_000_000);
    let report = run_scenario(
        Scenario::new(space, view, schedule)
            .with_strategy(Strategy::Optimistic)
            .with_cost(cost_model())
            .with_tracing()
            .with_lineage(),
    )
    .expect("chrome-traced run");
    let records = report.obs.trace_records();
    let lineage = report.obs.lineage_records();
    let doc = dyno_obs::export_chrome(&records, &lineage);
    std::fs::write(path, &doc).expect("write chrome trace");
    println!(
        "\nchrome trace (interval 17 s, optimistic): {} trace records + {} lineage \
         records ({} dropped) -> {path}\nopen it at https://ui.perfetto.dev",
        records.len(),
        lineage.len(),
        report.obs.lineage_dropped(),
    );
}
