//! Multi-view sweep: one shared warehouse (cross-view subplan sharing)
//! versus N independent single-view warehouses over the same overlapping
//! views and the same DU stream.
//!
//! The views all join `R0 ⋈ R1` on `K` with per-view projections (widest
//! first, so every later view's first hop is covered by the first view's
//! cached hop). In the shared warehouse each DU batch is admitted once and
//! its `ΔR ⋈ target` first hop is computed once, then derived per view by
//! Z-set filtering/projection; the independent configuration repeats
//! admission and the hop N times. The sweep runs with indexes off — a hop
//! is then a full scan of the target, making the shared/unshared work gap
//! directly visible — plus one indexed reference row where the PR 2 key
//! index reduces each hop to a probe and sharing saves proportionally less.
//!
//! Every cell also cross-checks correctness: the shared warehouse's extents
//! must be bit-identical to the N independent warehouses', and the shared
//! run must actually register subplan cache hits.
//!
//! ```text
//! multiview [--views N] [--rows R] [--dus D] [--batch B] [--reps K]
//!           [--check-ratio F] [--json PATH]
//! ```
//!
//! `--check-ratio F` exits nonzero unless the scan-mode speedup at the
//! largest view count is at least `F` (the PR 8 acceptance gate, enforced
//! from `scripts/verify.sh` at 1.5x alongside a benchdiff comparison
//! against `BENCH_pr8.json`).

use std::io::Write as _;
use std::time::Instant;

use dyno_core::Strategy;
use dyno_relational::{DataUpdate, Delta, SourceUpdate, SpjQuery, Tuple, Value};
use dyno_sim::{build_space, Rng, TestbedConfig};
use dyno_source::{SourceId, SourceSpace};
use dyno_view::{InProcessPort, ViewDefinition, Warehouse};

struct Args {
    views: usize,
    rows: usize,
    dus: usize,
    batch: usize,
    reps: usize,
    check_ratio: Option<f64>,
    json: Option<String>,
}

fn usage(bin: &str) -> ! {
    eprintln!(
        "usage: {bin} [--views N] [--rows R] [--dus D] [--batch B] [--reps K] \
         [--check-ratio F] [--json PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let bin = std::env::args().next().unwrap_or_else(|| "multiview".into());
    let mut out =
        Args { views: 3, rows: 4_000, dus: 24, batch: 8, reps: 3, check_ratio: None, json: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |a: &mut dyn FnMut(&str)| match args.next() {
            Some(v) => a(&v),
            None => usage(&bin),
        };
        match arg.as_str() {
            "--views" => num(&mut |v| out.views = v.parse().unwrap_or_else(|_| usage(&bin))),
            "--rows" => num(&mut |v| out.rows = v.parse().unwrap_or_else(|_| usage(&bin))),
            "--dus" => num(&mut |v| out.dus = v.parse().unwrap_or_else(|_| usage(&bin))),
            "--batch" => num(&mut |v| out.batch = v.parse().unwrap_or_else(|_| usage(&bin))),
            "--reps" => num(&mut |v| out.reps = v.parse().unwrap_or_else(|_| usage(&bin))),
            "--check-ratio" => {
                num(&mut |v| out.check_ratio = Some(v.parse().unwrap_or_else(|_| usage(&bin))))
            }
            "--json" => num(&mut |v| out.json = Some(v.to_string())),
            _ => usage(&bin),
        }
    }
    if out.views < 2 {
        usage(&bin);
    }
    out
}

fn testbed(rows: usize, indexes: bool) -> TestbedConfig {
    TestbedConfig {
        sources: 1,
        relations_per_source: 2,
        tuples_per_relation: rows,
        indexes,
        ..Default::default()
    }
}

/// `n` overlapping views over `R0 ⋈ R1`, widest projection first: `V0`
/// projects every attribute of both relations; each later view drops one
/// more `R1` attribute, so its first hop is always covered by the hop `V0`
/// already cached (no per-batch coverage widening).
fn overlapping_views(cfg: &TestbedConfig, n: usize) -> Vec<ViewDefinition> {
    (0..n)
        .map(|i| {
            let mut b = SpjQuery::over(["R0", "R1"]);
            b = b.select_as("R0", "K", "K");
            for a in 1..=cfg.extra_attrs {
                b = b.select_as("R0", &format!("A{a}"), &format!("r0_A{a}"));
            }
            let keep = cfg.extra_attrs.saturating_sub(i.min(cfg.extra_attrs - 1));
            for a in 1..=keep {
                b = b.select_as("R1", &format!("A{a}"), &format!("r1_A{a}"));
            }
            b = b.join_eq(("R0", "K"), ("R1", "K"));
            ViewDefinition::new(format!("V{i}"), b.build())
        })
        .collect()
}

/// A deterministic DU stream alternating inserts into `R0` and `R1`,
/// `batch` rows per update, keys drawn from the populated key range so
/// every row joins.
fn du_stream(cfg: &TestbedConfig, dus: usize, batch: usize, seed: u64) -> Vec<SourceUpdate> {
    let mut rng = Rng::new(seed);
    (0..dus)
        .map(|d| {
            let rel = d % 2;
            let schema = cfg.schema(rel);
            let rows = (0..batch).map(|_| {
                let mut vals = vec![Value::from(rng.gen_range(0..cfg.tuples_per_relation as i64))];
                for _ in 0..cfg.extra_attrs {
                    vals.push(Value::from(rng.gen_range(0..1_000_000i64)));
                }
                Tuple::new(vals)
            });
            let delta = Delta::inserts(schema, rows).expect("generated tuples are well-typed");
            SourceUpdate::Data(DataUpdate::new(delta))
        })
        .collect()
}

struct Cell {
    shared_ns: u64,
    independent_ns: u64,
    subplan_hits: u64,
}

/// Times one configuration: the shared N-view warehouse and N independent
/// single-view warehouses over the same space and DU stream, verifying the
/// extents agree bit for bit.
fn run_cell(space: &SourceSpace, views: &[ViewDefinition], dus: &[SourceUpdate]) -> Cell {
    let info = space.info().clone();
    let src = SourceId(0);

    // Shared warehouse: one admission, one first hop per batch.
    let mut port = InProcessPort::new(space.clone());
    let mut wh = Warehouse::new(info.clone(), Strategy::Pessimistic);
    for v in views {
        wh.add_view(v.clone());
    }
    wh.initialize(&mut port).expect("initialize shared");
    let t0 = Instant::now();
    for du in dus {
        port.commit(src, du.clone()).expect("commit");
        wh.run_to_quiescence(&mut port, 1_000).expect("maintain shared");
    }
    let shared_ns = t0.elapsed().as_nanos() as u64;

    // Independent warehouses: admission and hop repeated per view.
    let mut indep: Vec<(Warehouse, InProcessPort)> = views
        .iter()
        .map(|v| {
            let mut port = InProcessPort::new(space.clone());
            let mut w = Warehouse::new(info.clone(), Strategy::Pessimistic);
            w.add_view(v.clone());
            w.initialize(&mut port).expect("initialize independent");
            (w, port)
        })
        .collect();
    let t1 = Instant::now();
    for du in dus {
        for (w, port) in &mut indep {
            port.commit(src, du.clone()).expect("commit");
            w.run_to_quiescence(port, 1_000).expect("maintain independent");
        }
    }
    let independent_ns = t1.elapsed().as_nanos() as u64;

    for (i, (w, _)) in indep.iter().enumerate() {
        assert_eq!(
            wh.mv(i).extent(),
            w.mv(0).extent(),
            "view {i}: shared execution must be bit-identical to unshared"
        );
    }
    assert!(wh.subplan_hits() > 0, "overlapping views must share first hops");
    Cell { shared_ns, independent_ns, subplan_hits: wh.subplan_hits() }
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let args = parse_args();
    if cfg!(debug_assertions) {
        eprintln!("warning: debug build; timings are not representative");
    }
    println!(
        "== multiview: shared warehouse vs {}x independent (rows={}, dus={}, batch={}) ==",
        args.views, args.rows, args.dus, args.batch
    );

    let mut json_lines: Vec<String> = Vec::new();
    let mut gate_ratio: Option<f64> = None;
    for (mode, indexed) in [("scan", false), ("indexed", true)] {
        let sweep: Vec<usize> = if indexed { vec![args.views] } else { (2..=args.views).collect() };
        for n in sweep {
            let cfg = testbed(args.rows, indexed);
            let space = build_space(&cfg);
            let views = overlapping_views(&cfg, n);
            let dus = du_stream(&cfg, args.dus, args.batch, 0x9e37 + n as u64);
            let (mut shared, mut independent, mut hits) = (Vec::new(), Vec::new(), 0);
            for _ in 0..args.reps {
                let cell = run_cell(&space, &views, &dus);
                shared.push(cell.shared_ns);
                independent.push(cell.independent_ns);
                hits = cell.subplan_hits;
            }
            let (s, i) = (median(shared), median(independent));
            let ratio = i as f64 / s.max(1) as f64;
            println!(
                "{mode:>7}/v{n}: shared {:>8.2} ms  independent {:>8.2} ms  speedup {ratio:.2}x  \
                 (subplan hits {hits})",
                s as f64 / 1e6,
                i as f64 / 1e6,
            );
            for (name, v) in [("shared", s), ("independent", i)] {
                json_lines.push(format!(
                    "{{\"group\":\"multiview\",\"bench\":\"{name}_{mode}/v{n}\",\
                     \"median_ns\":{v}}}"
                ));
            }
            json_lines.push(format!(
                "{{\"group\":\"multiview\",\"bench\":\"speedup_x1000_{mode}/v{n}\",\
                 \"median_ns\":{}}}",
                (ratio * 1000.0).round() as u64
            ));
            if mode == "scan" && n == args.views {
                gate_ratio = Some(ratio);
            }
        }
    }

    if let Some(path) = &args.json {
        let mut f = std::fs::File::create(path).expect("create --json output");
        for line in &json_lines {
            writeln!(f, "{line}").expect("write --json output");
        }
        println!("series written to {path}");
    }
    if let Some(min) = args.check_ratio {
        let got = gate_ratio.expect("sweep always runs the gated cell");
        if got < min {
            eprintln!(
                "multiview: FAIL shared-subplan speedup {got:.2}x < required {min:.2}x \
                 at {} views (scan mode)",
                args.views
            );
            std::process::exit(1);
        }
        println!(
            "multiview: shared-subplan speedup {got:.2}x >= {min:.2}x at {} views",
            args.views
        );
    }
}
