//! Paper Figure 4: unsafe dependency correction for view (1).
//!
//! Three updates on the BookInfo view — DU1 (a Catalog insert at the
//! Library source), SC1 (the Store/Item → StoreItems mapping re-tune at the
//! Retailer), SC2 (drop of `Catalog.Review`) — form a dependency cycle
//! (concurrent dependencies both ways between the schema changes, plus the
//! semantic dependency DU1 → SC2 on the Library source). The correction
//! merges all three into one atomic batch.

use dyno_bench::{write_json_table, BenchArgs};
use dyno_core::{legal_schedule, DepGraph, UpdateKind, UpdateMeta};

fn main() {
    let args = BenchArgs::parse();
    println!("== Figure 4: dependency correction for view (1) ==\n");
    // Node 0: DU1 at the Library source (source 1).
    // Node 1: SC1 at the Retailer source (source 0), view-relevant.
    // Node 2: SC2 at the Library source (source 1), view-relevant.
    let labels = ["DU1", "SC1", "SC2"];
    let nodes: Vec<Vec<UpdateMeta<&str>>> = vec![
        vec![UpdateMeta::new(0, 1, UpdateKind::Data, "DU1")],
        vec![UpdateMeta::new(1, 0, UpdateKind::Schema { invalidates_view: true }, "SC1")],
        vec![UpdateMeta::new(2, 1, UpdateKind::Schema { invalidates_view: true }, "SC2")],
    ];
    let views: Vec<&[UpdateMeta<&str>]> = nodes.iter().map(Vec::as_slice).collect();
    let graph = DepGraph::build(&views);

    println!("dependencies (M(dependent) <- M(prerequisite)):");
    for d in graph.dependencies() {
        let safety = if d.is_unsafe() { "UNSAFE" } else { "safe" };
        println!(
            "  M({}) <-{}- M({})   [{safety}]",
            labels[d.dependent], d.kind, labels[d.prerequisite]
        );
    }
    println!("\nlegal order after correction (cycle merge + topological sort):");
    let schedule = legal_schedule(&graph);
    for (i, batch) in schedule.batches.iter().enumerate() {
        let members: Vec<&str> = batch.iter().map(|&n| labels[n]).collect();
        if batch.len() == 1 {
            println!("  {}: {}", i + 1, members[0]);
        } else {
            println!("  {}: merged batch {{{}}}", i + 1, members.join(", "));
        }
    }
    assert_eq!(schedule.batches, vec![vec![0, 1, 2]], "paper: all three merge into one node");
    println!("\n(matches the paper: DU1, SC1, SC2 merge into one atomic batch)");
    if let Some(path) = &args.json {
        let rows: Vec<Vec<String>> = schedule
            .batches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let members: Vec<&str> = b.iter().map(|&n| labels[n]).collect();
                vec![(i + 1).to_string(), members.join(",")]
            })
            .collect();
        write_json_table(path, "fig04", &["batch", "members"], &rows).expect("write --json output");
        println!("series written to {path}");
    }
}
