//! Paper Figure 9: the cost of a broken query.
//!
//! Two workloads over the six-relation testbed:
//! * **One DU + one SC** — a data update followed by a conflicting
//!   drop-attribute schema change (anomaly type 3);
//! * **One SC + one SC** — a drop-attribute schema change followed by a
//!   conflicting rename-relation change (anomaly type 4).
//!
//! Three settings per workload: *no concurrency* (updates spaced so far
//! apart they never interact — the minimum cost), *pessimistic* (pre-exec
//! detection discovers the buffered conflict and reorders/merges before any
//! query is sent), and *optimistic* (maintenance dives in, suffers the
//! broken query, and pays the abort).

use dyno_bench::{
    cost_model, render_table, secs, testbed_config, warn_if_debug, write_json_table, BenchArgs,
};
use dyno_core::Strategy;
use dyno_relational::{DataUpdate, Delta, SchemaChange, SourceUpdate, Tuple, Value};
use dyno_sim::{build_testbed, run_scenario, Scenario, ScheduledCommit, TestbedConfig};
use dyno_source::SourceId;

fn du_on_r0(cfg: &TestbedConfig, at_us: u64) -> ScheduledCommit {
    let schema = cfg.schema(0);
    let vals: Vec<Value> = (0..schema.arity()).map(|i| Value::from((5 + i) as i64)).collect();
    ScheduledCommit {
        at_us,
        source: SourceId(0),
        update: SourceUpdate::Data(DataUpdate::new(
            Delta::inserts(schema, [Tuple::new(vals)]).expect("testbed schema"),
        )),
    }
}

fn drop_attr_r3(at_us: u64) -> ScheduledCommit {
    ScheduledCommit {
        at_us,
        source: SourceId(1),
        update: SourceUpdate::Schema(SchemaChange::DropAttribute {
            relation: "R3".into(),
            attr: "A1".into(),
        }),
    }
}

fn rename_r5(at_us: u64) -> ScheduledCommit {
    ScheduledCommit {
        at_us,
        source: SourceId(2),
        update: SourceUpdate::Schema(SchemaChange::RenameRelation {
            from: "R5".into(),
            to: "R5_tuned".into(),
        }),
    }
}

fn main() {
    warn_if_debug();
    let args = BenchArgs::parse();
    let cfg = testbed_config();
    println!("== Figure 9: cost of broken query ==");
    println!("values are simulated seconds (maintenance cost incl. abort)\n");

    // (workload label, schedule builder taking the gap between the updates)
    type Builder = Box<dyn Fn(u64) -> Vec<ScheduledCommit>>;
    let far = 600_000_000u64; // 10 simulated minutes: no interaction
    let workloads: Vec<(&str, Builder)> = vec![
        (
            "One DU + One SC",
            Box::new(|gap| vec![du_on_r0(&testbed_config(), 0), drop_attr_r3(gap)]),
        ),
        ("One SC + One SC", Box::new(|gap| vec![drop_attr_r3(0), rename_r5(gap)])),
    ];

    let mut rows = Vec::new();
    for (label, build) in &workloads {
        let mut cells = vec![label.to_string()];
        // No concurrency: spaced far apart (strategy irrelevant; use pessimistic).
        // Concurrent: both committed at t=0, i.e. both already at the sources
        // when maintenance begins — the conflict of Definition 2.
        for (setting, gap, strategy) in [
            ("no-conc", far, Strategy::Pessimistic),
            ("pessimistic", 0, Strategy::Pessimistic),
            ("optimistic", 0, Strategy::Optimistic),
        ] {
            let (space, view) = build_testbed(&cfg);
            let report = run_scenario(
                Scenario::new(space, view, build(gap))
                    .with_strategy(strategy)
                    .with_cost(cost_model()),
            )
            .unwrap_or_else(|e| panic!("{label}/{setting}: {e}"));
            assert!(report.converged, "{label}/{setting} must converge");
            cells.push(secs(report.metrics.total_cost_us()));
            if setting == "optimistic" {
                cells.push(report.metrics.aborts.to_string());
            }
        }
        rows.push(cells);
    }
    let header = ["workload", "no-conc (s)", "pessimistic (s)", "optimistic (s)", "opt aborts"];
    println!("{}", render_table(&header, &rows));
    if let Some(path) = &args.json {
        write_json_table(path, "fig09", &header, &rows).expect("write --json output");
        println!("series written to {path}\n");
    }
    println!(
        "shape reproduced: optimistic pays the abort (worst for SC+SC, where the\n\
         aborted work is an expensive schema-change maintenance); pessimistic\n\
         avoids it via pre-exec detection. Note: our merged-batch adaptation\n\
         recomputes the view once, so the pessimistic SC+SC bar sits *below*\n\
         the no-concurrency bar (the paper processed merged work per update)."
    );
}
