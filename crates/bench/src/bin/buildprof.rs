//! Temporary phase profiler for large testbed builds: times rows, server
//! construction (snapshot clone), index creation, and one commit separately.
//! Usage: buildprof <tuples_per_relation>

use std::time::Instant;

use dyno_relational::{Catalog, DataUpdate, Delta, Relation, SourceUpdate, Tuple, Value};
use dyno_sim::TestbedConfig;
use dyno_source::{SourceId, SourceServer, SourceSpace};

fn rss_mb() -> f64 {
    let s = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    s.lines()
        .find(|l| l.starts_with("VmRSS"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let cfg = TestbedConfig { tuples_per_relation: n, ..Default::default() };
    let mut rng = dyno_sim::Rng::new(cfg.seed);
    let mut space = SourceSpace::new();
    let t0 = Instant::now();
    for s in 0..cfg.sources {
        let mut catalog = Catalog::new();
        for r in 0..cfg.relations_per_source {
            let idx = (s * cfg.relations_per_source + r) as usize;
            let schema = cfg.schema(idx);
            let t = Instant::now();
            let mut rel = Relation::empty(schema);
            for k in 0..cfg.tuples_per_relation {
                let mut vals = vec![Value::from(k as i64)];
                for _ in 0..cfg.extra_attrs {
                    vals.push(Value::from(rng.gen_range(0..1_000_000i64)));
                }
                rel.insert(Tuple::new(vals)).expect("well-typed");
            }
            eprintln!("rows R{idx}: {:.1}s rss={:.0}MB", t.elapsed().as_secs_f64(), rss_mb());
            catalog.add_relation(rel).expect("unique");
        }
        let t = Instant::now();
        space.add_server(SourceServer::new(SourceId(s), format!("server{s}"), catalog));
        eprintln!("server {s}: {:.1}s rss={:.0}MB", t.elapsed().as_secs_f64(), rss_mb());
    }
    for name in cfg.relation_names() {
        let t = Instant::now();
        space.create_index(&name, &["K"]).expect("exists");
        eprintln!("index {name}: {:.1}s rss={:.0}MB", t.elapsed().as_secs_f64(), rss_mb());
    }
    let schema = cfg.schema(0);
    let vals: Vec<Value> = (0..schema.arity()).map(|i| Value::from(i as i64)).collect();
    let du = DataUpdate::new(Delta::inserts(schema, [Tuple::new(vals)]).expect("schema"));
    let t = Instant::now();
    let _msg = space.commit(SourceId(0), SourceUpdate::Data(du)).expect("valid");
    eprintln!("commit 1 DU: {:.2}s rss={:.0}MB", t.elapsed().as_secs_f64(), rss_mb());
    eprintln!("TOTAL {n}: {:.1}s rss={:.0}MB", t0.elapsed().as_secs_f64(), rss_mb());
}
