//! Replication sweep: replica count × fault profile, timing one seeded
//! `run_replicated` experiment per cell — commit rounds under faults and
//! partitions, heal, NACK flush, and the convergence audit — and emitting
//! the scale-free conflict counters alongside the wall-clock medians.
//!
//! Every cell also cross-checks correctness: the run must converge to
//! bit-identical extents at every replica, and partition cells must detect
//! concurrent writes. The conflict/superseded counters are deterministic
//! per seed, so their JSONL rows double as behavioural-drift detectors for
//! `benchdiff` (a resolver change shows up as a counter jump long before it
//! shows up as a timing regression).
//!
//! ```text
//! replicate [--reps K] [--seed N] [--rounds R] [--json PATH]
//! ```

use std::io::Write as _;
use std::time::Instant;

use dyno_bench::render_table;
use dyno_sim::{run_replicated, ReplicaConfig, ReplicaReport};

struct Args {
    reps: usize,
    seed: u64,
    rounds: usize,
    json: Option<String>,
}

fn usage(bin: &str) -> ! {
    eprintln!("usage: {bin} [--reps K] [--seed N] [--rounds R] [--json PATH]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let bin = std::env::args().next().unwrap_or_else(|| "replicate".into());
    let mut out = Args { reps: 3, seed: 42, rounds: 24, json: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |a: &mut dyn FnMut(&str)| match args.next() {
            Some(v) => a(&v),
            None => usage(&bin),
        };
        match arg.as_str() {
            "--reps" => num(&mut |v| out.reps = v.parse().unwrap_or_else(|_| usage(&bin))),
            "--seed" => num(&mut |v| out.seed = v.parse().unwrap_or_else(|_| usage(&bin))),
            "--rounds" => num(&mut |v| out.rounds = v.parse().unwrap_or_else(|_| usage(&bin))),
            "--json" => num(&mut |v| out.json = Some(v.to_string())),
            _ => usage(&bin),
        }
    }
    out
}

fn main() {
    dyno_bench::warn_if_debug();
    let args = parse_args();
    println!(
        "== replication sweep (seed {}, {} rounds, {} reps) ==\n",
        args.seed, args.rounds, args.reps
    );

    let header =
        ["cell", "median", "published", "applied", "conflicts", "superseded", "partitions"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_lines: Vec<String> = Vec::new();

    for replicas in [2usize, 3, 5] {
        for profile in ["quiet", "drop_dup", "partition"] {
            let cfg = ReplicaConfig {
                rounds: args.rounds,
                ..ReplicaConfig::named(profile, replicas, args.seed)
            };
            let mut times: Vec<u64> = Vec::new();
            let mut last: Option<ReplicaReport> = None;
            for _ in 0..args.reps.max(1) {
                let t0 = Instant::now();
                let report = run_replicated(&cfg);
                times.push(t0.elapsed().as_nanos() as u64);
                assert!(
                    report.converged,
                    "r{replicas}/{profile}: sweep cell must converge: {:?}",
                    report.last_error
                );
                if profile == "partition" {
                    assert!(
                        report.conflicts > 0 && report.partitions_injected > 0,
                        "r{replicas}/partition: cell must partition and conflict"
                    );
                }
                last = Some(report);
            }
            times.sort_unstable();
            let median = times[times.len() / 2];
            let report = last.expect("at least one rep ran");
            rows.push(vec![
                format!("r{replicas}/{profile}"),
                format!("{:.2}ms", median as f64 / 1e6),
                report.published.to_string(),
                report.remote_applied.to_string(),
                report.conflicts.to_string(),
                report.superseded.to_string(),
                report.partitions_injected.to_string(),
            ]);
            json_lines.push(format!(
                "{{\"group\":\"replicate\",\"bench\":\"converge/r{replicas}_{profile}\",\
                 \"median_ns\":{median}}}"
            ));
            if profile == "partition" {
                // Deterministic per seed: drift here means resolver-behaviour
                // change, not machine noise.
                json_lines.push(format!(
                    "{{\"group\":\"replicate\",\"bench\":\"conflicts/r{replicas}_{profile}\",\
                     \"median_ns\":{}}}",
                    report.conflicts.max(1)
                ));
                json_lines.push(format!(
                    "{{\"group\":\"replicate\",\"bench\":\"superseded/r{replicas}_{profile}\",\
                     \"median_ns\":{}}}",
                    report.superseded.max(1)
                ));
            }
        }
    }

    println!("{}", render_table(&header, &rows));

    if let Some(path) = &args.json {
        let mut f = std::fs::File::create(path).expect("create --json output");
        for line in &json_lines {
            writeln!(f, "{line}").expect("write --json output");
        }
        println!("medians written to {path}");
    }
}
