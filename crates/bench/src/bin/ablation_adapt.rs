//! Ablation: incremental (Equation 6) vs. recompute-only view adaptation.
//!
//! When a merged batch preserves the view's shape (renames, additive
//! changes), the Section-5 incremental path computes `ΔV` over homogenized
//! deltas and writes only `|ΔV|` tuples into the view, instead of
//! re-materializing the whole extent. This experiment measures the saving
//! on a rename-heavy workload (no attribute drops, so every batch is
//! shape-preserving) at increasing view sizes.

use dyno_bench::{render_table, secs, warn_if_debug, write_json_table, BenchArgs};
use dyno_core::Strategy;
use dyno_sim::{build_testbed, run_scenario, CostModel, Scenario, TestbedConfig, WorkloadGen};
use dyno_view::AdaptationMode;

fn main() {
    warn_if_debug();
    let args = BenchArgs::parse();
    println!("== Ablation: incremental (Eq. 6) vs recompute-only adaptation ==");
    println!("50 DUs + 6 renames at 30 s intervals, pessimistic; simulated seconds\n");

    let mut rows = Vec::new();
    for tuples in [1_000usize, 4_000, 16_000] {
        let cfg = TestbedConfig { tuples_per_relation: tuples, ..Default::default() };
        let mut cells = vec![tuples.to_string()];
        for (label, mode) in
            [("incremental", AdaptationMode::Auto), ("recompute", AdaptationMode::RecomputeOnly)]
        {
            let (space, view) = build_testbed(&cfg);
            let mut gen = WorkloadGen::new(cfg, 0xADA);
            // Renames only (offset the drop by generating it last and
            // discarding it): build the timeline by hand.
            let mut timeline = Vec::new();
            for k in 0..50u64 {
                timeline.push((k * 500_000, dyno_sim::EventKind::DataUpdate));
            }
            for k in 0..6u64 {
                timeline.push((k * 30_000_000, dyno_sim::EventKind::RenameRelation));
            }
            timeline.sort_by_key(|e| e.0);
            let schedule = gen.realize(&timeline);
            let report = run_scenario(
                Scenario::new(space, view, schedule)
                    .with_strategy(Strategy::Pessimistic)
                    .with_adaptation(mode)
                    .with_cost(CostModel::calibrated(tuples as u64)),
            )
            .unwrap_or_else(|e| panic!("{tuples}/{label}: {e}"));
            assert!(report.converged, "{tuples}/{label} must converge");
            cells.push(secs(report.metrics.total_cost_us()));
            if mode == AdaptationMode::Auto {
                cells.push(report.view_stats.incremental_batches.to_string());
            }
        }
        rows.push(cells);
    }
    let header = ["tuples/rel", "incremental (s)", "eq6 batches", "recompute (s)"];
    println!("{}", render_table(&header, &rows));
    if let Some(path) = &args.json {
        write_json_table(path, "ablation_adapt", &header, &rows).expect("write --json output");
        println!("series written to {path}\n");
    }
    println!(
        "the incremental path saves the full-extent materialized-view write on\n\
         every shape-preserving batch; the saving grows with the view size."
    );
}
