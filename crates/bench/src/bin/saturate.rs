//! The saturation-curve capacity sweep: step the open-loop arrival rate
//! across a fixed grid and chart admitted throughput against p99 staleness
//! until the warehouse hits its knee — the first rate where the maintenance
//! pipeline stops keeping up (p99 staleness blows past 2× the baseline, or
//! the bounded UMQ starts shedding).
//!
//! Every step is one [`run_monitor`] run with the per-operator profiler on,
//! so the sweep also answers *why* the knee is where it is: the heaviest
//! step's `EXPLAIN ANALYZE` plan tree is printed after the curve, showing
//! which operator's rows grew superlinearly with offered load.
//!
//! `--json <path>` writes one JSONL line per rate plus a `knee` summary
//! line, keyed by `group`/`bench` so `benchdiff` can compare captures
//! (`BENCH_pr10.json` is the checked-in default-grid capture). Only
//! virtual-clock-deterministic fields land in the JSON — admitted/shed
//! counts, step counts, staleness quantiles, and profile row/probe totals.
//! Wall-nanosecond timings stay in the text render, never the capture.

use dyno_bench::render_table;
use dyno_obs::{Profile, SloPolicy};
use dyno_sim::{run_monitor, MonitorConfig, MonitorReport, OpenLoopConfig, TestbedConfig};

fn usage(bin: &str) -> ! {
    eprintln!(
        "usage: {bin} [--seed N] [--duration-s N] [--tuples N] [--umq-bound N] [--json <path>]"
    );
    std::process::exit(2);
}

/// The default rate grid, DU/s. Chosen so the bounded warehouse is
/// comfortable at the low end and firmly saturated at the high end.
const RATES: [u64; 6] = [1, 2, 4, 8, 16, 24];

/// One sweep step's deterministic measurements.
struct StepResult {
    rate: u64,
    admitted: u64,
    shed: u64,
    steps: u64,
    samples: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    /// Deterministic profile totals summed over every plan node:
    /// (rows_in, rows_out, weights_cancelled, index_probes).
    prof: (u64, u64, u64, u64),
    report: MonitorReport,
}

/// Sums the deterministic columns of every node in every plan. The `ns`
/// column is wall-clock and deliberately not aggregated here.
fn profile_totals(p: &Profile) -> (u64, u64, u64, u64) {
    let mut t = (0u64, 0u64, 0u64, 0u64);
    for (_, plan) in p.plans() {
        for agg in plan.nodes.values() {
            t.0 += agg.rows_in;
            t.1 += agg.rows_out;
            t.2 += agg.weights_cancelled;
            t.3 += agg.index_probes;
        }
    }
    t
}

fn sweep_config(
    rate: u64,
    seed: u64,
    duration_s: u64,
    tuples: usize,
    bound: usize,
) -> MonitorConfig {
    let duration_us = duration_s * 1_000_000;
    MonitorConfig {
        testbed: TestbedConfig { tuples_per_relation: tuples, ..Default::default() },
        open_loop: OpenLoopConfig {
            duration_us,
            du_per_sec: rate as f64,
            zipf_skew: 0.8,
            diurnal_amplitude: 0.0,
            sc_storms: 0,
            ..Default::default()
        },
        workload_seed: seed,
        tenant_views: 2,
        umq_bound: if bound == 0 { None } else { Some(bound) },
        slo: SloPolicy::target(15_000_000),
        drain_windows: 8,
        profile: true,
        ..Default::default()
    }
}

fn run_step(rate: u64, seed: u64, duration_s: u64, tuples: usize, bound: usize) -> StepResult {
    let cfg = sweep_config(rate, seed, duration_s, tuples, bound);
    let report = run_monitor(&cfg).expect("saturate sweep step");
    assert!(!report.exhausted, "step budget exhausted at rate {rate} DU/s");
    // Lane 0 is the full testbed join — the heaviest view and the one whose
    // staleness defines the knee.
    let (samples, p50_us, p95_us, p99_us) = report.tracker.lifetime(0);
    let prof = profile_totals(&report.profile);
    StepResult {
        rate,
        admitted: report.admitted,
        shed: report.shed,
        steps: report.steps,
        samples,
        p50_us,
        p95_us,
        p99_us,
        prof,
        report,
    }
}

/// The knee: the first rate whose p99 staleness exceeds 2× the lowest-rate
/// baseline, or whose admission bound shed load. Falls back to the largest
/// step-over-step p99 increase when the grid never crosses either line.
fn find_knee(steps: &[StepResult]) -> usize {
    let baseline_p99 = steps[0].p99_us.max(1);
    for (i, s) in steps.iter().enumerate().skip(1) {
        if s.shed > 0 || s.p99_us > 2 * baseline_p99 {
            return i;
        }
    }
    let mut best = steps.len() - 1;
    let mut best_ratio = 0.0f64;
    for i in 1..steps.len() {
        let prev = steps[i - 1].p99_us.max(1) as f64;
        let ratio = steps[i].p99_us as f64 / prev;
        if ratio > best_ratio {
            best_ratio = ratio;
            best = i;
        }
    }
    best
}

fn jsonl(steps: &[StepResult], knee: usize, seed: u64, duration_s: u64) -> String {
    let mut out = String::new();
    for s in steps {
        out.push_str(&format!(
            "{{\"group\":\"saturate\",\"bench\":\"r{}\",\"rate_du_per_sec\":{},\
             \"admitted\":{},\"shed\":{},\"steps\":{},\"staleness_samples\":{},\
             \"staleness_p50_us\":{},\"staleness_p95_us\":{},\"staleness_p99_us\":{},\
             \"profile_rows_in\":{},\"profile_rows_out\":{},\"profile_cancelled\":{},\
             \"profile_probes\":{}}}\n",
            s.rate,
            s.rate,
            s.admitted,
            s.shed,
            s.steps,
            s.samples,
            s.p50_us,
            s.p95_us,
            s.p99_us,
            s.prof.0,
            s.prof.1,
            s.prof.2,
            s.prof.3,
        ));
    }
    let k = &steps[knee];
    out.push_str(&format!(
        "{{\"group\":\"saturate\",\"bench\":\"knee\",\"seed\":{seed},\"duration_s\":{duration_s},\
         \"knee_rate_du_per_sec\":{},\"baseline_p99_us\":{},\"knee_p99_us\":{},\
         \"knee_shed\":{}}}\n",
        k.rate, steps[0].p99_us, k.p99_us, k.shed,
    ));
    out
}

fn main() {
    dyno_bench::warn_if_debug();
    let bin = std::env::args().next().unwrap_or_else(|| "saturate".into());
    let mut seed = 42u64;
    let mut duration_s = 20u64;
    let mut tuples = 80usize;
    let mut bound = 12usize;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin))
            }
            "--duration-s" => {
                duration_s = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin))
            }
            "--tuples" => {
                tuples = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin))
            }
            "--umq-bound" => {
                bound = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin))
            }
            "--json" => json = Some(args.next().unwrap_or_else(|| usage(&bin))),
            _ => usage(&bin),
        }
    }

    println!(
        "== saturation sweep: rates {RATES:?} DU/s, {duration_s}s simulated, \
         {tuples} tuples/relation, umq bound {bound}, seed {seed} ==\n"
    );
    let steps: Vec<StepResult> =
        RATES.iter().map(|&r| run_step(r, seed, duration_s, tuples, bound)).collect();

    // The offered-load ramp must actually ramp: a flat admitted column means
    // the grid is mis-sized, not that the warehouse saturated.
    for w in steps.windows(2) {
        assert!(
            w[1].admitted + w[1].shed >= w[0].admitted + w[0].shed,
            "offered load must be nondecreasing across the rate grid"
        );
    }

    let knee = find_knee(&steps);
    let header =
        ["rate DU/s", "admitted", "shed", "steps", "p50", "p95", "p99", "rows_out", "probes", ""];
    let rows: Vec<Vec<String>> = steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                s.rate.to_string(),
                s.admitted.to_string(),
                s.shed.to_string(),
                s.steps.to_string(),
                format!("{}µs", s.p50_us),
                format!("{}µs", s.p95_us),
                format!("{}µs", s.p99_us),
                s.prof.1.to_string(),
                s.prof.3.to_string(),
                if i == knee { "← knee".to_string() } else { String::new() },
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    println!(
        "knee: {} DU/s (baseline p99 {}µs → {}µs, shed {})\n",
        steps[knee].rate, steps[0].p99_us, steps[knee].p99_us, steps[knee].shed
    );

    // Why the knee is where it is: the per-operator plan trees of the knee
    // step. ns columns are wall-clock — informative here, never in the JSON.
    println!("-- operator profile at the knee ({} DU/s) --\n", steps[knee].rate);
    print!("{}", steps[knee].report.profile.render_text(None));

    if let Some(path) = json {
        std::fs::write(&path, jsonl(&steps, knee, seed, duration_s)).expect("write --json output");
        println!("\nwrote {path}");
    }
}
