//! Paper Figure 8: data-update processing cost with and without detection.
//!
//! Workload: 500–3000 random data updates (no schema changes) over the
//! six-relation testbed. "With detection" is the pessimistic strategy,
//! whose pre-exec pass reduces to the O(1) `NewSchemaChangeFlag` check in a
//! DU-only stream; "without detection" is the optimistic strategy, which
//! never runs pre-exec detection at all. The paper's finding — detection
//! overhead is almost unobservable — holds by construction of the fast
//! path, and this binary demonstrates it end to end.

use dyno_bench::{
    cost_model, render_table, secs, testbed_config, warn_if_debug, write_json_table, BenchArgs,
};
use dyno_core::Strategy;
use dyno_sim::{build_testbed, run_scenario, Scenario, WorkloadGen};

fn main() {
    warn_if_debug();
    let args = BenchArgs::parse();
    let cfg = testbed_config();
    println!("== Figure 8: DU processing and detection ==");
    println!(
        "testbed: {} relations x {} tuples; y-values are simulated seconds\n",
        cfg.relation_count(),
        cfg.tuples_per_relation
    );

    let mut rows = Vec::new();
    for n in [500usize, 1000, 1500, 2000, 2500, 3000] {
        let mut cells = vec![n.to_string()];
        let mut costs = Vec::new();
        for strategy in [Strategy::Pessimistic, Strategy::Optimistic] {
            let (space, view) = build_testbed(&cfg);
            let mut gen = WorkloadGen::new(cfg, 0xF18 + n as u64);
            let schedule = gen.du_flood(n);
            let report = run_scenario(
                Scenario::new(space, view, schedule)
                    .with_strategy(strategy)
                    .with_cost(cost_model()),
            )
            .expect("DU-only runs cannot fail");
            assert!(report.converged, "sanity: run must converge");
            assert_eq!(report.metrics.aborts, 0, "sanity: DUs never break queries");
            if strategy == Strategy::Pessimistic {
                assert_eq!(
                    report.dyno_stats.graph_builds, 0,
                    "sanity: the O(1) flag fast path must avoid graph builds"
                );
            }
            costs.push(report.metrics.total_cost_us());
            cells.push(secs(report.metrics.total_cost_us()));
        }
        let overhead = costs[0] as f64 / costs[1] as f64 - 1.0;
        cells.push(format!("{:+.2}%", overhead * 100.0));
        rows.push(cells);
    }
    let header = ["#DUs", "with detection (s)", "without detection (s)", "overhead"];
    println!("{}", render_table(&header, &rows));
    println!("paper's conclusion reproduced: detection overhead on DU processing ~ 0.");
    if let Some(path) = &args.json {
        write_json_table(path, "fig08", &header, &rows).expect("write --json output");
        println!("\nseries written to {path}");
    }
}
