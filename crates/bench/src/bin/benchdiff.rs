//! Compares two benchmark/monitor JSON captures and fails when any shared
//! numeric leaf moved beyond a relative tolerance.
//!
//! ```text
//! benchdiff <old.json> <new.json> [--tol 0.25]
//! ```
//!
//! Accepts either a single JSON document (`monitor --json` output,
//! `BENCH_scale.json`) or JSONL (`BENCH_pr*.json` micro-benchmark captures,
//! keyed by their `group`/`bench` fields). Every numeric leaf is flattened
//! to a `path.to.leaf` key; a key present in the old capture but missing
//! from the new one is a failure, as is any value whose relative change
//! exceeds `--tol` (default 0.25). New keys are reported but allowed —
//! telemetry grows. `--tol 0` demands bit-identical numbers and is the
//! self-check mode `scripts/verify.sh` runs against `BENCH_scale.json`.

use std::collections::BTreeMap;

use dyno_obs::json::{parse, Value};

fn usage(bin: &str) -> ! {
    eprintln!("usage: {bin} <old.json> <new.json> [--tol F]");
    std::process::exit(2);
}

/// Flattens every numeric leaf of `v` into `out` under dotted/indexed paths.
fn flatten(prefix: &str, v: &Value, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Value::Obj(map) => {
            for (k, child) in map {
                let p = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten(&p, child, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), child, out);
            }
        }
        _ => {}
    }
}

/// Parses a capture: one whole-file JSON document, or JSONL with one object
/// per line (keyed by `group/bench` when present, else by line number).
fn load(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut out = BTreeMap::new();
    if let Ok(v) = parse(&text) {
        flatten("", &v, &mut out);
        return out;
    }
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).unwrap_or_else(|e| {
            eprintln!("benchdiff: {path}:{}: neither JSON nor JSONL: {e}", i + 1);
            std::process::exit(2);
        });
        let key = match (
            v.get("group").and_then(Value::as_str),
            v.get("bench").and_then(Value::as_str),
        ) {
            (Some(g), Some(b)) => format!("{g}/{b}"),
            _ => format!("line{}", i + 1),
        };
        flatten(&key, &v, &mut out);
    }
    out
}

fn main() {
    let bin = std::env::args().next().unwrap_or_else(|| "benchdiff".into());
    let mut paths: Vec<String> = Vec::new();
    let mut tol = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tol" => {
                tol = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin))
            }
            _ if arg.starts_with("--") => usage(&bin),
            _ => paths.push(arg),
        }
    }
    let [old_path, new_path] = paths.as_slice() else { usage(&bin) };

    let old = load(old_path);
    let new = load(new_path);

    let mut missing = 0u64;
    let mut moved: Vec<(String, f64, f64, f64)> = Vec::new();
    for (key, &o) in &old {
        match new.get(key) {
            None => {
                missing += 1;
                eprintln!("MISSING  {key} (old {o})");
            }
            Some(&n) if n != o => {
                let rel = (n - o).abs() / o.abs().max(1e-12);
                if rel > tol {
                    moved.push((key.clone(), o, n, rel));
                }
            }
            Some(_) => {}
        }
    }
    let added = new.keys().filter(|k| !old.contains_key(*k)).count();

    moved.sort_by(|a, b| b.3.total_cmp(&a.3));
    for (key, o, n, rel) in moved.iter().take(20) {
        let signed = rel * 100.0 * (n - o).signum();
        eprintln!("MOVED    {key}: {o} -> {n} ({signed:+.1}%)");
    }
    if moved.len() > 20 {
        eprintln!("... and {} more beyond tolerance", moved.len() - 20);
    }

    println!(
        "benchdiff: {} shared keys, {} moved beyond tol {tol}, {missing} missing, {added} added",
        old.len() - missing as usize,
        moved.len(),
    );
    if missing > 0 || !moved.is_empty() {
        std::process::exit(1);
    }
}
