//! Compares two benchmark/monitor JSON captures and fails when any shared
//! numeric leaf moved beyond a relative tolerance.
//!
//! ```text
//! benchdiff <old.json> <new.json> [--tol 0.25] [--abs 0]
//! ```
//!
//! Accepts either a single JSON document (`monitor --json` output,
//! `BENCH_scale.json`) or JSONL (`BENCH_pr*.json` micro-benchmark captures,
//! keyed by their `group`/`bench` fields). Every numeric leaf is flattened
//! to a `path.to.leaf` key; a key present in the old capture but missing
//! from the new one is a failure, as is any value whose relative change
//! exceeds `--tol` (default 0.25). New keys are reported but allowed —
//! telemetry grows. `--tol 0` demands bit-identical numbers and is the
//! self-check mode `scripts/verify.sh` runs against `BENCH_scale.json`.
//!
//! A zero baseline has no relative scale: `0 -> 0` always passes, and
//! `0 -> x` is judged against the absolute threshold `--abs` (default 0,
//! i.e. any move off a zero baseline is flagged) rather than dividing by
//! zero and reporting an astronomically inflated percentage.

use std::collections::BTreeMap;

use dyno_obs::json::{parse, Value};

fn usage(bin: &str) -> ! {
    eprintln!("usage: {bin} <old.json> <new.json> [--tol F] [--abs F]");
    std::process::exit(2);
}

/// How one shared leaf compares between captures.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Verdict {
    /// Within tolerance (includes the exact `0 -> 0` case).
    Ok,
    /// Moved beyond the relative tolerance; carries the relative change.
    MovedRel(f64),
    /// Moved off a zero baseline beyond the absolute threshold; carries the
    /// absolute delta (a relative change is undefined here).
    MovedAbs(f64),
}

/// Compares one leaf. `tol` is the relative tolerance for nonzero
/// baselines; `abs_tol` is the absolute threshold used when the baseline is
/// exactly zero, where dividing would invent a near-infinite percentage.
fn compare(o: f64, n: f64, tol: f64, abs_tol: f64) -> Verdict {
    if n == o {
        return Verdict::Ok;
    }
    if o == 0.0 {
        let delta = n.abs();
        return if delta > abs_tol { Verdict::MovedAbs(delta) } else { Verdict::Ok };
    }
    let rel = (n - o).abs() / o.abs();
    if rel > tol {
        Verdict::MovedRel(rel)
    } else {
        Verdict::Ok
    }
}

/// Flattens every numeric leaf of `v` into `out` under dotted/indexed paths.
fn flatten(prefix: &str, v: &Value, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Value::Obj(map) => {
            for (k, child) in map {
                let p = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten(&p, child, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), child, out);
            }
        }
        _ => {}
    }
}

/// Parses a capture: one whole-file JSON document, or JSONL with one object
/// per line (keyed by `group/bench` when present, else by line number).
fn load(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut out = BTreeMap::new();
    if let Ok(v) = parse(&text) {
        flatten("", &v, &mut out);
        return out;
    }
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).unwrap_or_else(|e| {
            eprintln!("benchdiff: {path}:{}: neither JSON nor JSONL: {e}", i + 1);
            std::process::exit(2);
        });
        let key = match (
            v.get("group").and_then(Value::as_str),
            v.get("bench").and_then(Value::as_str),
        ) {
            (Some(g), Some(b)) => format!("{g}/{b}"),
            _ => format!("line{}", i + 1),
        };
        flatten(&key, &v, &mut out);
    }
    out
}

fn main() {
    let bin = std::env::args().next().unwrap_or_else(|| "benchdiff".into());
    let mut paths: Vec<String> = Vec::new();
    let mut tol = 0.25f64;
    let mut abs_tol = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tol" => {
                tol = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin))
            }
            "--abs" => {
                abs_tol = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin))
            }
            _ if arg.starts_with("--") => usage(&bin),
            _ => paths.push(arg),
        }
    }
    let [old_path, new_path] = paths.as_slice() else { usage(&bin) };

    let old = load(old_path);
    let new = load(new_path);

    let mut missing = 0u64;
    let mut moved: Vec<(String, f64, f64, Verdict)> = Vec::new();
    for (key, &o) in &old {
        match new.get(key) {
            None => {
                missing += 1;
                eprintln!("MISSING  {key} (old {o})");
            }
            Some(&n) => match compare(o, n, tol, abs_tol) {
                Verdict::Ok => {}
                v => moved.push((key.clone(), o, n, v)),
            },
        }
    }
    let added = new.keys().filter(|k| !old.contains_key(*k)).count();

    let severity = |v: &Verdict| match v {
        Verdict::MovedRel(r) | Verdict::MovedAbs(r) => *r,
        Verdict::Ok => 0.0,
    };
    moved.sort_by(|a, b| severity(&b.3).total_cmp(&severity(&a.3)));
    for (key, o, n, verdict) in moved.iter().take(20) {
        match verdict {
            Verdict::MovedRel(rel) => {
                let signed = rel * 100.0 * (n - o).signum();
                eprintln!("MOVED    {key}: {o} -> {n} ({signed:+.1}%)");
            }
            Verdict::MovedAbs(delta) => {
                eprintln!("MOVED    {key}: {o} -> {n} (+{delta} absolute, zero baseline)");
            }
            Verdict::Ok => {}
        }
    }
    if moved.len() > 20 {
        eprintln!("... and {} more beyond tolerance", moved.len() - 20);
    }

    println!(
        "benchdiff: {} shared keys, {} moved beyond tol {tol}, {missing} missing, {added} added",
        old.len() - missing as usize,
        moved.len(),
    );
    if missing > 0 || !moved.is_empty() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::{compare, Verdict};

    #[test]
    fn zero_to_zero_always_passes() {
        assert_eq!(compare(0.0, 0.0, 0.25, 0.0), Verdict::Ok);
        assert_eq!(compare(0.0, 0.0, 0.0, 0.0), Verdict::Ok);
    }

    #[test]
    fn zero_baseline_uses_absolute_threshold_not_inflated_percentages() {
        // The old formula divided by max(|0|, 1e-12) and reported a move of
        // roughly 5e12 "relative" — here the verdict carries the absolute
        // delta instead.
        assert_eq!(compare(0.0, 5.0, 0.25, 0.0), Verdict::MovedAbs(5.0));
        assert_eq!(compare(0.0, 5.0, 0.25, 5.0), Verdict::Ok);
        assert_eq!(compare(0.0, -3.0, 0.25, 2.0), Verdict::MovedAbs(3.0));
    }

    #[test]
    fn nonzero_baseline_keeps_relative_tolerance() {
        assert_eq!(compare(100.0, 110.0, 0.25, 0.0), Verdict::Ok);
        assert_eq!(compare(100.0, 140.0, 0.25, 0.0), Verdict::MovedRel(0.4));
        assert_eq!(compare(100.0, 100.0, 0.0, 0.0), Verdict::Ok);
        assert_eq!(compare(100.0, 100.1, 0.0, 0.0), Verdict::MovedRel((100.1 - 100.0) / 100.0));
    }

    #[test]
    fn x_to_zero_is_still_a_full_relative_drop() {
        // Only a *zero baseline* is special; collapsing to zero from a real
        // value is a 100% move and must flag.
        assert_eq!(compare(7.0, 0.0, 0.25, 0.0), Verdict::MovedRel(1.0));
    }
}
