//! Paper Figure 11: effect of the *number* of schema changes.
//!
//! Workload: 200 data updates trickling through the run plus a train of
//! `k ∈ {5,10,15,20,25}` schema changes (one drop-attribute followed by
//! renames) spaced 25 simulated seconds apart — the interval at which each
//! change tends to land inside the previous change's maintenance window.
//! Expected shape (paper Section 6.4.1): abort cost grows with the number
//! of schema changes for both strategies; pessimistic stays below
//! optimistic thanks to pre-exec detection.

use dyno_bench::{
    cost_model, render_table, secs, testbed_config, warn_if_debug, write_json_table, BenchArgs,
};
use dyno_core::Strategy;
use dyno_sim::{build_testbed, run_scenario, Scenario, WorkloadGen};

const SEEDS: u64 = 3;

fn main() {
    warn_if_debug();
    let args = BenchArgs::parse();
    let cfg = testbed_config();
    println!("== Figure 11: increasing number of schema changes ==");
    println!("200 DUs + k SCs at 25 s intervals; simulated seconds, mean of 3 seeds\n");

    let interval_us = 25_000_000u64;
    let mut rows = Vec::new();
    for k in [5usize, 10, 15, 20, 25] {
        let mut cells = vec![k.to_string()];
        for strategy in [Strategy::Optimistic, Strategy::Pessimistic] {
            let (mut total, mut abort) = (0u64, 0u64);
            for seed in 0..SEEDS {
                let (space, view) = build_testbed(&cfg);
                let mut gen = WorkloadGen::new(cfg, 0xF11 + k as u64 + 1000 * seed);
                let schedule = gen.mixed(200, 500_000, k, 0, interval_us);
                let report = run_scenario(
                    Scenario::new(space, view, schedule)
                        .with_strategy(strategy)
                        .with_cost(cost_model()),
                )
                .unwrap_or_else(|e| panic!("k={k}/{strategy:?}: {e}"));
                assert!(report.converged, "k={k}/{strategy:?} must converge");
                total += report.metrics.total_cost_us();
                abort += report.metrics.abort_us;
            }
            cells.push(secs(total / SEEDS));
            cells.push(secs(abort / SEEDS));
        }
        rows.push(cells);
    }
    let header =
        ["#SCs", "optimistic (s)", "abort of opt (s)", "pessimistic (s)", "abort of pess (s)"];
    println!("{}", render_table(&header, &rows));
    println!("expected shape: abort cost grows with #SCs; pessimistic <= optimistic.");
    if let Some(path) = &args.json {
        write_json_table(path, "fig11", &header, &rows).expect("write --json output");
        println!("\nseries written to {path}");
    }
}
