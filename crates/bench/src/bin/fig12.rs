//! Paper Figure 12: effect of the number of data updates on the abort cost.
//!
//! Workload: one drop-attribute plus four rename-relation schema changes at
//! a fixed 25-second interval, while the number of concurrent data updates
//! sweeps 200–600. Expected shape (paper Section 6.4.2): total maintenance
//! cost grows with the DU count, but the **abort cost stays flat** — broken
//! queries are caused by schema changes, not data updates.

use dyno_bench::{
    cost_model, render_table, secs, testbed_config, warn_if_debug, write_json_table, BenchArgs,
};
use dyno_core::Strategy;
use dyno_sim::{build_testbed, run_scenario, Scenario, WorkloadGen};

const SEEDS: u64 = 3;

fn main() {
    warn_if_debug();
    let args = BenchArgs::parse();
    let cfg = testbed_config();
    println!("== Figure 12: increasing number of data updates ==");
    println!("n DUs + 5 SCs (1 drop-attr + 4 renames) at 25 s intervals; simulated seconds, mean of 3 seeds\n");

    let interval_us = 25_000_000u64;
    let mut rows = Vec::new();
    for n in [200usize, 300, 400, 500, 600] {
        let mut cells = vec![n.to_string()];
        for strategy in [Strategy::Optimistic, Strategy::Pessimistic] {
            let (mut total, mut abort) = (0u64, 0u64);
            for seed in 0..SEEDS {
                let (space, view) = build_testbed(&cfg);
                let mut gen = WorkloadGen::new(cfg, 0xF12 + n as u64 + 1000 * seed);
                let schedule = gen.mixed(n, 500_000, 5, 0, interval_us);
                let report = run_scenario(
                    Scenario::new(space, view, schedule)
                        .with_strategy(strategy)
                        .with_cost(cost_model()),
                )
                .unwrap_or_else(|e| panic!("n={n}/{strategy:?}: {e}"));
                assert!(report.converged, "n={n}/{strategy:?} must converge");
                total += report.metrics.total_cost_us();
                abort += report.metrics.abort_us;
            }
            cells.push(secs(total / SEEDS));
            cells.push(secs(abort / SEEDS));
        }
        rows.push(cells);
    }
    let header =
        ["#DUs", "optimistic (s)", "abort of opt (s)", "pessimistic (s)", "abort of pess (s)"];
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: total cost grows with #DUs, abort cost stays roughly\n\
         constant — aborts are caused by schema changes, not data updates."
    );
    if let Some(path) = &args.json {
        write_json_table(path, "fig12", &header, &rows).expect("write --json output");
        println!("\nseries written to {path}");
    }
}
