//! Provenance forensics over a seeded chaos run: reconstruct per-update
//! timelines from the lineage ring and break end-to-end latency down by
//! phase (queue wait, query time, park time, batch wait) and by anomaly
//! class (paper Section 3.3's four conflict classes).
//!
//! Every fault profile is summarized in one table row; the heaviest profile
//! then gets the full per-phase / per-class report. Not a paper figure —
//! the paper has no observability story — but the forensics answer the
//! question its correctness argument raises: *which* updates conflicted,
//! how were they rescheduled, and what did that cost each of them.
//!
//! `--json <path>` writes the full report as JSON; `--explain <id>` prints
//! the reconstructed timeline of one causal id from the detailed run.
//!
//! `--replica` switches to the **replication lens**: a partitioned
//! three-replica `run_replicated` experiment with lineage on, broken down
//! per replica — messages resolved, applied, superseded, `rd` conflicts
//! detected, and the replication lag distribution (publish HLC → apply, the
//! `lag_us` field of each `repl.apply` record) against the local
//! commit-to-apply path measured by the chaos lens.

use dyno_bench::render_table;
use dyno_fault::FaultProfile;
use dyno_obs::forensics;
use dyno_sim::{run_chaos, ChaosConfig, ChaosReport};

fn usage(bin: &str) -> ! {
    eprintln!("usage: {bin} [--json <path>] [--explain <id>] [--seed <n>] [--replica]");
    std::process::exit(2);
}

/// Counts JSONL lineage lines carrying this stage (replica runs export
/// per-replica JSONL strings rather than sharing a collector).
fn count_stage(jsonl: &str, stage: &str) -> u64 {
    let needle = format!("\"stage\":\"{stage}\"");
    jsonl.lines().filter(|l| l.contains(&needle)).count() as u64
}

/// Extracts a numeric field from every line carrying `stage`.
fn field_values(jsonl: &str, stage: &str, field: &str) -> Vec<u64> {
    let needle = format!("\"stage\":\"{stage}\"");
    let key = format!("\"{field}\":");
    jsonl
        .lines()
        .filter(|l| l.contains(&needle))
        .filter_map(|l| {
            l.split(&key).nth(1)?.split(|c: char| !c.is_ascii_digit()).next()?.parse::<u64>().ok()
        })
        .collect()
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// The replication lens: per-replica message resolution and lag breakdown
/// of one partitioned three-replica experiment.
fn replica_lens(seed: u64) {
    use dyno_sim::{run_replicated, ReplicaConfig};
    let report = run_replicated(&ReplicaConfig::named("partition", 3, seed).with_lineage());
    assert!(report.converged, "replica forensics run died: {:?}", report.last_error);

    println!("== replication forensics (partition profile, 3 replicas, seed {seed}) ==\n");
    let header = [
        "replica",
        "resolved",
        "applied",
        "superseded",
        "rd conflicts",
        "lag p50",
        "lag p95",
        "live p50/p95/p99",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (r, jsonl) in report.lineage.iter().enumerate() {
        let mut lags = field_values(jsonl, dyno_obs::stage::REPL_APPLY, "lag_us");
        lags.sort_unstable();
        // Two lag sources, one truth: the post-hoc lineage replay above and
        // the live `replica.lag_us` histogram sampled by the engine. The
        // live column is what `monitor` sees without lineage capture on.
        let (count, p50, p95, p99) = report.lag_quantiles[r];
        rows.push(vec![
            format!("r{r}"),
            count_stage(jsonl, dyno_obs::stage::REPL_RECV).to_string(),
            count_stage(jsonl, dyno_obs::stage::REPL_APPLY).to_string(),
            count_stage(jsonl, dyno_obs::stage::SUPERSEDED).to_string(),
            field_values(jsonl, dyno_obs::stage::CONFLICT, "class")
                .iter()
                .filter(|&&c| c == 5)
                .count()
                .to_string(),
            format!("{}µs", percentile(&lags, 50)),
            format!("{}µs", percentile(&lags, 95)),
            format!("{p50}/{p95}/{p99}µs (n={count})"),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "partitions held traffic: {}   LWW losers discarded: {}   extents bit-identical: {}",
        report.partitions_injected, report.superseded, report.bit_identical
    );
    println!(
        "\n(remote lag is publish-HLC → apply at the receiver; compare against the\n\
         local commit → applied path in the chaos lens, which has no network leg)"
    );
}

fn main() {
    dyno_bench::warn_if_debug();
    let bin = std::env::args().next().unwrap_or_else(|| "forensics".into());
    let mut json: Option<String> = None;
    let mut explain: Option<u64> = None;
    let mut seed: u64 = 0;
    let mut replica = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = Some(args.next().unwrap_or_else(|| usage(&bin))),
            "--explain" => {
                let id = args.next().unwrap_or_else(|| usage(&bin));
                explain = Some(id.parse().unwrap_or_else(|_| usage(&bin)));
            }
            "--seed" => {
                let s = args.next().unwrap_or_else(|| usage(&bin));
                seed = s.parse().unwrap_or_else(|_| usage(&bin));
            }
            "--replica" => replica = true,
            _ => usage(&bin),
        }
    }

    if replica {
        replica_lens(seed);
        return;
    }

    println!("== provenance forensics (chaos workload, seed {seed}) ==\n");
    let header = ["profile", "applied", "conflicted", "lineage", "dropped", "e2e p50", "e2e p95"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut detailed: Option<(FaultProfile, ChaosReport)> = None;
    for profile in FaultProfile::all() {
        let report = run_chaos(&ChaosConfig::new(profile, seed).with_lineage().with_profile());
        assert!(report.last_error.is_none(), "chaos run died: {:?}", report.last_error);
        let records = report.obs.lineage_records();
        let f = forensics::analyze(&records);
        let (p50, p95, _) = f.end_to_end_us.percentiles();
        rows.push(vec![
            profile.name.to_string(),
            f.applied_updates.to_string(),
            f.conflicted_updates.to_string(),
            records.len().to_string(),
            report.obs.lineage_dropped().to_string(),
            format!("{p50}µs"),
            format!("{p95}µs"),
        ]);
        detailed = Some((profile, report));
    }
    println!("{}", render_table(&header, &rows));

    // Full per-phase / per-class breakdown for the heaviest profile (the
    // last in FaultProfile::all(): crash_restart).
    let (profile, report) = detailed.expect("at least one profile");
    let records = report.obs.lineage_records();
    let f = forensics::analyze(&records);
    println!("-- detailed report: profile {} --\n", profile.name);
    println!("{}", f.render_text_with_profile(&report.obs.profile_snapshot()));

    if let Some(id) = explain {
        println!("-- explain {id} (profile {}) --\n", profile.name);
        println!("{}", forensics::explain_text(id, &report.obs.explain(id)));
    } else if let Some(first) = records.iter().find(|r| r.stage == dyno_obs::stage::COMMIT) {
        // No id requested: demonstrate on the first committed update.
        println!("-- explain {} (first commit; pass --explain <id> to pick) --\n", first.id);
        println!("{}", forensics::explain_text(first.id, &report.obs.explain(first.id)));
    }

    if let Some(path) = &json {
        std::fs::write(path, f.render_json()).expect("write --json output");
        println!("report written to {path}");
    }
}
