//! Chaos robustness sweep: the Section 6.1 testbed driven through the
//! fault-injecting transport (`dyno-fault`), one row per (profile, seed).
//!
//! Not a figure from the paper — the paper assumes reliable delivery — but
//! the same methodology applied to the recovery layer: seeded, simulated,
//! reproducible. `--json` writes the series with a `last_error` field so
//! scripts can distinguish a clean sweep from one a hard error truncated.

use dyno_bench::{render_table, write_json_table_with_status, BenchArgs};
use dyno_fault::FaultProfile;
use dyno_sim::{run_chaos, ChaosConfig};

fn main() {
    let args = BenchArgs::parse();
    dyno_bench::warn_if_debug();
    let seeds: u64 =
        std::env::var("DYNO_CHAOS_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("== chaos robustness sweep ({seeds} seed(s) per profile) ==\n");

    let header =
        ["profile", "seed", "converged", "steps", "parked", "faults", "retries", "dups dropped"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut last_error: Option<String> = None;
    for profile in FaultProfile::all() {
        for seed in 0..seeds {
            let report = run_chaos(&ChaosConfig::new(profile, seed));
            if let Some(e) = &report.last_error {
                last_error = Some(e.clone());
            }
            rows.push(vec![
                profile.name.to_string(),
                seed.to_string(),
                report.converged.to_string(),
                report.steps.to_string(),
                report.parked_steps.to_string(),
                report.fault_injected.to_string(),
                report.retry_attempts.to_string(),
                report.duplicates_dropped.to_string(),
            ]);
        }
    }
    println!("{}", render_table(&header, &rows));
    match &last_error {
        Some(e) => println!("last_error: {e}"),
        None => println!("last_error: none"),
    }

    if let Some(path) = &args.json {
        write_json_table_with_status(path, "chaos", &header, &rows, last_error.as_deref())
            .expect("write --json output");
        println!("series written to {path}");
    }
}
