//! The live-load monitor: an open-loop workload against a bounded-UMQ
//! warehouse, with the full telemetry stack on — registry time series
//! (`obs::timeseries`), per-view staleness lanes, and burn-rate SLO states
//! (`obs::slo`). Prints the text dashboard; `--json` writes the combined
//! series document (`BENCH_scale.json` is a checked-in capture of the
//! default burst profile).
//!
//! Profiles:
//! * `burst` (default) — diurnal Zipfian DU load with hot-key SC storms
//!   against a small admission bound: the UMQ sheds hard under the peaks
//!   (`umq.shed`, `view.clamped_rows`), which is exactly what keeps the
//!   staleness lanes inside the SLO — load is dropped, not delayed.
//! * `slow-source` — a long rename train stalls maintenance mid-run:
//!   every lane walks ok → warn → page, then recovers to ok over the
//!   drain windows.
//! * `steady` — an unbounded, low-rate control run that stays ok
//!   everywhere.
//!
//! Everything is virtual-clock driven, so every number in the dashboard
//! and the JSON is deterministic for a given `--seed` (the `--overhead`
//! section, which measures *wall-clock* sampling cost, is the one
//! exception and is off by default).

use dyno_obs::SloPolicy;
use dyno_sim::{run_monitor, MonitorConfig, OpenLoopConfig, TestbedConfig};

fn usage(bin: &str) -> ! {
    eprintln!(
        "usage: {bin} [--profile burst|slow-source|steady] [--seed N] \
         [--duration-s N] [--json <path>] [--overhead] [--umq-bound N] [--storms N]"
    );
    std::process::exit(2);
}

fn profile_config(profile: &str, seed: u64, duration_s: u64) -> MonitorConfig {
    let duration_us = duration_s * 1_000_000;
    let testbed = TestbedConfig { tuples_per_relation: 300, ..Default::default() };
    match profile {
        "burst" => MonitorConfig {
            testbed,
            open_loop: OpenLoopConfig {
                duration_us,
                du_per_sec: 6.0,
                zipf_skew: 1.1,
                diurnal_amplitude: 0.9,
                diurnal_period_us: duration_us / 4,
                sc_storms: 2,
                sc_storm_len: 2,
                sc_storm_gap_us: 2_000_000,
            },
            workload_seed: seed,
            tenant_views: 3,
            umq_bound: Some(16),
            slo: SloPolicy::target(15_000_000),
            drain_windows: 16,
            ..Default::default()
        },
        "slow-source" => MonitorConfig {
            testbed,
            open_loop: OpenLoopConfig {
                duration_us,
                du_per_sec: 1.0,
                sc_storms: 1,
                sc_storm_len: 8,
                sc_storm_gap_us: 2_000_000,
                ..Default::default()
            },
            workload_seed: seed,
            tenant_views: 3,
            umq_bound: None,
            slo: SloPolicy::target(3_000_000),
            drain_windows: 24,
            ..Default::default()
        },
        "steady" => MonitorConfig {
            testbed,
            open_loop: OpenLoopConfig {
                duration_us,
                du_per_sec: 2.0,
                diurnal_amplitude: 0.3,
                sc_storms: 0,
                ..Default::default()
            },
            workload_seed: seed,
            tenant_views: 3,
            umq_bound: None,
            slo: SloPolicy::target(15_000_000),
            drain_windows: 12,
            ..Default::default()
        },
        other => {
            eprintln!("unknown profile: {other}");
            std::process::exit(2);
        }
    }
}

/// Wall-clock cost of the telemetry itself: the steady profile run twice,
/// once sampling every window and once with the sampler effectively off
/// (one window spanning the whole run). Reported so regressions in
/// sampling cost show up in `BENCH_scale.json`; inherently noisy.
fn overhead_json(seed: u64, duration_s: u64) -> String {
    let timed = |window_us: u64| -> (u128, u64) {
        let mut cfg = profile_config("steady", seed, duration_s);
        cfg.window_us = window_us;
        let t0 = std::time::Instant::now();
        let report = run_monitor(&cfg).expect("steady overhead run");
        (t0.elapsed().as_nanos(), report.sampler.windows())
    };
    let (with_ns, with_windows) = timed(1_000_000);
    let (without_ns, without_windows) = timed(duration_s * 1_000_000 * 4);
    format!(
        "{{\"sampled_wall_ns\":{with_ns},\"sampled_windows\":{with_windows},\
         \"unsampled_wall_ns\":{without_ns},\"unsampled_windows\":{without_windows}}}"
    )
}

fn main() {
    let bin = std::env::args().next().unwrap_or_else(|| "monitor".into());
    let mut profile = "burst".to_string();
    let mut seed = 42u64;
    let mut duration_s = 120u64;
    let mut json: Option<String> = None;
    let mut overhead = false;
    let mut umq_bound: Option<usize> = None;
    let mut storms: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => profile = args.next().unwrap_or_else(|| usage(&bin)),
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin))
            }
            "--duration-s" => {
                duration_s = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin))
            }
            "--json" => json = Some(args.next().unwrap_or_else(|| usage(&bin))),
            "--overhead" => overhead = true,
            "--umq-bound" => {
                umq_bound =
                    Some(args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin)))
            }
            "--storms" => {
                storms =
                    Some(args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage(&bin)))
            }
            _ => usage(&bin),
        }
    }

    let mut cfg = profile_config(&profile, seed, duration_s);
    if let Some(b) = umq_bound {
        cfg.umq_bound = if b == 0 { None } else { Some(b) };
    }
    if let Some(s) = storms {
        cfg.open_loop.sc_storms = s;
    }
    println!("== live monitor: profile {profile}, seed {seed}, {duration_s}s simulated ==\n");
    let report = run_monitor(&cfg).expect("monitored run");
    print!("{}", report.render_text());

    if let Some(path) = json {
        let mut doc = report.to_json();
        if overhead {
            doc.pop();
            doc.push_str(",\n\"overhead\":");
            doc.push_str(&overhead_json(seed, duration_s.min(60)));
            doc.push('}');
        }
        doc.push('\n');
        std::fs::write(&path, doc).expect("write --json output");
        println!("wrote {path}");
    }
}
