//! Ablation: cycle merge vs. blind merge-all (paper Section 4.2).
//!
//! The paper rejects the "simplistic solution" of merging all the updates
//! whenever there is a broken query anomaly" for two reasons: more
//! intermediate view states go missing, and the bigger batch runs longer
//! and is more likely to be aborted by the next conflicting change. This
//! experiment quantifies both on the Figure-10 mixed workload: the number
//! of view refreshes (commits — each is an intermediate state made visible)
//! and the total/abort cost, under the pessimistic strategy.

use dyno_bench::{
    cost_model, render_table, secs, testbed_config, warn_if_debug, write_json_table, BenchArgs,
};
use dyno_core::{CorrectionPolicy, Strategy};
use dyno_sim::{build_testbed, run_scenario, Scenario, WorkloadGen};

const SEEDS: u64 = 3;

fn main() {
    warn_if_debug();
    let args = BenchArgs::parse();
    let cfg = testbed_config();
    println!("== Ablation: cycle merge vs. blind merge-all (Section 4.2) ==");
    println!("200 DUs + 10 SCs, pessimistic; simulated seconds, mean of 3 seeds\n");

    let mut rows = Vec::new();
    for interval_s in [3u64, 17, 29] {
        let mut cells = vec![interval_s.to_string()];
        for policy in [CorrectionPolicy::MergeCycles, CorrectionPolicy::MergeAll] {
            let (mut total, mut abort, mut refreshes) = (0u64, 0u64, 0u64);
            for seed in 0..SEEDS {
                let (space, view) = build_testbed(&cfg);
                let mut gen = WorkloadGen::new(cfg, 0xAB1 + interval_s + 1000 * seed);
                let schedule = gen.mixed(200, 500_000, 10, 0, interval_s * 1_000_000);
                let report = run_scenario(
                    Scenario::new(space, view, schedule)
                        .with_strategy(Strategy::Pessimistic)
                        .with_policy(policy)
                        .with_cost(cost_model()),
                )
                .unwrap_or_else(|e| panic!("interval {interval_s}s/{policy:?}: {e}"));
                assert!(report.converged, "interval {interval_s}s/{policy:?} must converge");
                total += report.metrics.total_cost_us();
                abort += report.metrics.abort_us;
                refreshes += report.dyno_stats.committed;
            }
            cells.push(secs(total / SEEDS));
            cells.push(secs(abort / SEEDS));
            cells.push((refreshes / SEEDS).to_string());
        }
        rows.push(cells);
    }
    let header = [
        "interval (s)",
        "cycles (s)",
        "abort (s)",
        "refreshes",
        "merge-all (s)",
        "abort (s)",
        "refreshes",
    ];
    println!("{}", render_table(&header, &rows));
    if let Some(path) = &args.json {
        write_json_table(path, "ablation_merge", &header, &rows).expect("write --json output");
        println!("series written to {path}\n");
    }
    println!(
        "the paper's argument quantified: blind merging exposes far fewer\n\
         intermediate view states (refreshes) and tends to waste more work\n\
         when a long merged batch gets broken."
    );
}
