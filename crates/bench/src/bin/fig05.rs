//! Paper Figure 5: a complex eight-update dependency-correction example.
//!
//! The paper's figure shows an abstract queue of eight maintenance
//! processes with concurrent- and semantic-dependency edges containing two
//! cycles; correction removes the cycles by merging and then topologically
//! sorts to a legal order. We reproduce that pipeline on an eight-node graph
//! with the same structure: two multi-node cycles plus forward and backward
//! (unsafe) edges.

use dyno_bench::{write_json_table, BenchArgs};
use dyno_core::{legal_schedule, DepGraph, DepKind, Dependency};

fn dep(dependent: usize, prerequisite: usize, kind: DepKind) -> Dependency {
    Dependency { dependent, prerequisite, kind }
}

fn main() {
    let args = BenchArgs::parse();
    println!("== Figure 5: complex example of dependency correction ==\n");
    // Queue positions 0..8 (the paper numbers them 1..8).
    let deps = vec![
        // Cycle A between positions 1 and 2 (paper nodes 2,3):
        dep(1, 2, DepKind::Concurrent),
        dep(2, 1, DepKind::Semantic),
        // Cycle B between positions 5 and 6 (paper nodes 6,7):
        dep(5, 6, DepKind::Concurrent),
        dep(6, 5, DepKind::Semantic),
        // Unsafe forward dependency: node 0 depends on the first cycle.
        dep(0, 1, DepKind::Concurrent),
        // Safe dependencies flowing backward:
        dep(3, 2, DepKind::Semantic),
        dep(4, 0, DepKind::Semantic),
        dep(7, 6, DepKind::Semantic),
    ];
    let graph = DepGraph::from_edges(8, deps);

    println!("initial queue: 1 2 3 4 5 6 7 8");
    println!("unsafe dependencies in the initial order:");
    for d in graph.unsafe_dependencies() {
        println!("  M(#{}) <-{}- M(#{})", d.dependent + 1, d.kind, d.prerequisite + 1);
    }

    let schedule = legal_schedule(&graph);
    println!("\ncycle removal merges:");
    for batch in schedule.batches.iter().filter(|b| b.len() > 1) {
        let names: Vec<String> = batch.iter().map(|n| (n + 1).to_string()).collect();
        println!("  {{{}}}", names.join(","));
    }
    let rendered: Vec<String> = schedule
        .batches
        .iter()
        .map(|b| b.iter().map(|n| (n + 1).to_string()).collect::<Vec<_>>().join(""))
        .collect();
    println!("\nlegal order after topological sort: {}", rendered.join(" "));

    // Verify legality: every dependency must point backward in the new order.
    let pos_of =
        |node: usize| schedule.batches.iter().position(|b| b.contains(&node)).expect("scheduled");
    for d in graph.dependencies() {
        assert!(
            pos_of(d.prerequisite) <= pos_of(d.dependent),
            "dependency {d} still unsafe after correction"
        );
    }
    println!("\nall dependencies safe in the corrected order (Theorem 2).");
    if let Some(path) = &args.json {
        let rows: Vec<Vec<String>> = rendered
            .iter()
            .enumerate()
            .map(|(i, members)| vec![(i + 1).to_string(), members.clone()])
            .collect();
        write_json_table(path, "fig05", &["batch", "members"], &rows).expect("write --json output");
        println!("series written to {path}");
    }
}
