//! Relation schemas and attribute references.

use std::fmt;

use crate::error::RelationalError;

/// Static type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Int => "INT",
            AttrType::Float => "FLOAT",
            AttrType::Str => "STR",
            AttrType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A named, typed attribute (column).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Column name, unique within its schema.
    pub name: String,
    /// Column type.
    pub ty: AttrType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute { name: name.into(), ty }
    }
}

/// A fully qualified column reference `Relation.Attribute`, as used in view
/// definitions, predicates, and projections.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Relation name.
    pub relation: String,
    /// Attribute name within that relation.
    pub attr: String,
}

impl ColRef {
    /// Creates a column reference.
    pub fn new(relation: impl Into<String>, attr: impl Into<String>) -> Self {
        ColRef { relation: relation.into(), attr: attr.into() }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.relation, self.attr)
    }
}

/// The schema of a relation: its name plus an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Relation name, unique within its catalog.
    pub relation: String,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new(
        relation: impl Into<String>,
        attrs: Vec<Attribute>,
    ) -> Result<Self, RelationalError> {
        let relation = relation.into();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationalError::DuplicateAttribute { relation, attr: a.name.clone() });
            }
        }
        Ok(Schema { relation, attrs })
    }

    /// Shorthand: builds a schema from `(name, type)` pairs, panicking on
    /// duplicates. Intended for tests and static testbed definitions.
    pub fn of(relation: &str, cols: &[(&str, AttrType)]) -> Self {
        Schema::new(relation, cols.iter().map(|(n, t)| Attribute::new(*n, *t)).collect())
            .expect("static schema must not contain duplicate attributes")
    }

    /// The attributes in declaration order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of the named attribute, if present.
    pub fn index_of(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == attr)
    }

    /// True iff the schema contains the named attribute.
    pub fn has_attr(&self, attr: &str) -> bool {
        self.index_of(attr).is_some()
    }

    /// Index of the named attribute, or a [`RelationalError::UnknownAttribute`].
    pub fn require(&self, attr: &str) -> Result<usize, RelationalError> {
        self.index_of(attr).ok_or_else(|| RelationalError::UnknownAttribute {
            relation: self.relation.clone(),
            attr: attr.to_string(),
        })
    }

    /// Returns a copy with the relation renamed.
    pub fn renamed(&self, to: impl Into<String>) -> Schema {
        Schema { relation: to.into(), attrs: self.attrs.clone() }
    }

    /// Returns a copy with one attribute renamed.
    pub fn with_attr_renamed(&self, from: &str, to: &str) -> Result<Schema, RelationalError> {
        let idx = self.require(from)?;
        if self.has_attr(to) {
            return Err(RelationalError::DuplicateAttribute {
                relation: self.relation.clone(),
                attr: to.to_string(),
            });
        }
        let mut attrs = self.attrs.clone();
        attrs[idx].name = to.to_string();
        Ok(Schema { relation: self.relation.clone(), attrs })
    }

    /// Returns a copy with one attribute removed.
    pub fn with_attr_dropped(&self, attr: &str) -> Result<Schema, RelationalError> {
        let idx = self.require(attr)?;
        let mut attrs = self.attrs.clone();
        attrs.remove(idx);
        Ok(Schema { relation: self.relation.clone(), attrs })
    }

    /// Returns a copy with an attribute appended.
    pub fn with_attr_added(&self, attr: Attribute) -> Result<Schema, RelationalError> {
        if self.has_attr(&attr.name) {
            return Err(RelationalError::DuplicateAttribute {
                relation: self.relation.clone(),
                attr: attr.name,
            });
        }
        let mut attrs = self.attrs.clone();
        attrs.push(attr);
        Ok(Schema { relation: self.relation.clone(), attrs })
    }

    /// Fully qualified reference to the named attribute of this relation.
    pub fn col(&self, attr: &str) -> ColRef {
        ColRef::new(self.relation.clone(), attr)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Str), ("c", AttrType::Float)])
    }

    #[test]
    fn index_lookup() {
        let s = abc();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert!(s.require("z").is_err());
    }

    #[test]
    fn duplicate_attr_rejected() {
        let err = Schema::new(
            "R",
            vec![Attribute::new("a", AttrType::Int), Attribute::new("a", AttrType::Int)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn rename_attr() {
        let s = abc().with_attr_renamed("b", "bb").unwrap();
        assert!(s.has_attr("bb"));
        assert!(!s.has_attr("b"));
        assert!(abc().with_attr_renamed("b", "a").is_err(), "rename onto existing name");
        assert!(abc().with_attr_renamed("zz", "y").is_err());
    }

    #[test]
    fn drop_and_add_attr() {
        let s = abc().with_attr_dropped("a").unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("b"), Some(0));
        let s2 = s.with_attr_added(Attribute::new("d", AttrType::Bool)).unwrap();
        assert_eq!(s2.arity(), 3);
        assert!(s2.with_attr_added(Attribute::new("d", AttrType::Int)).is_err());
    }

    #[test]
    fn display_schema() {
        assert_eq!(abc().to_string(), "R(a INT, b STR, c FLOAT)");
    }
}
