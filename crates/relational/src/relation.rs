//! Relations (non-negative bags) and deltas (signed bags) with schemas.

use std::fmt;

use crate::error::RelationalError;
use crate::schema::Schema;
use crate::tuple::{SignedBag, Tuple};

/// A stored relation: a schema plus a bag of tuples with positive
/// multiplicities (SQL bag semantics; duplicates allowed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    rows: SignedBag,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation { schema, rows: SignedBag::new() }
    }

    /// Builds a relation from tuples, type-checking each against the schema.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(
        schema: Schema,
        tuples: I,
    ) -> Result<Self, RelationalError> {
        let mut r = Relation::empty(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying bag.
    pub fn rows(&self) -> &SignedBag {
        &self.rows
    }

    /// Total number of tuples counting duplicates.
    pub fn len(&self) -> u64 {
        self.rows.weight()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts one occurrence of `tuple`.
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), RelationalError> {
        tuple.check_against(&self.schema)?;
        self.rows.add(tuple, 1);
        Ok(())
    }

    /// Deletes one occurrence of `tuple`; errors if it is not present.
    pub fn delete(&mut self, tuple: &Tuple) -> Result<(), RelationalError> {
        if self.rows.count(tuple) <= 0 {
            return Err(RelationalError::DeleteMissing {
                relation: self.schema.relation.clone(),
                tuple: tuple.to_string(),
            });
        }
        self.rows.add(tuple.clone(), -1);
        Ok(())
    }

    /// Applies a delta; errors (leaving `self` unchanged) if the result would
    /// contain a negative multiplicity or the schemas are incompatible.
    pub fn apply(&mut self, delta: &Delta) -> Result<(), RelationalError> {
        if delta.schema().arity() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.schema.relation.clone(),
                expected: self.schema.arity(),
                got: delta.schema().arity(),
            });
        }
        for (t, c) in delta.rows().iter() {
            if self.rows.count(t) + c < 0 {
                return Err(RelationalError::DeleteMissing {
                    relation: self.schema.relation.clone(),
                    tuple: t.to_string(),
                });
            }
        }
        for (t, c) in delta.rows().iter() {
            t.check_against(&self.schema)?;
            self.rows.add(t.clone(), c);
        }
        Ok(())
    }

    /// Replaces this relation's schema (used by DDL); the caller must have
    /// already transformed the rows to match.
    pub(crate) fn replace_parts(schema: Schema, rows: SignedBag) -> Relation {
        debug_assert!(rows.is_non_negative());
        Relation { schema, rows }
    }

    /// The delta that transforms `old` into `new` (i.e. `new − old`).
    pub fn diff(old: &Relation, new: &Relation) -> Delta {
        Delta { schema: new.schema.clone(), rows: new.rows.diff(&old.rows) }
    }

    /// Renders up to `limit` tuples as a sorted, human-readable table.
    pub fn display_sample(&self, limit: usize) -> String {
        let mut out = format!("{} [{} tuples]\n", self.schema, self.len());
        for (t, c) in self.rows.sorted_entries().into_iter().take(limit) {
            if c == 1 {
                out.push_str(&format!("  {t}\n"));
            } else {
                out.push_str(&format!("  {t} x{c}\n"));
            }
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_sample(20))
    }
}

/// A signed change to one relation: tuples with positive multiplicities are
/// insertions, negative are deletions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    schema: Schema,
    rows: SignedBag,
}

impl Delta {
    /// An empty delta over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Delta { schema, rows: SignedBag::new() }
    }

    /// Builds a delta from signed rows, type-checking each tuple.
    pub fn from_rows<I: IntoIterator<Item = (Tuple, i64)>>(
        schema: Schema,
        rows: I,
    ) -> Result<Self, RelationalError> {
        let mut d = Delta::empty(schema);
        for (t, c) in rows {
            d.add(t, c)?;
        }
        Ok(d)
    }

    /// A pure-insert delta.
    pub fn inserts<I: IntoIterator<Item = Tuple>>(
        schema: Schema,
        tuples: I,
    ) -> Result<Self, RelationalError> {
        Delta::from_rows(schema, tuples.into_iter().map(|t| (t, 1)))
    }

    /// A pure-delete delta.
    pub fn deletes<I: IntoIterator<Item = Tuple>>(
        schema: Schema,
        tuples: I,
    ) -> Result<Self, RelationalError> {
        Delta::from_rows(schema, tuples.into_iter().map(|t| (t, -1)))
    }

    /// The schema this delta applies to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The signed rows.
    pub fn rows(&self) -> &SignedBag {
        &self.rows
    }

    /// Adds `count` occurrences of `tuple`.
    pub fn add(&mut self, tuple: Tuple, count: i64) -> Result<(), RelationalError> {
        tuple.check_against(&self.schema)?;
        self.rows.add(tuple, count);
        Ok(())
    }

    /// Merges another delta into this one (schemas must agree in arity).
    pub fn merge(&mut self, other: &Delta) -> Result<(), RelationalError> {
        if other.schema.arity() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.schema.relation.clone(),
                expected: self.schema.arity(),
                got: other.schema.arity(),
            });
        }
        self.rows.merge(&other.rows);
        Ok(())
    }

    /// The inverse delta.
    pub fn negated(&self) -> Delta {
        Delta { schema: self.schema.clone(), rows: self.rows.negated() }
    }

    /// Total affected tuple count (insert + delete magnitudes).
    pub fn weight(&self) -> u64 {
        self.rows.weight()
    }

    /// True iff the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Projects the delta onto the attributes named in `attrs`
    /// (in that order), producing a delta over the projected schema.
    pub fn project_to(&self, attrs: &[String]) -> Result<Delta, RelationalError> {
        let indices: Vec<usize> =
            attrs.iter().map(|a| self.schema.require(a)).collect::<Result<_, _>>()?;
        let kept: Vec<_> = indices.iter().map(|&i| self.schema.attrs()[i].clone()).collect();
        let schema = Schema::new(self.schema.relation.clone(), kept)?;
        Ok(Delta { schema, rows: self.rows.project(&indices) })
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Δ{} [{} rows]", self.schema, self.rows.distinct_len())?;
        for (t, c) in self.rows.sorted_entries().into_iter().take(20) {
            writeln!(f, "  {} {t}", if c > 0 { "+" } else { "-" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn schema() -> Schema {
        Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Int)])
    }

    fn t(a: i64, b: i64) -> Tuple {
        Tuple::of([a, b])
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut r = Relation::empty(schema());
        r.insert(t(1, 2)).unwrap();
        r.insert(t(1, 2)).unwrap();
        assert_eq!(r.len(), 2);
        r.delete(&t(1, 2)).unwrap();
        assert_eq!(r.len(), 1);
        r.delete(&t(1, 2)).unwrap();
        assert!(r.is_empty());
        assert!(r.delete(&t(1, 2)).is_err(), "deleting absent tuple is an error");
    }

    #[test]
    fn apply_delta_atomic_on_failure() {
        let mut r = Relation::from_tuples(schema(), [t(1, 1)]).unwrap();
        let bad = Delta::from_rows(schema(), [(t(5, 5), 1), (t(9, 9), -1)]).unwrap();
        let before = r.clone();
        assert!(r.apply(&bad).is_err());
        assert_eq!(r, before, "failed apply must not partially mutate");
    }

    #[test]
    fn diff_then_apply_is_identity() {
        let old = Relation::from_tuples(schema(), [t(1, 1), t(2, 2)]).unwrap();
        let new = Relation::from_tuples(schema(), [t(2, 2), t(3, 3), t(3, 3)]).unwrap();
        let d = Relation::diff(&old, &new);
        let mut r = old.clone();
        r.apply(&d).unwrap();
        assert_eq!(r, new);
    }

    #[test]
    fn delta_projection() {
        let d = Delta::from_rows(schema(), [(t(1, 10), 1), (t(1, 20), 1), (t(2, 30), -1)]).unwrap();
        let p = d.project_to(&["a".to_string()]).unwrap();
        assert_eq!(p.rows().count(&Tuple::of([1i64])), 2);
        assert_eq!(p.rows().count(&Tuple::of([2i64])), -1);
    }

    #[test]
    fn delta_merge_and_negate() {
        let mut d = Delta::inserts(schema(), [t(1, 1)]).unwrap();
        d.merge(&Delta::deletes(schema(), [t(1, 1)]).unwrap()).unwrap();
        assert!(d.is_empty());
        let d2 = Delta::inserts(schema(), [t(4, 4)]).unwrap();
        let mut sum = d2.clone();
        sum.merge(&d2.negated()).unwrap();
        assert!(sum.is_empty());
    }

    #[test]
    fn typed_insert_rejected() {
        use crate::value::Value;
        let mut r = Relation::empty(schema());
        assert!(r.insert(Tuple::of([Value::from(1), Value::str("no")])).is_err());
    }
}
