//! Scalar values stored in tuples.
//!
//! Values are dynamically typed; the [`AttrType`](crate::schema::AttrType) of
//! the owning attribute constrains which variants a column may hold. Floats
//! are wrapped in [`F64`] to obtain the total order / `Eq` / `Hash` required
//! for bag semantics (relations are hash multisets of tuples).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An `f64` with a total order suitable for use inside tuples.
///
/// NaN compares greater than all other values and equal to itself; `-0.0`
/// is normalized to `0.0` so that hashing agrees with equality.
#[derive(Debug, Clone, Copy)]
pub struct F64(f64);

impl F64 {
    /// Wraps a raw float, normalizing `-0.0` to `0.0`.
    pub fn new(v: f64) -> Self {
        if v == 0.0 {
            F64(0.0)
        } else {
            F64(v)
        }
    }

    /// Returns the inner float.
    pub fn get(self) -> f64 {
        self.0
    }

    fn key(self) -> u64 {
        if self.0.is_nan() {
            f64::NAN.to_bits()
        } else {
            self.0.to_bits()
        }
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.0.partial_cmp(&other.0).expect("non-NaN floats compare"),
        }
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A scalar value in a tuple.
///
/// Strings are reference-counted so that cloning tuples (which happens on
/// every join output) is cheap.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// SQL NULL. Compares equal to itself for bag-semantics purposes, but
    /// never satisfies a comparison predicate (see `Predicate` evaluation).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total order.
    Float(F64),
    /// UTF-8 string (cheaply clonable).
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for float values.
    pub fn float(v: f64) -> Self {
        Value::Float(F64::new(v))
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type tag of this value, or `None` for NULL (which is
    /// compatible with every attribute type).
    pub fn runtime_type(&self) -> Option<crate::schema::AttrType> {
        use crate::schema::AttrType;
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(AttrType::Bool),
            Value::Int(_) => Some(AttrType::Int),
            Value::Float(_) => Some(AttrType::Float),
            Value::Str(_) => Some(AttrType::Str),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            // Embedded quotes are doubled, matching the SQL dialect the
            // parser reads back.
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn negative_zero_normalizes() {
        assert_eq!(F64::new(-0.0), F64::new(0.0));
        assert_eq!(hash_of(&F64::new(-0.0)), hash_of(&F64::new(0.0)));
    }

    #[test]
    fn nan_is_self_equal_and_maximal() {
        let nan = F64::new(f64::NAN);
        assert_eq!(nan, nan);
        assert_eq!(hash_of(&nan), hash_of(&F64::new(f64::NAN)));
        assert!(nan > F64::new(f64::INFINITY));
    }

    #[test]
    fn float_total_order_matches_ieee_on_normals() {
        assert!(F64::new(1.0) < F64::new(2.0));
        assert!(F64::new(-1.0) < F64::new(0.0));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(Value::str("a").to_string(), "'a'");
        assert_eq!(Value::str("O'Reilly").to_string(), "'O''Reilly'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn runtime_types() {
        use crate::schema::AttrType;
        assert_eq!(Value::from(1).runtime_type(), Some(AttrType::Int));
        assert_eq!(Value::Null.runtime_type(), None);
        assert_eq!(Value::str("x").runtime_type(), Some(AttrType::Str));
    }
}
