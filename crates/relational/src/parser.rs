//! A small SQL parser for the SPJ dialect this system evaluates — the same
//! form the paper writes its view definitions in (Queries (1)–(5)):
//!
//! ```sql
//! SELECT Store.StoreName, Item.Book, ReaderDigest.Comments AS Review
//! FROM Store, Item, Catalog, ReaderDigest
//! WHERE Store.SID = Item.SID AND Item.Book = Catalog.Title
//! ```
//!
//! Supported: qualified columns (`Relation.Attr`), `AS` output aliases,
//! comma-separated FROM lists, and a conjunctive WHERE of equi-joins and
//! column-vs-literal comparisons (`= <> != < <= > >=`). Literals are
//! integers, floats, single-quoted strings (doubled-quote escape), `TRUE`,
//! `FALSE`, `NULL`. Keywords are case-insensitive; identifiers are
//! case-sensitive. `parse_query` accepts a bare `SELECT …`;
//! [`parse_create_view`] additionally accepts the `CREATE VIEW name AS …`
//! wrapper.

use std::fmt;

use crate::query::{CmpOp, Predicate, ProjItem, SpjQuery};
use crate::schema::ColRef;
use crate::value::Value;

/// A parse failure: position (byte offset) plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the problem was detected.
    pub at: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str), // , . ( ) = <> != < <= > >=
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<(usize, Token)>, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let Some(c) = self.rest().chars().next() else {
            return Ok(None);
        };
        let token = if c.is_ascii_alphabetic() || c == '_' {
            let end = self
                .rest()
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
                .map(|(i, _)| i)
                .unwrap_or(self.rest().len());
            let word = &self.rest()[..end];
            self.pos += end;
            Token::Ident(word.to_string())
        } else if c.is_ascii_digit()
            || (c == '-' && self.rest()[1..].chars().next().is_some_and(|d| d.is_ascii_digit()))
        {
            let end = self
                .rest()
                .char_indices()
                .skip(1)
                .find(|(_, c)| !(c.is_ascii_digit() || *c == '.'))
                .map(|(i, _)| i)
                .unwrap_or(self.rest().len());
            let text = &self.rest()[..end];
            self.pos += end;
            if text.contains('.') {
                Token::Float(text.parse().map_err(|_| ParseError {
                    at: start,
                    message: format!("invalid numeric literal `{text}`"),
                })?)
            } else {
                Token::Int(text.parse().map_err(|_| ParseError {
                    at: start,
                    message: format!("invalid integer literal `{text}`"),
                })?)
            }
        } else if c == '\'' {
            // Single-quoted string; '' escapes a quote.
            let mut out = String::new();
            let mut chars = self.rest().char_indices().skip(1).peekable();
            loop {
                match chars.next() {
                    Some((i, '\'')) => {
                        if let Some(&(_, '\'')) = chars.peek() {
                            out.push('\'');
                            chars.next();
                        } else {
                            self.pos += i + 1;
                            break;
                        }
                    }
                    Some((_, c)) => out.push(c),
                    None => {
                        return Err(ParseError {
                            at: start,
                            message: "unterminated string literal".into(),
                        })
                    }
                }
            }
            Token::Str(out)
        } else {
            let two = &self.rest()[..self.rest().len().min(2)];
            let sym: &'static str = match two {
                "<>" => "<>",
                "!=" => "!=",
                "<=" => "<=",
                ">=" => ">=",
                _ => match c {
                    ',' => ",",
                    '.' => ".",
                    '(' => "(",
                    ')' => ")",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    other => {
                        return Err(ParseError {
                            at: start,
                            message: format!("unexpected character `{other}`"),
                        })
                    }
                },
            };
            self.pos += sym.len();
            Token::Symbol(sym)
        };
        Ok(Some((start, token)))
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    idx: usize,
    end: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::new();
        while let Some(t) = lexer.next_token()? {
            tokens.push(t);
        }
        Ok(Parser { tokens, idx: 0, end: src.len() })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.idx).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.tokens.get(self.idx).map(|(p, _)| *p).unwrap_or(self.end)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { at: self.here(), message: message.into() }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.idx).map(|(_, t)| t.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", kw.to_uppercase())))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Symbol(s)) if *s == sym => {
                self.idx += 1;
                Ok(())
            }
            _ => Err(self.error(format!("expected `{sym}`"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(w)) if !is_reserved(w) => {
                let w = w.clone();
                self.idx += 1;
                Ok(w)
            }
            _ => Err(self.error("expected an identifier")),
        }
    }

    fn qualified(&mut self) -> Result<ColRef, ParseError> {
        let relation = self.ident()?;
        self.expect_symbol(".")?;
        let attr = self.ident()?;
        Ok(ColRef::new(relation, attr))
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Value::from(i)),
            Some(Token::Float(f)) => Ok(Value::float(f)),
            Some(Token::Str(s)) => Ok(Value::str(s)),
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("null") => Ok(Value::Null),
            _ => {
                self.idx = self.idx.saturating_sub(1);
                Err(self.error("expected a literal"))
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Some(Token::Symbol("=")) => CmpOp::Eq,
            Some(Token::Symbol("<>")) | Some(Token::Symbol("!=")) => CmpOp::Ne,
            Some(Token::Symbol("<")) => CmpOp::Lt,
            Some(Token::Symbol("<=")) => CmpOp::Le,
            Some(Token::Symbol(">")) => CmpOp::Gt,
            Some(Token::Symbol(">=")) => CmpOp::Ge,
            _ => return Err(self.error("expected a comparison operator")),
        };
        self.idx += 1;
        Ok(op)
    }

    fn query(&mut self) -> Result<SpjQuery, ParseError> {
        self.expect_keyword("select")?;
        let mut projection = Vec::new();
        loop {
            let col = self.qualified()?;
            let output = if self.keyword("as") { self.ident()? } else { col.attr.clone() };
            projection.push(ProjItem { col, output });
            if !matches!(self.peek(), Some(Token::Symbol(","))) {
                break;
            }
            self.idx += 1;
        }
        self.expect_keyword("from")?;
        let mut tables = Vec::new();
        loop {
            tables.push(self.ident()?);
            if !matches!(self.peek(), Some(Token::Symbol(","))) {
                break;
            }
            self.idx += 1;
        }
        let mut predicates = Vec::new();
        if self.keyword("where") {
            loop {
                predicates.push(self.predicate()?);
                if !self.keyword("and") {
                    break;
                }
            }
        }
        if self.peek().is_some() {
            return Err(self.error("trailing input after the query"));
        }
        Ok(SpjQuery { tables, projection, predicates })
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        // Left side: qualified column or literal.
        if matches!(self.peek(), Some(Token::Ident(w)) if !is_reserved(w)) {
            let left = self.qualified()?;
            let op = self.cmp_op()?;
            if matches!(self.peek(), Some(Token::Ident(w)) if !is_reserved(w)) {
                let right = self.qualified()?;
                if op != CmpOp::Eq {
                    return Err(self.error(
                        "only equality joins between columns are supported in this dialect",
                    ));
                }
                Ok(Predicate::JoinEq(left, right))
            } else {
                Ok(Predicate::Compare(left, op, self.literal()?))
            }
        } else {
            // literal OP column → flip.
            let lit = self.literal()?;
            let op = self.cmp_op()?;
            let right = self.qualified()?;
            let flipped = match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                eq => eq,
            };
            Ok(Predicate::Compare(right, flipped, lit))
        }
    }
}

fn is_reserved(word: &str) -> bool {
    ["select", "from", "where", "and", "as", "create", "view", "true", "false", "null"]
        .iter()
        .any(|kw| word.eq_ignore_ascii_case(kw))
}

/// Parses a bare `SELECT … FROM … [WHERE …]` query.
///
/// ```
/// use dyno_relational::parse_query;
/// let q = parse_query(
///     "SELECT Item.Book, Item.Price FROM Item, Catalog \
///      WHERE Item.Book = Catalog.Title AND Item.Price < 40",
/// ).unwrap();
/// assert_eq!(q.tables, vec!["Item", "Catalog"]);
/// assert_eq!(q.predicates.len(), 2);
/// // Display renders the same dialect back:
/// assert_eq!(parse_query(&q.to_string()).unwrap(), q);
/// ```
pub fn parse_query(sql: &str) -> Result<SpjQuery, ParseError> {
    Parser::new(sql)?.query()
}

/// Parses `CREATE VIEW name AS SELECT …`, returning the view name and its
/// query. A bare `SELECT` is also accepted (name `None`).
pub fn parse_create_view(sql: &str) -> Result<(Option<String>, SpjQuery), ParseError> {
    let mut p = Parser::new(sql)?;
    if p.keyword("create") {
        p.expect_keyword("view")?;
        let name = p.ident()?;
        p.expect_keyword("as")?;
        Ok((Some(name), p.query()?))
    } else {
        Ok((None, p.query()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SpjQueryBuilder;

    fn builder_bookinfo() -> SpjQuery {
        SpjQuery::over(["Store", "Item", "Catalog"])
            .select("Store", "StoreName")
            .select("Item", "Book")
            .select("Item", "Price")
            .join_eq(("Store", "SID"), ("Item", "SID"))
            .join_eq(("Item", "Book"), ("Catalog", "Title"))
            .build()
    }

    #[test]
    fn parses_paper_query_one_shape() {
        let q = parse_query(
            "SELECT Store.StoreName, Item.Book, Item.Price \
             FROM Store, Item, Catalog \
             WHERE Store.SID = Item.SID AND Item.Book = Catalog.Title",
        )
        .unwrap();
        assert_eq!(q, builder_bookinfo());
    }

    #[test]
    fn parses_create_view_wrapper() {
        let (name, q) =
            parse_create_view("CREATE VIEW BookInfo AS SELECT Item.Book FROM Item").unwrap();
        assert_eq!(name.as_deref(), Some("BookInfo"));
        assert_eq!(q.tables, vec!["Item"]);
        let (none, _) = parse_create_view("SELECT Item.Book FROM Item").unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn parses_aliases_and_literals() {
        let q = parse_query(
            "select R.Comments as Review from ReaderDigest, R \
             where R.price >= 10 and R.title = 'O''Reilly Guide' \
             and R.active = TRUE and R.score <> 1.5",
        )
        .unwrap();
        assert_eq!(q.projection[0].output, "Review");
        assert!(q.predicates.contains(&Predicate::Compare(
            ColRef::new("R", "price"),
            CmpOp::Ge,
            Value::from(10)
        )));
        assert!(q.predicates.contains(&Predicate::Compare(
            ColRef::new("R", "title"),
            CmpOp::Eq,
            Value::str("O'Reilly Guide")
        )));
        assert!(q.predicates.contains(&Predicate::Compare(
            ColRef::new("R", "active"),
            CmpOp::Eq,
            Value::Bool(true)
        )));
        assert!(q.predicates.contains(&Predicate::Compare(
            ColRef::new("R", "score"),
            CmpOp::Ne,
            Value::float(1.5)
        )));
    }

    #[test]
    fn flips_literal_on_left() {
        let q = parse_query("SELECT R.a FROM R WHERE 10 < R.a").unwrap();
        assert_eq!(
            q.predicates,
            vec![Predicate::Compare(ColRef::new("R", "a"), CmpOp::Gt, Value::from(10))]
        );
    }

    #[test]
    fn negative_numbers() {
        let q = parse_query("SELECT R.a FROM R WHERE R.a > -5").unwrap();
        assert_eq!(
            q.predicates,
            vec![Predicate::Compare(ColRef::new("R", "a"), CmpOp::Gt, Value::from(-5))]
        );
    }

    #[test]
    fn display_round_trips() {
        let q = builder_bookinfo();
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
        let with_filter = SpjQuery::over(["Item"])
            .select_as("Item", "Book", "Title")
            .filter("Item", "Book", CmpOp::Eq, "Data Integration Guide")
            .build();
        assert_eq!(parse_query(&with_filter.to_string()).unwrap(), with_filter);
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_query("SELECT FROM R").unwrap_err();
        assert!(err.at > 0 && err.message.contains("identifier"));
        let err = parse_query("SELECT R.a FROM R WHERE R.a < R.b").unwrap_err();
        assert!(err.message.contains("equality"));
        let err = parse_query("SELECT R.a FROM R extra").unwrap_err();
        assert!(err.message.contains("trailing"));
        assert!(parse_query("SELECT R.a FROM R WHERE R.s = 'open").is_err());
        assert!(parse_query("SELEC R.a FROM R").is_err());
    }

    #[test]
    fn unqualified_columns_rejected() {
        // The dialect requires Relation.Attr — matching how maintenance
        // queries must know which source each column belongs to.
        assert!(parse_query("SELECT a FROM R").is_err());
    }

    // Re-exported builder is exercised too (compile-time shape check).
    #[allow(dead_code)]
    fn builder_type(_: SpjQueryBuilder) {}
}
