//! Secondary hash indexes over relations.
//!
//! A [`HashIndex`] maps a key — the values of a fixed attribute set — to the
//! signed rows carrying that key. Buckets are keyed by a 64-bit hash of the
//! key values so probes never materialize a key [`Tuple`]: the executor
//! hashes *borrowed* values straight out of the probing row and verifies
//! candidate rows with an equality check (hash collisions are possible and
//! must be filtered by the caller via [`HashIndex::key_matches`]).
//!
//! Indexes are maintained by [`crate::Catalog`] as updates commit: data
//! updates apply their delta to every index on the touched relation; schema
//! changes rebuild or drop affected indexes (see
//! `Catalog::apply_schema_change`).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::error::RelationalError;
use crate::relation::Relation;
use crate::tuple::{SignedBag, Tuple};
use crate::value::Value;

/// Hashes a sequence of borrowed values into a bucket key. The same function
/// serves index maintenance (hashing stored rows) and probes (hashing values
/// borrowed from the probing row), so the two always agree.
pub fn key_hash<'a, I: IntoIterator<Item = &'a Value>>(values: I) -> u64 {
    let mut h = DefaultHasher::new();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// A secondary hash index on one relation, covering a fixed attribute set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HashIndex {
    /// Indexed attribute names, in index-key order.
    attrs: Vec<String>,
    /// Column positions of `attrs` in the indexed relation's schema.
    cols: Vec<usize>,
    /// Bucket-hash → signed rows whose key hashes there. Buckets hold whole
    /// rows (not projections), so probes return rows directly.
    buckets: HashMap<u64, SignedBag>,
}

impl HashIndex {
    /// Builds an index over `relation` covering `attrs`. Fails if any
    /// attribute is missing from the relation's schema.
    pub fn build(relation: &Relation, attrs: &[String]) -> Result<HashIndex, RelationalError> {
        let cols =
            attrs.iter().map(|a| relation.schema().require(a)).collect::<Result<Vec<_>, _>>()?;
        // Pre-size for the distinct-row count: a multi-million-row build
        // would otherwise rehash through every table doubling, churning
        // hundreds of megabytes of transient allocations.
        let buckets = HashMap::with_capacity(relation.rows().distinct_len());
        let mut index = HashIndex { attrs: attrs.to_vec(), cols, buckets };
        index.apply(relation.rows().iter());
        Ok(index)
    }

    /// The indexed attribute names, in key order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// The indexed column positions, aligned with [`HashIndex::attrs`].
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// True iff this index covers exactly the given attribute set
    /// (order-insensitive; duplicate attributes never match).
    pub fn covers(&self, attrs: &[&str]) -> bool {
        if attrs.len() != self.attrs.len() {
            return false;
        }
        let mut want: Vec<&str> = attrs.to_vec();
        let mut have: Vec<&str> = self.attrs.iter().map(String::as_str).collect();
        want.sort_unstable();
        have.sort_unstable();
        want == have
    }

    /// Applies signed rows (a delta, or a full relation on build) to the
    /// index. Counts that cancel to zero disappear; empty buckets are
    /// removed so the index never retains tombstones.
    pub fn apply<'a, I: IntoIterator<Item = (&'a Tuple, i64)>>(&mut self, rows: I) {
        for (t, c) in rows {
            let h = key_hash(self.cols.iter().map(|&i| t.get(i)));
            let bucket = self.buckets.entry(h).or_default();
            bucket.add(t.clone(), c);
            if bucket.is_empty() {
                self.buckets.remove(&h);
            }
        }
    }

    /// The bucket a key hashes to, if non-empty. Candidate rows still need
    /// [`HashIndex::key_matches`] — a bucket may mix hash-colliding keys.
    /// `key` values align with [`HashIndex::attrs`] order.
    pub fn lookup(&self, key: &[&Value]) -> Option<&SignedBag> {
        debug_assert_eq!(key.len(), self.cols.len());
        self.buckets.get(&key_hash(key.iter().copied()))
    }

    /// True iff `row`'s indexed columns equal `key` (aligned with
    /// [`HashIndex::attrs`] order).
    pub fn key_matches(&self, row: &Tuple, key: &[&Value]) -> bool {
        self.cols.iter().zip(key).all(|(&i, &v)| row.get(i) == v)
    }

    /// Collects the rows matching `key` exactly — the collision-checked
    /// convenience form of [`HashIndex::lookup`].
    pub fn probe(&self, key: &[&Value]) -> Vec<(&Tuple, i64)> {
        match self.lookup(key) {
            Some(bucket) => bucket.iter().filter(|(t, _)| self.key_matches(t, key)).collect(),
            None => Vec::new(),
        }
    }

    /// Renames an indexed attribute in place (column positions are
    /// unchanged by an attribute rename).
    pub(crate) fn rename_attr(&mut self, from: &str, to: &str) {
        for a in &mut self.attrs {
            if a == from {
                *a = to.to_string();
            }
        }
    }

    /// Number of distinct rows indexed.
    pub fn len(&self) -> usize {
        self.buckets.values().map(SignedBag::distinct_len).sum()
    }

    /// True iff no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Delta;
    use crate::schema::{AttrType, Schema};

    fn rel() -> Relation {
        Relation::from_tuples(
            Schema::of("R", &[("k", AttrType::Int), ("v", AttrType::Str)]),
            [
                Tuple::of([Value::from(1), Value::str("a")]),
                Tuple::of([Value::from(2), Value::str("b")]),
                Tuple::of([Value::from(2), Value::str("b")]),
                Tuple::of([Value::from(2), Value::str("c")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_probe() {
        let idx = HashIndex::build(&rel(), &["k".into()]).unwrap();
        let two = Value::from(2);
        let hits = idx.probe(&[&two]);
        assert_eq!(hits.iter().map(|(_, c)| c).sum::<i64>(), 3);
        let missing = Value::from(9);
        assert!(idx.probe(&[&missing]).is_empty());
    }

    #[test]
    fn probe_agrees_with_scan_on_every_key() {
        let r = rel();
        let idx = HashIndex::build(&r, &["k".into()]).unwrap();
        for (t, _) in r.rows().iter() {
            let key = [t.get(0)];
            let scanned: i64 =
                r.rows().iter().filter(|(u, _)| u.get(0) == t.get(0)).map(|(_, c)| c).sum();
            let probed: i64 = idx.probe(&key).iter().map(|(_, c)| c).sum();
            assert_eq!(scanned, probed);
        }
    }

    #[test]
    fn delta_maintenance_removes_cancelled_rows() {
        let r = rel();
        let mut idx = HashIndex::build(&r, &["k".into()]).unwrap();
        let delta = Delta::from_rows(
            r.schema().clone(),
            [
                (Tuple::of([Value::from(1), Value::str("a")]), -1),
                (Tuple::of([Value::from(3), Value::str("d")]), 1),
            ],
        )
        .unwrap();
        idx.apply(delta.rows().iter());
        let one = Value::from(1);
        let three = Value::from(3);
        assert!(idx.probe(&[&one]).is_empty(), "cancelled row must vanish");
        assert_eq!(idx.probe(&[&three]).len(), 1);
    }

    #[test]
    fn covers_is_order_insensitive_and_duplicate_safe() {
        let r = Relation::empty(Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Int)]));
        let idx = HashIndex::build(&r, &["a".into(), "b".into()]).unwrap();
        assert!(idx.covers(&["b", "a"]));
        assert!(!idx.covers(&["a"]));
        assert!(!idx.covers(&["a", "a"]));
    }

    #[test]
    fn build_on_missing_attr_fails() {
        assert!(HashIndex::build(&rel(), &["ghost".into()]).is_err());
    }

    #[test]
    fn multi_column_key() {
        let r = Relation::from_tuples(
            Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Int)]),
            [Tuple::of([1i64, 10]), Tuple::of([1i64, 20])],
        )
        .unwrap();
        let idx = HashIndex::build(&r, &["a".into(), "b".into()]).unwrap();
        let (one, ten) = (Value::from(1), Value::from(10));
        assert_eq!(idx.probe(&[&one, &ten]).len(), 1);
    }
}
