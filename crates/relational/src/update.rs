//! Source updates: the unified `DU`/`SC` update type flowing through wrappers
//! and the Update Message Queue.

use std::fmt;

use crate::ddl::SchemaChange;
use crate::relation::Delta;

/// A data update: a signed delta against one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataUpdate {
    /// The relation changed (name at commit time).
    pub relation: String,
    /// The signed tuple changes.
    pub delta: Delta,
}

impl DataUpdate {
    /// Wraps a delta as a data update.
    pub fn new(delta: Delta) -> Self {
        DataUpdate { relation: delta.schema().relation.clone(), delta }
    }

    /// Number of tuples touched (inserts + deletes).
    pub fn weight(&self) -> u64 {
        self.delta.weight()
    }
}

impl fmt::Display for DataUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DU({}, {} tuples)", self.relation, self.weight())
    }
}

/// Any update a source may autonomously commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceUpdate {
    /// A data update (`DU` in the paper).
    Data(DataUpdate),
    /// A schema change (`SC` in the paper).
    Schema(SchemaChange),
}

impl SourceUpdate {
    /// True iff this is a schema change.
    pub fn is_schema_change(&self) -> bool {
        matches!(self, SourceUpdate::Schema(_))
    }

    /// The relation(s) this update touches.
    pub fn touched_relations(&self) -> Vec<&str> {
        match self {
            SourceUpdate::Data(du) => vec![du.relation.as_str()],
            SourceUpdate::Schema(sc) => sc.touched_relations(),
        }
    }
}

impl fmt::Display for SourceUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceUpdate::Data(du) => write!(f, "{du}"),
            SourceUpdate::Schema(sc) => write!(f, "SC[{sc}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use crate::tuple::Tuple;

    #[test]
    fn classification() {
        let schema = Schema::of("R", &[("a", AttrType::Int)]);
        let du = SourceUpdate::Data(DataUpdate::new(
            Delta::inserts(schema, [Tuple::of([1i64])]).unwrap(),
        ));
        assert!(!du.is_schema_change());
        assert_eq!(du.touched_relations(), vec!["R"]);
        let sc = SourceUpdate::Schema(SchemaChange::DropRelation { relation: "R".into() });
        assert!(sc.is_schema_change());
        assert_eq!(sc.touched_relations(), vec!["R"]);
    }
}
