//! SPJ query evaluation over signed bags.
//!
//! The executor validates the query against the *current* schemas of the
//! provided tables — exactly like a query shipped to an autonomous source is
//! parsed against that source's current catalog. A mismatch (missing
//! relation or attribute) surfaces as a schema-conflict error, which the view
//! manager layer interprets as a **broken query** (paper Definition 2).
//!
//! Evaluation is uniform over signed multiplicities, so the same engine
//! serves ordinary queries (non-negative counts), maintenance queries with a
//! delta bound in place of a relation, and the Equation-6 adaptation terms
//! where deltas carry negative counts.

use std::cell::Cell;
use std::collections::{BTreeSet, HashMap};

use crate::error::RelationalError;
use crate::index::{key_hash, HashIndex};
use crate::query::{CmpOp, Predicate, SpjQuery};
use crate::relation::{Delta, Relation};
use crate::schema::{ColRef, Schema};
use crate::tuple::{SignedBag, Tuple};
use crate::value::Value;

/// Cumulative per-thread execution statistics, for attributing work in
/// traces. `dyno-relational` has no dependencies (including on the obs
/// crate), so the executor counts into a thread-local and callers sample
/// deltas into whatever metrics sink they own.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows visited (scans plus collision-checked bucket rows).
    pub rows_scanned: u64,
    /// Secondary-index lookups issued (load probes and join probes).
    pub index_probes: u64,
    /// Join steps executed via index-nested-loop probes.
    pub index_join_steps: u64,
    /// Join steps executed via the hash-join fallback.
    pub hash_join_steps: u64,
    /// Join steps that degenerated to a cartesian product because no
    /// equi-join predicate connected the next table to the intermediate.
    pub cartesian_fallbacks: u64,
    /// Output entries annihilated by Z-set weight cancellation — an `add`
    /// that brought a tuple's net weight to exactly zero inside a delta
    /// operator (projection collisions, join cross terms). High counts mean
    /// the operator did work the downstream pipeline never sees.
    pub weights_cancelled: u64,
}

impl ExecStats {
    /// Field-wise difference since an earlier snapshot.
    pub fn since(self, earlier: ExecStats) -> ExecStats {
        ExecStats {
            rows_scanned: self.rows_scanned.wrapping_sub(earlier.rows_scanned),
            index_probes: self.index_probes.wrapping_sub(earlier.index_probes),
            index_join_steps: self.index_join_steps.wrapping_sub(earlier.index_join_steps),
            hash_join_steps: self.hash_join_steps.wrapping_sub(earlier.hash_join_steps),
            cartesian_fallbacks: self.cartesian_fallbacks.wrapping_sub(earlier.cartesian_fallbacks),
            weights_cancelled: self.weights_cancelled.wrapping_sub(earlier.weights_cancelled),
        }
    }
}

thread_local! {
    static EXEC_STATS: Cell<ExecStats> = const {
        Cell::new(ExecStats {
            rows_scanned: 0,
            index_probes: 0,
            index_join_steps: 0,
            hash_join_steps: 0,
            cartesian_fallbacks: 0,
            weights_cancelled: 0,
        })
    };
}

/// A snapshot of this thread's cumulative [`ExecStats`]. Sample before and
/// after a call and take [`ExecStats::since`] to attribute its work.
pub fn thread_stats() -> ExecStats {
    EXEC_STATS.with(Cell::get)
}

fn bump(f: impl FnOnce(&mut ExecStats)) {
    EXEC_STATS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

/// A borrowed table: schema plus signed rows. Both [`Relation`] and
/// [`Delta`] convert into this.
#[derive(Debug, Clone, Copy)]
pub struct TableSlice<'a> {
    /// The table's schema.
    pub schema: &'a Schema,
    /// The table's signed rows.
    pub rows: &'a SignedBag,
}

impl<'a> From<&'a Relation> for TableSlice<'a> {
    fn from(r: &'a Relation) -> Self {
        TableSlice { schema: r.schema(), rows: r.rows() }
    }
}

impl<'a> From<&'a Delta> for TableSlice<'a> {
    fn from(d: &'a Delta) -> Self {
        TableSlice { schema: d.schema(), rows: d.rows() }
    }
}

/// Supplies tables by name to the executor.
pub trait RelationProvider {
    /// Looks up a table; failing with [`RelationalError::UnknownRelation`]
    /// when the name does not resolve.
    fn table(&self, name: &str) -> Result<TableSlice<'_>, RelationalError>;

    /// A secondary hash index on `name` covering exactly `attrs`
    /// (order-insensitive), if the provider maintains one. The default —
    /// no index support — keeps the executor on its scan and hash-join
    /// paths, so plain providers need not implement anything.
    fn index_on(&self, _name: &str, _attrs: &[&str]) -> Option<&HashIndex> {
        None
    }

    /// Distinct-row cardinality of `name`, used by the planner to order
    /// joins smallest-input-first. `None` means unknown (planned last).
    fn cardinality(&self, name: &str) -> Option<usize> {
        self.table(name).ok().map(|t| t.rows.distinct_len())
    }
}

/// A provider that overrides selected names of a base provider with bound
/// tables — used to splice an update's delta into a maintenance query in
/// place of the updated relation.
pub struct Overlay<'a, P: RelationProvider + ?Sized> {
    base: &'a P,
    bound: HashMap<String, TableSlice<'a>>,
}

impl<'a, P: RelationProvider + ?Sized> Overlay<'a, P> {
    /// Creates an overlay over `base`.
    pub fn new(base: &'a P) -> Self {
        Overlay { base, bound: HashMap::new() }
    }

    /// Binds `name` to the given table, shadowing the base provider.
    pub fn bind(mut self, name: impl Into<String>, table: TableSlice<'a>) -> Self {
        self.bound.insert(name.into(), table);
        self
    }
}

impl<'a, P: RelationProvider + ?Sized> RelationProvider for Overlay<'a, P> {
    fn table(&self, name: &str) -> Result<TableSlice<'_>, RelationalError> {
        if let Some(t) = self.bound.get(name) {
            Ok(*t)
        } else {
            self.base.table(name)
        }
    }

    fn index_on(&self, name: &str, attrs: &[&str]) -> Option<&HashIndex> {
        // A bound table shadows the base relation entirely — its indexes
        // describe rows the query must not see.
        if self.bound.contains_key(name) {
            None
        } else {
            self.base.index_on(name, attrs)
        }
    }
}

/// The result of evaluating an SPJ query: named output columns over a signed
/// bag of rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Output column names, in SELECT-list order.
    pub cols: Vec<String>,
    /// Signed result rows.
    pub rows: SignedBag,
}

impl QueryResult {
    /// Empty result with the given columns.
    pub fn empty(cols: Vec<String>) -> Self {
        QueryResult { cols, rows: SignedBag::new() }
    }

    /// Converts into a [`Delta`] over `schema`, verifying column names align
    /// positionally.
    pub fn into_delta(self, schema: Schema) -> Result<Delta, RelationalError> {
        if schema.arity() != self.cols.len() {
            return Err(RelationalError::ArityMismatch {
                relation: schema.relation.clone(),
                expected: schema.arity(),
                got: self.cols.len(),
            });
        }
        Delta::from_rows(schema, self.rows.iter().map(|(t, c)| (t.clone(), c)))
    }

    /// Total row weight.
    pub fn weight(&self) -> u64 {
        self.rows.weight()
    }
}

/// Internal: an intermediate join state — which columns each tuple position
/// holds, and the signed rows.
struct Cursor {
    cols: Vec<ColRef>,
    rows: SignedBag,
}

impl Cursor {
    fn index_of(&self, col: &ColRef) -> Option<usize> {
        self.cols.iter().position(|c| c == col)
    }
}

/// Validates that every relation and column the query references exists in
/// the provider's current schemas. This is the *schema handshake* a source
/// performs before answering; its failure is the broken-query signal.
pub fn validate<P: RelationProvider + ?Sized>(
    query: &SpjQuery,
    provider: &P,
) -> Result<(), RelationalError> {
    let mut schemas: HashMap<&str, &Schema> = HashMap::new();
    for t in &query.tables {
        let slice = provider.table(t)?;
        schemas.insert(t.as_str(), slice.schema);
    }
    for col in query.referenced_cols() {
        let schema =
            schemas.get(col.relation.as_str()).ok_or_else(|| RelationalError::InvalidQuery {
                reason: format!("column {col} references a relation not in FROM"),
            })?;
        schema.require(&col.attr)?;
    }
    Ok(())
}

/// Evaluates an SPJ query against the provider.
///
/// The plan loads tables in a greedy order (smallest input first — for a
/// maintenance query that is the delta side — with ties broken toward
/// constant-filtered tables, then repeatedly the smallest table connected
/// to the current intermediate by an equi-join), applies constant filters
/// at load time, joins on all applicable equi-join keys — probing a
/// provider index when one covers the join key and the driving side is
/// small, hash-joining otherwise — and projects last. Multiplicities
/// multiply through joins and add through projection, per bag-algebra
/// semantics.
pub fn eval<P: RelationProvider + ?Sized>(
    query: &SpjQuery,
    provider: &P,
) -> Result<QueryResult, RelationalError> {
    validate(query, provider)?;
    if query.tables.is_empty() {
        return Err(RelationalError::InvalidQuery { reason: "empty FROM clause".into() });
    }

    let order = plan_order(query, provider)?;
    let mut cursor: Option<Cursor> = None;
    let mut joined: BTreeSet<&str> = BTreeSet::new();

    for table_name in order {
        let slice = provider.table(table_name)?;
        cursor = Some(match cursor {
            None => load_filtered(query, table_name, slice, provider)?,
            Some(cur) => hash_join(cur, slice, query, &joined, table_name, provider)?,
        });
        joined.insert(table_name);
    }

    let cursor = cursor.expect("non-empty FROM produces a cursor");
    // Project to the SELECT list.
    let mut indices = Vec::with_capacity(query.projection.len());
    let mut cols = Vec::with_capacity(query.projection.len());
    for item in &query.projection {
        let idx = cursor.index_of(&item.col).ok_or_else(|| RelationalError::InvalidQuery {
            reason: format!("projection column {} not found after join", item.col),
        })?;
        indices.push(idx);
        cols.push(item.output.clone());
    }
    Ok(QueryResult { cols, rows: cursor.rows.project(&indices) })
}

/// Chooses the table processing order. The seed is the smallest input by
/// provider cardinality — for a maintenance query, the bound delta — with
/// ties broken toward the most constant-filtered table, then FROM order.
/// After that, repeatedly the smallest table connected to the joined set by
/// an equi-join predicate. A disconnected table forces a cartesian product;
/// that fallback is counted in [`ExecStats::cartesian_fallbacks`] rather
/// than taken silently.
fn plan_order<'q, P: RelationProvider + ?Sized>(
    query: &'q SpjQuery,
    provider: &P,
) -> Result<Vec<&'q str>, RelationalError> {
    let mut remaining: Vec<&str> = query.tables.iter().map(String::as_str).collect();
    if remaining.is_empty() {
        return Ok(vec![]);
    }
    let filters = |t: &str| {
        query
            .predicates
            .iter()
            .filter(|p| matches!(p, Predicate::Compare(c, _, _) if c.relation == t))
            .count()
    };
    let card = |t: &str| provider.cardinality(t).unwrap_or(usize::MAX);
    let seed_pos = (0..remaining.len())
        .min_by_key(|&i| (card(remaining[i]), std::cmp::Reverse(filters(remaining[i])), i))
        .expect("non-empty");
    let mut order = vec![remaining.remove(seed_pos)];
    let mut joined: BTreeSet<&str> = order.iter().copied().collect();
    while !remaining.is_empty() {
        let connected = |t: &str| {
            query.predicates.iter().any(|p| {
                if let Predicate::JoinEq(a, b) = p {
                    (a.relation == t && joined.contains(b.relation.as_str()))
                        || (b.relation == t && joined.contains(a.relation.as_str()))
                } else {
                    false
                }
            })
        };
        let next = (0..remaining.len())
            .filter(|&i| connected(remaining[i]))
            .min_by_key(|&i| (card(remaining[i]), i));
        let pos = match next {
            Some(pos) => pos,
            None => {
                bump(|s| s.cartesian_fallbacks += 1);
                (0..remaining.len()).min_by_key(|&i| (card(remaining[i]), i)).expect("non-empty")
            }
        };
        let t = remaining.remove(pos);
        joined.insert(t);
        order.push(t);
    }
    Ok(order)
}

/// True iff every constant filter compares a non-null literal against a
/// column of the same type. Only then is an index shortcut provably
/// equivalent to the scan: [`compare`] returns `false` for NULL literals
/// and *errors* on type mismatches, and both behaviors must survive intact,
/// so ill-typed filters always take the scan path.
fn filters_well_typed(filters: &[(usize, CmpOp, &Value)], schema: &Schema) -> bool {
    filters.iter().all(|&(i, _, v)| !v.is_null() && v.runtime_type() == Some(schema.attrs()[i].ty))
}

/// Loads a table into a cursor, applying its constant filters. When a
/// well-typed equality filter is covered by a provider index, the matching
/// rows are probed instead of scanned.
fn load_filtered<P: RelationProvider + ?Sized>(
    query: &SpjQuery,
    name: &str,
    slice: TableSlice<'_>,
    provider: &P,
) -> Result<Cursor, RelationalError> {
    let cols: Vec<ColRef> =
        slice.schema.attrs().iter().map(|a| ColRef::new(name, a.name.clone())).collect();
    let filters: Vec<(usize, CmpOp, &Value)> = query
        .predicates
        .iter()
        .filter_map(|p| match p {
            Predicate::Compare(c, op, v) if c.relation == name => {
                slice.schema.index_of(&c.attr).map(|i| (i, *op, v))
            }
            _ => None,
        })
        .collect();
    let mut rows = SignedBag::new();
    let mut scanned = 0u64;

    if filters_well_typed(&filters, slice.schema) {
        if let Some(&(ei, _, ev)) = filters.iter().find(|&&(_, op, _)| op == CmpOp::Eq) {
            let attr = slice.schema.attrs()[ei].name.as_str();
            if let Some(index) = provider.index_on(name, &[attr]) {
                let key = [ev];
                if let Some(bucket) = index.lookup(&key) {
                    'hits: for (t, c) in bucket.iter() {
                        scanned += 1;
                        if !index.key_matches(t, &key) {
                            continue;
                        }
                        // Residual filters (the indexed one re-checks as a
                        // no-op). Well-typedness means this cannot error.
                        for (idx, op, v) in &filters {
                            if !compare(t.get(*idx), *op, v)? {
                                continue 'hits;
                            }
                        }
                        rows.add(t.clone(), c);
                    }
                }
                bump(|s| {
                    s.index_probes += 1;
                    s.rows_scanned += scanned;
                });
                return Ok(Cursor { cols, rows });
            }
        }
    }

    'tuples: for (t, c) in slice.rows.iter() {
        scanned += 1;
        for (idx, op, v) in &filters {
            if !compare(t.get(*idx), *op, v)? {
                continue 'tuples;
            }
        }
        rows.add(t.clone(), c);
    }
    bump(|s| s.rows_scanned += scanned);
    Ok(Cursor { cols, rows })
}

/// SQL-style comparison: NULL never satisfies; mismatched types (other than
/// NULL) are an error, surfacing workload bugs instead of silently returning
/// empty results.
fn compare(left: &Value, op: CmpOp, right: &Value) -> Result<bool, RelationalError> {
    if left.is_null() || right.is_null() {
        return Ok(false);
    }
    if left.runtime_type() != right.runtime_type() {
        return Err(RelationalError::IncomparableTypes {
            predicate: format!("{left} {op} {right}"),
        });
    }
    Ok(op.eval(left.cmp(right)))
}

/// How much smaller the driving (probe) side must be before an
/// index-nested-loop join beats rebuilding a hash table over the indexed
/// side. With a maintenance delta driving (|Δ| ≈ 1) any indexed table
/// qualifies; for comparably sized inputs the hash join stays cheaper.
const INDEX_JOIN_FANOUT: usize = 4;

/// Joins the current intermediate with the next table on all equi-join
/// predicates that span them; degenerates to a cartesian product when none
/// apply. When the provider has an index covering exactly the join-key
/// attributes and the intermediate is at least [`INDEX_JOIN_FANOUT`]×
/// smaller than the table, each intermediate row probes the index —
/// O(|Δ| × fan-out) instead of O(|table|). Otherwise a hash join runs over
/// 64-bit key hashes of borrowed values (no per-row key tuples are
/// materialized), built over the smaller side. The next table's constant
/// filters are applied before any hash lookup, so non-qualifying rows
/// never hash.
fn hash_join<P: RelationProvider + ?Sized>(
    cur: Cursor,
    slice: TableSlice<'_>,
    query: &SpjQuery,
    joined: &BTreeSet<&str>,
    new_name: &str,
    provider: &P,
) -> Result<Cursor, RelationalError> {
    let new_cols: Vec<ColRef> =
        slice.schema.attrs().iter().map(|a| ColRef::new(new_name, a.name.clone())).collect();
    let filters: Vec<(usize, CmpOp, &Value)> = query
        .predicates
        .iter()
        .filter_map(|p| match p {
            Predicate::Compare(c, op, v) if c.relation == new_name => {
                slice.schema.index_of(&c.attr).map(|i| (i, *op, v))
            }
            _ => None,
        })
        .collect();
    let passes = |t: &Tuple| -> Result<bool, RelationalError> {
        for (idx, op, v) in &filters {
            if !compare(t.get(*idx), *op, v)? {
                return Ok(false);
            }
        }
        Ok(true)
    };

    // Keys: (index in cur, index in new) for each applicable JoinEq.
    let mut keys: Vec<(usize, usize)> = Vec::new();
    for p in &query.predicates {
        if let Predicate::JoinEq(a, b) = p {
            let (cur_side, new_side) =
                if a.relation == new_name && joined.contains(b.relation.as_str()) {
                    (b, a)
                } else if b.relation == new_name && joined.contains(a.relation.as_str()) {
                    (a, b)
                } else {
                    continue;
                };
            let ci = cur.index_of(cur_side).ok_or_else(|| RelationalError::InvalidQuery {
                reason: format!("join column {cur_side} missing from intermediate"),
            })?;
            let ni = slice.schema.require(&new_side.attr)?;
            keys.push((ci, ni));
        }
    }

    let mut out_cols = cur.cols;
    out_cols.extend(new_cols);
    let mut rows = SignedBag::new();
    let mut scanned = 0u64;

    if keys.is_empty() {
        // Cartesian product.
        for (lt, lc) in cur.rows.iter() {
            for (rt, rc) in slice.rows.iter() {
                scanned += 1;
                if passes(rt)? {
                    rows.add(lt.concat(rt), lc * rc);
                }
            }
        }
        bump(|s| s.rows_scanned += scanned);
        return Ok(Cursor { cols: out_cols, rows });
    }

    let cur_key_idx: Vec<usize> = keys.iter().map(|&(ci, _)| ci).collect();
    let new_key_idx: Vec<usize> = keys.iter().map(|&(_, ni)| ni).collect();
    let null_key = |t: &Tuple, idx: &[usize]| idx.iter().any(|&i| t.get(i).is_null());

    // Index-nested-loop: probe the table's index with each intermediate
    // row. Only when the index covers the exact join-key attribute set,
    // every constant filter is well-typed (so skipping unprobed rows
    // cannot swallow a type error the scan would raise), and the
    // intermediate is small enough that probing beats one table pass.
    if filters_well_typed(&filters, slice.schema)
        && cur.rows.distinct_len().saturating_mul(INDEX_JOIN_FANOUT) <= slice.rows.distinct_len()
    {
        let key_attrs: Vec<&str> =
            new_key_idx.iter().map(|&i| slice.schema.attrs()[i].name.as_str()).collect();
        if let Some(index) = provider.index_on(new_name, &key_attrs) {
            // The index may list its key attributes in a different order;
            // line the probe values up with it.
            let probe_cols: Vec<usize> = index
                .attrs()
                .iter()
                .map(|a| {
                    let j = key_attrs
                        .iter()
                        .position(|k| k == a)
                        .expect("covering index key is a permutation of the join key");
                    cur_key_idx[j]
                })
                .collect();
            let mut probes = 0u64;
            for (lt, lc) in cur.rows.iter() {
                if null_key(lt, &cur_key_idx) {
                    continue;
                }
                let key: Vec<&Value> = probe_cols.iter().map(|&i| lt.get(i)).collect();
                probes += 1;
                if let Some(bucket) = index.lookup(&key) {
                    for (rt, rc) in bucket.iter() {
                        scanned += 1;
                        if !index.key_matches(rt, &key) {
                            continue;
                        }
                        if passes(rt)? {
                            rows.add(lt.concat(rt), lc * rc);
                        }
                    }
                }
            }
            bump(|s| {
                s.index_probes += probes;
                s.rows_scanned += scanned;
                s.index_join_steps += 1;
            });
            return Ok(Cursor { cols: out_cols, rows });
        }
    }

    // Hash-join fallback over 64-bit hashes of borrowed key values; bucket
    // entries are verified against the actual key columns, so hash
    // collisions cannot produce spurious matches.
    let hash_of = |t: &Tuple, idx: &[usize]| key_hash(idx.iter().map(|&i| t.get(i)));
    let keys_match = |lt: &Tuple, rt: &Tuple| keys.iter().all(|&(ci, ni)| lt.get(ci) == rt.get(ni));

    if cur.rows.distinct_len() <= slice.rows.distinct_len() {
        // Build over the (smaller) intermediate, probe the table.
        let mut table: HashMap<u64, Vec<(&Tuple, i64)>> = HashMap::new();
        for (t, c) in cur.rows.iter() {
            if !null_key(t, &cur_key_idx) {
                table.entry(hash_of(t, &cur_key_idx)).or_default().push((t, c));
            }
        }
        for (rt, rc) in slice.rows.iter() {
            scanned += 1;
            if null_key(rt, &new_key_idx) || !passes(rt)? {
                continue;
            }
            if let Some(matches) = table.get(&hash_of(rt, &new_key_idx)) {
                for (lt, lc) in matches {
                    if keys_match(lt, rt) {
                        rows.add(lt.concat(rt), lc * rc);
                    }
                }
            }
        }
    } else {
        // Build over the table (filtered), probe the intermediate.
        let mut table: HashMap<u64, Vec<(&Tuple, i64)>> = HashMap::new();
        for (t, c) in slice.rows.iter() {
            scanned += 1;
            if !null_key(t, &new_key_idx) && passes(t)? {
                table.entry(hash_of(t, &new_key_idx)).or_default().push((t, c));
            }
        }
        for (lt, lc) in cur.rows.iter() {
            if null_key(lt, &cur_key_idx) {
                continue;
            }
            if let Some(matches) = table.get(&hash_of(lt, &cur_key_idx)) {
                for (rt, rc) in matches {
                    if keys_match(lt, rt) {
                        rows.add(lt.concat(rt), lc * rc);
                    }
                }
            }
        }
    }
    bump(|s| {
        s.rows_scanned += scanned;
        s.hash_join_steps += 1;
    });
    Ok(Cursor { cols: out_cols, rows })
}

// ---------------------------------------------------------------------------
// Incremental (delta-only) operators over Z-sets.
//
// These are the building blocks the view layer composes instead of replaying
// full SPJ queries: every operator touches only rows reachable from a delta,
// and all of them preserve the executor's edge semantics exactly — NULL join
// keys match nothing, constant filters error on type mismatches via
// [`compare`], and weights multiply through joins / add through projections.
// ---------------------------------------------------------------------------

/// δσ — filters a delta by constant predicates, with the executor's
/// comparison semantics: NULL never satisfies, and a type mismatch is an
/// error (raised for *every* row visited, exactly like the scan path —
/// ill-typed workloads surface instead of silently returning empty).
pub fn delta_select(
    delta: &SignedBag,
    filters: &[(usize, CmpOp, Value)],
) -> Result<SignedBag, RelationalError> {
    if filters.is_empty() {
        return Ok(delta.clone());
    }
    let mut out = SignedBag::new();
    let mut scanned = 0u64;
    'tuples: for (t, c) in delta.iter() {
        scanned += 1;
        for (idx, op, v) in filters {
            if !compare(t.get(*idx), *op, v)? {
                continue 'tuples;
            }
        }
        out.add(t.clone(), c);
    }
    bump(|s| s.rows_scanned += scanned);
    Ok(out)
}

/// δπ — projects a delta onto `indices`, combining weights (and cancelling
/// entries whose projections collide to zero). Result-identical to
/// [`ZSet::project`](crate::ZSet::project); exported under the operator
/// vocabulary so delta pipelines read uniformly, and counting collisions
/// that annihilate into [`ExecStats::weights_cancelled`].
pub fn delta_project(delta: &SignedBag, indices: &[usize]) -> SignedBag {
    let mut out = SignedBag::new();
    let mut cancelled = 0u64;
    for (t, c) in delta.iter() {
        if out.add(t.project(indices), c) == 0 {
            cancelled += 1;
        }
    }
    if cancelled > 0 {
        bump(|s| s.weights_cancelled += cancelled);
    }
    out
}

/// Δ ⋈ B via index probes on the non-delta side — the delta-only join of
/// the incremental identity `(B + Δ) ⋈ S = B ⋈ S + Δ ⋈ S`, costing
/// O(|Δ| × fan-out) regardless of |B|.
///
/// `probe_cols` are positions in the delta's tuples, **aligned with
/// `index.attrs()` order**. Output rows are `d ⧺ b` with weight product.
/// Rows with a NULL key match nothing (SQL equi-join semantics); bucket
/// hits are collision-checked against the actual key values.
pub fn delta_join_probe(delta: &SignedBag, probe_cols: &[usize], index: &HashIndex) -> SignedBag {
    let mut out = SignedBag::new();
    let mut probes = 0u64;
    let mut scanned = 0u64;
    let mut cancelled = 0u64;
    for (dt, dc) in delta.iter() {
        if probe_cols.iter().any(|&i| dt.get(i).is_null()) {
            continue;
        }
        let key: Vec<&Value> = probe_cols.iter().map(|&i| dt.get(i)).collect();
        probes += 1;
        if let Some(bucket) = index.lookup(&key) {
            for (bt, bc) in bucket.iter() {
                scanned += 1;
                if index.key_matches(bt, &key) && out.add(dt.concat(bt), dc * bc) == 0 {
                    cancelled += 1;
                }
            }
        }
    }
    bump(|s| {
        s.index_probes += probes;
        s.rows_scanned += scanned;
        s.index_join_steps += 1;
        s.weights_cancelled += cancelled;
    });
    out
}

/// ΔA ⋈ ΔB — equi-join of two deltas on positional keys (`left_keys[i]`
/// pairs with `right_keys[i]`), the cross term of the bilinear join
/// expansion and the whole of a SWEEP compensation join. Hash-built over
/// the smaller side; output rows are `l ⧺ r` with weight product. An empty
/// key set degenerates to the cartesian product, mirroring the executor's
/// fallback for disconnected joins.
pub fn delta_join(
    left: &SignedBag,
    left_keys: &[usize],
    right: &SignedBag,
    right_keys: &[usize],
) -> SignedBag {
    debug_assert_eq!(left_keys.len(), right_keys.len());
    let null_key = |t: &Tuple, idx: &[usize]| idx.iter().any(|&i| t.get(i).is_null());
    let hash_of = |t: &Tuple, idx: &[usize]| key_hash(idx.iter().map(|&i| t.get(i)));
    let keys_match = |lt: &Tuple, rt: &Tuple| {
        left_keys.iter().zip(right_keys).all(|(&li, &ri)| lt.get(li) == rt.get(ri))
    };

    let mut out = SignedBag::new();
    let mut scanned = 0u64;
    let mut cancelled = 0u64;
    if left.distinct_len() <= right.distinct_len() {
        let mut table: HashMap<u64, Vec<(&Tuple, i64)>> = HashMap::new();
        for (t, c) in left.iter() {
            if !null_key(t, left_keys) {
                table.entry(hash_of(t, left_keys)).or_default().push((t, c));
            }
        }
        for (rt, rc) in right.iter() {
            scanned += 1;
            if null_key(rt, right_keys) {
                continue;
            }
            if let Some(matches) = table.get(&hash_of(rt, right_keys)) {
                for (lt, lc) in matches {
                    if keys_match(lt, rt) && out.add(lt.concat(rt), lc * rc) == 0 {
                        cancelled += 1;
                    }
                }
            }
        }
    } else {
        let mut table: HashMap<u64, Vec<(&Tuple, i64)>> = HashMap::new();
        for (t, c) in right.iter() {
            if !null_key(t, right_keys) {
                table.entry(hash_of(t, right_keys)).or_default().push((t, c));
            }
        }
        for (lt, lc) in left.iter() {
            scanned += 1;
            if null_key(lt, left_keys) {
                continue;
            }
            if let Some(matches) = table.get(&hash_of(lt, left_keys)) {
                for (rt, rc) in matches {
                    if keys_match(lt, rt) && out.add(lt.concat(rt), lc * rc) == 0 {
                        cancelled += 1;
                    }
                }
            }
        }
    }
    bump(|s| {
        s.rows_scanned += scanned;
        s.hash_join_steps += 1;
        s.weights_cancelled += cancelled;
    });
    out
}

/// Incremental distinct-by-weight: the change `distinct(base + delta) −
/// distinct(base)`, touching only the tuples in `delta`'s support. A tuple
/// enters the distinct image (+1) when its weight crosses from ≤ 0 to > 0
/// and leaves it (−1) on the opposite crossing; all other weight changes
/// are absorbed.
pub fn distinct_delta(base: &SignedBag, delta: &SignedBag) -> SignedBag {
    let mut out = SignedBag::new();
    for (t, dc) in delta.iter() {
        let before = base.count(t);
        let after = before + dc;
        match (before > 0, after > 0) {
            (false, true) => {
                out.add(t.clone(), 1);
            }
            (true, false) => {
                out.add(t.clone(), -1);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    struct Two {
        r: Relation,
        s: Relation,
    }

    impl RelationProvider for Two {
        fn table(&self, name: &str) -> Result<TableSlice<'_>, RelationalError> {
            match name {
                "R" => Ok((&self.r).into()),
                "S" => Ok((&self.s).into()),
                other => Err(RelationalError::UnknownRelation { relation: other.into() }),
            }
        }
    }

    fn fixture() -> Two {
        let r = Relation::from_tuples(
            Schema::of("R", &[("id", AttrType::Int), ("name", AttrType::Str)]),
            [
                Tuple::of([Value::from(1), Value::str("a")]),
                Tuple::of([Value::from(2), Value::str("b")]),
                Tuple::of([Value::from(2), Value::str("b")]), // duplicate
            ],
        )
        .unwrap();
        let s = Relation::from_tuples(
            Schema::of("S", &[("id", AttrType::Int), ("price", AttrType::Int)]),
            [
                Tuple::of([Value::from(1), Value::from(10)]),
                Tuple::of([Value::from(2), Value::from(20)]),
                Tuple::of([Value::from(3), Value::from(30)]),
            ],
        )
        .unwrap();
        Two { r, s }
    }

    fn join_query() -> SpjQuery {
        SpjQuery::over(["R", "S"])
            .select("R", "name")
            .select("S", "price")
            .join_eq(("R", "id"), ("S", "id"))
            .build()
    }

    #[test]
    fn equi_join_with_duplicates() {
        let out = eval(&join_query(), &fixture()).unwrap();
        assert_eq!(out.cols, vec!["name", "price"]);
        assert_eq!(out.rows.count(&Tuple::of([Value::str("a"), Value::from(10)])), 1);
        assert_eq!(
            out.rows.count(&Tuple::of([Value::str("b"), Value::from(20)])),
            2,
            "bag semantics: duplicate R row yields multiplicity 2"
        );
        assert_eq!(out.weight(), 3);
    }

    #[test]
    fn constant_filter() {
        let q =
            SpjQuery::over(["S"]).select("S", "price").filter("S", "price", CmpOp::Gt, 15).build();
        let out = eval(&q, &fixture()).unwrap();
        assert_eq!(out.weight(), 2);
    }

    #[test]
    fn missing_relation_is_schema_conflict() {
        let q = SpjQuery::over(["Nope"]).select("Nope", "x").build();
        let err = eval(&q, &fixture()).unwrap_err();
        assert!(err.is_schema_conflict());
    }

    #[test]
    fn missing_attribute_is_schema_conflict() {
        let q = SpjQuery::over(["R"]).select("R", "ghost").build();
        let err = eval(&q, &fixture()).unwrap_err();
        assert!(err.is_schema_conflict());
    }

    #[test]
    fn delta_overlay_substitutes_relation() {
        let f = fixture();
        let delta = Delta::inserts(
            Schema::of("R", &[("id", AttrType::Int), ("name", AttrType::Str)]),
            [Tuple::of([Value::from(3), Value::str("c")])],
        )
        .unwrap();
        let overlay = Overlay::new(&f).bind("R", (&delta).into());
        let out = eval(&join_query(), &overlay).unwrap();
        assert_eq!(out.weight(), 1);
        assert_eq!(out.rows.count(&Tuple::of([Value::str("c"), Value::from(30)])), 1);
    }

    #[test]
    fn negative_multiplicities_flow_through_join() {
        let f = fixture();
        let delta = Delta::from_rows(
            Schema::of("R", &[("id", AttrType::Int), ("name", AttrType::Str)]),
            [(Tuple::of([Value::from(1), Value::str("a")]), -1)],
        )
        .unwrap();
        let overlay = Overlay::new(&f).bind("R", (&delta).into());
        let out = eval(&join_query(), &overlay).unwrap();
        assert_eq!(out.rows.count(&Tuple::of([Value::str("a"), Value::from(10)])), -1);
    }

    #[test]
    fn incremental_distributivity() {
        // (R + Δ) ⋈ S == R ⋈ S + Δ ⋈ S
        let f = fixture();
        let q = join_query();
        let delta = Delta::from_rows(
            Schema::of("R", &[("id", AttrType::Int), ("name", AttrType::Str)]),
            [
                (Tuple::of([Value::from(3), Value::str("c")]), 2),
                (Tuple::of([Value::from(1), Value::str("a")]), -1),
            ],
        )
        .unwrap();
        let base = eval(&q, &f).unwrap();
        let overlay = Overlay::new(&f).bind("R", (&delta).into());
        let delta_out = eval(&q, &overlay).unwrap();
        let mut incremental = base.rows.clone();
        incremental.merge(&delta_out.rows);

        let mut r2 = f.r.clone();
        r2.apply(&delta).unwrap();
        let f2 = Two { r: r2, s: f.s.clone() };
        let full = eval(&q, &f2).unwrap();
        assert_eq!(incremental, full.rows);
    }

    #[test]
    fn cartesian_when_disconnected() {
        let q = SpjQuery::over(["R", "S"]).select("R", "name").select("S", "price").build();
        let out = eval(&q, &fixture()).unwrap();
        assert_eq!(out.weight(), 9);
    }

    #[test]
    fn null_never_matches_filter_or_join() {
        let r = Relation::from_tuples(
            Schema::of("R", &[("id", AttrType::Int), ("name", AttrType::Str)]),
            [Tuple::of([Value::Null, Value::str("n")])],
        )
        .unwrap();
        let f = Two { r, s: fixture().s };
        let out = eval(&join_query(), &f).unwrap();
        assert!(out.rows.is_empty(), "NULL join key matches nothing");
        let q = SpjQuery::over(["R"]).select("R", "name").filter("R", "id", CmpOp::Eq, 1).build();
        assert!(eval(&q, &f).unwrap().rows.is_empty());
    }

    #[test]
    fn multi_key_join_requires_all_keys() {
        // Join on id AND name-vs-price type-compatible column: use two
        // integer keys so both must match.
        let r = Relation::from_tuples(
            Schema::of("R", &[("k1", AttrType::Int), ("k2", AttrType::Int)]),
            [Tuple::of([1i64, 10]), Tuple::of([1i64, 20])],
        )
        .unwrap();
        let s = Relation::from_tuples(
            Schema::of("S", &[("k1", AttrType::Int), ("k2", AttrType::Int), ("v", AttrType::Int)]),
            [Tuple::of([1i64, 10, 100]), Tuple::of([1i64, 30, 300])],
        )
        .unwrap();
        struct P(Relation, Relation);
        impl RelationProvider for P {
            fn table(&self, name: &str) -> Result<TableSlice<'_>, RelationalError> {
                match name {
                    "R" => Ok((&self.0).into()),
                    "S" => Ok((&self.1).into()),
                    o => Err(RelationalError::UnknownRelation { relation: o.into() }),
                }
            }
        }
        let q = SpjQuery::over(["R", "S"])
            .select("S", "v")
            .join_eq(("R", "k1"), ("S", "k1"))
            .join_eq(("R", "k2"), ("S", "k2"))
            .build();
        let out = eval(&q, &P(r, s)).unwrap();
        assert_eq!(out.weight(), 1, "only the (1,10) pair satisfies both keys");
        assert_eq!(out.rows.count(&Tuple::of([100i64])), 1);
    }

    #[test]
    fn projecting_same_column_twice() {
        let q = SpjQuery::over(["S"]).select("S", "id").select_as("S", "id", "id_again").build();
        let out = eval(&q, &fixture()).unwrap();
        assert_eq!(out.cols, vec!["id", "id_again"]);
        assert_eq!(out.rows.count(&Tuple::of([1i64, 1])), 1);
    }

    #[test]
    fn column_outside_from_is_invalid_query() {
        let q = SpjQuery::over(["S"]).select("R", "name").build();
        let err = eval(&q, &fixture()).unwrap_err();
        assert!(matches!(err, RelationalError::InvalidQuery { .. }));
        assert!(!err.is_schema_conflict(), "a malformed query is not a broken query");
    }

    #[test]
    fn empty_from_is_invalid() {
        let q = SpjQuery { tables: vec![], projection: vec![], predicates: vec![] };
        assert!(matches!(eval(&q, &fixture()).unwrap_err(), RelationalError::InvalidQuery { .. }));
    }

    #[test]
    fn filters_on_both_sides_of_join() {
        let q = SpjQuery::over(["R", "S"])
            .select("R", "name")
            .join_eq(("R", "id"), ("S", "id"))
            .filter("R", "id", CmpOp::Ge, 2)
            .filter("S", "price", CmpOp::Lt, 25)
            .build();
        let out = eval(&q, &fixture()).unwrap();
        // R id 2 ('b' twice) joins S (2, 20): price < 25 passes.
        assert_eq!(out.rows.count(&Tuple::of([Value::str("b")])), 2);
        assert_eq!(out.weight(), 2);
    }

    #[test]
    fn type_mismatch_in_filter_errors() {
        let q = SpjQuery::over(["S"])
            .select("S", "price")
            .filter("S", "price", CmpOp::Eq, "not-an-int")
            .build();
        let err = eval(&q, &fixture()).unwrap_err();
        assert!(matches!(err, RelationalError::IncomparableTypes { .. }));
    }

    /// The fixture as an indexed catalog: same tables, indexes on the join
    /// and filter columns.
    fn indexed_catalog() -> crate::Catalog {
        let f = fixture();
        let mut c = crate::Catalog::new();
        c.add_relation(f.r).unwrap();
        c.add_relation(f.s).unwrap();
        c.create_index("S", &["id"]).unwrap();
        c.create_index("S", &["price"]).unwrap();
        c
    }

    #[test]
    fn indexed_join_matches_scan_join() {
        // S is much larger than R, so the join takes the index-nested-loop
        // path; the result must equal the scan-based evaluation exactly.
        let r = Relation::from_tuples(
            Schema::of("R", &[("id", AttrType::Int), ("name", AttrType::Str)]),
            [
                Tuple::of([Value::from(1), Value::str("a")]),
                Tuple::of([Value::from(2), Value::str("b")]),
                Tuple::of([Value::from(2), Value::str("b")]),
            ],
        )
        .unwrap();
        let s = Relation::from_tuples(
            Schema::of("S", &[("id", AttrType::Int), ("price", AttrType::Int)]),
            (0..20).map(|i| Tuple::of([Value::from(i), Value::from(i * 10)])),
        )
        .unwrap();
        let naive = eval(&join_query(), &Two { r: r.clone(), s: s.clone() }).unwrap();
        let mut c = crate::Catalog::new();
        c.add_relation(r).unwrap();
        c.add_relation(s).unwrap();
        c.create_index("S", &["id"]).unwrap();
        let before = thread_stats();
        let indexed = eval(&join_query(), &c).unwrap();
        let d = thread_stats().since(before);
        assert_eq!(naive, indexed);
        assert_eq!(d.index_join_steps, 1, "S-side index on id must be probed");
        assert_eq!(d.index_probes, 2, "one probe per distinct R row");
    }

    #[test]
    fn indexed_eq_filter_probes_instead_of_scanning() {
        let q = SpjQuery::over(["S"]).select("S", "price").filter("S", "id", CmpOp::Eq, 2).build();
        let c = indexed_catalog();
        let before = thread_stats();
        let out = eval(&q, &c).unwrap();
        let d = thread_stats().since(before);
        assert_eq!(out.weight(), 1);
        assert_eq!(out.rows.count(&Tuple::of([20i64])), 1);
        assert_eq!(d.index_probes, 1);
        assert!(d.rows_scanned < 3, "probe must not visit the whole table");
    }

    #[test]
    fn type_mismatch_still_errors_with_index_present() {
        // An ill-typed filter must take the scan path and surface the same
        // error the naive evaluator raises, index or no index.
        let q = SpjQuery::over(["S"])
            .select("S", "price")
            .filter("S", "price", CmpOp::Eq, "not-an-int")
            .build();
        let err = eval(&q, &indexed_catalog()).unwrap_err();
        assert!(matches!(err, RelationalError::IncomparableTypes { .. }));
    }

    #[test]
    fn overlay_binding_shadows_base_index() {
        let c = indexed_catalog();
        let delta = Delta::inserts(
            Schema::of("S", &[("id", AttrType::Int), ("price", AttrType::Int)]),
            [Tuple::of([Value::from(9), Value::from(90)])],
        )
        .unwrap();
        let overlay = Overlay::new(&c).bind("S", (&delta).into());
        let q = SpjQuery::over(["S"]).select("S", "price").filter("S", "id", CmpOp::Eq, 9).build();
        let out = eval(&q, &overlay).unwrap();
        assert_eq!(out.weight(), 1, "bound table is seen, not the stale indexed base");
        assert!(overlay.index_on("S", &["id"]).is_none());
    }

    #[test]
    fn cartesian_fallback_is_counted() {
        let q = SpjQuery::over(["R", "S"]).select("R", "name").select("S", "price").build();
        let before = thread_stats();
        eval(&q, &fixture()).unwrap();
        let d = thread_stats().since(before);
        assert_eq!(d.cartesian_fallbacks, 1);
        let before = thread_stats();
        eval(&join_query(), &fixture()).unwrap();
        assert_eq!(thread_stats().since(before).cartesian_fallbacks, 0);
    }

    #[test]
    fn planner_seeds_from_smallest_input() {
        // R has 2 distinct rows, S has 3: R seeds, and with a bound delta
        // (1 row) shadowing R, the delta seeds.
        let f = fixture();
        let q = join_query();
        let order = plan_order(&q, &f).unwrap();
        assert_eq!(order, vec!["R", "S"]);
        let delta = Delta::inserts(
            Schema::of("S", &[("id", AttrType::Int), ("price", AttrType::Int)]),
            [Tuple::of([Value::from(1), Value::from(10)])],
        )
        .unwrap();
        let overlay = Overlay::new(&f).bind("S", (&delta).into());
        let order = plan_order(&q, &overlay).unwrap();
        assert_eq!(order, vec!["S", "R"], "the 1-row bound delta must drive the join");
    }

    #[test]
    fn delta_join_probe_equals_eval_with_bound_delta() {
        // The operator form of ΔR ⋈ S must agree with evaluating the join
        // query over an overlay binding Δ in place of R.
        let f = fixture();
        let mut c = crate::Catalog::new();
        c.add_relation(f.r.clone()).unwrap();
        c.add_relation(f.s.clone()).unwrap();
        c.create_index("S", &["id"]).unwrap();
        let delta = Delta::from_rows(
            Schema::of("R", &[("id", AttrType::Int), ("name", AttrType::Str)]),
            [
                (Tuple::of([Value::from(2), Value::str("z")]), 3),
                (Tuple::of([Value::from(1), Value::str("a")]), -1),
                (Tuple::of([Value::Null, Value::str("n")]), 1),
            ],
        )
        .unwrap();
        let overlay = Overlay::new(&c).bind("R", (&delta).into());
        let q = SpjQuery::over(["R", "S"])
            .select("R", "id")
            .select("R", "name")
            .select("S", "id")
            .select("S", "price")
            .join_eq(("R", "id"), ("S", "id"))
            .build();
        let via_eval = eval(&q, &overlay).unwrap();
        let idx = c.index_on("S", &["id"]).unwrap();
        let via_op = delta_join_probe(delta.rows(), &[0], idx);
        assert_eq!(via_op, via_eval.rows);
    }

    #[test]
    fn delta_join_equals_nested_loop_on_both_orders() {
        let a: SignedBag = [
            (Tuple::of([1i64, 10]), 2),
            (Tuple::of([2i64, 20]), -1),
            (Tuple::of([Value::Null, Value::from(9)]), 5),
        ]
        .into_iter()
        .collect();
        let b: SignedBag =
            [(Tuple::of([1i64, 100]), 3), (Tuple::of([3i64, 300]), 1)].into_iter().collect();
        let expected: SignedBag = [(Tuple::of([1i64, 10, 1, 100]), 6)].into_iter().collect();
        assert_eq!(delta_join(&a, &[0], &b, &[0]), expected);
        // Swapping which side is smaller must not change the result layout.
        let bigger: SignedBag = (0..10).map(|i| (Tuple::of([i as i64, i as i64]), 1)).collect();
        let lhs = delta_join(&a, &[0], &bigger, &[0]);
        let rhs: SignedBag = [(Tuple::of([1i64, 10, 1, 1]), 2), (Tuple::of([2i64, 20, 2, 2]), -1)]
            .into_iter()
            .collect();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn delta_join_empty_keys_is_cartesian() {
        let a: SignedBag = [(Tuple::of([1i64]), 2)].into_iter().collect();
        let b: SignedBag = [(Tuple::of([7i64]), -3)].into_iter().collect();
        let out = delta_join(&a, &[], &b, &[]);
        assert_eq!(out.count(&Tuple::of([1i64, 7])), -6);
    }

    #[test]
    fn delta_select_matches_scan_semantics() {
        let z: SignedBag = [
            (Tuple::of([Value::from(1), Value::str("a")]), 1),
            (Tuple::of([Value::from(5), Value::str("b")]), -2),
            (Tuple::of([Value::Null, Value::str("c")]), 1),
        ]
        .into_iter()
        .collect();
        let out = delta_select(&z, &[(0, CmpOp::Ge, Value::from(2))]).unwrap();
        assert_eq!(out.count(&Tuple::of([Value::from(5), Value::str("b")])), -2);
        assert_eq!(out.distinct_len(), 1, "NULL never satisfies a filter");
        // Ill-typed filters error, exactly like the scan path.
        let err = delta_select(&z, &[(0, CmpOp::Eq, Value::str("x"))]).unwrap_err();
        assert!(matches!(err, RelationalError::IncomparableTypes { .. }));
    }

    #[test]
    fn projection_cancellations_are_counted() {
        let z: SignedBag =
            [(Tuple::of([1i64, 10]), 2), (Tuple::of([1i64, 20]), -2), (Tuple::of([2i64, 5]), 1)]
                .into_iter()
                .collect();
        let before = thread_stats();
        let p = delta_project(&z, &[0]);
        let d = thread_stats().since(before);
        assert_eq!(p, z.project(&[0]), "operator form matches ZSet::project");
        assert_eq!(p.count(&Tuple::of([2i64])), 1);
        assert_eq!(d.weights_cancelled, 1, "the colliding pair annihilated once");
        // A collision-free projection cancels nothing.
        let before = thread_stats();
        delta_project(&z, &[0, 1]);
        assert_eq!(thread_stats().since(before).weights_cancelled, 0);
    }

    #[test]
    fn distinct_delta_tracks_support_crossings() {
        let base: SignedBag =
            [(Tuple::of([1i64]), 2), (Tuple::of([2i64]), 1), (Tuple::of([3i64]), -1)]
                .into_iter()
                .collect();
        let delta: SignedBag = [
            (Tuple::of([1i64]), -1), // 2 → 1: stays in the image
            (Tuple::of([2i64]), -1), // 1 → 0: leaves
            (Tuple::of([3i64]), 2),  // -1 → 1: enters
            (Tuple::of([4i64]), 3),  // 0 → 3: enters
        ]
        .into_iter()
        .collect();
        let d = distinct_delta(&base, &delta);
        // Differential check: distinct(base+delta) == distinct(base) + d.
        let mut new = base.clone();
        new.merge(&delta);
        let mut composed = base.distinct();
        composed.merge(&d);
        assert_eq!(composed, new.distinct());
        assert_eq!(d.count(&Tuple::of([2i64])), -1);
        assert_eq!(d.count(&Tuple::of([3i64])), 1);
        assert_eq!(d.count(&Tuple::of([4i64])), 1);
        assert_eq!(d.count(&Tuple::of([1i64])), 0);
    }
}
