//! Tuples (rows) and weighted sets ([`ZSet`]s) of tuples.
//!
//! The [`ZSet`] here is the DBSP-style weighted multiset: a map from row to
//! a non-zero signed weight, ordered by row. It is the single carrier type
//! for relations (non-negative weights), deltas (arbitrary signs), and
//! every intermediate of incremental maintenance, which keeps the algebra
//! `(R + Δ) ⋈ S = R ⋈ S + Δ ⋈ S` uniform across the whole engine.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::RelationalError;
use crate::schema::Schema;
use crate::value::Value;

/// A row: an ordered sequence of values matching some schema's attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// Builds a tuple from anything convertible into values.
    pub fn of<V: Into<Value>, I: IntoIterator<Item = V>>(values: I) -> Self {
        Tuple(values.into_iter().map(Into::into).collect())
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// A new tuple containing the fields at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenation of `self` and `other` (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Checks that this tuple's values are compatible with `schema`
    /// (matching arity; each non-NULL value matching the attribute type).
    pub fn check_against(&self, schema: &Schema) -> Result<(), RelationalError> {
        if self.arity() != schema.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: schema.relation.clone(),
                expected: schema.arity(),
                got: self.arity(),
            });
        }
        for (v, a) in self.0.iter().zip(schema.attrs()) {
            if let Some(ty) = v.runtime_type() {
                if ty != a.ty {
                    return Err(RelationalError::TypeMismatch {
                        relation: schema.relation.clone(),
                        attr: a.name.clone(),
                        expected: a.ty,
                        got: ty,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A weighted set (Z-set) of tuples: each tuple maps to a **non-zero**
/// signed weight. Positive weights represent presence (or insertions in a
/// delta); negative weights represent deletions.
///
/// Two invariants hold on every mutation path (`add`, `merge`, `negated`,
/// `diff`, `project`, `retain`-style clamping, `FromIterator`):
///
/// * **Zero-weight cancellation** — an entry whose weight reaches zero is
///   removed immediately, so equality of Z-sets is equality of the
///   mathematical objects and `distinct_len`/`is_empty` never count
///   phantom rows.
/// * **Deterministic order** — entries are stored sorted by tuple, so
///   [`ZSet::iter`] (and anything derived from it: `Debug`, wire encoding,
///   replay) is byte-stable across runs and independent of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZSet {
    weights: BTreeMap<Tuple, i64>,
}

/// The historical name of [`ZSet`]: relations and deltas were built on a
/// "signed bag" before the weighted-delta core landed. The alias keeps the
/// whole API surface source-compatible.
pub type SignedBag = ZSet;

impl ZSet {
    /// Empty set.
    pub fn new() -> Self {
        ZSet::default()
    }

    /// Adds `count` occurrences of `tuple`, removing the entry if the total
    /// reaches zero. Returns the new weight.
    pub fn add(&mut self, tuple: Tuple, count: i64) -> i64 {
        if count == 0 {
            return self.count(&tuple);
        }
        use std::collections::btree_map::Entry;
        match self.weights.entry(tuple) {
            Entry::Occupied(mut e) => {
                let c = e.get_mut();
                *c += count;
                if *c == 0 {
                    e.remove();
                    0
                } else {
                    *c
                }
            }
            Entry::Vacant(e) => {
                e.insert(count);
                count
            }
        }
    }

    /// Weight of `tuple` (zero if absent).
    pub fn count(&self, tuple: &Tuple) -> i64 {
        self.weights.get(tuple).copied().unwrap_or(0)
    }

    /// Number of distinct tuples.
    pub fn distinct_len(&self) -> usize {
        self.weights.len()
    }

    /// Sum of absolute weights (the "size" of the set as a workload).
    pub fn weight(&self) -> u64 {
        self.weights.values().map(|c| c.unsigned_abs()).sum()
    }

    /// Sum of signed weights.
    pub fn net(&self) -> i64 {
        self.weights.values().sum()
    }

    /// True iff no tuples are present.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// True iff every weight is positive.
    pub fn is_non_negative(&self) -> bool {
        self.weights.values().all(|&c| c > 0)
    }

    /// Drops every entry with a negative weight, returning the total
    /// magnitude removed (0 when the set was already non-negative). Used by
    /// knowingly-lossy consumers — a view maintained under admission
    /// shedding can receive deletes for rows it never applied.
    pub fn clamp_non_negative(&mut self) -> u64 {
        let mut clamped = 0u64;
        self.weights.retain(|_, c| {
            if *c < 0 {
                clamped += c.unsigned_abs();
                false
            } else {
                true
            }
        });
        clamped
    }

    /// Iterates over `(tuple, weight)` pairs in sorted tuple order — the
    /// deterministic-replay guarantee: two equal Z-sets iterate
    /// identically regardless of how they were built.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.weights.iter().map(|(t, &c)| (t, c))
    }

    /// Adds every entry of `other` into `self` (Z-set addition).
    pub fn merge(&mut self, other: &ZSet) {
        for (t, c) in other.iter() {
            self.add(t.clone(), c);
        }
    }

    /// Subtracts every entry of `other` from `self` in place — the fused
    /// form of `merge(&other.negated())`, without materializing the
    /// negation.
    pub fn merge_negated(&mut self, other: &ZSet) {
        for (t, c) in other.iter() {
            self.add(t.clone(), -c);
        }
    }

    /// The set with all weights negated. Negation maps non-zero to
    /// non-zero, so cancellation holds by construction.
    pub fn negated(&self) -> ZSet {
        ZSet { weights: self.weights.iter().map(|(t, c)| (t.clone(), -c)).collect() }
    }

    /// `self − other` as a new set.
    pub fn diff(&self, other: &ZSet) -> ZSet {
        let mut out = self.clone();
        out.merge_negated(other);
        out
    }

    /// Projects every tuple onto `indices`, combining weights (entries
    /// whose projections collide and cancel disappear).
    pub fn project(&self, indices: &[usize]) -> ZSet {
        let mut out = ZSet::new();
        for (t, c) in self.iter() {
            out.add(t.project(indices), c);
        }
        out
    }

    /// The distinct (set) image: every tuple with positive weight maps to
    /// weight 1; non-positive entries vanish. This is DBSP's `distinct`
    /// operator on a state (not on a delta — see
    /// [`crate::exec::distinct_delta`] for the incremental form).
    pub fn distinct(&self) -> ZSet {
        ZSet {
            weights: self
                .weights
                .iter()
                .filter(|(_, &c)| c > 0)
                .map(|(t, _)| (t.clone(), 1))
                .collect(),
        }
    }

    /// Tuples in deterministic (sorted) order. Iteration is already
    /// sorted, so this is a plain copy-out — kept for display, tests, and
    /// the wire encoding.
    pub fn sorted_entries(&self) -> Vec<(Tuple, i64)> {
        self.weights.iter().map(|(t, &c)| (t.clone(), c)).collect()
    }
}

impl FromIterator<(Tuple, i64)> for ZSet {
    fn from_iter<I: IntoIterator<Item = (Tuple, i64)>>(iter: I) -> Self {
        let mut bag = ZSet::new();
        for (t, c) in iter {
            bag.add(t, c);
        }
        bag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::of(vals.iter().copied())
    }

    #[test]
    fn add_and_cancel() {
        let mut b = ZSet::new();
        b.add(t(&[1]), 2);
        b.add(t(&[1]), -2);
        assert!(b.is_empty());
        assert_eq!(b.count(&t(&[1])), 0);
    }

    #[test]
    fn merge_and_diff_are_inverse() {
        let a: ZSet = [(t(&[1]), 2), (t(&[2]), -1)].into_iter().collect();
        let b: ZSet = [(t(&[1]), 1), (t(&[3]), 4)].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.diff(&b), a);
    }

    #[test]
    fn merge_cancellation_leaves_no_zero_entries() {
        // The type invariant: merging a set with its own negation yields
        // the canonical empty set — no zero-weight residue that would
        // corrupt distinct_len or equality.
        let a: ZSet = [(t(&[1]), 2), (t(&[2]), -3), (t(&[3]), 1)].into_iter().collect();
        let mut m = a.clone();
        m.merge(&a.negated());
        assert!(m.is_empty());
        assert_eq!(m.distinct_len(), 0);
        assert_eq!(m, ZSet::new());

        let mut n = a.clone();
        n.merge_negated(&a);
        assert!(n.is_empty());
    }

    #[test]
    fn diff_cancellation_leaves_no_zero_entries() {
        let a: ZSet = [(t(&[1]), 2), (t(&[2]), -1)].into_iter().collect();
        let d = a.diff(&a);
        assert!(d.is_empty());
        assert_eq!(d.distinct_len(), 0);
        // Partial cancellation: only the surviving entry remains.
        let b: ZSet = [(t(&[1]), 2)].into_iter().collect();
        let d2 = a.diff(&b);
        assert_eq!(d2.distinct_len(), 1);
        assert_eq!(d2.count(&t(&[2])), -1);
        assert_eq!(d2.count(&t(&[1])), 0);
    }

    #[test]
    fn negated_is_an_involution_without_residue() {
        let a: ZSet = [(t(&[1]), 5), (t(&[2]), -7)].into_iter().collect();
        let n = a.negated();
        assert_eq!(n.count(&t(&[1])), -5);
        assert_eq!(n.count(&t(&[2])), 7);
        assert_eq!(n.distinct_len(), 2);
        assert_eq!(n.negated(), a);
    }

    #[test]
    fn iteration_is_sorted_and_insertion_order_independent() {
        let fwd: ZSet = (0..100).map(|i| (t(&[i]), 1)).collect();
        let rev: ZSet = (0..100).rev().map(|i| (t(&[i]), 1)).collect();
        assert_eq!(fwd, rev);
        let order: Vec<_> = fwd.iter().map(|(tp, _)| tp.clone()).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted, "iter() yields tuples in sorted order");
        // Debug formatting (BTreeMap) is therefore byte-stable too.
        assert_eq!(format!("{fwd:?}"), format!("{rev:?}"));
    }

    #[test]
    fn weight_and_net() {
        let a: ZSet = [(t(&[1]), 2), (t(&[2]), -3)].into_iter().collect();
        assert_eq!(a.weight(), 5);
        assert_eq!(a.net(), -1);
        assert!(!a.is_non_negative());
    }

    #[test]
    fn projection_combines_counts() {
        let a: ZSet = [(Tuple::of([1, 10]), 1), (Tuple::of([1, 20]), 2)].into_iter().collect();
        let p = a.project(&[0]);
        assert_eq!(p.count(&t(&[1])), 3);
    }

    #[test]
    fn projection_cancellation_removes_colliding_entries() {
        let a: ZSet = [(Tuple::of([1, 10]), 2), (Tuple::of([1, 20]), -2)].into_iter().collect();
        let p = a.project(&[0]);
        assert!(p.is_empty(), "collapsing projections that cancel must vanish");
    }

    #[test]
    fn distinct_by_weight() {
        let a: ZSet = [(t(&[1]), 3), (t(&[2]), 1), (t(&[3]), -2)].into_iter().collect();
        let d = a.distinct();
        assert_eq!(d.count(&t(&[1])), 1);
        assert_eq!(d.count(&t(&[2])), 1);
        assert_eq!(d.count(&t(&[3])), 0, "non-positive weights leave the support");
        assert_eq!(d.distinct_len(), 2);
    }

    #[test]
    fn tuple_ops() {
        let x = Tuple::of([1, 2, 3]);
        assert_eq!(x.project(&[2, 0]), Tuple::of([3, 1]));
        assert_eq!(x.concat(&Tuple::of([4])), Tuple::of([1, 2, 3, 4]));
    }

    #[test]
    fn type_check() {
        use crate::schema::{AttrType, Schema};
        let s = Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Str)]);
        assert!(Tuple::of([Value::from(1), Value::str("x")]).check_against(&s).is_ok());
        assert!(Tuple::of([Value::from(1), Value::Null]).check_against(&s).is_ok());
        assert!(Tuple::of([Value::from(1)]).check_against(&s).is_err());
        assert!(Tuple::of([Value::from(1), Value::from(2)]).check_against(&s).is_err());
    }
}
