//! Tuples (rows) and signed bags of tuples.

use std::collections::HashMap;
use std::fmt;

use crate::error::RelationalError;
use crate::schema::Schema;
use crate::value::Value;

/// A row: an ordered sequence of values matching some schema's attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// Builds a tuple from anything convertible into values.
    pub fn of<V: Into<Value>, I: IntoIterator<Item = V>>(values: I) -> Self {
        Tuple(values.into_iter().map(Into::into).collect())
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// A new tuple containing the fields at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenation of `self` and `other` (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Checks that this tuple's values are compatible with `schema`
    /// (matching arity; each non-NULL value matching the attribute type).
    pub fn check_against(&self, schema: &Schema) -> Result<(), RelationalError> {
        if self.arity() != schema.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: schema.relation.clone(),
                expected: schema.arity(),
                got: self.arity(),
            });
        }
        for (v, a) in self.0.iter().zip(schema.attrs()) {
            if let Some(ty) = v.runtime_type() {
                if ty != a.ty {
                    return Err(RelationalError::TypeMismatch {
                        relation: schema.relation.clone(),
                        attr: a.name.clone(),
                        expected: a.ty,
                        got: ty,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A signed multiset of tuples: each tuple maps to a non-zero multiplicity.
///
/// Positive counts represent presence (or insertions in a delta); negative
/// counts represent deletions. Both relations (non-negative bags) and deltas
/// (arbitrary-signed bags) are built on this type, which keeps the
/// incremental-maintenance algebra — `(R + Δ) ⋈ S = R ⋈ S + Δ ⋈ S` — uniform.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignedBag {
    counts: HashMap<Tuple, i64>,
}

impl SignedBag {
    /// Empty bag.
    pub fn new() -> Self {
        SignedBag::default()
    }

    /// Adds `count` occurrences of `tuple`, removing the entry if the total
    /// reaches zero. Returns the new multiplicity.
    pub fn add(&mut self, tuple: Tuple, count: i64) -> i64 {
        if count == 0 {
            return self.count(&tuple);
        }
        use std::collections::hash_map::Entry;
        match self.counts.entry(tuple) {
            Entry::Occupied(mut e) => {
                let c = e.get_mut();
                *c += count;
                if *c == 0 {
                    e.remove();
                    0
                } else {
                    *c
                }
            }
            Entry::Vacant(e) => {
                e.insert(count);
                count
            }
        }
    }

    /// Multiplicity of `tuple` (zero if absent).
    pub fn count(&self, tuple: &Tuple) -> i64 {
        self.counts.get(tuple).copied().unwrap_or(0)
    }

    /// Number of distinct tuples.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Sum of absolute multiplicities (the "size" of the bag as a workload).
    pub fn weight(&self) -> u64 {
        self.counts.values().map(|c| c.unsigned_abs()).sum()
    }

    /// Sum of signed multiplicities.
    pub fn net(&self) -> i64 {
        self.counts.values().sum()
    }

    /// True iff no tuples are present.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// True iff every multiplicity is positive.
    pub fn is_non_negative(&self) -> bool {
        self.counts.values().all(|&c| c > 0)
    }

    /// Drops every entry with a negative multiplicity, returning the total
    /// magnitude removed (0 when the bag was already non-negative). Used by
    /// knowingly-lossy consumers — a view maintained under admission
    /// shedding can receive deletes for rows it never applied.
    pub fn clamp_non_negative(&mut self) -> u64 {
        let mut clamped = 0u64;
        self.counts.retain(|_, c| {
            if *c < 0 {
                clamped += c.unsigned_abs();
                false
            } else {
                true
            }
        });
        clamped
    }

    /// Iterates over `(tuple, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// Adds every entry of `other` into `self`.
    pub fn merge(&mut self, other: &SignedBag) {
        for (t, c) in other.iter() {
            self.add(t.clone(), c);
        }
    }

    /// The bag with all multiplicities negated.
    pub fn negated(&self) -> SignedBag {
        SignedBag { counts: self.counts.iter().map(|(t, c)| (t.clone(), -c)).collect() }
    }

    /// `self − other` as a new bag.
    pub fn diff(&self, other: &SignedBag) -> SignedBag {
        let mut out = self.clone();
        for (t, c) in other.iter() {
            out.add(t.clone(), -c);
        }
        out
    }

    /// Projects every tuple onto `indices`, combining multiplicities.
    pub fn project(&self, indices: &[usize]) -> SignedBag {
        let mut out = SignedBag::new();
        for (t, c) in self.iter() {
            out.add(t.project(indices), c);
        }
        out
    }

    /// Tuples in a deterministic (sorted) order — for display and tests.
    pub fn sorted_entries(&self) -> Vec<(Tuple, i64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(t, &c)| (t.clone(), c)).collect();
        v.sort();
        v
    }
}

impl FromIterator<(Tuple, i64)> for SignedBag {
    fn from_iter<I: IntoIterator<Item = (Tuple, i64)>>(iter: I) -> Self {
        let mut bag = SignedBag::new();
        for (t, c) in iter {
            bag.add(t, c);
        }
        bag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::of(vals.iter().copied())
    }

    #[test]
    fn add_and_cancel() {
        let mut b = SignedBag::new();
        b.add(t(&[1]), 2);
        b.add(t(&[1]), -2);
        assert!(b.is_empty());
        assert_eq!(b.count(&t(&[1])), 0);
    }

    #[test]
    fn merge_and_diff_are_inverse() {
        let a: SignedBag = [(t(&[1]), 2), (t(&[2]), -1)].into_iter().collect();
        let b: SignedBag = [(t(&[1]), 1), (t(&[3]), 4)].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.diff(&b), a);
    }

    #[test]
    fn weight_and_net() {
        let a: SignedBag = [(t(&[1]), 2), (t(&[2]), -3)].into_iter().collect();
        assert_eq!(a.weight(), 5);
        assert_eq!(a.net(), -1);
        assert!(!a.is_non_negative());
    }

    #[test]
    fn projection_combines_counts() {
        let a: SignedBag = [(Tuple::of([1, 10]), 1), (Tuple::of([1, 20]), 2)].into_iter().collect();
        let p = a.project(&[0]);
        assert_eq!(p.count(&t(&[1])), 3);
    }

    #[test]
    fn tuple_ops() {
        let x = Tuple::of([1, 2, 3]);
        assert_eq!(x.project(&[2, 0]), Tuple::of([3, 1]));
        assert_eq!(x.concat(&Tuple::of([4])), Tuple::of([1, 2, 3, 4]));
    }

    #[test]
    fn type_check() {
        use crate::schema::{AttrType, Schema};
        let s = Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Str)]);
        assert!(Tuple::of([Value::from(1), Value::str("x")]).check_against(&s).is_ok());
        assert!(Tuple::of([Value::from(1), Value::Null]).check_against(&s).is_ok());
        assert!(Tuple::of([Value::from(1)]).check_against(&s).is_err());
        assert!(Tuple::of([Value::from(1), Value::from(2)]).check_against(&s).is_err());
    }
}
