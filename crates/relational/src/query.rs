//! Select-project-join (SPJ) query ASTs.
//!
//! Both the view definitions of the paper (Queries (1), (3), (4), (5)) and
//! the per-source maintenance queries derived from them (Query (2)) are SPJ
//! queries over named relations.

use std::collections::BTreeSet;
use std::fmt;

use crate::schema::ColRef;
use crate::value::Value;

/// Comparison operators for selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on an ordering outcome.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A conjunct of the query's WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Equi-join between two columns (`S.SID = I.SID`).
    JoinEq(ColRef, ColRef),
    /// Comparison of a column with a constant (`Book = 'Data Integration Guide'`).
    Compare(ColRef, CmpOp, Value),
}

impl Predicate {
    /// All column references appearing in this predicate.
    pub fn cols(&self) -> Vec<&ColRef> {
        match self {
            Predicate::JoinEq(a, b) => vec![a, b],
            Predicate::Compare(c, _, _) => vec![c],
        }
    }

    /// Relations referenced by this predicate.
    pub fn relations(&self) -> BTreeSet<&str> {
        self.cols().into_iter().map(|c| c.relation.as_str()).collect()
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::JoinEq(a, b) => write!(f, "{a} = {b}"),
            Predicate::Compare(c, op, v) => write!(f, "{c} {op} {v}"),
        }
    }
}

/// One output column of the SELECT list: a source column plus the name it
/// takes in the result (`R.Comments AS Review`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProjItem {
    /// The source column.
    pub col: ColRef,
    /// The output column name.
    pub output: String,
}

impl ProjItem {
    /// Projection without renaming.
    pub fn plain(col: ColRef) -> Self {
        let output = col.attr.clone();
        ProjItem { col, output }
    }

    /// Projection with an `AS` alias.
    pub fn aliased(col: ColRef, output: impl Into<String>) -> Self {
        ProjItem { col, output: output.into() }
    }
}

impl fmt::Display for ProjItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.output == self.col.attr {
            write!(f, "{}", self.col)
        } else {
            write!(f, "{} AS {}", self.col, self.output)
        }
    }
}

/// A select-project-join query over named relations.
///
/// Relation names act as their own aliases (each relation appears at most
/// once in the FROM list), matching the view queries used in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpjQuery {
    /// Relations in the FROM clause.
    pub tables: Vec<String>,
    /// SELECT list.
    pub projection: Vec<ProjItem>,
    /// Conjunctive WHERE clause.
    pub predicates: Vec<Predicate>,
}

impl SpjQuery {
    /// Starts building a query over the given tables.
    pub fn over<S: Into<String>, I: IntoIterator<Item = S>>(tables: I) -> SpjQueryBuilder {
        SpjQueryBuilder {
            query: SpjQuery {
                tables: tables.into_iter().map(Into::into).collect(),
                projection: Vec::new(),
                predicates: Vec::new(),
            },
        }
    }

    /// All column references used anywhere in the query (projection and
    /// predicates). These are exactly the schema elements whose invalidation
    /// by a concurrent schema change breaks the query.
    pub fn referenced_cols(&self) -> BTreeSet<ColRef> {
        let mut cols: BTreeSet<ColRef> = self.projection.iter().map(|p| p.col.clone()).collect();
        for p in &self.predicates {
            for c in p.cols() {
                cols.insert(c.clone());
            }
        }
        cols
    }

    /// True iff the query references the given relation.
    pub fn references_relation(&self, relation: &str) -> bool {
        self.tables.iter().any(|t| t == relation)
    }

    /// Predicates that only involve relations within `subset`.
    pub fn predicates_within<'a>(
        &'a self,
        subset: &BTreeSet<&str>,
    ) -> impl Iterator<Item = &'a Predicate> + 'a {
        let subset: BTreeSet<String> = subset.iter().map(|s| s.to_string()).collect();
        self.predicates.iter().filter(move |p| p.relations().iter().all(|r| subset.contains(*r)))
    }
}

impl fmt::Display for SpjQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, p) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " FROM {}", self.tables.join(", "))?;
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`SpjQuery`].
#[derive(Debug, Clone)]
pub struct SpjQueryBuilder {
    query: SpjQuery,
}

impl SpjQueryBuilder {
    /// Adds a projection column `relation.attr`.
    pub fn select(mut self, relation: &str, attr: &str) -> Self {
        self.query.projection.push(ProjItem::plain(ColRef::new(relation, attr)));
        self
    }

    /// Adds a projection column with an output alias.
    pub fn select_as(mut self, relation: &str, attr: &str, output: &str) -> Self {
        self.query.projection.push(ProjItem::aliased(ColRef::new(relation, attr), output));
        self
    }

    /// Adds an equi-join predicate.
    pub fn join_eq(mut self, left: (&str, &str), right: (&str, &str)) -> Self {
        self.query
            .predicates
            .push(Predicate::JoinEq(ColRef::new(left.0, left.1), ColRef::new(right.0, right.1)));
        self
    }

    /// Adds a comparison predicate against a constant.
    pub fn filter(
        mut self,
        relation: &str,
        attr: &str,
        op: CmpOp,
        value: impl Into<Value>,
    ) -> Self {
        self.query.predicates.push(Predicate::Compare(
            ColRef::new(relation, attr),
            op,
            value.into(),
        ));
        self
    }

    /// Finishes the build.
    pub fn build(self) -> SpjQuery {
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bookinfo_like() -> SpjQuery {
        SpjQuery::over(["Store", "Item"])
            .select("Store", "StoreName")
            .select("Item", "Book")
            .join_eq(("Store", "SID"), ("Item", "SID"))
            .filter("Item", "Book", CmpOp::Eq, "Guide")
            .build()
    }

    #[test]
    fn referenced_cols_cover_projection_and_predicates() {
        let q = bookinfo_like();
        let cols = q.referenced_cols();
        assert!(cols.contains(&ColRef::new("Store", "SID")));
        assert!(cols.contains(&ColRef::new("Item", "Book")));
        assert!(cols.contains(&ColRef::new("Store", "StoreName")));
        assert_eq!(cols.len(), 4);
    }

    #[test]
    fn display_roundtrip_shape() {
        let q = bookinfo_like();
        let s = q.to_string();
        assert!(s.starts_with("SELECT "));
        assert!(s.contains("FROM Store, Item"));
        assert!(s.contains("WHERE Store.SID = Item.SID AND Item.Book = 'Guide'"));
    }

    #[test]
    fn predicates_within_subset() {
        let q = bookinfo_like();
        let sub: BTreeSet<&str> = ["Item"].into_iter().collect();
        let preds: Vec<_> = q.predicates_within(&sub).collect();
        assert_eq!(preds.len(), 1, "only the constant filter is local to Item");
    }

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Ne.eval(Less));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ge.eval(Greater));
        assert!(CmpOp::Gt.eval(Greater));
        assert!(CmpOp::Lt.eval(Less));
    }
}
