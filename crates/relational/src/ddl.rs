//! Schema changes (DDL) and their composition.
//!
//! These are the `SC` updates of the paper: autonomous sources may rename or
//! drop relations and attributes at any time, invalidating view definitions
//! and breaking in-flight maintenance queries. [`compose`] implements the
//! schema-change combination step of the merged-batch algorithm (paper
//! Section 5): e.g. `rename A→B` followed by `rename B→C` combines to
//! `rename A→C`.

use std::fmt;

use crate::error::RelationalError;
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use crate::tuple::SignedBag;
use crate::value::Value;

/// A single schema change committed by a source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaChange {
    /// `RENAME TABLE from TO to`.
    RenameRelation {
        /// Old relation name.
        from: String,
        /// New relation name.
        to: String,
    },
    /// `ALTER TABLE relation RENAME COLUMN from TO to`.
    RenameAttribute {
        /// The relation changed.
        relation: String,
        /// Old attribute name.
        from: String,
        /// New attribute name.
        to: String,
    },
    /// `ALTER TABLE relation ADD COLUMN attr DEFAULT default`.
    AddAttribute {
        /// The relation changed.
        relation: String,
        /// The new attribute.
        attr: Attribute,
        /// Value assigned to existing tuples.
        default: Value,
    },
    /// `ALTER TABLE relation DROP COLUMN attr`.
    DropAttribute {
        /// The relation changed.
        relation: String,
        /// The dropped attribute name.
        attr: String,
    },
    /// `DROP TABLE relation`.
    DropRelation {
        /// The dropped relation name.
        relation: String,
    },
    /// `CREATE TABLE` with the given schema (empty extent).
    CreateRelation {
        /// The new relation's schema.
        schema: Schema,
    },
    /// Wholesale replacement of one or more relations by a new one with a
    /// provided extent. This models source-side mapping restructurings such
    /// as the paper's Figure 2, where re-tuning the XML-to-relational mapping
    /// collapses `Store` and `Item` into a single `StoreItems` relation.
    ReplaceRelations {
        /// Relations removed by the restructuring.
        dropped: Vec<String>,
        /// The replacement relation, fully populated by the source.
        replacement: Box<Relation>,
    },
}

impl SchemaChange {
    /// Names of the relations whose schema this change touches (before the
    /// change is applied).
    pub fn touched_relations(&self) -> Vec<&str> {
        match self {
            SchemaChange::RenameRelation { from, .. } => vec![from],
            SchemaChange::RenameAttribute { relation, .. }
            | SchemaChange::AddAttribute { relation, .. }
            | SchemaChange::DropAttribute { relation, .. }
            | SchemaChange::DropRelation { relation } => vec![relation],
            SchemaChange::CreateRelation { .. } => vec![],
            SchemaChange::ReplaceRelations { dropped, .. } => {
                dropped.iter().map(String::as_str).collect()
            }
        }
    }

    /// True iff the change only *adds* capability (cannot invalidate any
    /// existing view definition). Pre-exec detection can ignore such changes
    /// when drawing concurrent-dependency edges.
    pub fn is_purely_additive(&self) -> bool {
        matches!(self, SchemaChange::AddAttribute { .. } | SchemaChange::CreateRelation { .. })
    }

    /// True iff applying this change invalidates a reference to
    /// `relation.attr` (used to decide whether a view definition that uses
    /// that column is affected).
    pub fn invalidates_column(&self, relation: &str, attr: &str) -> bool {
        match self {
            SchemaChange::RenameRelation { from, .. } => from == relation,
            SchemaChange::RenameAttribute { relation: r, from, .. } => {
                r == relation && from == attr
            }
            SchemaChange::DropAttribute { relation: r, attr: a } => r == relation && a == attr,
            SchemaChange::DropRelation { relation: r } => r == relation,
            SchemaChange::ReplaceRelations { dropped, .. } => dropped.iter().any(|d| d == relation),
            SchemaChange::AddAttribute { .. } | SchemaChange::CreateRelation { .. } => false,
        }
    }

    /// True iff applying this change invalidates any reference to the
    /// relation as a whole (its name disappears).
    pub fn invalidates_relation(&self, relation: &str) -> bool {
        match self {
            SchemaChange::RenameRelation { from, .. } => from == relation,
            SchemaChange::DropRelation { relation: r } => r == relation,
            SchemaChange::ReplaceRelations { dropped, .. } => dropped.iter().any(|d| d == relation),
            _ => false,
        }
    }
}

impl fmt::Display for SchemaChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaChange::RenameRelation { from, to } => {
                write!(f, "RENAME TABLE {from} TO {to}")
            }
            SchemaChange::RenameAttribute { relation, from, to } => {
                write!(f, "ALTER TABLE {relation} RENAME COLUMN {from} TO {to}")
            }
            SchemaChange::AddAttribute { relation, attr, default } => write!(
                f,
                "ALTER TABLE {relation} ADD COLUMN {} {} DEFAULT {default}",
                attr.name, attr.ty
            ),
            SchemaChange::DropAttribute { relation, attr } => {
                write!(f, "ALTER TABLE {relation} DROP COLUMN {attr}")
            }
            SchemaChange::DropRelation { relation } => write!(f, "DROP TABLE {relation}"),
            SchemaChange::CreateRelation { schema } => write!(f, "CREATE TABLE {schema}"),
            SchemaChange::ReplaceRelations { dropped, replacement } => write!(
                f,
                "REPLACE TABLES {} WITH {}",
                dropped.join(", "),
                replacement.schema().relation
            ),
        }
    }
}

/// Applies a schema change to a single relation, producing its new state.
///
/// Returns `Ok(None)` when the relation ceases to exist (drop / replace).
/// `CreateRelation`/`ReplaceRelations` introduce new relations and are
/// handled at the catalog level (see `Catalog::apply_schema_change`).
pub fn apply_to_relation(
    rel: &Relation,
    change: &SchemaChange,
) -> Result<Option<Relation>, RelationalError> {
    match change {
        SchemaChange::RenameRelation { from, to } => {
            expect_touches(rel, from)?;
            Ok(Some(Relation::replace_parts(rel.schema().renamed(to.clone()), rel.rows().clone())))
        }
        SchemaChange::RenameAttribute { relation, from, to } => {
            expect_touches(rel, relation)?;
            let schema = rel.schema().with_attr_renamed(from, to)?;
            Ok(Some(Relation::replace_parts(schema, rel.rows().clone())))
        }
        SchemaChange::AddAttribute { relation, attr, default } => {
            expect_touches(rel, relation)?;
            let schema = rel.schema().with_attr_added(attr.clone())?;
            let mut rows = SignedBag::new();
            for (t, c) in rel.rows().iter() {
                let mut vals = t.values().to_vec();
                vals.push(default.clone());
                rows.add(crate::tuple::Tuple::new(vals), c);
            }
            Ok(Some(Relation::replace_parts(schema, rows)))
        }
        SchemaChange::DropAttribute { relation, attr } => {
            expect_touches(rel, relation)?;
            let idx = rel.schema().require(attr)?;
            let schema = rel.schema().with_attr_dropped(attr)?;
            let keep: Vec<usize> = (0..rel.schema().arity()).filter(|&i| i != idx).collect();
            Ok(Some(Relation::replace_parts(schema, rel.rows().project(&keep))))
        }
        SchemaChange::DropRelation { relation } => {
            expect_touches(rel, relation)?;
            Ok(None)
        }
        SchemaChange::ReplaceRelations { dropped, .. } => {
            if dropped.iter().any(|d| *d == rel.schema().relation) {
                Ok(None)
            } else {
                Err(RelationalError::UnknownRelation { relation: rel.schema().relation.clone() })
            }
        }
        SchemaChange::CreateRelation { schema } => {
            Err(RelationalError::DuplicateRelation { relation: schema.relation.clone() })
        }
    }
}

fn expect_touches(rel: &Relation, name: &str) -> Result<(), RelationalError> {
    if rel.schema().relation == name {
        Ok(())
    } else {
        Err(RelationalError::UnknownRelation { relation: name.to_string() })
    }
}

/// Composes a sequence of schema changes over the *same source* into a
/// minimal equivalent sequence (paper Section 5 preprocessing).
///
/// Currently implemented combinations:
/// - chained relation renames collapse (`A→B`, `B→C` ⇒ `A→C`);
/// - chained attribute renames collapse, following relation renames;
/// - a rename followed by a drop collapses to a drop of the original name;
/// - changes to a relation that is later dropped are elided.
///
/// The result applied sequentially is equivalent to applying the input
/// sequentially (verified by property tests).
pub fn compose(changes: &[SchemaChange]) -> Vec<SchemaChange> {
    let mut out: Vec<SchemaChange> = Vec::new();
    for ch in changes {
        push_composed(&mut out, ch.clone());
    }
    out
}

fn push_composed(out: &mut Vec<SchemaChange>, ch: SchemaChange) {
    match &ch {
        SchemaChange::RenameRelation { from, to } => {
            // Collapse with an earlier rename chain ending at `from`.
            let prior = out.iter().position(
                |c| matches!(c, SchemaChange::RenameRelation { to: t0, .. } if t0 == from),
            );
            if let Some(i) = prior {
                let f0 = match &out[i] {
                    SchemaChange::RenameRelation { from: f0, .. } => f0.clone(),
                    _ => unreachable!(),
                };
                let cancelled = &f0 == to;
                if cancelled {
                    // A→B then B→A: both vanish.
                    out.remove(i);
                } else {
                    out[i] = SchemaChange::RenameRelation { from: f0.clone(), to: to.clone() };
                }
                // The intermediate name no longer exists at any point of the
                // composed sequence: changes recorded between the two renames
                // referenced it and must follow the relation to its final
                // name (or back to the original, in the cancellation case).
                let final_name = if cancelled { f0 } else { to.clone() };
                for c in out.iter_mut() {
                    rewrite_relation_name(c, from, &final_name);
                }
                return;
            }
            out.push(ch);
        }
        SchemaChange::RenameAttribute { relation, from, to } => {
            // Collapse chained attribute renames on the same relation.
            let prior = out.iter().position(|c| {
                matches!(c, SchemaChange::RenameAttribute { relation: r0, to: t0, .. }
                    if r0 == relation && t0 == from)
            });
            if let Some(i) = prior {
                let f0 = match &out[i] {
                    SchemaChange::RenameAttribute { from: f0, .. } => f0.clone(),
                    _ => unreachable!(),
                };
                if &f0 == to {
                    out.remove(i);
                } else {
                    out[i] = SchemaChange::RenameAttribute {
                        relation: relation.clone(),
                        from: f0,
                        to: to.clone(),
                    };
                }
                return;
            }
            out.push(ch);
        }
        SchemaChange::DropAttribute { relation, attr } => {
            // `rename a→b` then `drop b` ⇒ `drop a`.
            let mut effective =
                SchemaChange::DropAttribute { relation: relation.clone(), attr: attr.clone() };
            let mut removed = None;
            for (i, prev) in out.iter().enumerate() {
                if let SchemaChange::RenameAttribute { relation: r0, from: f0, to: t0 } = prev {
                    if r0 == relation && t0 == attr {
                        effective = SchemaChange::DropAttribute {
                            relation: relation.clone(),
                            attr: f0.clone(),
                        };
                        removed = Some(i);
                        break;
                    }
                }
            }
            if let Some(i) = removed {
                out.remove(i);
            }
            out.push(effective);
        }
        SchemaChange::DropRelation { relation } => {
            // Elide earlier changes to this relation; a rename chain ending
            // here means the *original* relation is what disappears.
            let mut original = relation.clone();
            let mut i = 0;
            while i < out.len() {
                let drop_this = match &out[i] {
                    SchemaChange::RenameRelation { from, to } if to == &original => {
                        original = from.clone();
                        true
                    }
                    SchemaChange::RenameAttribute { relation: r, .. }
                    | SchemaChange::AddAttribute { relation: r, .. }
                    | SchemaChange::DropAttribute { relation: r, .. }
                        if r == &original || r == relation =>
                    {
                        true
                    }
                    SchemaChange::CreateRelation { schema } if schema.relation == original => {
                        // created then dropped inside the batch: both vanish
                        out.remove(i);
                        return;
                    }
                    _ => false,
                };
                if drop_this {
                    out.remove(i);
                } else {
                    i += 1;
                }
            }
            out.push(SchemaChange::DropRelation { relation: original });
        }
        _ => out.push(ch),
    }
}

/// Renames every reference to relation `from` inside a recorded change.
fn rewrite_relation_name(change: &mut SchemaChange, from: &str, to: &str) {
    match change {
        SchemaChange::RenameAttribute { relation, .. }
        | SchemaChange::AddAttribute { relation, .. }
        | SchemaChange::DropAttribute { relation, .. }
        | SchemaChange::DropRelation { relation } => {
            if relation == from {
                *relation = to.to_string();
            }
        }
        SchemaChange::ReplaceRelations { dropped, .. } => {
            for d in dropped.iter_mut() {
                if d == from {
                    *d = to.to_string();
                }
            }
        }
        SchemaChange::RenameRelation { .. } | SchemaChange::CreateRelation { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;
    use crate::tuple::Tuple;

    #[test]
    fn compose_rewrites_interleaved_references() {
        // rename T→T1; alter T1; rename T1→T3 — the collapsed sequence must
        // reference T3, not the vanished T1.
        let composed = compose(&[
            SchemaChange::RenameRelation { from: "T".into(), to: "T1".into() },
            SchemaChange::RenameAttribute {
                relation: "T1".into(),
                from: "a".into(),
                to: "x".into(),
            },
            SchemaChange::RenameRelation { from: "T1".into(), to: "T3".into() },
        ]);
        assert_eq!(
            composed,
            vec![
                SchemaChange::RenameRelation { from: "T".into(), to: "T3".into() },
                SchemaChange::RenameAttribute {
                    relation: "T3".into(),
                    from: "a".into(),
                    to: "x".into()
                },
            ]
        );
    }

    #[test]
    fn compose_cancelled_rename_restores_references() {
        let composed = compose(&[
            SchemaChange::RenameRelation { from: "T".into(), to: "T1".into() },
            SchemaChange::DropAttribute { relation: "T1".into(), attr: "a".into() },
            SchemaChange::RenameRelation { from: "T1".into(), to: "T".into() },
        ]);
        assert_eq!(
            composed,
            vec![SchemaChange::DropAttribute { relation: "T".into(), attr: "a".into() }]
        );
    }

    fn rel() -> Relation {
        let schema = Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Str)]);
        Relation::from_tuples(schema, [Tuple::of([Value::from(1), Value::str("x")])]).unwrap()
    }

    #[test]
    fn rename_relation_keeps_rows() {
        let r = rel();
        let out = apply_to_relation(
            &r,
            &SchemaChange::RenameRelation { from: "R".into(), to: "S".into() },
        )
        .unwrap()
        .unwrap();
        assert_eq!(out.schema().relation, "S");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn drop_attribute_projects_rows() {
        let r = rel();
        let out = apply_to_relation(
            &r,
            &SchemaChange::DropAttribute { relation: "R".into(), attr: "a".into() },
        )
        .unwrap()
        .unwrap();
        assert_eq!(out.schema().arity(), 1);
        assert_eq!(out.rows().count(&Tuple::of([Value::str("x")])), 1);
    }

    #[test]
    fn add_attribute_fills_default() {
        let r = rel();
        let out = apply_to_relation(
            &r,
            &SchemaChange::AddAttribute {
                relation: "R".into(),
                attr: Attribute::new("c", AttrType::Int),
                default: Value::from(0),
            },
        )
        .unwrap()
        .unwrap();
        assert_eq!(out.schema().arity(), 3);
        assert_eq!(
            out.rows().count(&Tuple::of([Value::from(1), Value::str("x"), Value::from(0)])),
            1
        );
    }

    #[test]
    fn drop_relation_removes() {
        let out = apply_to_relation(&rel(), &SchemaChange::DropRelation { relation: "R".into() })
            .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn compose_chained_relation_renames() {
        let composed = compose(&[
            SchemaChange::RenameRelation { from: "A".into(), to: "B".into() },
            SchemaChange::RenameRelation { from: "B".into(), to: "C".into() },
        ]);
        assert_eq!(
            composed,
            vec![SchemaChange::RenameRelation { from: "A".into(), to: "C".into() }]
        );
    }

    #[test]
    fn compose_rename_cycle_cancels() {
        let composed = compose(&[
            SchemaChange::RenameRelation { from: "A".into(), to: "B".into() },
            SchemaChange::RenameRelation { from: "B".into(), to: "A".into() },
        ]);
        assert!(composed.is_empty());
    }

    #[test]
    fn compose_attr_rename_chain() {
        let composed = compose(&[
            SchemaChange::RenameAttribute {
                relation: "R".into(),
                from: "a".into(),
                to: "b".into(),
            },
            SchemaChange::RenameAttribute {
                relation: "R".into(),
                from: "b".into(),
                to: "c".into(),
            },
        ]);
        assert_eq!(
            composed,
            vec![SchemaChange::RenameAttribute {
                relation: "R".into(),
                from: "a".into(),
                to: "c".into()
            }]
        );
    }

    #[test]
    fn compose_rename_then_drop_attr() {
        let composed = compose(&[
            SchemaChange::RenameAttribute {
                relation: "R".into(),
                from: "a".into(),
                to: "b".into(),
            },
            SchemaChange::DropAttribute { relation: "R".into(), attr: "b".into() },
        ]);
        assert_eq!(
            composed,
            vec![SchemaChange::DropAttribute { relation: "R".into(), attr: "a".into() }]
        );
    }

    #[test]
    fn compose_changes_then_drop_relation() {
        let composed = compose(&[
            SchemaChange::RenameRelation { from: "A".into(), to: "B".into() },
            SchemaChange::DropAttribute { relation: "B".into(), attr: "x".into() },
            SchemaChange::DropRelation { relation: "B".into() },
        ]);
        assert_eq!(composed, vec![SchemaChange::DropRelation { relation: "A".into() }]);
    }

    #[test]
    fn compose_create_then_drop_cancels() {
        let schema = Schema::of("T", &[("a", AttrType::Int)]);
        let composed = compose(&[
            SchemaChange::CreateRelation { schema },
            SchemaChange::DropRelation { relation: "T".into() },
        ]);
        assert!(composed.is_empty());
    }

    #[test]
    fn invalidation_checks() {
        let sc = SchemaChange::DropAttribute { relation: "R".into(), attr: "a".into() };
        assert!(sc.invalidates_column("R", "a"));
        assert!(!sc.invalidates_column("R", "b"));
        assert!(!sc.invalidates_relation("R"));
        let dr = SchemaChange::DropRelation { relation: "R".into() };
        assert!(dr.invalidates_relation("R"));
        assert!(dr.invalidates_column("R", "anything"));
    }
}
