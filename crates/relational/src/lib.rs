//! # dyno-relational — in-memory relational substrate
//!
//! The relational model underneath the Dyno view-maintenance reproduction
//! (ICDE 2004): typed values, schemas, bag relations with signed deltas, an
//! SPJ (select-project-join) query engine, and DDL (schema changes) with
//! composition.
//!
//! Design notes:
//! - **Bag semantics everywhere.** Relations are multisets; deltas are signed
//!   multisets; the query engine evaluates over signed multiplicities so the
//!   classic incremental identity `(R+Δ) ⋈ S = R ⋈ S + Δ ⋈ S` holds exactly.
//! - **Broken queries are first-class.** Query validation against the current
//!   schema fails with a *schema conflict* error
//!   ([`RelationalError::is_schema_conflict`]) — the mechanical form of the
//!   paper's broken-query anomaly.
//! - **No interior mutability, no threads.** Sources and the view manager are
//!   driven by a deterministic discrete-event simulation in `dyno-sim`.

#![warn(missing_docs)]

pub mod catalog;
pub mod ddl;
pub mod error;
pub mod exec;
pub mod index;
pub mod parser;
pub mod query;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod update;
pub mod value;
pub mod wire;

pub use catalog::Catalog;
pub use ddl::{apply_to_relation, compose, SchemaChange};
pub use error::RelationalError;
pub use exec::{
    delta_join, delta_join_probe, delta_project, delta_select, distinct_delta, eval, thread_stats,
    validate, ExecStats, Overlay, QueryResult, RelationProvider, TableSlice,
};
pub use index::{key_hash, HashIndex};
pub use parser::{parse_create_view, parse_query, ParseError};
pub use query::{CmpOp, Predicate, ProjItem, SpjQuery, SpjQueryBuilder};
pub use relation::{Delta, Relation};
pub use schema::{AttrType, Attribute, ColRef, Schema};
pub use tuple::{SignedBag, Tuple, ZSet};
pub use update::{DataUpdate, SourceUpdate};
pub use value::{Value, F64};
