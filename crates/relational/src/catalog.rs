//! A catalog of named relations — the storage layer of one data source.

use std::collections::BTreeMap;

use crate::ddl::{apply_to_relation, SchemaChange};
use crate::error::RelationalError;
use crate::exec::{RelationProvider, TableSlice};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::update::{DataUpdate, SourceUpdate};

/// A set of named relations with DDL and DML application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates an empty relation with the given schema.
    pub fn create(&mut self, schema: Schema) -> Result<(), RelationalError> {
        self.add_relation(Relation::empty(schema))
    }

    /// Adds a populated relation.
    pub fn add_relation(&mut self, relation: Relation) -> Result<(), RelationalError> {
        let name = relation.schema().relation.clone();
        if self.relations.contains_key(&name) {
            return Err(RelationalError::DuplicateRelation { relation: name });
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Result<&Relation, RelationalError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation { relation: name.to_string() })
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation, RelationalError> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelationalError::UnknownRelation { relation: name.to_string() })
    }

    /// True iff the relation exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff the catalog has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Applies a data update to its relation.
    pub fn apply_data_update(&mut self, du: &DataUpdate) -> Result<(), RelationalError> {
        self.get_mut(&du.relation)?.apply(&du.delta)
    }

    /// Applies a schema change, updating/removing/creating relations as
    /// needed.
    pub fn apply_schema_change(&mut self, sc: &SchemaChange) -> Result<(), RelationalError> {
        match sc {
            SchemaChange::CreateRelation { schema } => self.create(schema.clone()),
            SchemaChange::ReplaceRelations { dropped, replacement } => {
                for d in dropped {
                    // All dropped relations must exist, checked up front so a
                    // failed change leaves the catalog untouched.
                    self.get(d)?;
                }
                if self.contains(&replacement.schema().relation)
                    && !dropped.contains(&replacement.schema().relation)
                {
                    return Err(RelationalError::DuplicateRelation {
                        relation: replacement.schema().relation.clone(),
                    });
                }
                for d in dropped {
                    self.relations.remove(d);
                }
                self.add_relation((**replacement).clone())
            }
            SchemaChange::RenameRelation { from, to } => {
                if self.contains(to) {
                    return Err(RelationalError::DuplicateRelation { relation: to.clone() });
                }
                let rel = self.get(from)?;
                let renamed = apply_to_relation(rel, sc)?.expect("rename keeps relation");
                self.relations.remove(from);
                self.relations.insert(to.clone(), renamed);
                Ok(())
            }
            _ => {
                let name = sc
                    .touched_relations()
                    .first()
                    .copied()
                    .ok_or_else(|| RelationalError::InvalidQuery {
                        reason: format!("schema change touches no relation: {sc}"),
                    })?
                    .to_string();
                let rel = self.get(&name)?;
                match apply_to_relation(rel, sc)? {
                    Some(updated) => {
                        self.relations.insert(name, updated);
                        Ok(())
                    }
                    None => {
                        self.relations.remove(&name);
                        Ok(())
                    }
                }
            }
        }
    }

    /// Applies any source update.
    pub fn apply_update(&mut self, update: &SourceUpdate) -> Result<(), RelationalError> {
        match update {
            SourceUpdate::Data(du) => self.apply_data_update(du),
            SourceUpdate::Schema(sc) => self.apply_schema_change(sc),
        }
    }
}

impl RelationProvider for Catalog {
    fn table(&self, name: &str) -> Result<TableSlice<'_>, RelationalError> {
        self.get(name).map(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Delta;
    use crate::schema::AttrType;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Str)])).unwrap();
        c
    }

    #[test]
    fn create_and_duplicate() {
        let mut c = catalog();
        assert!(c.contains("R"));
        assert!(c.create(Schema::of("R", &[("x", AttrType::Int)])).is_err());
    }

    #[test]
    fn data_update_roundtrip() {
        let mut c = catalog();
        let schema = c.get("R").unwrap().schema().clone();
        let du = DataUpdate::new(
            Delta::inserts(schema, [Tuple::of([Value::from(1), Value::str("x")])]).unwrap(),
        );
        c.apply_data_update(&du).unwrap();
        assert_eq!(c.get("R").unwrap().len(), 1);
    }

    #[test]
    fn rename_moves_relation() {
        let mut c = catalog();
        c.apply_schema_change(&SchemaChange::RenameRelation { from: "R".into(), to: "S".into() })
            .unwrap();
        assert!(!c.contains("R"));
        assert!(c.contains("S"));
        assert_eq!(c.get("S").unwrap().schema().relation, "S");
    }

    #[test]
    fn rename_onto_existing_rejected() {
        let mut c = catalog();
        c.create(Schema::of("S", &[("x", AttrType::Int)])).unwrap();
        assert!(c
            .apply_schema_change(&SchemaChange::RenameRelation { from: "R".into(), to: "S".into() })
            .is_err());
        assert!(c.contains("R"), "failed rename must not mutate");
    }

    #[test]
    fn drop_attribute_via_catalog() {
        let mut c = catalog();
        c.apply_schema_change(&SchemaChange::DropAttribute {
            relation: "R".into(),
            attr: "b".into(),
        })
        .unwrap();
        assert_eq!(c.get("R").unwrap().schema().arity(), 1);
    }

    #[test]
    fn replace_relations() {
        let mut c = catalog();
        c.create(Schema::of("R2", &[("x", AttrType::Int)])).unwrap();
        let replacement =
            Relation::from_tuples(Schema::of("M", &[("a", AttrType::Int)]), [Tuple::of([1i64])])
                .unwrap();
        c.apply_schema_change(&SchemaChange::ReplaceRelations {
            dropped: vec!["R".into(), "R2".into()],
            replacement: Box::new(replacement),
        })
        .unwrap();
        assert!(!c.contains("R") && !c.contains("R2"));
        assert_eq!(c.get("M").unwrap().len(), 1);
    }

    #[test]
    fn replace_missing_relation_fails_cleanly() {
        let mut c = catalog();
        let replacement = Relation::empty(Schema::of("M", &[("a", AttrType::Int)]));
        let err = c.apply_schema_change(&SchemaChange::ReplaceRelations {
            dropped: vec!["R".into(), "Ghost".into()],
            replacement: Box::new(replacement),
        });
        assert!(err.is_err());
        assert!(c.contains("R"), "failed replace must not drop anything");
    }

    #[test]
    fn provider_surface() {
        let c = catalog();
        assert!(c.table("R").is_ok());
        assert!(c.table("nope").unwrap_err().is_schema_conflict());
    }
}
