//! A catalog of named relations — the storage layer of one data source.

use std::collections::BTreeMap;

use crate::ddl::{apply_to_relation, SchemaChange};
use crate::error::RelationalError;
use crate::exec::{RelationProvider, TableSlice};
use crate::index::HashIndex;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::update::{DataUpdate, SourceUpdate};

/// A set of named relations with DDL and DML application, plus the
/// secondary hash indexes maintained over them.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
    /// Secondary indexes per relation, maintained through
    /// [`Catalog::apply_data_update`] / [`Catalog::apply_schema_change`].
    indexes: BTreeMap<String, Vec<HashIndex>>,
}

/// Catalog equality is over relation *content* only: indexes are an access
/// path derived from it, so two catalogs holding the same relations are
/// equal whether or not indexes were declared on them.
impl PartialEq for Catalog {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Eq for Catalog {}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates an empty relation with the given schema.
    pub fn create(&mut self, schema: Schema) -> Result<(), RelationalError> {
        self.add_relation(Relation::empty(schema))
    }

    /// Adds a populated relation.
    pub fn add_relation(&mut self, relation: Relation) -> Result<(), RelationalError> {
        let name = relation.schema().relation.clone();
        if self.relations.contains_key(&name) {
            return Err(RelationalError::DuplicateRelation { relation: name });
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Result<&Relation, RelationalError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation { relation: name.to_string() })
    }

    /// Mutable lookup. Mutating a relation directly bypasses index
    /// maintenance, so any secondary indexes on it are dropped first —
    /// use [`Catalog::apply_data_update`] to keep indexes live.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation, RelationalError> {
        self.indexes.remove(name);
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelationalError::UnknownRelation { relation: name.to_string() })
    }

    /// Declares (or rebuilds) a secondary hash index on `relation` covering
    /// `attrs`. Idempotent per attribute set; fails if the relation or any
    /// attribute is unknown.
    pub fn create_index(&mut self, relation: &str, attrs: &[&str]) -> Result<(), RelationalError> {
        let rel = self.get(relation)?;
        let owned: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
        let index = HashIndex::build(rel, &owned)?;
        let list = self.indexes.entry(relation.to_string()).or_default();
        list.retain(|i| !i.covers(attrs));
        list.push(index);
        Ok(())
    }

    /// All indexes on `relation` (empty when none are declared).
    pub fn indexes_on(&self, relation: &str) -> &[HashIndex] {
        self.indexes.get(relation).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The index on `relation` covering exactly `attrs`, if one exists.
    pub fn index_covering(&self, relation: &str, attrs: &[&str]) -> Option<&HashIndex> {
        self.indexes_on(relation).iter().find(|i| i.covers(attrs))
    }

    /// True iff the relation exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff the catalog has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Applies a data update to its relation, maintaining every index on it
    /// incrementally from the delta.
    pub fn apply_data_update(&mut self, du: &DataUpdate) -> Result<(), RelationalError> {
        self.relations
            .get_mut(&du.relation)
            .ok_or_else(|| RelationalError::UnknownRelation { relation: du.relation.clone() })?
            .apply(&du.delta)?;
        if let Some(list) = self.indexes.get_mut(&du.relation) {
            for index in list {
                index.apply(du.delta.rows().iter());
            }
        }
        Ok(())
    }

    /// Applies a schema change, updating/removing/creating relations as
    /// needed. Secondary indexes follow the relation: renames carry them
    /// over, attribute changes rebuild them (dropping any index whose key
    /// attribute was dropped), and relation drops/replacements discard them.
    pub fn apply_schema_change(&mut self, sc: &SchemaChange) -> Result<(), RelationalError> {
        self.apply_schema_change_inner(sc)?;
        self.refresh_indexes_after(sc);
        Ok(())
    }

    fn apply_schema_change_inner(&mut self, sc: &SchemaChange) -> Result<(), RelationalError> {
        match sc {
            SchemaChange::CreateRelation { schema } => self.create(schema.clone()),
            SchemaChange::ReplaceRelations { dropped, replacement } => {
                for d in dropped {
                    // All dropped relations must exist, checked up front so a
                    // failed change leaves the catalog untouched.
                    self.get(d)?;
                }
                if self.contains(&replacement.schema().relation)
                    && !dropped.contains(&replacement.schema().relation)
                {
                    return Err(RelationalError::DuplicateRelation {
                        relation: replacement.schema().relation.clone(),
                    });
                }
                for d in dropped {
                    self.relations.remove(d);
                }
                self.add_relation((**replacement).clone())
            }
            SchemaChange::RenameRelation { from, to } => {
                if self.contains(to) {
                    return Err(RelationalError::DuplicateRelation { relation: to.clone() });
                }
                let rel = self.get(from)?;
                let renamed = apply_to_relation(rel, sc)?.expect("rename keeps relation");
                self.relations.remove(from);
                self.relations.insert(to.clone(), renamed);
                Ok(())
            }
            _ => {
                let name = sc
                    .touched_relations()
                    .first()
                    .copied()
                    .ok_or_else(|| RelationalError::InvalidQuery {
                        reason: format!("schema change touches no relation: {sc}"),
                    })?
                    .to_string();
                let rel = self.get(&name)?;
                match apply_to_relation(rel, sc)? {
                    Some(updated) => {
                        self.relations.insert(name, updated);
                        Ok(())
                    }
                    None => {
                        self.relations.remove(&name);
                        Ok(())
                    }
                }
            }
        }
    }

    /// Post-DDL index fixup; only called after the change applied cleanly,
    /// so a failed change leaves indexes untouched too.
    fn refresh_indexes_after(&mut self, sc: &SchemaChange) {
        match sc {
            SchemaChange::CreateRelation { .. } => {}
            SchemaChange::RenameRelation { from, to } => {
                if let Some(list) = self.indexes.remove(from) {
                    self.indexes.insert(to.clone(), list);
                }
            }
            SchemaChange::RenameAttribute { relation, from, to } => {
                if let Some(list) = self.indexes.get_mut(relation) {
                    for index in list {
                        index.rename_attr(from, to);
                    }
                }
            }
            SchemaChange::AddAttribute { relation, .. }
            | SchemaChange::DropAttribute { relation, .. } => {
                // Column positions shifted (or an indexed attribute went
                // away): rebuild from the post-change relation.
                self.rebuild_indexes(relation);
            }
            SchemaChange::DropRelation { relation } => {
                self.indexes.remove(relation);
            }
            SchemaChange::ReplaceRelations { dropped, replacement } => {
                for d in dropped {
                    self.indexes.remove(d);
                }
                self.indexes.remove(&replacement.schema().relation);
            }
        }
    }

    fn rebuild_indexes(&mut self, relation: &str) {
        let Some(list) = self.indexes.remove(relation) else { return };
        let Some(rel) = self.relations.get(relation) else { return };
        let rebuilt: Vec<HashIndex> = list
            .into_iter()
            // An index whose key attribute was dropped fails to build and
            // is discarded — exactly the invalidation we want.
            .filter_map(|old| HashIndex::build(rel, old.attrs()).ok())
            .collect();
        if !rebuilt.is_empty() {
            self.indexes.insert(relation.to_string(), rebuilt);
        }
    }

    /// Applies any source update.
    pub fn apply_update(&mut self, update: &SourceUpdate) -> Result<(), RelationalError> {
        match update {
            SourceUpdate::Data(du) => self.apply_data_update(du),
            SourceUpdate::Schema(sc) => self.apply_schema_change(sc),
        }
    }
}

impl RelationProvider for Catalog {
    fn table(&self, name: &str) -> Result<TableSlice<'_>, RelationalError> {
        self.get(name).map(Into::into)
    }

    fn index_on(&self, name: &str, attrs: &[&str]) -> Option<&HashIndex> {
        self.index_covering(name, attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Delta;
    use crate::schema::AttrType;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Str)])).unwrap();
        c
    }

    #[test]
    fn create_and_duplicate() {
        let mut c = catalog();
        assert!(c.contains("R"));
        assert!(c.create(Schema::of("R", &[("x", AttrType::Int)])).is_err());
    }

    #[test]
    fn data_update_roundtrip() {
        let mut c = catalog();
        let schema = c.get("R").unwrap().schema().clone();
        let du = DataUpdate::new(
            Delta::inserts(schema, [Tuple::of([Value::from(1), Value::str("x")])]).unwrap(),
        );
        c.apply_data_update(&du).unwrap();
        assert_eq!(c.get("R").unwrap().len(), 1);
    }

    #[test]
    fn rename_moves_relation() {
        let mut c = catalog();
        c.apply_schema_change(&SchemaChange::RenameRelation { from: "R".into(), to: "S".into() })
            .unwrap();
        assert!(!c.contains("R"));
        assert!(c.contains("S"));
        assert_eq!(c.get("S").unwrap().schema().relation, "S");
    }

    #[test]
    fn rename_onto_existing_rejected() {
        let mut c = catalog();
        c.create(Schema::of("S", &[("x", AttrType::Int)])).unwrap();
        assert!(c
            .apply_schema_change(&SchemaChange::RenameRelation { from: "R".into(), to: "S".into() })
            .is_err());
        assert!(c.contains("R"), "failed rename must not mutate");
    }

    #[test]
    fn drop_attribute_via_catalog() {
        let mut c = catalog();
        c.apply_schema_change(&SchemaChange::DropAttribute {
            relation: "R".into(),
            attr: "b".into(),
        })
        .unwrap();
        assert_eq!(c.get("R").unwrap().schema().arity(), 1);
    }

    #[test]
    fn replace_relations() {
        let mut c = catalog();
        c.create(Schema::of("R2", &[("x", AttrType::Int)])).unwrap();
        let replacement =
            Relation::from_tuples(Schema::of("M", &[("a", AttrType::Int)]), [Tuple::of([1i64])])
                .unwrap();
        c.apply_schema_change(&SchemaChange::ReplaceRelations {
            dropped: vec!["R".into(), "R2".into()],
            replacement: Box::new(replacement),
        })
        .unwrap();
        assert!(!c.contains("R") && !c.contains("R2"));
        assert_eq!(c.get("M").unwrap().len(), 1);
    }

    #[test]
    fn replace_missing_relation_fails_cleanly() {
        let mut c = catalog();
        let replacement = Relation::empty(Schema::of("M", &[("a", AttrType::Int)]));
        let err = c.apply_schema_change(&SchemaChange::ReplaceRelations {
            dropped: vec!["R".into(), "Ghost".into()],
            replacement: Box::new(replacement),
        });
        assert!(err.is_err());
        assert!(c.contains("R"), "failed replace must not drop anything");
    }

    #[test]
    fn provider_surface() {
        let c = catalog();
        assert!(c.table("R").is_ok());
        assert!(c.table("nope").unwrap_err().is_schema_conflict());
    }

    fn indexed_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            Relation::from_tuples(
                Schema::of("R", &[("a", AttrType::Int), ("b", AttrType::Str)]),
                [
                    Tuple::of([Value::from(1), Value::str("x")]),
                    Tuple::of([Value::from(2), Value::str("y")]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.create_index("R", &["a"]).unwrap();
        c
    }

    #[test]
    fn data_update_maintains_index() {
        let mut c = indexed_catalog();
        let schema = c.get("R").unwrap().schema().clone();
        let du = DataUpdate::new(
            Delta::from_rows(
                schema,
                [
                    (Tuple::of([Value::from(1), Value::str("x")]), -1),
                    (Tuple::of([Value::from(3), Value::str("z")]), 1),
                ],
            )
            .unwrap(),
        );
        c.apply_data_update(&du).unwrap();
        let idx = c.index_covering("R", &["a"]).unwrap();
        let (one, three) = (Value::from(1), Value::from(3));
        assert!(idx.probe(&[&one]).is_empty());
        assert_eq!(idx.probe(&[&three]).len(), 1);
    }

    #[test]
    fn rename_relation_carries_indexes() {
        let mut c = indexed_catalog();
        c.apply_schema_change(&SchemaChange::RenameRelation { from: "R".into(), to: "S".into() })
            .unwrap();
        assert!(c.index_covering("S", &["a"]).is_some());
        assert!(c.indexes_on("R").is_empty());
    }

    #[test]
    fn rename_attribute_follows_in_index() {
        let mut c = indexed_catalog();
        c.apply_schema_change(&SchemaChange::RenameAttribute {
            relation: "R".into(),
            from: "a".into(),
            to: "a2".into(),
        })
        .unwrap();
        assert!(c.index_covering("R", &["a"]).is_none());
        let idx = c.index_covering("R", &["a2"]).unwrap();
        let two = Value::from(2);
        assert_eq!(idx.probe(&[&two]).len(), 1);
    }

    #[test]
    fn drop_indexed_attribute_drops_index() {
        let mut c = indexed_catalog();
        c.apply_schema_change(&SchemaChange::DropAttribute {
            relation: "R".into(),
            attr: "a".into(),
        })
        .unwrap();
        assert!(c.indexes_on("R").is_empty());
    }

    #[test]
    fn drop_other_attribute_rebuilds_index() {
        let mut c = indexed_catalog();
        c.apply_schema_change(&SchemaChange::DropAttribute {
            relation: "R".into(),
            attr: "b".into(),
        })
        .unwrap();
        let idx = c.index_covering("R", &["a"]).unwrap();
        let one = Value::from(1);
        let hits = idx.probe(&[&one]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.arity(), 1, "rebuilt index holds post-DDL rows");
    }

    #[test]
    fn drop_relation_drops_indexes() {
        let mut c = indexed_catalog();
        c.apply_schema_change(&SchemaChange::DropRelation { relation: "R".into() }).unwrap();
        assert!(c.indexes_on("R").is_empty());
    }

    #[test]
    fn get_mut_invalidates_indexes() {
        let mut c = indexed_catalog();
        c.get_mut("R").unwrap();
        assert!(c.indexes_on("R").is_empty(), "direct mutation cannot desync an index");
    }

    #[test]
    fn equality_ignores_indexes() {
        let plain = {
            let mut c = indexed_catalog();
            c.get_mut("R").unwrap(); // drops the index, keeps the rows
            c
        };
        assert_eq!(plain, indexed_catalog());
    }
}
