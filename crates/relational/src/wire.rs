//! Binary (de)serialization of the relational model for the warehouse WAL.
//!
//! Every encoder here is paired with a decoder that rebuilds the value
//! through the type's *validating* constructor (`Schema::new`,
//! `Delta::from_rows`, `Relation::apply`), so corrupt-but-CRC-valid bytes
//! can still be rejected as [`WireError::Invalid`] instead of materializing
//! an impossible relation. Floats travel as raw IEEE-754 bits via
//! [`F64::new`], which re-normalizes on the way in (`-0.0 → 0.0` etc.), so
//! a value round trips to exactly the representation the engine would have
//! produced itself — the crash oracle's bit-identity check depends on this.

use crate::ddl::SchemaChange;
use crate::relation::{Delta, Relation};
use crate::schema::{AttrType, Attribute, Schema};
use crate::tuple::{SignedBag, Tuple};
use crate::update::{DataUpdate, SourceUpdate};
use crate::value::{Value, F64};
use dyno_durable::codec::{dec_seq, enc_seq, Dec, Enc, WireError};

/// Encode a [`Value`] (one tag byte + payload).
pub fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(0),
        Value::Bool(b) => {
            e.u8(1);
            e.bool(*b);
        }
        Value::Int(i) => {
            e.u8(2);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(3);
            e.f64_bits(f.get());
        }
        Value::Str(s) => {
            e.u8(4);
            e.str(s);
        }
    }
}

/// Decode a [`Value`].
pub fn dec_value(d: &mut Dec<'_>) -> Result<Value, WireError> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Bool(d.bool()?),
        2 => Value::Int(d.i64()?),
        3 => Value::Float(F64::new(d.f64_bits()?)),
        4 => Value::str(d.str()?),
        t => return Err(WireError::Invalid(format!("value tag {t}"))),
    })
}

/// Encode a [`Tuple`] as a value sequence.
pub fn enc_tuple(e: &mut Enc, t: &Tuple) {
    enc_seq(e, t.values(), enc_value);
}

/// Decode a [`Tuple`].
pub fn dec_tuple(d: &mut Dec<'_>) -> Result<Tuple, WireError> {
    Ok(Tuple::new(dec_seq(d, dec_value)?))
}

/// Encode a [`SignedBag`] deterministically (entries in sorted order, so
/// two equal bags always produce identical bytes). The Z-set iterates
/// sorted natively, so no copy of the entries is materialized — the byte
/// layout is unchanged from the `sorted_entries`-based encoding.
pub fn enc_bag(e: &mut Enc, bag: &SignedBag) {
    e.u32(bag.distinct_len() as u32);
    for (t, n) in bag.iter() {
        enc_tuple(e, t);
        e.i64(n);
    }
}

/// Decode a [`SignedBag`].
pub fn dec_bag(d: &mut Dec<'_>) -> Result<SignedBag, WireError> {
    let entries = dec_seq(d, |d| {
        let t = dec_tuple(d)?;
        let n = d.i64()?;
        Ok((t, n))
    })?;
    Ok(entries.into_iter().collect())
}

/// Encode an [`AttrType`] tag.
pub fn enc_attr_type(e: &mut Enc, ty: AttrType) {
    e.u8(match ty {
        AttrType::Int => 0,
        AttrType::Float => 1,
        AttrType::Str => 2,
        AttrType::Bool => 3,
    });
}

/// Decode an [`AttrType`].
pub fn dec_attr_type(d: &mut Dec<'_>) -> Result<AttrType, WireError> {
    Ok(match d.u8()? {
        0 => AttrType::Int,
        1 => AttrType::Float,
        2 => AttrType::Str,
        3 => AttrType::Bool,
        t => return Err(WireError::Invalid(format!("attr type tag {t}"))),
    })
}

/// Encode an [`Attribute`].
pub fn enc_attribute(e: &mut Enc, a: &Attribute) {
    e.str(&a.name);
    enc_attr_type(e, a.ty);
}

/// Decode an [`Attribute`].
pub fn dec_attribute(d: &mut Dec<'_>) -> Result<Attribute, WireError> {
    let name = d.str()?;
    let ty = dec_attr_type(d)?;
    Ok(Attribute::new(name, ty))
}

/// Encode a [`Schema`].
pub fn enc_schema(e: &mut Enc, s: &Schema) {
    e.str(&s.relation);
    enc_seq(e, s.attrs(), enc_attribute);
}

/// Decode a [`Schema`] through its validating constructor.
pub fn dec_schema(d: &mut Dec<'_>) -> Result<Schema, WireError> {
    let relation = d.str()?;
    let attrs = dec_seq(d, dec_attribute)?;
    Schema::new(relation, attrs).map_err(|err| WireError::Invalid(format!("schema: {err}")))
}

/// Encode a [`Delta`] (schema + signed rows).
pub fn enc_delta(e: &mut Enc, delta: &Delta) {
    enc_schema(e, delta.schema());
    enc_bag(e, delta.rows());
}

/// Decode a [`Delta`]; rows are re-validated against the schema.
pub fn dec_delta(d: &mut Dec<'_>) -> Result<Delta, WireError> {
    let schema = dec_schema(d)?;
    let rows = dec_bag(d)?;
    Delta::from_rows(schema, rows.sorted_entries())
        .map_err(|err| WireError::Invalid(format!("delta: {err}")))
}

/// Encode a [`Relation`] (schema + extent).
pub fn enc_relation(e: &mut Enc, r: &Relation) {
    enc_schema(e, r.schema());
    enc_bag(e, r.rows());
}

/// Decode a [`Relation`], rebuilding it by applying the extent as a delta so
/// tuple arity/type checks run.
pub fn dec_relation(d: &mut Dec<'_>) -> Result<Relation, WireError> {
    let schema = dec_schema(d)?;
    let rows = dec_bag(d)?;
    let delta = Delta::from_rows(schema.clone(), rows.sorted_entries())
        .map_err(|err| WireError::Invalid(format!("relation rows: {err}")))?;
    let mut rel = Relation::empty(schema);
    rel.apply(&delta).map_err(|err| WireError::Invalid(format!("relation extent: {err}")))?;
    Ok(rel)
}

/// Encode a [`SchemaChange`] (one tag byte per variant).
pub fn enc_schema_change(e: &mut Enc, sc: &SchemaChange) {
    match sc {
        SchemaChange::RenameRelation { from, to } => {
            e.u8(0);
            e.str(from);
            e.str(to);
        }
        SchemaChange::RenameAttribute { relation, from, to } => {
            e.u8(1);
            e.str(relation);
            e.str(from);
            e.str(to);
        }
        SchemaChange::AddAttribute { relation, attr, default } => {
            e.u8(2);
            e.str(relation);
            enc_attribute(e, attr);
            enc_value(e, default);
        }
        SchemaChange::DropAttribute { relation, attr } => {
            e.u8(3);
            e.str(relation);
            e.str(attr);
        }
        SchemaChange::DropRelation { relation } => {
            e.u8(4);
            e.str(relation);
        }
        SchemaChange::CreateRelation { schema } => {
            e.u8(5);
            enc_schema(e, schema);
        }
        SchemaChange::ReplaceRelations { dropped, replacement } => {
            e.u8(6);
            enc_seq(e, dropped, |e, s| e.str(s));
            enc_relation(e, replacement);
        }
    }
}

/// Decode a [`SchemaChange`].
pub fn dec_schema_change(d: &mut Dec<'_>) -> Result<SchemaChange, WireError> {
    Ok(match d.u8()? {
        0 => SchemaChange::RenameRelation { from: d.str()?, to: d.str()? },
        1 => SchemaChange::RenameAttribute { relation: d.str()?, from: d.str()?, to: d.str()? },
        2 => SchemaChange::AddAttribute {
            relation: d.str()?,
            attr: dec_attribute(d)?,
            default: dec_value(d)?,
        },
        3 => SchemaChange::DropAttribute { relation: d.str()?, attr: d.str()? },
        4 => SchemaChange::DropRelation { relation: d.str()? },
        5 => SchemaChange::CreateRelation { schema: dec_schema(d)? },
        6 => SchemaChange::ReplaceRelations {
            dropped: dec_seq(d, |d| d.str())?,
            replacement: Box::new(dec_relation(d)?),
        },
        t => return Err(WireError::Invalid(format!("schema change tag {t}"))),
    })
}

/// Encode a [`DataUpdate`]. The relation name is written explicitly even
/// though `DataUpdate::new` copies it from the delta's schema — the two can
/// legally diverge after renames compose over a queued update.
pub fn enc_data_update(e: &mut Enc, du: &DataUpdate) {
    e.str(&du.relation);
    enc_delta(e, &du.delta);
}

/// Decode a [`DataUpdate`].
pub fn dec_data_update(d: &mut Dec<'_>) -> Result<DataUpdate, WireError> {
    let relation = d.str()?;
    let delta = dec_delta(d)?;
    let mut du = DataUpdate::new(delta);
    du.relation = relation;
    Ok(du)
}

/// Encode a [`SourceUpdate`].
pub fn enc_source_update(e: &mut Enc, su: &SourceUpdate) {
    match su {
        SourceUpdate::Data(du) => {
            e.u8(0);
            enc_data_update(e, du);
        }
        SourceUpdate::Schema(sc) => {
            e.u8(1);
            enc_schema_change(e, sc);
        }
    }
}

/// Decode a [`SourceUpdate`].
pub fn dec_source_update(d: &mut Dec<'_>) -> Result<SourceUpdate, WireError> {
    Ok(match d.u8()? {
        0 => SourceUpdate::Data(dec_data_update(d)?),
        1 => SourceUpdate::Schema(dec_schema_change(d)?),
        t => return Err(WireError::Invalid(format!("source update tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T, EncFn, DecFn>(value: &T, enc: EncFn, dec: DecFn) -> T
    where
        EncFn: Fn(&mut Enc, &T),
        DecFn: Fn(&mut Dec<'_>) -> Result<T, WireError>,
    {
        let mut e = Enc::new();
        enc(&mut e, value);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        let out = dec(&mut d).expect("decode");
        assert!(d.is_done(), "decoder must consume every byte");
        out
    }

    fn sample_schema() -> Schema {
        Schema::of("item", &[("k", AttrType::Int), ("name", AttrType::Str), ("w", AttrType::Float)])
    }

    #[test]
    fn values_round_trip_bit_identically() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::float(3.5),
            Value::float(-0.0), // normalizes to 0.0 both before and after
            Value::str(""),
            Value::str("ünïcode"),
        ] {
            assert_eq!(round_trip(&v, enc_value, dec_value), v);
        }
    }

    #[test]
    fn bag_round_trips_including_negative_counts() {
        let mut bag = SignedBag::new();
        bag.add(Tuple::of([1i64, 2]), 3);
        bag.add(Tuple::of([9i64, 9]), -2);
        assert_eq!(round_trip(&bag, enc_bag, dec_bag), bag);
    }

    #[test]
    fn schema_delta_relation_round_trip() {
        let schema = sample_schema();
        assert_eq!(round_trip(&schema, enc_schema, dec_schema), schema);

        let delta = Delta::from_rows(
            schema.clone(),
            vec![
                (Tuple::new(vec![Value::Int(1), Value::str("a"), Value::float(1.5)]), 1),
                (Tuple::new(vec![Value::Int(2), Value::str("b"), Value::Null]), -1),
            ],
        )
        .unwrap();
        assert_eq!(round_trip(&delta, enc_delta, dec_delta), delta);

        let rel = Relation::from_tuples(
            schema,
            vec![Tuple::new(vec![Value::Int(7), Value::str("x"), Value::float(0.25)])],
        )
        .unwrap();
        assert_eq!(round_trip(&rel, enc_relation, dec_relation), rel);
    }

    #[test]
    fn every_schema_change_variant_round_trips() {
        let changes = vec![
            SchemaChange::RenameRelation { from: "a".into(), to: "b".into() },
            SchemaChange::RenameAttribute {
                relation: "a".into(),
                from: "x".into(),
                to: "y".into(),
            },
            SchemaChange::AddAttribute {
                relation: "a".into(),
                attr: Attribute::new("z", AttrType::Bool),
                default: Value::Bool(false),
            },
            SchemaChange::DropAttribute { relation: "a".into(), attr: "x".into() },
            SchemaChange::DropRelation { relation: "a".into() },
            SchemaChange::CreateRelation { schema: sample_schema() },
            SchemaChange::ReplaceRelations {
                dropped: vec!["a".into(), "b".into()],
                replacement: Box::new(Relation::empty(sample_schema())),
            },
        ];
        for sc in changes {
            assert_eq!(round_trip(&sc, enc_schema_change, dec_schema_change), sc);
            let su = SourceUpdate::Schema(sc);
            assert_eq!(round_trip(&su, enc_source_update, dec_source_update), su);
        }
    }

    #[test]
    fn data_update_preserves_diverged_relation_name() {
        let delta = Delta::empty(sample_schema());
        let mut du = DataUpdate::new(delta);
        du.relation = "renamed_item".into(); // diverged after a composed rename
        let back = round_trip(&du, enc_data_update, dec_data_update);
        assert_eq!(back.relation, "renamed_item");
        let su = SourceUpdate::Data(du);
        assert_eq!(round_trip(&su, enc_source_update, dec_source_update), su);
    }

    #[test]
    fn corrupt_tags_are_rejected() {
        let mut d = Dec::new(&[200]);
        assert!(matches!(dec_value(&mut d), Err(WireError::Invalid(_))));
        let mut d = Dec::new(&[77]);
        assert!(matches!(dec_schema_change(&mut d), Err(WireError::Invalid(_))));
    }

    #[test]
    fn duplicate_attribute_schema_is_rejected_on_decode() {
        // Hand-craft bytes for a schema with two attributes named "k":
        // structurally valid, semantically impossible.
        let mut e = Enc::new();
        e.str("bad");
        e.u32(2);
        enc_attribute(&mut e, &Attribute::new("k", AttrType::Int));
        enc_attribute(&mut e, &Attribute::new("k", AttrType::Str));
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert!(matches!(dec_schema(&mut d), Err(WireError::Invalid(_))));
    }
}
