//! Error types for the relational substrate.

use std::fmt;

use crate::schema::AttrType;

/// Errors raised by the relational layer.
///
/// The variants under "schema conflicts" ([`UnknownRelation`],
/// [`UnknownAttribute`]) are exactly the failures the paper calls *broken
/// queries*: a maintenance query constructed from an outdated view definition
/// no longer matches the source schema.
///
/// [`UnknownRelation`]: RelationalError::UnknownRelation
/// [`UnknownAttribute`]: RelationalError::UnknownAttribute
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A query or update referenced a relation the catalog does not have.
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
    /// A query or update referenced an attribute the relation does not have.
    UnknownAttribute {
        /// The relation looked in.
        relation: String,
        /// The missing attribute name.
        attr: String,
    },
    /// Creating a relation that already exists.
    DuplicateRelation {
        /// The clashing name.
        relation: String,
    },
    /// Two attributes with the same name in one schema.
    DuplicateAttribute {
        /// The owning relation.
        relation: String,
        /// The clashing attribute name.
        attr: String,
    },
    /// A tuple's width does not match the schema.
    ArityMismatch {
        /// The relation involved.
        relation: String,
        /// Expected arity.
        expected: usize,
        /// Actual arity.
        got: usize,
    },
    /// A value's type does not match its attribute's declared type.
    TypeMismatch {
        /// The relation involved.
        relation: String,
        /// The attribute involved.
        attr: String,
        /// Declared type.
        expected: AttrType,
        /// Value's runtime type.
        got: AttrType,
    },
    /// Deleting a tuple that is not present (bag multiplicity would go
    /// negative).
    DeleteMissing {
        /// The relation involved.
        relation: String,
        /// Rendered tuple.
        tuple: String,
    },
    /// Two operands of a predicate have incomparable types.
    IncomparableTypes {
        /// Rendered predicate.
        predicate: String,
    },
    /// A query is structurally invalid (e.g. cross product between
    /// disconnected tables when the executor requires join connectivity).
    InvalidQuery {
        /// Explanation.
        reason: String,
    },
    /// A source cannot be reached right now (crashed, or every retry inside
    /// the budget failed). Unlike a schema conflict this says nothing about
    /// the view definition: the query may succeed verbatim later.
    Unavailable {
        /// The unreachable source, rendered for diagnostics.
        source: String,
        /// Why it is considered unavailable.
        reason: String,
    },
}

impl RelationalError {
    /// True iff this error is a *schema conflict* — the mechanical signature
    /// of a broken query anomaly (paper Definition 2).
    pub fn is_schema_conflict(&self) -> bool {
        matches!(
            self,
            RelationalError::UnknownRelation { .. } | RelationalError::UnknownAttribute { .. }
        )
    }

    /// True iff this error means a source is temporarily unreachable — a
    /// *liveness* failure to park on, never a broken query to correct.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, RelationalError::Unavailable { .. })
    }
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            RelationalError::UnknownAttribute { relation, attr } => {
                write!(f, "unknown attribute `{attr}` in relation `{relation}`")
            }
            RelationalError::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` already exists")
            }
            RelationalError::DuplicateAttribute { relation, attr } => {
                write!(f, "duplicate attribute `{attr}` in relation `{relation}`")
            }
            RelationalError::ArityMismatch { relation, expected, got } => {
                write!(f, "arity mismatch for `{relation}`: expected {expected}, got {got}")
            }
            RelationalError::TypeMismatch { relation, attr, expected, got } => {
                write!(f, "type mismatch for `{relation}.{attr}`: expected {expected}, got {got}")
            }
            RelationalError::DeleteMissing { relation, tuple } => {
                write!(f, "cannot delete absent tuple {tuple} from `{relation}`")
            }
            RelationalError::IncomparableTypes { predicate } => {
                write!(f, "incomparable operand types in predicate {predicate}")
            }
            RelationalError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            RelationalError::Unavailable { source, reason } => {
                write!(f, "source {source} unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_conflict_classification() {
        assert!(RelationalError::UnknownRelation { relation: "R".into() }.is_schema_conflict());
        assert!(RelationalError::UnknownAttribute { relation: "R".into(), attr: "a".into() }
            .is_schema_conflict());
        assert!(!RelationalError::DeleteMissing { relation: "R".into(), tuple: "(1)".into() }
            .is_schema_conflict());
    }

    #[test]
    fn unavailable_is_not_a_schema_conflict() {
        let e = RelationalError::Unavailable { source: "s0".into(), reason: "crashed".into() };
        assert!(e.is_unavailable());
        assert!(!e.is_schema_conflict(), "a down source must never trigger correction");
        assert!(e.to_string().contains("s0") && e.to_string().contains("crashed"));
        assert!(!RelationalError::UnknownRelation { relation: "R".into() }.is_unavailable());
    }

    #[test]
    fn display_is_informative() {
        let e = RelationalError::UnknownAttribute { relation: "R".into(), attr: "a".into() };
        assert!(e.to_string().contains("R") && e.to_string().contains("a"));
    }
}
