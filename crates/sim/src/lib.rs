//! # dyno-sim — the discrete-event experimental testbed
//!
//! Replaces the paper's four-PC/Oracle8i testbed with a deterministic
//! virtual-clock simulation (see DESIGN.md §3 for the substitution
//! rationale):
//!
//! - [`cost`] — the calibrated cost model (DU ≈ 0.25 s, SC ≈ 25 s, matching
//!   the paper's magnitudes);
//! - [`port`] — the timed [`dyno_view::SourcePort`]: maintenance queries
//!   advance the clock, and scheduled autonomous commits land mid-flight,
//!   reproducing every concurrency anomaly;
//! - [`testbed`] — the Section 6.1 testbed (6 relations × 3 servers,
//!   one-to-one 6-way join view with 24 output columns);
//! - [`workload`] — schema-evolution-aware generators for the Section 6
//!   workloads (DU floods, drop+rename SC trains);
//! - [`runner`] — scenario execution with metrics collection;
//! - [`chaos`] — the seeded fault-injection runner: the same testbed driven
//!   through a [`dyno_fault::ChaosTransport`], with parked-entry wakeups
//!   and quiescence flushing;
//! - [`rng`] — the in-repo seeded PRNG behind all generated data;
//! - [`consistency`] — convergence and strong-consistency auditors
//!   (Section 4.4 correctness).

#![warn(missing_docs)]

pub mod chaos;
pub mod consistency;
pub mod cost;
pub mod crash;
pub mod metrics;
pub mod multiview;
pub mod openloop;
pub mod port;
pub mod replica;
pub mod runner;

/// The in-repo seeded PRNG (now hosted by `dyno-fault`, re-exported here so
/// existing `dyno_sim::rng::Rng` paths keep working).
pub use dyno_fault::rng;
pub mod testbed;
pub mod workload;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use consistency::{check_convergence, check_reflected, eval_view_at};
pub use cost::CostModel;
pub use crash::{run_crash_chaos, CrashConfig, CrashReport};
pub use metrics::Metrics;
pub use multiview::{build_multiview, run_multiview, MultiViewConfig, MultiViewReport};
pub use openloop::{run_monitor, tenant_views, MonitorConfig, MonitorReport};
pub use port::{ScheduledCommit, SimPort};
pub use replica::{build_replica_views, run_replicated, ReplicaConfig, ReplicaReport};
pub use rng::Rng;
pub use runner::{run_scenario, RunReport, Scenario};
pub use testbed::{build_space, build_testbed, build_view, TestbedConfig};
pub use workload::{EventKind, OpenLoopConfig, WorkloadGen, Zipf};
