//! Consistency checkers — the correctness criteria of paper Section 4.4.
//!
//! * **Convergence**: once all updates are processed, the materialized
//!   extent equals the view definition evaluated over the sources' final
//!   states.
//! * **Strong consistency** (Zhuge et al.): after every commit, the extent
//!   equals the view evaluated over *some valid source state vector*, and
//!   those vectors advance in per-source commit order. The view manager
//!   exposes the vector it believes it reflects
//!   ([`dyno_view::ViewManager::reflected`]); the auditor replays source
//!   history to that vector and compares.

use std::collections::HashMap;

use dyno_relational::{eval, RelationalError, SignedBag};
use dyno_source::{SourceId, SourceSpace};
use dyno_view::{LocalProvider, MaterializedView, ViewDefinition};

/// Evaluates `view` over the source space with each source rolled back to
/// the version given in `versions` (sources absent from the map are taken
/// at version 0 — never reflected).
pub fn eval_view_at(
    space: &SourceSpace,
    view: &ViewDefinition,
    versions: &HashMap<SourceId, u64>,
) -> Result<SignedBag, RelationalError> {
    let mut provider = LocalProvider::new();
    for table in &view.query.tables {
        let mut found = false;
        for server in space.servers() {
            let version = versions.get(&server.id()).copied().unwrap_or(0);
            let catalog = server.state_at(version)?;
            if let Ok(rel) = catalog.get(table) {
                provider.insert_relation(rel);
                found = true;
                break;
            }
        }
        if !found {
            return Err(RelationalError::UnknownRelation { relation: table.clone() });
        }
    }
    Ok(eval(&view.query, &provider)?.rows)
}

/// Convergence check: `mv` equals the view over current source states.
pub fn check_convergence(
    space: &SourceSpace,
    view: &ViewDefinition,
    mv: &MaterializedView,
) -> Result<bool, RelationalError> {
    let expected = eval_view_at(space, view, &space.versions())?;
    Ok(&expected == mv.extent())
}

/// Strong-consistency audit of a single point: `mv` equals the view over the
/// state vector it claims to reflect.
pub fn check_reflected(
    space: &SourceSpace,
    view: &ViewDefinition,
    reflected: &HashMap<SourceId, u64>,
    mv: &MaterializedView,
) -> Result<bool, RelationalError> {
    let expected = eval_view_at(space, view, reflected)?;
    Ok(&expected == mv.extent())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_core::Strategy;
    use dyno_relational::SourceUpdate;
    use dyno_view::testkit::{bookinfo_space, bookinfo_view, insert_item};
    use dyno_view::{InProcessPort, ViewManager};

    #[test]
    fn convergence_and_reflection_after_runs() {
        let space = bookinfo_space();
        let info = space.info().clone();
        let mut port = InProcessPort::new(space);
        let mut mgr = ViewManager::new(bookinfo_view(), info, Strategy::Pessimistic);
        mgr.initialize(&mut port).unwrap();
        assert!(check_convergence(port.space(), mgr.view(), mgr.mv()).unwrap());

        port.commit(
            SourceId(0),
            SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
        )
        .unwrap();
        // Before processing: the MV lags the sources (not converged)…
        assert!(!check_convergence(port.space(), mgr.view(), mgr.mv()).unwrap());
        // …but still reflects the versions it claims (strong consistency).
        assert!(check_reflected(port.space(), mgr.view(), mgr.reflected(), mgr.mv()).unwrap());

        mgr.run_to_quiescence(&mut port, 100).unwrap();
        assert!(check_convergence(port.space(), mgr.view(), mgr.mv()).unwrap());
        assert!(check_reflected(port.space(), mgr.view(), mgr.reflected(), mgr.mv()).unwrap());
    }

    #[test]
    fn absent_source_is_taken_at_version_zero() {
        let mut space = bookinfo_space();
        let view = bookinfo_view();
        space
            .commit(
                SourceId(0),
                SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
            )
            .unwrap();
        // An empty vector and an explicit all-zeros vector must agree:
        // sources missing from the map are "never reflected".
        let absent = eval_view_at(&space, &view, &HashMap::new()).unwrap();
        let zeroed: HashMap<SourceId, u64> = space.versions().keys().map(|&s| (s, 0)).collect();
        assert_eq!(absent, eval_view_at(&space, &view, &zeroed).unwrap());
        assert_eq!(absent.weight(), 1, "pre-commit state");
        // Dropping only the committed source from the current vector rolls
        // just that source back.
        let mut partial = space.versions();
        partial.remove(&SourceId(0));
        assert_eq!(eval_view_at(&space, &view, &partial).unwrap().weight(), 1);
        assert_eq!(eval_view_at(&space, &view, &space.versions()).unwrap().weight(), 2);
    }

    #[test]
    fn rolled_back_catalog_missing_a_relation_is_an_error() {
        use dyno_relational::SchemaChange;
        let mut space = bookinfo_space();
        let view = bookinfo_view();
        let v0 = space.versions();
        space
            .commit(
                SourceId(0),
                SourceUpdate::Schema(SchemaChange::RenameRelation {
                    from: "Item".into(),
                    to: "Tome".into(),
                }),
            )
            .unwrap();
        // At current versions the un-rewritten view references a name no
        // catalog has — a definite error, not an empty result.
        let err = eval_view_at(&space, &view, &space.versions()).unwrap_err();
        assert!(
            matches!(err, RelationalError::UnknownRelation { ref relation } if relation == "Item"),
            "unexpected error: {err}"
        );
        // The pre-change vector still evaluates: history has the relation.
        assert_eq!(eval_view_at(&space, &view, &v0).unwrap().weight(), 1);
    }

    #[test]
    fn eval_view_at_rolls_back() {
        let mut space = bookinfo_space();
        let view = bookinfo_view();
        let v0 = space.versions();
        space
            .commit(
                SourceId(0),
                SourceUpdate::Data(insert_item(10, "Data Integration Guide", "Adams", 36)),
            )
            .unwrap();
        let before = eval_view_at(&space, &view, &v0).unwrap();
        let after = eval_view_at(&space, &view, &space.versions()).unwrap();
        assert_eq!(before.weight(), 1);
        assert_eq!(after.weight(), 2);
    }
}
