//! Replicated-warehouse chaos runner: N peer warehouses, each over its own
//! copy of the testbed sources, maintaining the same two join views and
//! exchanging committed per-key post-images through the fault-injected
//! [`PeerNet`] fabric — including **network partitions**, the fault class
//! that manufactures genuinely concurrent writes.
//!
//! Each replica owns a [`dyno_replica::ReplicaEngine`]: local commits are
//! published to every peer stamped with an HLC + vector clock; incoming
//! deltas are resolved against per-`(view, key)` conflict registers
//! (causally ordered → apply in order; concurrent → the cross-replica
//! dependency `rd`, resolved deterministic last-writer-wins by HLC). Applied
//! winners are **written back** into the replica's local source tables via
//! [`dyno_source::SourceServer::overwrite`], so later local commits build on
//! the resolved state and convergence is source-deep, not just extent-deep.
//!
//! ## Oracles
//!
//! * **Bit identity** — after the final heal and flush, every replica's
//!   per-view extent CRC must be identical ([`ReplicaReport::extent_crcs`]).
//! * **Source-deep convergence** — each replica's extent must equal its view
//!   definition evaluated over its *own* (written-back) source tables.
//! * **Determinism** — the whole run derives from `(config, seed)`; two runs
//!   of the same seed produce identical reports, lineage included.
//!
//! A `kill_round` arms the harshest crash window: the victim logs its
//! `Published` record, then dies **before any copy reaches the network**.
//! Recovery ([`dyno_view::Warehouse::recover`] +
//! [`dyno_replica::ReplicaEngine::recover`]) must re-send the identical
//! bytes from the durable outbox.

use std::collections::{BTreeMap, BTreeSet};

use dyno_core::Strategy;
use dyno_durable::{crc32, Enc, MemStorage};
use dyno_fault::{FaultProfile, PartitionWindow, PeerNet};
use dyno_obs::{Collector, VirtualClock};
use dyno_relational::wire::enc_bag;
use dyno_relational::{DataUpdate, Delta, SourceUpdate, SpjQuery, Tuple, Value};
use dyno_replica::{RemoteApply, ReplicaEngine};
use dyno_view::wal::DurableLog;
use dyno_view::{InProcessPort, ViewDefinition, Warehouse};

use crate::consistency::check_convergence;
use crate::rng::Rng;
use crate::testbed::{build_space, TestbedConfig};

/// Virtual time between client-commit rounds.
const ROUND_US: u64 = 20_000;

/// Builds the two disjoint replicated views over the standard six-relation
/// testbed: `V0 = R0 ⋈ R1 ⋈ R2` and `V1 = R3 ⋈ R4 ⋈ R5`, each projecting
/// every attribute of its three relations (so a view post-image row can be
/// sliced back into per-relation rows for source write-back). Both views
/// key on output column 0 (`R0_K` / `R3_K`).
pub fn build_replica_views(cfg: &TestbedConfig) -> Vec<ViewDefinition> {
    let names = cfg.relation_names();
    assert!(names.len() >= 6, "the replica testbed needs six relations");
    (0..2)
        .map(|v| {
            let tables: Vec<String> = (0..3).map(|j| names[v * 3 + j].clone()).collect();
            let mut b = SpjQuery::over(tables.clone());
            for (j, name) in tables.iter().enumerate() {
                for attr in cfg.schema(v * 3 + j).attrs() {
                    b = b.select_as(name, &attr.name, &format!("{name}_{}", attr.name));
                }
            }
            for w in tables.windows(2) {
                b = b.join_eq((w[0].as_str(), "K"), (w[1].as_str(), "K"));
            }
            ViewDefinition::new(format!("V{v}"), b.build())
        })
        .collect()
}

/// Key columns of [`build_replica_views`], in slot order.
pub fn replica_key_cols() -> Vec<usize> {
    vec![0, 0]
}

/// One replicated-warehouse experiment; everything derives from the config
/// plus `seed`.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Replica count (2..=8).
    pub replicas: usize,
    /// Per-link delivery faults (drops, duplicates, delay, reorder).
    pub profile: FaultProfile,
    /// Partition/heal windows to inject (0 = fully connected).
    pub partitions: usize,
    /// Conflicting same-`(view, key)` commit pairs scheduled inside each
    /// partition window.
    pub conflicts_per_partition: usize,
    /// Master seed (testbed data, workload, fault rolls).
    pub seed: u64,
    /// Client-commit rounds.
    pub rounds: usize,
    /// Tuples per relation.
    pub tuples_per_relation: usize,
    /// Kill the committing replica at this round — after its `Published`
    /// WAL record, before any send — then recover it from its WAL.
    pub kill_round: Option<usize>,
    /// Capture lineage (provenance records) per replica.
    pub lineage: bool,
    /// WAL checkpoint cadence.
    pub checkpoint_every: u64,
    /// Maintenance-step budget per quiescence drive.
    pub max_steps: u64,
}

impl ReplicaConfig {
    /// A representative run: 24 rounds over a 60-tuple testbed.
    pub fn new(replicas: usize, seed: u64) -> Self {
        ReplicaConfig {
            replicas,
            profile: FaultProfile::quiet(),
            partitions: 0,
            conflicts_per_partition: 0,
            seed,
            rounds: 24,
            tuples_per_relation: 60,
            kill_round: None,
            lineage: false,
            checkpoint_every: 8,
            max_steps: 5_000,
        }
    }

    /// The named grid profiles: `quiet` (clean links), `drop_dup` (lossy,
    /// duplicating links), `partition` (clean links + two partition/heal
    /// windows with two conflict pairs each). Panics on unknown names.
    pub fn named(profile: &str, replicas: usize, seed: u64) -> Self {
        let cfg = ReplicaConfig::new(replicas, seed);
        match profile {
            "quiet" => cfg,
            "drop_dup" => ReplicaConfig { profile: FaultProfile::drop_dup(), ..cfg },
            "partition" => ReplicaConfig { partitions: 2, conflicts_per_partition: 2, ..cfg },
            other => panic!("unknown replica profile {other:?}"),
        }
    }

    /// Arms the crash-before-send kill at `round`.
    pub fn with_kill(mut self, round: usize) -> Self {
        self.kill_round = Some(round);
        self
    }

    /// Turns on per-replica lineage capture.
    pub fn with_lineage(mut self) -> Self {
        self.lineage = true;
        self
    }
}

/// What a replicated run produced.
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Bit-identical extents, source-deep consistency, no errors.
    pub converged: bool,
    /// Every replica's per-view extent CRCs matched.
    pub bit_identical: bool,
    /// Every replica's extent equals its view over its own sources.
    pub source_consistent: bool,
    /// Per-replica, per-view extent CRCs (the convergence fingerprint).
    pub extent_crcs: Vec<Vec<u32>>,
    /// Partition windows that actually held traffic.
    pub partitions_injected: u64,
    /// Concurrent-write conflicts detected (summed over replicas).
    pub conflicts: u64,
    /// Messages discarded as causally superseded (LWW losers).
    pub superseded: u64,
    /// Messages applied to extents.
    pub remote_applied: u64,
    /// Key post-images published.
    pub published: u64,
    /// Duplicate deliveries dropped by reorder buffers.
    pub duplicates: u64,
    /// Kills executed.
    pub kills: u64,
    /// A hard error that ended the run early, if any.
    pub last_error: Option<String>,
    /// Per-replica lineage JSONL (empty unless `lineage` was on).
    pub lineage: Vec<String>,
    /// Per-replica live apply-lag quantiles from the `replica.lag_us`
    /// histogram: `(count, p50, p95, p99)` in virtual µs. Unlike
    /// [`ReplicaReport::lineage`], these are populated on every run — the
    /// histogram is always registered and recorded by the engine.
    pub lag_quantiles: Vec<(u64, u64, u64, u64)>,
}

struct Peer {
    port: InProcessPort,
    wh: Warehouse,
    eng: ReplicaEngine,
    disk: MemStorage,
    obs: Collector,
}

#[derive(Debug, Clone)]
enum Ev {
    /// One replica commits to one relation of one view triple.
    Commit { replica: usize, view: usize, rel: usize, key: i64 },
    /// Two partitioned replicas commit to the same `(view, key)`.
    Conflict { a: usize, b: usize, view: usize, key: i64 },
}

/// Canonical fingerprint of an extent (sorted encoding → CRC-32).
fn extent_crc(mv: &dyno_view::MaterializedView) -> u32 {
    let mut e = Enc::new();
    enc_bag(&mut e, mv.extent());
    crc32(&e.finish())
}

/// Commits `key ← fresh random attrs` to relation `R{view*3+rel}` at one
/// replica and drives its warehouse quiescent.
fn do_commit(
    p: &mut Peer,
    tb: &TestbedConfig,
    view: usize,
    rel: usize,
    key: i64,
    rng: &mut Rng,
    max_steps: u64,
) -> Result<(), String> {
    let name = format!("R{}", view * 3 + rel);
    let sid = p.port.space().locate(&name).expect("testbed relation exists");
    let relation = p.port.space().server(sid).catalog().get(&name).map_err(|e| e.to_string())?;
    let schema = relation.schema().clone();
    let old: Vec<Tuple> = relation
        .rows()
        .iter()
        .filter(|(t, _)| t.get(0) == &Value::from(key))
        .map(|(t, _)| t.clone())
        .collect();
    let mut vals = vec![Value::from(key)];
    for _ in 0..tb.extra_attrs {
        vals.push(Value::from(rng.gen_range(0..1_000_000i64)));
    }
    let mut d = Delta::deletes(schema.clone(), old).map_err(|e| e.to_string())?;
    d.merge(&Delta::inserts(schema, [Tuple::new(vals)]).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    p.port.commit(sid, SourceUpdate::Data(DataUpdate::new(d))).map_err(|e| e.to_string())?;
    p.wh.run_to_quiescence(&mut p.port, max_steps).map_err(|e| e.to_string())?;
    Ok(())
}

/// Mirrors applied remote post-images into the replica's own source tables
/// (per-relation slices of the view row), so local state is the resolved
/// state. Silent — no version bump, no committed-update message.
fn write_back(p: &mut Peer, applied: &[RemoteApply], tb: &TestbedConfig) -> Result<(), String> {
    let width = 1 + tb.extra_attrs;
    for ra in applied {
        for j in 0..3 {
            let name = format!("R{}", ra.view * 3 + j);
            let sid = p.port.space().locate(&name).expect("testbed relation exists");
            let mut rows: BTreeSet<Tuple> = BTreeSet::new();
            for (t, w) in ra.post.iter() {
                if w <= 0 {
                    continue;
                }
                let vals: Vec<Value> = (0..width).map(|c| t.get(j * width + c).clone()).collect();
                rows.insert(Tuple::new(vals));
            }
            let relation =
                p.port.space().server(sid).catalog().get(&name).map_err(|e| e.to_string())?;
            let schema = relation.schema().clone();
            let old: Vec<Tuple> = relation
                .rows()
                .iter()
                .filter(|(t, _)| t.get(0) == &ra.key)
                .map(|(t, _)| t.clone())
                .collect();
            let mut d = Delta::deletes(schema.clone(), old).map_err(|e| e.to_string())?;
            d.merge(&Delta::inserts(schema, rows).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            if d.rows().is_empty() {
                continue;
            }
            p.port.space_mut().server_mut(sid).overwrite(&d).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Delivers one raw message body to a replica and write-backs what applied.
fn deliver(p: &mut Peer, bytes: &[u8], now: u64, tb: &TestbedConfig) -> Result<(), String> {
    let applied = p.eng.on_delivery(&mut p.wh, bytes, now).map_err(|e| e.to_string())?;
    write_back(p, &applied, tb)
}

/// Drains every network delivery due at `now`, then settles acks: each
/// receiver acks its contiguous floor, pruning both the link logs and the
/// sender outboxes.
fn pump(
    peers: &mut [Peer],
    net: &mut PeerNet<Vec<u8>>,
    now: u64,
    tb: &TestbedConfig,
) -> Result<(), String> {
    let mut acks = Vec::new();
    for (from, to, _seq, bytes) in net.poll(now) {
        deliver(&mut peers[to as usize], &bytes, now, tb)?;
        acks.push((from, to));
    }
    for (from, to) in acks {
        let floor = peers[to as usize].eng.delivered(from);
        net.ack(from, to, floor);
        peers[from as usize].eng.acked(to, floor);
    }
    Ok(())
}

/// Kills a replica in place (engine and warehouse dropped, sources survive —
/// they are autonomous) and recovers it from its WAL, re-sending every
/// unacked outbox message.
fn restart(
    peers: &mut [Peer],
    r: usize,
    net: &mut PeerNet<Vec<u8>>,
    key_cols: Vec<usize>,
    now: u64,
) -> Result<(), String> {
    let n = peers.len();
    let p = &mut peers[r];
    let info = p.port.space().info().clone();
    let (mut wh, _report) = Warehouse::recover(Box::new(p.disk.clone()), info, p.obs.clone())
        .map_err(|e| e.to_string())?;
    wh.enable_replication();
    let ext = wh.replica_ext().to_vec();
    let tail = wh.take_replica_tail();
    let eng =
        ReplicaEngine::recover(r as u16, n, key_cols, p.obs.clone(), &ext, tail, &mut wh, now)
            .map_err(|e| e.to_string())?;
    p.wh = wh;
    p.eng = eng;
    for o in p.eng.unacked() {
        net.send(r as u16, o.to, o.seq, o.bytes.clone(), now);
    }
    Ok(())
}

/// Runs one seeded replicated experiment: commit rounds under faults and
/// partitions, then heal, flush (NACK-driven refetch of dropped or
/// partition-lost tails), and audit convergence.
pub fn run_replicated(cfg: &ReplicaConfig) -> ReplicaReport {
    assert!((2..=8).contains(&cfg.replicas), "replica count {} outside 2..=8", cfg.replicas);
    let n = cfg.replicas;
    let tb = TestbedConfig {
        tuples_per_relation: cfg.tuples_per_relation,
        seed: cfg.seed,
        ..Default::default()
    };
    let key_cols = replica_key_cols();
    let clock = VirtualClock::new();
    let mut rng = Rng::new(cfg.seed ^ 0x5EED_5EED_5EED_5EED);

    // Identical seeded sources at every replica; divergence only ever comes
    // from the replicas' own commits, and replication must erase it.
    let mut peers: Vec<Peer> = (0..n)
        .map(|r| {
            let space = build_space(&tb);
            let info = space.info().clone();
            let mut port = InProcessPort::new(space);
            let obs = if cfg.lineage {
                Collector::with_virtual_clock(clock.clone()).with_lineage(1 << 16)
            } else {
                Collector::with_virtual_clock(clock.clone())
            };
            let mut wh = Warehouse::new(info, Strategy::Pessimistic).with_obs(obs.clone());
            for v in build_replica_views(&tb) {
                wh.add_view(v);
            }
            wh.initialize(&mut port).expect("testbed initialization runs fault-free");
            let disk = MemStorage::new();
            let log = DurableLog::create(Box::new(disk.clone()))
                .expect("MemStorage never fails")
                .with_checkpoint_every(cfg.checkpoint_every);
            let mut wh = wh.with_wal(log).expect("no admission bound is configured");
            wh.enable_replication();
            let eng = ReplicaEngine::new(r as u16, n, key_cols.clone(), obs.clone());
            Peer { port, wh, eng, disk, obs }
        })
        .collect();

    let net_obs = Collector::with_virtual_clock(clock.clone());
    let mut net: PeerNet<Vec<u8>> = PeerNet::new(cfg.profile, cfg.seed).with_obs(&net_obs);

    // Schedule: one commit per round from a rotating random replica, each
    // writing inside its own key shard; partition windows spanning whole
    // rounds, with same-(view, key) conflict pairs committed inside them.
    let shard = (cfg.tuples_per_relation / n).max(1) as i64;
    let mut sched: BTreeMap<usize, Vec<Ev>> = BTreeMap::new();
    for round in 0..cfg.rounds {
        let replica = rng.gen_range(0..n as u64) as usize;
        let view = rng.gen_range(0..2u64) as usize;
        let rel = rng.gen_range(0..3u64) as usize;
        let key = replica as i64 * shard + rng.gen_range(0..shard as u64) as i64;
        sched.entry(round).or_default().push(Ev::Commit { replica, view, rel, key });
    }
    let mut windows = Vec::new();
    if let Some(seg) = cfg.rounds.checked_div(cfg.partitions) {
        let seg = seg.max(4);
        for w in 0..cfg.partitions {
            let a = rng.gen_range(0..n as u64) as usize;
            let b = (a + 1 + rng.gen_range(0..(n as u64 - 1)) as usize) % n;
            let first = (w * seg + 1).min(cfg.rounds.saturating_sub(2));
            let last = (first + seg / 2).min(cfg.rounds - 1);
            let window = PartitionWindow {
                a: a as u16,
                b: b as u16,
                start_us: (first as u64 + 1) * ROUND_US - ROUND_US / 2,
                end_us: (last as u64 + 1) * ROUND_US + ROUND_US / 2,
            };
            net.add_partition(window);
            windows.push(window);
            for c in 0..cfg.conflicts_per_partition {
                let round = first + c % (last - first + 1);
                let view = rng.gen_range(0..2u64) as usize;
                let key = a as i64 * shard + rng.gen_range(0..shard as u64) as i64;
                sched.entry(round).or_default().push(Ev::Conflict { a, b, view, key });
            }
        }
    }

    let mut kills = 0u64;
    let mut last_error: Option<String> = None;
    let mut killed = false;

    'drive: for round in 0..cfg.rounds {
        let now = (round as u64 + 1) * ROUND_US;
        clock.set(now);
        for ev in sched.remove(&round).unwrap_or_default() {
            let committers: Vec<(usize, usize, usize, i64)> = match ev {
                Ev::Commit { replica, view, rel, key } => vec![(replica, view, rel, key)],
                Ev::Conflict { a, b, view, key } => {
                    vec![(a, view, 0, key), (b, view, 0, key)]
                }
            };
            for (r, view, rel, key) in committers {
                if let Err(e) =
                    do_commit(&mut peers[r], &tb, view, rel, key, &mut rng, cfg.max_steps)
                {
                    last_error = Some(e);
                    break 'drive;
                }
                let p = &mut peers[r];
                let out = match p.eng.publish(&mut p.wh, now) {
                    Ok(out) => out,
                    Err(e) => {
                        last_error = Some(e.to_string());
                        break 'drive;
                    }
                };
                if cfg.kill_round == Some(round) && !killed {
                    // Crash before send: the Published record is durable, the
                    // copies never left. Recovery re-sends identical bytes.
                    killed = true;
                    kills += 1;
                    drop(out);
                    if let Err(e) = restart(&mut peers, r, &mut net, key_cols.clone(), now) {
                        last_error = Some(e);
                        break 'drive;
                    }
                } else {
                    for o in out {
                        net.send(r as u16, o.to, o.seq, o.bytes, now);
                    }
                }
            }
        }
        if let Err(e) = pump(&mut peers, &mut net, now, &tb) {
            last_error = Some(e);
            break 'drive;
        }
    }

    // Heal and flush: advance past every partition window, deliver held
    // traffic, then NACK-refetch whatever drops or reorder gaps withheld
    // until every link's floor reaches its last sent sequence.
    if last_error.is_none() {
        let healed = windows.iter().map(|w| w.end_us).max().unwrap_or(0);
        let mut now = ((cfg.rounds as u64 + 2) * ROUND_US).max(healed + ROUND_US);
        let mut spins = 0u32;
        loop {
            clock.set(now);
            if let Err(e) = pump(&mut peers, &mut net, now, &tb) {
                last_error = Some(e);
                break;
            }
            let mut progressed = false;
            for r in 0..n {
                let mut wanted: Vec<(u16, u64)> = peers[r].eng.gaps();
                for origin in (0..n as u16).filter(|&o| o as usize != r) {
                    let floor = peers[r].eng.delivered(origin);
                    if net.last_sent(origin, r as u16) > floor {
                        wanted.push((origin, floor));
                    }
                }
                for (origin, after) in wanted {
                    let refetch = net.nack(r as u16, origin, after, now);
                    for (_seq, bytes) in refetch {
                        if let Err(e) = deliver(&mut peers[r], &bytes, now, &tb) {
                            last_error = Some(e);
                            break;
                        }
                        progressed = true;
                    }
                    if last_error.is_some() {
                        break;
                    }
                    let floor = peers[r].eng.delivered(origin);
                    net.ack(origin, r as u16, floor);
                    peers[origin as usize].eng.acked(r as u16, floor);
                }
                if last_error.is_some() {
                    break;
                }
            }
            if last_error.is_some() {
                break;
            }
            if net.inflight_len() == 0 && !progressed {
                break;
            }
            if let Some(t) = net.next_event_us() {
                now = now.max(t);
            }
            spins += 1;
            if spins > 10_000 {
                last_error = Some("replication flush did not quiesce".to_string());
                break;
            }
        }
    }

    let extent_crcs: Vec<Vec<u32>> = peers
        .iter()
        .map(|p| (0..p.wh.view_count()).map(|i| extent_crc(p.wh.mv(i))).collect())
        .collect();
    let bit_identical = extent_crcs.windows(2).all(|w| w[0] == w[1]);
    let source_consistent = peers.iter().all(|p| {
        (0..p.wh.view_count())
            .all(|i| check_convergence(p.port.space(), p.wh.view(i), p.wh.mv(i)).unwrap_or(false))
    });
    let sum = |name: &str| {
        peers.iter().map(|p| p.obs.registry().counter_value(name).unwrap_or(0)).sum::<u64>()
    };
    ReplicaReport {
        converged: last_error.is_none() && bit_identical && source_consistent,
        bit_identical,
        source_consistent,
        extent_crcs,
        partitions_injected: net.partitions_injected(),
        conflicts: sum("replica.conflicts"),
        superseded: sum("replica.superseded"),
        remote_applied: sum("replica.remote_applied"),
        published: sum("replica.published"),
        duplicates: sum("replica.duplicates"),
        kills,
        last_error,
        lineage: peers.iter().map(|p| p.obs.lineage_jsonl()).collect(),
        lag_quantiles: peers
            .iter()
            .map(|p| {
                let h = p.obs.registry().histogram("replica.lag_us");
                let (p50, p95, p99) = h.percentiles();
                (h.count(), p50, p95, p99)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_pair_converges() {
        let report = run_replicated(&ReplicaConfig::named("quiet", 2, 42));
        assert!(report.converged, "quiet links must converge: {:?}", report.last_error);
        assert!(report.published > 0);
        assert!(report.remote_applied > 0);
        assert_eq!(report.conflicts, 0, "sharded keys, no partitions, no conflicts");
        assert_eq!(report.lag_quantiles.len(), 2, "one lag summary per replica");
        assert!(
            report.lag_quantiles.iter().any(|&(count, ..)| count > 0),
            "remote applies recorded live lag samples"
        );
    }

    #[test]
    fn partition_trio_detects_conflicts_and_converges() {
        let report = run_replicated(&ReplicaConfig::named("partition", 3, 7));
        assert!(report.converged, "heal must converge: {:?}", report.last_error);
        assert!(report.partitions_injected > 0, "windows held traffic");
        assert!(report.conflicts > 0, "concurrent writes were detected");
        assert!(report.superseded > 0, "LWW losers were discarded");
    }

    #[test]
    fn drop_dup_links_recover_by_nack() {
        let report = run_replicated(&ReplicaConfig::named("drop_dup", 3, 11));
        assert!(report.converged, "refetch must converge: {:?}", report.last_error);
    }

    #[test]
    fn crash_before_send_resends_from_the_wal() {
        let report = run_replicated(&ReplicaConfig::named("quiet", 2, 5).with_kill(6));
        assert_eq!(report.kills, 1, "the kill fired");
        assert!(report.converged, "recovery re-sends: {:?}", report.last_error);
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let run = || run_replicated(&ReplicaConfig::named("partition", 3, 23).with_lineage());
        let (a, b) = (run(), run());
        assert_eq!(a.extent_crcs, b.extent_crcs);
        assert_eq!(a.conflicts, b.conflicts);
        assert_eq!(a.superseded, b.superseded);
        assert_eq!(a.lineage, b.lineage, "lineage is bit-reproducible");
    }
}
