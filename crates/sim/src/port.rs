//! The timed source port: a [`SourcePort`] implementation driven by a
//! virtual clock, with a schedule of future autonomous source commits.
//!
//! This is where the paper's concurrency physics is reproduced: every
//! maintenance query first advances the clock by its cost, and **any
//! scheduled source commit whose time has come is applied before the query
//! is answered**. A query therefore sees exactly the source state that a
//! real loosely-coupled system would have shown it — including updates the
//! view manager has not heard about yet.

use std::collections::VecDeque;

use dyno_obs::{field, Collector, Counter, Histogram, Level, StalenessTracker, VirtualClock};
use dyno_relational::{QueryResult, Relation, RelationalError, SourceUpdate, SpjQuery};
use dyno_source::{SourceId, SourceSpace, UpdateMessage};
use dyno_view::{eval_with_bound, BoundTable, MaintEvent, SourcePort};

use crate::cost::CostModel;
use crate::metrics::Metrics;

/// A future autonomous commit.
#[derive(Debug, Clone)]
pub struct ScheduledCommit {
    /// Simulated commit time (µs from run start).
    pub at_us: u64,
    /// The committing source.
    pub source: SourceId,
    /// The update.
    pub update: SourceUpdate,
}

/// The port's run counters, bound once to `sim.*` registry entries so hot
/// paths update `Cell`s instead of looking up names.
#[derive(Debug, Clone)]
struct SimCounters {
    committed_us: Counter,
    abort_us: Counter,
    committed_sc_us: Counter,
    abort_sc_us: Counter,
    queries: Counter,
    aborts: Counter,
    attempts: Counter,
    skipped_commits: Counter,
    /// Maintenance attempts parked on an unavailable source, and the
    /// simulated time they consumed before parking.
    parks: Counter,
    parked_us: Counter,
    /// Tuples the executor actually touched (scan + probe paths).
    rows_scanned: Counter,
    /// Secondary-index lookups the executor performed.
    index_probes: Counter,
    /// Joins that fell back to a cartesian product (planner found no
    /// connecting predicate).
    cartesian_fallback: Counter,
    /// Per-entry simulated cost of committed maintenance (log₂ buckets).
    entry_committed: Histogram,
    /// Per-entry simulated cost of aborted maintenance.
    entry_abort: Histogram,
}

impl SimCounters {
    fn bind(obs: &Collector) -> Self {
        SimCounters {
            committed_us: obs.counter("sim.committed_us"),
            abort_us: obs.counter("sim.abort_us"),
            committed_sc_us: obs.counter("sim.committed_sc_us"),
            abort_sc_us: obs.counter("sim.abort_sc_us"),
            queries: obs.counter("sim.queries"),
            aborts: obs.counter("sim.aborts"),
            attempts: obs.counter("sim.attempts"),
            skipped_commits: obs.counter("sim.skipped_commits"),
            parks: obs.counter("sim.parks"),
            parked_us: obs.counter("sim.parked_us"),
            rows_scanned: obs.counter("exec.rows_scanned"),
            index_probes: obs.counter("exec.index_probes"),
            cartesian_fallback: obs.counter("exec.cartesian_fallback"),
            entry_committed: obs.histogram("sim.entry_committed_us"),
            entry_abort: obs.histogram("sim.entry_abort_us"),
        }
    }
}

/// The timed port.
#[derive(Debug, Clone)]
pub struct SimPort {
    space: SourceSpace,
    now_us: u64,
    schedule: VecDeque<ScheduledCommit>,
    arrivals: Vec<UpdateMessage>,
    cost: CostModel,
    metering: bool,
    maint_begin_us: Option<u64>,
    maint_has_sc: bool,
    clock: VirtualClock,
    obs: Collector,
    sim: SimCounters,
    staleness: Option<StalenessTracker>,
}

impl SimPort {
    /// Creates a port over `space` with a commit schedule (sorted by time;
    /// ties keep the given order) and a cost model. Metering starts
    /// disabled so view initialization is free; call
    /// [`SimPort::start_metering`] when the run begins.
    ///
    /// The port owns an enabled [`Collector`] stamped by its virtual clock:
    /// run counters live in its registry (the [`Metrics`] struct is a
    /// projection of them) and, when tracing is switched on, events and
    /// spans carry simulated-µs timestamps. Share it with the view manager
    /// (`ViewManager::with_obs(port.obs().clone())`) to get one coherent
    /// timeline across the scheduler, the maintenance paths, and the port.
    pub fn new(space: SourceSpace, mut schedule: Vec<ScheduledCommit>, cost: CostModel) -> Self {
        schedule.sort_by_key(|c| c.at_us);
        let clock = VirtualClock::new();
        let obs = Collector::with_virtual_clock(clock.clone());
        let sim = SimCounters::bind(&obs);
        SimPort {
            space,
            now_us: 0,
            schedule: schedule.into(),
            arrivals: Vec::new(),
            cost,
            metering: false,
            maint_begin_us: None,
            maint_has_sc: false,
            clock,
            obs,
            sim,
            staleness: None,
        }
    }

    /// Enables cost metering (initialization is complete).
    pub fn start_metering(&mut self) {
        self.metering = true;
    }

    /// Attaches a staleness tracker: every applied scheduled commit is
    /// noted at its true simulated commit time, which is the "commit"
    /// endpoint of the end-to-end staleness measurement (DESIGN.md §14).
    pub fn set_staleness(&mut self, tracker: StalenessTracker) {
        self.staleness = Some(tracker);
    }

    /// The wrapped source space.
    pub fn space(&self) -> &SourceSpace {
        &self.space
    }

    /// The port's collector. Clones share the pipeline, so this is the
    /// handle to thread into `ViewManager::with_obs` / `Warehouse::with_obs`
    /// and to flip tracing on (`set_tracing`) for a run.
    pub fn obs(&self) -> &Collector {
        &self.obs
    }

    /// Metrics so far: a projection of the `sim.*` registry counters plus
    /// the current clock, so registry snapshots and this struct can never
    /// disagree.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            committed_us: self.sim.committed_us.get(),
            abort_us: self.sim.abort_us.get(),
            committed_sc_us: self.sim.committed_sc_us.get(),
            abort_sc_us: self.sim.abort_sc_us.get(),
            queries: self.sim.queries.get(),
            aborts: self.sim.aborts.get(),
            attempts: self.sim.attempts.get(),
            skipped_commits: self.sim.skipped_commits.get(),
            end_us: self.now_us,
        }
    }

    /// True iff scheduled commits remain.
    pub fn has_future_commits(&self) -> bool {
        !self.schedule.is_empty()
    }

    /// Jumps the clock to the next scheduled commit (used when the view
    /// manager is idle). Returns false when nothing is scheduled.
    pub fn advance_to_next_commit(&mut self) -> bool {
        match self.schedule.front() {
            Some(c) => {
                let t = c.at_us.max(self.now_us);
                self.set_now(t);
                self.apply_due_commits();
                true
            }
            None => false,
        }
    }

    /// The next scheduled commit's time, if any.
    pub fn next_commit_at_us(&self) -> Option<u64> {
        self.schedule.front().map(|c| c.at_us)
    }

    /// Jumps the clock forward to `t_us` (never backward) and applies newly
    /// due commits — the chaos driver's way of waiting out a transport
    /// event (delayed delivery, source restart) when the manager is parked.
    pub fn advance_to(&mut self, t_us: u64) {
        let t = t_us.max(self.now_us);
        self.set_now(t);
        self.apply_due_commits();
    }

    /// Moves the clock, keeping the collector's virtual clock in lockstep
    /// so trace timestamps are simulated µs.
    fn set_now(&mut self, t_us: u64) {
        self.now_us = t_us;
        self.clock.set(t_us);
    }

    /// Advances the clock and applies newly due commits. Only used at
    /// points *immediately before a query evaluation* (and at idle jumps):
    /// a commit must never become visible to the wrapper stream without
    /// also being visible to the next query result, or compensation would
    /// subtract updates the query never saw.
    fn advance(&mut self, dt_us: u64) {
        self.set_now(self.now_us + dt_us);
        self.apply_due_commits();
    }

    /// Advances the clock without applying commits (post-evaluation cost
    /// charges: result shipping, local computation, MV writes). Commits
    /// whose time passes during a quiet advance are applied at the next
    /// pre-evaluation point, exactly when they next become observable.
    fn advance_quiet(&mut self, dt_us: u64) {
        self.set_now(self.now_us + dt_us);
    }

    fn apply_due_commits(&mut self) {
        while let Some(c) = self.schedule.front() {
            if c.at_us > self.now_us {
                break;
            }
            let c = self.schedule.pop_front().expect("peeked");
            match self.space.commit(c.source, c.update) {
                Ok(msg) => {
                    // The causal id is born here: every later provenance
                    // record for this update keys on msg.id.
                    self.obs.prov(
                        msg.id.0,
                        dyno_obs::stage::COMMIT,
                        &[field("source", msg.source.0), field("version", msg.source_version)],
                    );
                    if let Some(tracker) = &self.staleness {
                        tracker.note_commit(msg.source.0, msg.source_version, c.at_us);
                    }
                    self.arrivals.push(msg);
                }
                Err(_) => {
                    self.sim.skipped_commits.inc();
                    self.obs.event(
                        Level::Warn,
                        "sim.skipped_commit",
                        &[field("source", c.source.0), field("at_us", c.at_us)],
                    );
                }
            }
        }
    }

    /// Estimated tuples a query scans at sources: the sizes of all
    /// non-bound relations it reads.
    fn scanned_tuples(&self, query: &SpjQuery, bound: &[BoundTable]) -> u64 {
        query
            .tables
            .iter()
            .filter(|t| !bound.iter().any(|b| b.name == **t))
            .map(|t| {
                self.space
                    .locate(t)
                    .and_then(|sid| self.space.server(sid).catalog().get(t).ok().map(Relation::len))
                    .unwrap_or(0)
            })
            .sum()
    }
}

impl SourcePort for SimPort {
    fn now_ms(&self) -> u64 {
        self.now_us / 1000
    }

    fn now_us(&self) -> u64 {
        self.now_us
    }

    fn advance_wait(&mut self, us: u64) {
        // Backoff/crash waits pass quietly: commits falling due during the
        // wait become observable at the next pre-evaluation point, like any
        // other post-eval charge.
        if self.metering {
            self.advance_quiet(us);
        }
    }

    fn execute(
        &mut self,
        query: &SpjQuery,
        bound: &[BoundTable],
    ) -> Result<QueryResult, RelationalError> {
        if self.metering {
            self.sim.queries.inc();
            // The round trip: commits landing during it are visible.
            self.advance(self.cost.query_latency_us);
        }
        let before = dyno_relational::thread_stats();
        let result = eval_with_bound(&self.space.provider(), query, bound);
        let d = dyno_relational::thread_stats().since(before);
        self.sim.rows_scanned.add(d.rows_scanned);
        self.sim.index_probes.add(d.index_probes);
        self.sim.cartesian_fallback.add(d.cartesian_fallbacks);
        if self.metering {
            // Simulated time is charged from *schema-level* relation sizes,
            // not the executor's actual work: the simulated-seconds series
            // of the paper figures must not depend on which access path the
            // in-process executor happened to pick.
            let scanned = self.scanned_tuples(query, bound);
            let shipped = result.as_ref().map(|r| r.weight()).unwrap_or(0);
            self.advance_quiet(
                scanned * self.cost.scan_tuple_us + shipped * self.cost.result_tuple_us,
            );
        }
        result
    }

    fn fetch_relation_at(
        &mut self,
        source: SourceId,
        relation: &str,
        version: u64,
    ) -> Result<Relation, RelationalError> {
        let catalog = self.space.server(source).state_at(version)?;
        let rel = catalog.get(relation).cloned()?;
        if self.metering {
            self.advance_quiet(self.cost.query_cost_us(rel.len(), rel.len()));
        }
        Ok(rel)
    }

    fn locate(&mut self, relation: &str) -> Option<SourceId> {
        self.space.locate(relation)
    }

    fn source_version(&mut self, source: SourceId) -> u64 {
        self.space.server(source).version()
    }

    fn charge_local(&mut self, tuples: u64) {
        if self.metering {
            self.advance_quiet(tuples * self.cost.local_tuple_us);
        }
    }

    fn drain_arrivals(&mut self) -> Vec<UpdateMessage> {
        std::mem::take(&mut self.arrivals)
    }

    fn charge_mv_write(&mut self, tuples: u64) {
        if self.metering {
            self.advance_quiet(tuples * self.cost.mv_write_tuple_us);
        }
    }

    fn on_maintenance_event(&mut self, event: MaintEvent) {
        if !self.metering {
            return;
        }
        match event {
            MaintEvent::Begin { schema_changes, updates: _ } => {
                self.sim.attempts.inc();
                self.maint_has_sc = schema_changes > 0;
                self.maint_begin_us = Some(self.now_us);
                // VS rewriting cost is paid per schema change in the batch.
                self.advance_quiet(schema_changes as u64 * self.cost.vs_rewrite_us);
            }
            MaintEvent::Commit => {
                if let Some(t0) = self.maint_begin_us.take() {
                    let dt = self.now_us - t0;
                    self.sim.committed_us.add(dt);
                    self.sim.entry_committed.record(dt);
                    if self.maint_has_sc {
                        self.sim.committed_sc_us.add(dt);
                    }
                }
            }
            MaintEvent::Abort => {
                if let Some(t0) = self.maint_begin_us.take() {
                    let dt = self.now_us - t0;
                    self.sim.aborts.inc();
                    self.sim.abort_us.add(dt);
                    self.sim.entry_abort.record(dt);
                    if self.maint_has_sc {
                        self.sim.abort_sc_us.add(dt);
                    }
                }
            }
            MaintEvent::Park => {
                // Not an abort: no maintenance work was discarded, the
                // entry just could not run. Track it separately.
                if let Some(t0) = self.maint_begin_us.take() {
                    self.sim.parks.inc();
                    self.sim.parked_us.add(self.now_us - t0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::{AttrType, Catalog, Schema, SchemaChange, Tuple, Value};
    use dyno_relational::{DataUpdate, Delta};
    use dyno_source::SourceServer;

    fn space() -> SourceSpace {
        let mut sp = SourceSpace::new();
        let mut c = Catalog::new();
        c.add_relation(
            dyno_relational::Relation::from_tuples(
                Schema::of("R", &[("a", AttrType::Int)]),
                [Tuple::of([Value::from(1)])],
            )
            .unwrap(),
        )
        .unwrap();
        sp.add_server(SourceServer::new(SourceId(0), "s0", c));
        sp
    }

    fn du(v: i64) -> SourceUpdate {
        SourceUpdate::Data(DataUpdate::new(
            Delta::inserts(Schema::of("R", &[("a", AttrType::Int)]), [Tuple::of([v])]).unwrap(),
        ))
    }

    #[test]
    fn commits_become_visible_when_clock_passes_them() {
        let schedule = vec![ScheduledCommit { at_us: 50_000, source: SourceId(0), update: du(2) }];
        let mut port = SimPort::new(space(), schedule, CostModel::default());
        port.start_metering();
        let q = dyno_relational::SpjQuery::over(["R"]).select("R", "a").build();
        // First query: latency 40ms < 50ms → commit not yet visible.
        let r1 = port.execute(&q, &[]).unwrap();
        assert_eq!(r1.weight(), 1);
        // Second query pushes the clock past 50ms → commit visible.
        let r2 = port.execute(&q, &[]).unwrap();
        assert_eq!(r2.weight(), 2);
        assert_eq!(port.drain_arrivals().len(), 1);
    }

    #[test]
    fn metering_toggle() {
        let schedule = vec![ScheduledCommit { at_us: 1, source: SourceId(0), update: du(2) }];
        let mut port = SimPort::new(space(), schedule, CostModel::default());
        let q = dyno_relational::SpjQuery::over(["R"]).select("R", "a").build();
        port.execute(&q, &[]).unwrap();
        assert_eq!(port.now_ms(), 0, "unmetered execution is free");
        assert!(port.has_future_commits());
        port.start_metering();
        port.execute(&q, &[]).unwrap();
        assert!(port.now_ms() >= 40);
        assert!(!port.has_future_commits());
    }

    #[test]
    fn abort_cost_accounting() {
        let mut port = SimPort::new(space(), vec![], CostModel::default());
        port.start_metering();
        port.on_maintenance_event(MaintEvent::Begin { updates: 1, schema_changes: 0 });
        let q = dyno_relational::SpjQuery::over(["R"]).select("R", "a").build();
        port.execute(&q, &[]).unwrap();
        port.on_maintenance_event(MaintEvent::Abort);
        let m = port.metrics();
        assert_eq!(m.aborts, 1);
        assert!(m.abort_us >= 40_000);
        assert_eq!(m.committed_us, 0);
    }

    #[test]
    fn sc_cost_classified() {
        let mut port = SimPort::new(space(), vec![], CostModel::default());
        port.start_metering();
        port.on_maintenance_event(MaintEvent::Begin { updates: 1, schema_changes: 1 });
        port.on_maintenance_event(MaintEvent::Commit);
        let m = port.metrics();
        assert!(m.committed_sc_us >= CostModel::default().vs_rewrite_us);
    }

    #[test]
    fn idle_jump_applies_commits() {
        let schedule =
            vec![ScheduledCommit { at_us: 2_000_000, source: SourceId(0), update: du(5) }];
        let mut port = SimPort::new(space(), schedule, CostModel::default());
        port.start_metering();
        assert!(port.advance_to_next_commit());
        assert_eq!(port.now_ms(), 2000);
        assert_eq!(port.drain_arrivals().len(), 1);
        assert!(!port.advance_to_next_commit());
    }

    #[test]
    fn arrivals_stream_in_commit_order() {
        let schedule: Vec<ScheduledCommit> = (0..5)
            .map(|k| ScheduledCommit {
                at_us: (k as u64 + 1) * 10_000,
                source: SourceId(0),
                update: du(100 + k as i64),
            })
            .collect();
        let mut port = SimPort::new(space(), schedule, CostModel::default());
        port.start_metering();
        let mut seen = Vec::new();
        while port.advance_to_next_commit() {
            seen.extend(port.drain_arrivals());
        }
        assert_eq!(seen.len(), 5);
        assert!(seen.windows(2).all(|w| w[0].id < w[1].id), "wrapper stream is FIFO");
        assert!(
            seen.windows(2).all(|w| w[0].source_version + 1 == w[1].source_version),
            "per-source versions are dense"
        );
    }

    #[test]
    fn quiet_advance_defers_commit_visibility() {
        // A commit falling due during a post-eval charge must not be
        // streamed before the next pre-eval point.
        let schedule = vec![ScheduledCommit { at_us: 1_000, source: SourceId(0), update: du(2) }];
        let mut port = SimPort::new(space(), vec![], CostModel::default());
        port.start_metering();
        port.schedule = schedule.into();
        port.charge_local(2_000_000); // 2 s pass quietly
        assert!(port.drain_arrivals().is_empty(), "not yet observable");
        let q = dyno_relational::SpjQuery::over(["R"]).select("R", "a").build();
        let r = port.execute(&q, &[]).unwrap();
        assert_eq!(r.weight(), 2, "visible to the query that could observe it");
        assert_eq!(port.drain_arrivals().len(), 1, "and streamed at the same moment");
    }

    #[test]
    fn invalid_scheduled_commit_is_counted_not_fatal() {
        let schedule = vec![ScheduledCommit {
            at_us: 1,
            source: SourceId(0),
            update: SourceUpdate::Schema(SchemaChange::DropRelation { relation: "Ghost".into() }),
        }];
        let mut port = SimPort::new(space(), schedule, CostModel::default());
        port.start_metering();
        port.advance_to_next_commit();
        assert_eq!(port.metrics().skipped_commits, 1);
    }
}
