//! Multi-view chaos/crash runner: the warehouse-level sibling of
//! [`run_chaos`](crate::chaos::run_chaos) and
//! [`run_crash_chaos`](crate::crash::run_crash_chaos) that drives a
//! [`dyno_view::Warehouse`] holding **N overlapping views** through the
//! seeded fault-injection transport, optionally killing and recovering the
//! whole warehouse process from its WAL.
//!
//! The views are built by [`build_multiview`]: view *i* is
//! `R0 ⋈ R1 ⋈ R{2+i}`, so every view shares the `ΔR0 ⋈ R1` / `ΔR1 ⋈ R0`
//! first hop (the shared-subplan cache's bread and butter) while fanning out
//! to distinct third relations on distinct sources.
//!
//! ## Oracles
//!
//! * **Per-view strong consistency** — after every commit (and every
//!   recovery) each view's extent must equal its definition evaluated at the
//!   state vector *that view* claims to reflect
//!   ([`dyno_view::Warehouse::view_reflected`]) — a deferred view audits at
//!   its own, older vector while its peers audit ahead of it.
//! * **Per-view convergence** — once quiescent, every extent equals its
//!   (current) definition over the final source states and no batch is
//!   still deferred.
//! * **Bit identity** — [`MultiViewReport::final_extent_crcs`] must match
//!   across shared/unshared subplan execution and across crashed/uncrashed
//!   runs of the same seed.

use std::collections::HashMap;

use dyno_core::{CorrectionPolicy, StepOutcome, Strategy};
use dyno_durable::{crc32, Enc, MemStorage};
use dyno_fault::{ChaosTransport, FaultProfile, RetryPolicy};
use dyno_obs::Collector;
use dyno_relational::wire::enc_bag;
use dyno_source::{SourceId, SourceSpace};
use dyno_view::engine::SourcePort;
use dyno_view::wal::{CrashPlan, DurableLog};
use dyno_view::{FaultedPort, ViewDefinition, Warehouse};

use crate::consistency::{check_convergence, check_reflected};
use crate::cost::CostModel;
use crate::port::SimPort;
use crate::testbed::{build_space, TestbedConfig};
use crate::workload::WorkloadGen;

/// Builds `views` overlapping definitions over the standard testbed space:
/// view *i* is `R0 ⋈ R1 ⋈ R{2+i}` projecting every attribute of its three
/// relations. All views share the `R0 ⋈ R1` join (same equi-join signature,
/// so their ΔR0/ΔR1 first hops hit the shared-subplan cache) and each view
/// additionally reads a distinct relation, giving per-view source sets that
/// overlap without coinciding. Panics if the testbed has fewer than
/// `views + 2` relations.
pub fn build_multiview(cfg: &TestbedConfig, views: usize) -> (SourceSpace, Vec<ViewDefinition>) {
    let names = cfg.relation_names();
    assert!(
        views + 2 <= names.len(),
        "need {} relations for {views} overlapping views, testbed has {}",
        views + 2,
        names.len()
    );
    let space = build_space(cfg);
    let defs = (0..views)
        .map(|i| {
            let tables = [names[0].clone(), names[1].clone(), names[2 + i].clone()];
            let mut b = dyno_relational::SpjQuery::over(tables.clone());
            for (t, name) in tables.iter().enumerate() {
                let idx = if t < 2 { t } else { 2 + i };
                for attr in cfg.schema(idx).attrs() {
                    b = b.select_as(name, &attr.name, &format!("{name}_{}", attr.name));
                }
            }
            b = b.join_eq((tables[0].as_str(), "K"), (tables[1].as_str(), "K"));
            b = b.join_eq((tables[1].as_str(), "K"), (tables[2].as_str(), "K"));
            ViewDefinition::new(format!("V{i}"), b.build())
        })
        .collect();
    (space, defs)
}

/// One multi-view chaos (or crash-chaos) experiment; everything derives from
/// `(profile, seed)` plus the explicit knobs.
#[derive(Debug, Clone)]
pub struct MultiViewConfig {
    /// Transport fault intensities.
    pub profile: FaultProfile,
    /// Master seed (workload, transport rolls, retry jitter).
    pub seed: u64,
    /// Detection strategy.
    pub strategy: Strategy,
    /// Correction policy.
    pub policy: CorrectionPolicy,
    /// Query-retry policy.
    pub retry: RetryPolicy,
    /// Number of overlapping views (2..=4 on the default testbed).
    pub views: usize,
    /// Share first-hop subplans across views (the default); `false` is the
    /// ablation the bit-identity oracle compares against.
    pub share_subplans: bool,
    /// Data updates to schedule.
    pub du_count: usize,
    /// Schema changes to schedule.
    pub sc_count: usize,
    /// Testbed scale.
    pub tuples_per_relation: usize,
    /// Audit per-view strong consistency after every commit/recovery.
    pub audit: bool,
    /// Maintenance-step budget.
    pub max_steps: u64,
    /// Kill sequence (armed one plan at a time); empty = chaos only. A
    /// non-empty sequence attaches a WAL over in-memory storage.
    pub kills: Vec<CrashPlan>,
    /// WAL checkpoint policy when kills are armed.
    pub checkpoint_every: u64,
}

impl MultiViewConfig {
    /// A small-but-representative run: 3 views, 12 DUs + 2 SCs over a
    /// 150-tuple testbed, audited, pessimistic with default correction.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        MultiViewConfig {
            profile,
            seed,
            strategy: Strategy::Pessimistic,
            policy: CorrectionPolicy::default(),
            retry: RetryPolicy::default(),
            views: 3,
            share_subplans: true,
            du_count: 12,
            sc_count: 2,
            tuples_per_relation: 150,
            audit: true,
            max_steps: 5_000,
            kills: Vec::new(),
            checkpoint_every: 16,
        }
    }

    /// Sets the view count.
    pub fn with_views(mut self, views: usize) -> Self {
        self.views = views;
        self
    }

    /// Disables cross-view subplan sharing (ablation).
    pub fn without_sharing(mut self) -> Self {
        self.share_subplans = false;
        self
    }

    /// Sets the kill sequence (attaches a WAL).
    pub fn with_kills(mut self, kills: Vec<CrashPlan>) -> Self {
        self.kills = kills;
        self
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the correction policy.
    pub fn with_policy(mut self, policy: CorrectionPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// What a multi-view run produced.
#[derive(Debug, Clone)]
pub struct MultiViewReport {
    /// All views converged and nothing stayed deferred.
    pub converged: bool,
    /// Per-view convergence verdicts.
    pub per_view_converged: Vec<bool>,
    /// Per-view strong-consistency audit failures after commits.
    pub audit_violations: u64,
    /// Audit failures immediately after a recovery.
    pub recovery_audit_failures: u64,
    /// Kills actually executed.
    pub kills: u64,
    /// Committed + aborted + parked steps, over all lives.
    pub steps: u64,
    /// Steps that parked (every active view blocked).
    pub parked_steps: u64,
    /// Whether the step budget ran out before quiescence.
    pub exhausted: bool,
    /// Total faults the transport injected.
    pub fault_injected: u64,
    /// Batches whose per-view safety verdicts split (`safety.divergent_verdicts`).
    pub divergent_verdicts: u64,
    /// Shared first hops served from cache (`subplan.shared_hits`).
    pub subplan_hits: u64,
    /// Shared first hops computed (`subplan.shared_misses`).
    pub subplan_misses: u64,
    /// Deferred batches drained to commit (`view.deferred_drains`).
    pub deferred_drains: u64,
    /// Batches still deferred at the end (nonzero fails convergence).
    pub deferred_at_end: usize,
    /// A hard maintenance error that ended the run, if any.
    pub last_error: Option<String>,
    /// CRC-32 of each view's canonically encoded final extent, in slot
    /// order — the bit-identity fingerprint.
    pub final_extent_crcs: Vec<u32>,
    /// The run's collector.
    pub obs: Collector,
}

/// Canonical fingerprint of an extent (sorted encoding → CRC-32).
fn extent_crc(mv: &dyno_view::MaterializedView) -> u32 {
    let mut e = Enc::new();
    enc_bag(&mut e, mv.extent());
    crc32(&e.finish())
}

fn audit_all_views(wh: &Warehouse, space: &SourceSpace) -> u64 {
    let mut failures = 0;
    for i in 0..wh.view_count() {
        let reflected: HashMap<SourceId, u64> =
            wh.view_reflected(i).into_iter().map(|(s, v)| (SourceId(s), v)).collect();
        let ok = check_reflected(space, wh.view(i), &reflected, wh.mv(i)).unwrap_or(false);
        if !ok {
            failures += 1;
        }
    }
    failures
}

/// Runs one seeded multi-view experiment to quiescence (or budget/error).
pub fn run_multiview(cfg: &MultiViewConfig) -> MultiViewReport {
    let tb = TestbedConfig { tuples_per_relation: cfg.tuples_per_relation, ..Default::default() };
    let (space, views) = build_multiview(&tb, cfg.views);
    let info = space.info().clone();
    let mut gen = WorkloadGen::new(tb, cfg.seed);
    let mut schedule = gen.du_flood(cfg.du_count);
    if cfg.sc_count > 0 {
        schedule.extend(gen.sc_train(cfg.sc_count, 1_000_000, 20_000_000));
    }

    let mut port = SimPort::new(space, schedule, CostModel::default());
    let obs = port.obs().clone();
    let mut wh = Warehouse::new(info.clone(), cfg.strategy)
        .with_obs(obs.clone())
        .with_correction(cfg.policy)
        .with_subplan_sharing(cfg.share_subplans);
    for view in views {
        wh.add_view(view);
    }
    wh.initialize(&mut port).expect("testbed initialization runs fault-free");
    port.start_metering();

    // The disk outlives every warehouse life (only used when kills are armed).
    let disk = MemStorage::new();
    if !cfg.kills.is_empty() {
        let log = DurableLog::create(Box::new(disk.clone()))
            .expect("MemStorage never fails")
            .with_checkpoint_every(cfg.checkpoint_every);
        wh = wh.with_wal(log).expect("no admission bound is configured");
    }

    let init_versions = port.space().versions();
    let transport = ChaosTransport::new(cfg.profile, cfg.seed).with_obs(&obs);
    let mut fport = FaultedPort::new(port, transport, init_versions.clone())
        .with_retry(cfg.retry)
        .with_seed(cfg.seed ^ 0x9e37_79b9_7f4a_7c15)
        .with_obs(&obs);

    let mut plans = cfg.kills.iter();
    if let Some(&plan) = plans.next() {
        wh.arm_crash(plan);
    }

    let mut kills = 0u64;
    let mut steps = 0u64;
    let mut parked_steps = 0u64;
    let mut audit_violations = 0u64;
    let mut recovery_audit_failures = 0u64;
    let mut exhausted = false;
    let mut last_error: Option<String> = None;
    let mut flushed = false;
    let mut iters = 0u64;
    let iter_budget = cfg.max_steps.saturating_mul(20).max(100_000);

    loop {
        iters += 1;
        if steps >= cfg.max_steps || iters >= iter_budget {
            exhausted = true;
            break;
        }
        let next_event = |f: &FaultedPort<SimPort, ChaosTransport>| -> Option<u64> {
            match (f.inner().next_commit_at_us(), f.next_wakeup_us()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        let outcome = wh.step(&mut fport);

        // The power cut may have tripped anywhere inside that step; nothing
        // the doomed process did after the cut is durable.
        if wh.wal_power_cut() {
            kills += 1;
            drop(wh);
            let (port, transport) = fport.into_parts();
            let (recovered, _report) =
                Warehouse::recover(Box::new(disk.clone()), info.clone(), obs.clone())
                    .expect("a cut log always holds its initial checkpoint");
            wh = recovered;
            let mut baseline: HashMap<SourceId, u64> = init_versions.clone();
            for (s, v) in wh.ingress_marks() {
                let e = baseline.entry(SourceId(s)).or_insert(0);
                *e = (*e).max(v);
            }
            fport = FaultedPort::new(port, transport, baseline)
                .with_retry(cfg.retry)
                .with_seed(cfg.seed ^ 0x9e37_79b9_7f4a_7c15 ^ kills)
                .with_obs(&obs);
            fport.resubscribe();
            if cfg.audit {
                recovery_audit_failures += audit_all_views(&wh, fport.inner().space());
            }
            if let Some(&plan) = plans.next() {
                wh.arm_crash(plan);
            }
            flushed = false;
            continue;
        }

        match outcome {
            Err(e) => {
                last_error = Some(e.to_string());
                break;
            }
            Ok(StepOutcome::Idle) => match next_event(&fport) {
                Some(t) => {
                    let now = fport.now_us();
                    fport.inner_mut().advance_to(t.max(now + 1));
                    flushed = false;
                }
                None if !flushed => {
                    fport.flush_all();
                    flushed = true;
                }
                None => break,
            },
            Ok(StepOutcome::Committed) => {
                steps += 1;
                flushed = false;
                if cfg.audit {
                    audit_violations += audit_all_views(&wh, fport.inner().space());
                }
                if !cfg.kills.is_empty() {
                    for (s, v) in wh.ingress_marks() {
                        fport.ack_durable(SourceId(s), v);
                    }
                }
            }
            Ok(StepOutcome::Aborted) => {
                steps += 1;
                flushed = false;
            }
            Ok(StepOutcome::Parked) => {
                steps += 1;
                parked_steps += 1;
                flushed = false;
                let now = fport.now_us();
                let t = next_event(&fport).unwrap_or(now + 1_000_000);
                fport.inner_mut().advance_to(t.max(now + 1));
            }
            Ok(StepOutcome::Failed) => unreachable!("warehouse.step surfaces failures as Err"),
        }
    }

    if !cfg.kills.is_empty() {
        wh.checkpoint_now();
    }

    let space = fport.inner().space();
    let per_view_converged: Vec<bool> = (0..wh.view_count())
        .map(|i| check_convergence(space, wh.view(i), wh.mv(i)).unwrap_or(false))
        .collect();
    let deferred_at_end = wh.deferred_total();
    let converged = last_error.is_none()
        && !exhausted
        && deferred_at_end == 0
        && per_view_converged.iter().all(|&ok| ok);
    MultiViewReport {
        converged,
        per_view_converged,
        audit_violations,
        recovery_audit_failures,
        kills,
        steps,
        parked_steps,
        exhausted,
        fault_injected: fport.injected_total(),
        divergent_verdicts: wh.divergent_verdicts(),
        subplan_hits: wh.subplan_hits(),
        subplan_misses: wh.subplan_misses(),
        deferred_drains: wh.drained_commits(),
        deferred_at_end,
        last_error,
        final_extent_crcs: (0..wh.view_count()).map(|i| extent_crc(wh.mv(i))).collect(),
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_profile_converges_with_three_views() {
        let report = run_multiview(&MultiViewConfig::new(FaultProfile::quiet(), 42));
        assert!(report.converged, "no faults, must converge: {:?}", report.last_error);
        assert_eq!(report.audit_violations, 0);
        assert_eq!(report.fault_injected, 0);
        assert!(report.subplan_hits > 0, "overlapping views share first hops");
    }

    #[test]
    fn drop_dup_profile_converges_and_injects() {
        let report = run_multiview(&MultiViewConfig::new(FaultProfile::drop_dup(), 7));
        assert!(report.converged, "recovery must mask drops/duplicates: {:?}", report.last_error);
        assert_eq!(report.audit_violations, 0);
        assert!(report.fault_injected > 0);
    }

    #[test]
    fn shared_and_unshared_runs_are_bit_identical() {
        let shared = run_multiview(&MultiViewConfig::new(FaultProfile::quiet(), 19));
        let unshared =
            run_multiview(&MultiViewConfig::new(FaultProfile::quiet(), 19).without_sharing());
        assert!(shared.converged && unshared.converged);
        assert!(shared.subplan_hits > 0);
        assert_eq!(unshared.subplan_hits, 0);
        assert_eq!(
            shared.final_extent_crcs, unshared.final_extent_crcs,
            "sharing changes how much work runs, never what is computed"
        );
    }

    #[test]
    fn runs_are_deterministic_by_seed() {
        let run = || run_multiview(&MultiViewConfig::new(FaultProfile::reorder_delay(), 23));
        let (a, b) = (run(), run());
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.fault_injected, b.fault_injected);
        assert_eq!(a.final_extent_crcs, b.final_extent_crcs);
    }

    #[test]
    fn a_kill_mid_run_recovers_every_view() {
        use dyno_view::wal::CrashPoint;
        let baseline = run_multiview(&MultiViewConfig::new(FaultProfile::quiet(), 42));
        let crashed = run_multiview(
            &MultiViewConfig::new(FaultProfile::quiet(), 42)
                .with_kills(vec![CrashPlan { point: CrashPoint::BetweenSteps, skip: 2 }]),
        );
        assert_eq!(crashed.kills, 1, "the kill fired");
        assert!(crashed.converged, "recovered run converges: {:?}", crashed.last_error);
        assert_eq!(crashed.recovery_audit_failures, 0);
        assert_eq!(
            crashed.final_extent_crcs, baseline.final_extent_crcs,
            "recovery is bit-identical per view"
        );
    }
}
