//! The paper's experimental testbed (Section 6.1): six relations evenly
//! distributed over three source servers, four attributes each, a
//! materialized view defined as a one-to-one join among all six relations
//! projecting all twenty-four attributes.

use crate::rng::Rng;
use dyno_relational::{AttrType, Catalog, Relation, Schema, SpjQuery, Tuple, Value};
use dyno_source::{SourceId, SourceServer, SourceSpace};
use dyno_view::ViewDefinition;

/// Testbed parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestbedConfig {
    /// Number of source servers (paper: 3).
    pub sources: u32,
    /// Relations per server (paper: 2).
    pub relations_per_source: u32,
    /// Tuples per relation. The paper uses 100 000; the default here is
    /// 10 000 so debug-mode tests stay fast — the simulated cost model is
    /// calibrated for this scale, and experiments can pass the full size.
    pub tuples_per_relation: usize,
    /// Non-key attributes per relation (paper: 4 attributes total = key + 3).
    pub extra_attrs: usize,
    /// RNG seed for attribute values.
    pub seed: u64,
    /// Declare a secondary hash index on each relation's join key `K`, so
    /// maintenance queries probe instead of scanning. On by default — pass
    /// `false` to measure the scan baseline.
    pub indexes: bool,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            sources: 3,
            relations_per_source: 2,
            tuples_per_relation: 10_000,
            extra_attrs: 3,
            seed: 42,
            indexes: true,
        }
    }
}

impl TestbedConfig {
    /// Total number of relations.
    pub fn relation_count(&self) -> usize {
        (self.sources * self.relations_per_source) as usize
    }

    /// Canonical relation names `R0..R{n-1}`.
    pub fn relation_names(&self) -> Vec<String> {
        (0..self.relation_count()).map(|i| format!("R{i}")).collect()
    }

    /// The schema of relation `i`: key `K` plus `A1..Am`.
    pub fn schema(&self, i: usize) -> Schema {
        let mut cols = vec![("K".to_string(), AttrType::Int)];
        for a in 1..=self.extra_attrs {
            cols.push((format!("A{a}"), AttrType::Int));
        }
        let attrs = cols.into_iter().map(|(n, t)| dyno_relational::Attribute::new(n, t)).collect();
        Schema::new(format!("R{i}"), attrs).expect("generated attribute names are unique")
    }
}

/// Builds the source space: relation `Ri` lives on server `i / relations_per_source`,
/// populated with keys `0..tuples_per_relation` (so the n-way join is
/// one-to-one) and pseudorandom attribute values.
pub fn build_space(cfg: &TestbedConfig) -> SourceSpace {
    let mut rng = Rng::new(cfg.seed);
    let mut space = SourceSpace::new();
    for s in 0..cfg.sources {
        let mut catalog = Catalog::new();
        for r in 0..cfg.relations_per_source {
            let idx = (s * cfg.relations_per_source + r) as usize;
            let schema = cfg.schema(idx);
            let mut rel = Relation::empty(schema);
            for k in 0..cfg.tuples_per_relation {
                let mut vals = vec![Value::from(k as i64)];
                for _ in 0..cfg.extra_attrs {
                    vals.push(Value::from(rng.gen_range(0..1_000_000i64)));
                }
                rel.insert(Tuple::new(vals)).expect("generated tuples are well-typed");
            }
            catalog.add_relation(rel).expect("generated names are unique");
        }
        space.add_server(SourceServer::new(SourceId(s), format!("server{s}"), catalog));
    }
    if cfg.indexes {
        for name in cfg.relation_names() {
            space.create_index(&name, &["K"]).expect("testbed relations exist");
        }
    }
    space
}

/// The testbed view: `SELECT * FROM R0 ⋈ R1 ⋈ … ⋈ R{n-1}` joined pairwise
/// on `K`, outputs named `Ri_attr` (24 columns at the paper's shape).
pub fn build_view(cfg: &TestbedConfig) -> ViewDefinition {
    let names = cfg.relation_names();
    let mut b = SpjQuery::over(names.clone());
    for (i, name) in names.iter().enumerate() {
        let schema = cfg.schema(i);
        for attr in schema.attrs() {
            b = b.select_as(name, &attr.name, &format!("{name}_{}", attr.name));
        }
    }
    for w in names.windows(2) {
        b = b.join_eq((w[0].as_str(), "K"), (w[1].as_str(), "K"));
    }
    ViewDefinition::new("Testbed", b.build())
}

/// Convenience: a testbed space + view pair.
pub fn build_testbed(cfg: &TestbedConfig) -> (SourceSpace, ViewDefinition) {
    (build_space(cfg), build_view(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_relational::eval;

    fn tiny() -> TestbedConfig {
        TestbedConfig { tuples_per_relation: 50, ..Default::default() }
    }

    #[test]
    fn shape_matches_paper() {
        let cfg = TestbedConfig::default();
        assert_eq!(cfg.relation_count(), 6);
        let view = build_view(&cfg);
        assert_eq!(view.query.tables.len(), 6);
        assert_eq!(view.output_cols().len(), 24, "all twenty-four attributes");
        assert_eq!(view.query.predicates.len(), 5, "chain of one-to-one joins");
    }

    #[test]
    fn join_is_one_to_one() {
        let cfg = tiny();
        let (space, view) = build_testbed(&cfg);
        let out = eval(&view.query, &space.provider()).unwrap();
        assert_eq!(out.weight(), 50, "one view tuple per key");
    }

    #[test]
    fn distribution_over_servers() {
        let cfg = tiny();
        let space = build_space(&cfg);
        assert_eq!(space.servers().len(), 3);
        assert_eq!(space.locate("R0"), Some(SourceId(0)));
        assert_eq!(space.locate("R1"), Some(SourceId(0)));
        assert_eq!(space.locate("R2"), Some(SourceId(1)));
        assert_eq!(space.locate("R5"), Some(SourceId(2)));
    }

    #[test]
    fn key_indexes_declared_by_default() {
        let cfg = tiny();
        let space = build_space(&cfg);
        for (i, name) in cfg.relation_names().iter().enumerate() {
            let sid = space.locate(name).unwrap();
            let idx = space.server(sid).catalog().index_covering(name, &["K"]);
            assert!(idx.is_some(), "R{i} has a key index");
            assert_eq!(idx.unwrap().len(), cfg.tuples_per_relation);
        }
        let scan = build_space(&TestbedConfig { indexes: false, ..tiny() });
        assert!(scan.server(SourceId(0)).catalog().index_covering("R0", &["K"]).is_none());
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = tiny();
        let a = build_space(&cfg);
        let b = build_space(&cfg);
        assert_eq!(
            a.server(SourceId(0)).catalog().get("R0").unwrap(),
            b.server(SourceId(0)).catalog().get("R0").unwrap()
        );
    }
}
