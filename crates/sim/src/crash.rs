//! The crash-chaos runner: [`run_chaos`](crate::chaos::run_chaos)'s sibling
//! that additionally **kills the warehouse process** at deterministic points
//! of the commit protocol and recovers it from its write-ahead log.
//!
//! A kill is a [`CrashPlan`] armed on the manager's [`DurableLog`]: after the
//! planned record is written, the log simulates a power cut (drops every
//! later write). The driver polls for the cut after each scheduling step;
//! when it trips, the manager is dropped — taking its in-memory extent,
//! queue, and the port's in-flight delivery state with it — and rebuilt via
//! [`ViewManager::recover`] from the surviving storage. The transport and
//! sources live on (they are the outside world), and the rebuilt port
//! re-subscribes from the recovered high-water marks, replaying the window
//! between the last durable admission and the crash.
//!
//! ## Oracles
//!
//! * **Per-commit audit** — strong consistency ([`check_reflected`]) after
//!   every commit *and immediately after every recovery*.
//! * **Convergence** — the final extent equals the view evaluated over the
//!   final source states.
//! * **Bit identity** — [`CrashReport::final_extent_crc`] for a crashed run
//!   must equal the same seed's no-kill run: recovery must not change *what*
//!   is computed, only when.

use std::collections::HashMap;

use dyno_core::{CorrectionPolicy, StepOutcome, Strategy};
use dyno_durable::{crc32, Enc, MemStorage};
use dyno_fault::{ChaosTransport, FaultProfile, RetryPolicy};
use dyno_obs::Collector;
use dyno_relational::wire::enc_bag;
use dyno_source::SourceId;
use dyno_view::engine::SourcePort;
use dyno_view::wal::{CrashPlan, DurableLog};
use dyno_view::{FaultedPort, ViewManager};

use crate::consistency::{check_convergence, check_reflected};
use crate::cost::CostModel;
use crate::port::SimPort;
use crate::testbed::{build_testbed, TestbedConfig};
use crate::workload::WorkloadGen;

/// One crash-chaos experiment: a chaos run plus a planned kill sequence.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Transport fault intensities (crashes ride on top of these).
    pub profile: FaultProfile,
    /// Master seed (workload, transport rolls, retry jitter).
    pub seed: u64,
    /// Detection strategy.
    pub strategy: Strategy,
    /// Correction policy.
    pub policy: CorrectionPolicy,
    /// Query-retry policy.
    pub retry: RetryPolicy,
    /// The kill sequence, armed one plan at a time: the first plan is armed
    /// at start, the next after each recovery. Empty = the no-kill baseline
    /// run the bit-identity oracle compares against.
    pub kills: Vec<CrashPlan>,
    /// WAL checkpoint policy (records between snapshots).
    pub checkpoint_every: u64,
    /// Data updates to schedule.
    pub du_count: usize,
    /// Schema changes to schedule.
    pub sc_count: usize,
    /// Testbed scale.
    pub tuples_per_relation: usize,
    /// Audit strong consistency after every commit and recovery.
    pub audit: bool,
    /// Capture per-update lineage; the report's `obs` then answers
    /// `explain(id)` across kills and recoveries.
    pub lineage: bool,
    /// Maintenance-step budget.
    pub max_steps: u64,
}

impl CrashConfig {
    /// A representative crash run over the standard small chaos workload.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        CrashConfig {
            profile,
            seed,
            strategy: Strategy::Pessimistic,
            policy: CorrectionPolicy::default(),
            retry: RetryPolicy::default(),
            kills: Vec::new(),
            checkpoint_every: 16,
            du_count: 12,
            sc_count: 3,
            tuples_per_relation: 200,
            audit: true,
            lineage: false,
            max_steps: 5_000,
        }
    }

    /// Sets the kill sequence.
    pub fn with_kills(mut self, kills: Vec<CrashPlan>) -> Self {
        self.kills = kills;
        self
    }

    /// Sets the correction policy.
    pub fn with_policy(mut self, policy: CorrectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables lineage capture.
    pub fn with_lineage(mut self) -> Self {
        self.lineage = true;
        self
    }
}

/// What a crash-chaos run produced.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Whether the final extent matches the view over final source states.
    pub converged: bool,
    /// Kills actually executed (≤ planned: a plan whose point never occurs
    /// stays armed forever).
    pub kills: u64,
    /// Strong-consistency audit failures after commits.
    pub audit_violations: u64,
    /// Strong-consistency audit failures immediately after a recovery.
    pub recovery_audit_failures: u64,
    /// Records replayed across all recoveries (`recover.replayed`).
    pub replayed_records: u64,
    /// Torn tails discarded across all recoveries (`recover.torn_records`).
    pub torn_records: u64,
    /// Intents re-parked across all recoveries.
    pub reparked_intents: u64,
    /// Committed + aborted + parked steps, summed over all lives.
    pub steps: u64,
    /// Whether the step budget ran out before quiescence.
    pub exhausted: bool,
    /// A hard maintenance error that ended the run, if any.
    pub last_error: Option<String>,
    /// Final materialized extent size.
    pub final_mv_len: u64,
    /// CRC-32 of the canonically encoded final extent — the bit-identity
    /// fingerprint compared across crashed and crash-free runs.
    pub final_extent_crc: u32,
    /// The final view definition's SQL.
    pub final_view_sql: String,
    /// The run's collector (`wal.*`, `recover.*`, `fault.*`, …).
    pub obs: Collector,
}

/// Canonical fingerprint of an extent (sorted encoding → CRC-32).
fn extent_crc(mv: &dyno_view::MaterializedView) -> u32 {
    let mut e = Enc::new();
    enc_bag(&mut e, mv.extent());
    crc32(&e.finish())
}

/// Runs one seeded crash-chaos experiment to quiescence (or budget/error).
pub fn run_crash_chaos(cfg: &CrashConfig) -> CrashReport {
    let tb = TestbedConfig { tuples_per_relation: cfg.tuples_per_relation, ..Default::default() };
    let (space, view) = build_testbed(&tb);
    let info = space.info().clone();
    let mut gen = WorkloadGen::new(tb, cfg.seed);
    let mut schedule = gen.du_flood(cfg.du_count);
    if cfg.sc_count > 0 {
        schedule.extend(gen.sc_train(cfg.sc_count, 1_000_000, 20_000_000));
    }

    let mut port = SimPort::new(space, schedule, CostModel::default());
    let obs =
        if cfg.lineage { port.obs().clone().with_lineage(64 * 1024) } else { port.obs().clone() };
    let mut mgr = ViewManager::new(view, info.clone(), cfg.strategy)
        .with_obs(obs.clone())
        .with_correction(cfg.policy);
    mgr.initialize(&mut port).expect("testbed initialization runs fault-free");
    port.start_metering();

    // The disk outlives every warehouse life.
    let disk = MemStorage::new();
    let log = DurableLog::create(Box::new(disk.clone()))
        .expect("MemStorage never fails")
        .with_checkpoint_every(cfg.checkpoint_every);
    let mut mgr = mgr.with_wal(log);

    // Wrap after initialize; remember the pre-wrap baseline — a recovered
    // warehouse's resubscription baseline is this overlaid with its marks.
    let init_versions = port.space().versions();
    let transport = ChaosTransport::new(cfg.profile, cfg.seed).with_obs(&obs);
    let mut fport = FaultedPort::new(port, transport, init_versions.clone())
        .with_retry(cfg.retry)
        .with_seed(cfg.seed ^ 0x9e37_79b9_7f4a_7c15)
        .with_obs(&obs);

    let mut plans = cfg.kills.iter();
    if let Some(&plan) = plans.next() {
        mgr.arm_crash(plan);
    }

    let mut kills = 0u64;
    let mut steps = 0u64;
    let mut audit_violations = 0u64;
    let mut recovery_audit_failures = 0u64;
    let mut exhausted = false;
    let mut last_error: Option<String> = None;
    let mut flushed = false;
    let mut iters = 0u64;
    let iter_budget = cfg.max_steps.saturating_mul(20).max(100_000);

    loop {
        iters += 1;
        if steps >= cfg.max_steps || iters >= iter_budget {
            exhausted = true;
            break;
        }
        let next_event = |f: &FaultedPort<SimPort, ChaosTransport>| -> Option<u64> {
            match (f.inner().next_commit_at_us(), f.next_wakeup_us()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        let outcome = mgr.step(&mut fport);

        // The power cut may have tripped anywhere inside that step. The
        // doomed process may even have "committed" in memory — none of it
        // is durable past the cut, and the kill discards it.
        if mgr.wal_power_cut() {
            kills += 1;
            drop(mgr);
            let (port, transport) = fport.into_parts();
            let (recovered, report) =
                ViewManager::recover(Box::new(disk.clone()), info.clone(), obs.clone())
                    .expect("a cut log always holds its initial checkpoint");
            mgr = recovered;
            // Resubscription baseline: pre-wrap versions overlaid with the
            // recovered admission marks.
            let mut baseline: HashMap<SourceId, u64> = init_versions.clone();
            for (s, v) in mgr.ingress_marks() {
                let e = baseline.entry(SourceId(s)).or_insert(0);
                *e = (*e).max(v);
            }
            fport = FaultedPort::new(port, transport, baseline)
                .with_retry(cfg.retry)
                .with_seed(cfg.seed ^ 0x9e37_79b9_7f4a_7c15 ^ kills)
                .with_obs(&obs);
            fport.resubscribe();
            if cfg.audit {
                let ok =
                    check_reflected(fport.inner().space(), mgr.view(), mgr.reflected(), mgr.mv())
                        .unwrap_or(false);
                if !ok {
                    recovery_audit_failures += 1;
                }
            }
            let _ = report; // counters already aggregate in `obs`
            if let Some(&plan) = plans.next() {
                mgr.arm_crash(plan);
            }
            flushed = false;
            continue;
        }

        match outcome {
            Err(e) => {
                last_error = Some(e.to_string());
                break;
            }
            Ok(StepOutcome::Idle) => match next_event(&fport) {
                Some(t) => {
                    let now = fport.now_us();
                    fport.inner_mut().advance_to(t.max(now + 1));
                    flushed = false;
                }
                None if !flushed => {
                    fport.flush_all();
                    flushed = true;
                }
                None => break,
            },
            Ok(StepOutcome::Committed) => {
                steps += 1;
                flushed = false;
                if cfg.audit {
                    let ok = check_reflected(
                        fport.inner().space(),
                        mgr.view(),
                        mgr.reflected(),
                        mgr.mv(),
                    )
                    .unwrap_or(false);
                    if !ok {
                        audit_violations += 1;
                    }
                }
                // Everything admitted is durable (logged before enqueue), so
                // the transport may prune its replay log up to the marks.
                for (s, v) in mgr.ingress_marks() {
                    fport.ack_durable(SourceId(s), v);
                }
            }
            Ok(StepOutcome::Aborted) => {
                steps += 1;
                flushed = false;
            }
            Ok(StepOutcome::Parked) => {
                steps += 1;
                flushed = false;
                let now = fport.now_us();
                let t = next_event(&fport).unwrap_or(now + 1_000_000);
                fport.inner_mut().advance_to(t.max(now + 1));
            }
            Ok(StepOutcome::Failed) => unreachable!("manager.step surfaces failures as Err"),
        }
    }

    // Close the log cleanly: the final checkpoint truncates the WAL so a
    // later `recover` replays exactly one record and reports no torn tail.
    mgr.checkpoint_now();

    let converged = last_error.is_none()
        && !exhausted
        && check_convergence(fport.inner().space(), mgr.view(), mgr.mv()).unwrap_or(false);
    let reg = obs.registry();
    let counter = |name: &str| reg.counter_value(name).unwrap_or(0);
    CrashReport {
        converged,
        kills,
        audit_violations,
        recovery_audit_failures,
        replayed_records: counter("recover.replayed"),
        torn_records: counter("recover.torn_records"),
        reparked_intents: counter("recover.reparked_intents"),
        steps,
        exhausted,
        last_error,
        final_mv_len: mgr.mv().len(),
        final_extent_crc: extent_crc(mgr.mv()),
        final_view_sql: mgr.view().to_string(),
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyno_view::wal::CrashPoint;

    #[test]
    fn no_kill_run_matches_plain_chaos_semantics() {
        let report = run_crash_chaos(&CrashConfig::new(FaultProfile::quiet(), 42));
        assert!(report.converged);
        assert_eq!(report.kills, 0);
        assert_eq!(report.audit_violations, 0);
        assert_eq!(report.torn_records, 0);
    }

    #[test]
    fn a_between_steps_kill_recovers_and_converges() {
        let cfg = CrashConfig::new(FaultProfile::quiet(), 42)
            .with_kills(vec![CrashPlan { point: CrashPoint::BetweenSteps, skip: 2 }]);
        let report = run_crash_chaos(&cfg);
        assert_eq!(report.kills, 1, "the kill fired");
        assert!(report.converged, "recovered run converges");
        assert_eq!(report.audit_violations, 0);
        assert_eq!(report.recovery_audit_failures, 0);
        assert!(report.replayed_records >= 1);
    }

    #[test]
    fn crashed_run_is_bit_identical_to_uncrashed_run() {
        let baseline = run_crash_chaos(&CrashConfig::new(FaultProfile::quiet(), 42));
        let crashed = run_crash_chaos(
            &CrashConfig::new(FaultProfile::quiet(), 42)
                .with_kills(vec![CrashPlan { point: CrashPoint::AfterIntent, skip: 1 }]),
        );
        assert!(baseline.converged && crashed.converged);
        assert_eq!(crashed.kills, 1);
        assert_eq!(crashed.final_view_sql, baseline.final_view_sql);
        assert_eq!(
            crashed.final_extent_crc, baseline.final_extent_crc,
            "recovery changes when work happens, never what is computed"
        );
    }
}
